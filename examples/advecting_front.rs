//! Advection-dominated transport with dynamic AMR — the workload class
//! the paper uses for its scalability studies (Figs. 5–7): a sharp
//! front swept through the domain by a rotating flow, with the mesh
//! refined along the front and coarsened in its wake every few steps,
//! while `MarkElements` holds the global element count near a target.
//!
//! Run with: `cargo run --release --example advecting_front`

use mesh::extract::extract_mesh;
use octree::parallel::DistOctree;
use rhea::adapt::{adapt_mesh, gradient_indicator, AdaptParams};
use rhea::timers::PhaseTimers;
use rhea::transport::{TransportParams, TransportSolver};
use scomm::spmd;

fn main() {
    const RANKS: usize = 4;
    const STEPS: usize = 24;
    const ADAPT_EVERY: usize = 4;
    const TARGET: u64 = 4000;
    println!("Advecting front with dynamic AMR ({RANKS} ranks, target {TARGET} elements)\n");

    let (out, profiles) = spmd::run_traced(RANKS, |comm, rec| {
        let mut tree = DistOctree::new_uniform(comm, 3);
        let mut mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
        let mut temp: Vec<f64> = (0..mesh.n_owned)
            .map(|d| {
                let p = mesh.dof_coords(d);
                let r = ((p[0] - 0.7).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt();
                0.5 * (1.0 - ((r - 0.18) * 50.0).tanh())
            })
            .collect();
        let mut log = Vec::new();
        for step in 0..STEPS {
            rec.with_cat("TimeIntegration", "solve", || {
                let params = TransportParams {
                    kappa: 1e-7,
                    source: 0.0,
                    cfl: 0.4,
                };
                let mut ts = TransportSolver::new(&mesh, comm, params);
                ts.set_velocity_fn(|p| [0.5 - p[1], p[0] - 0.5, 0.0]);
                let dt = ts.stable_dt().min(0.02);
                ts.step(&mut temp, dt);
            });
            if step % ADAPT_EVERY == ADAPT_EVERY - 1 {
                let ind = gradient_indicator(&mesh, comm, &temp);
                let fields = [temp.clone()];
                let aparams = AdaptParams {
                    target_elements: TARGET,
                    max_level: 6,
                    min_level: 2,
                    ..Default::default()
                };
                let (nm, mut nf, rep) = adapt_mesh(&mut tree, &mesh, &fields, &ind, &aparams, rec);
                mesh = nm;
                temp = nf.remove(0);
                log.push((
                    step,
                    rep.refined,
                    rep.coarsened_families,
                    rep.elements_after,
                ));
            }
        }
        let (mn, mx) = {
            let ts = TransportSolver::new(&mesh, comm, TransportParams::default());
            ts.min_max(&temp)
        };
        (log, mn, mx)
    });

    let (log, mn, mx) = &out[0];
    let timers = PhaseTimers::from_summary(&profiles[0].summary);
    println!(
        "{:>6} {:>9} {:>11} {:>12}",
        "step", "refined", "coarsened", "elements"
    );
    for (step, refined, coarsened, after) in log {
        println!(
            "{:>6} {:>9} {:>11} {:>12}",
            step + 1,
            refined,
            coarsened,
            after
        );
    }
    println!("\nfield bounds after {STEPS} steps: [{mn:.4}, {mx:.4}] (SUPG keeps it monotone)");
    let amr = timers.amr_total();
    let total = timers.total();
    println!(
        "AMR fraction of runtime: {:.1}% — note this scaled-down run adapts every\n\
         {ADAPT_EVERY} steps on ~4K elements; the paper adapts every 32 steps at\n\
         131K elements/core, which amortizes AMR to ≤11% (see fig7_weak_breakdown,\n\
         which uses the paper's cadence and reproduces that fraction).",
        100.0 * amr / total
    );
}
