//! High-order DG advection on the cubed sphere — the paper's Fig. 12
//! demonstration: a front carried around a spherical shell decomposed
//! into 24 adaptive octrees (6 caps × 4 trees), exercising the
//! forest-of-octrees connectivity and inter-tree face transforms.
//!
//! Run with: `cargo run --release --example spherical_advection`

use forest::{Connectivity, Forest};
use mangll::advection::{DgAdvection, DgParams};
use scomm::spmd;
use std::sync::Arc;

fn main() {
    const RANKS: usize = 4;
    const STEPS: usize = 40;
    let order = 2;
    println!("MANGLL: DG(p={order}) advection on the cubed sphere ({RANKS} ranks)\n");
    let conn = Arc::new(Connectivity::cubed_sphere(0.55, 1.0));
    println!(
        "connectivity: {} trees, {} vertices (6 caps × 4 trees, the paper's split)",
        conn.num_trees(),
        conn.vertices.len()
    );

    let out = spmd::run(RANKS, move |comm| {
        let forest = Forest::new_uniform(comm, conn.clone(), 1);
        let init = |q: [f64; 3]| {
            let r = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2]).sqrt();
            let d2 = (q[0] / r - 1.0).powi(2) + (q[1] / r).powi(2) + (q[2] / r).powi(2);
            (-d2 / 0.05).exp()
        };
        // Solid-body rotation about the z axis.
        let mut dg = DgAdvection::new(
            &forest,
            DgParams {
                order,
                cfl: 0.25,
                ..Default::default()
            },
            init,
            |q| [-q[1], q[0], 0.0],
        );
        let m0 = dg.total_mass();
        let dt = dg.stable_dt();
        let mut snapshots = Vec::new();
        for s in 0..STEPS {
            dg.step(dt);
            if s % 10 == 9 {
                // Front azimuth as the solution-weighted circular mean
                // over all nodes — tracks sub-element motion smoothly,
                // unlike an argmax (which is quantized to node spacing).
                let n3 = dg.u.len() / forest.local.len();
                let (mut sx, mut sy, mut umax) = (0.0f64, 0.0f64, 0.0f64);
                for e in 0..forest.local.len() {
                    for (node, p) in dg.node_positions(e).into_iter().enumerate() {
                        let u = dg.u[e * n3 + node].max(0.0);
                        let az = p[1].atan2(p[0]);
                        sx += u * az.cos();
                        sy += u * az.sin();
                        umax = umax.max(u);
                    }
                }
                let sums = comm.allreduce_sum(&[sx, sy]);
                let gmax = comm.allreduce_max(&[umax])[0];
                let angle = sums[1].atan2(sums[0]);
                snapshots.push((s + 1, (s + 1) as f64 * dt, angle, gmax));
            }
        }
        let m1 = dg.total_mass();
        (snapshots, m0, m1, forest.global_count())
    });

    let (snapshots, m0, m1, nelem) = &out[0];
    println!("forest: {nelem} elements across 24 trees\n");
    println!(
        "{:>6} {:>10} {:>16} {:>12}",
        "step", "t", "front azimuth", "front max"
    );
    for (s, t, angle, peak) in snapshots {
        println!(
            "{:>6} {:>10.3} {:>13.3} rad {:>12.3}  (expected ≈ {:.3})",
            s, t, angle, peak, t
        );
    }
    println!(
        "\nmass drift over the run: {:.2}% (interpolation mortars on the faceted\n\
         sphere; exact on Cartesian forests)",
        100.0 * (m1 - m0).abs() / m0.abs()
    );
    println!(
        "note: at this deliberately coarse resolution (level-1 forest, box-shaped\n\
         elements approximating the shell) the radial faces carry spurious\n\
         boundary flux, which damps the front and biases the azimuth diagnostic;\n\
         both artifacts shrink with refinement. The structural result — the front\n\
         crossing the inter-tree faces of all six caps without instability — is\n\
         the paper's Fig. 12 behaviour."
    );
}
