//! Quickstart: build, adapt, balance, partition, and mesh an octree on
//! simulated parallel ranks, then solve a Poisson problem on it.
//!
//! Run with: `cargo run --release --example quickstart`

use alps::prelude::*;
use fem::element::stiffness_matrix;
use fem::op::{DistOp, DofMap};
use la::cg;

fn main() {
    const RANKS: usize = 4;
    println!("ALPS quickstart on {RANKS} simulated ranks\n");

    let results = spmd::run(RANKS, |comm| {
        // 1. NewTree: a uniform level-3 octree over the unit cube,
        //    distributed along the Morton curve.
        let mut tree = DistOctree::new_uniform(comm, 3);

        // 2. RefineTree: resolve a spherical feature.
        tree.refine(|o| {
            let c = o.center_unit();
            let r = ((c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2) + (c[2] - 0.5).powi(2)).sqrt();
            (r - 0.3).abs() < 0.08
        });

        // 3. BalanceTree: restore the 2:1 size condition.
        let added = tree.balance(BalanceKind::Full);

        // 4. PartitionTree: equal elements per rank along the curve.
        tree.partition();
        assert!(tree.validate());

        // 5. ExtractMesh: trilinear FEM mesh with hanging-node
        //    constraints, global dof numbering and ghost exchange.
        let mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);

        // 6. Solve −Δu = 1 with homogeneous Dirichlet BCs, matrix-free.
        let map = DofMap::new(&mesh, comm, 1);
        let bc: Vec<bool> = (0..mesh.n_owned).map(|d| mesh.dof_on_boundary(d)).collect();
        let mref = &mesh;
        let op = DistOp::new(
            &map,
            Box::new(move |e, out: &mut [f64]| {
                let k = stiffness_matrix(mref.element_size(e), 1.0);
                for i in 0..8 {
                    for j in 0..8 {
                        out[i * 8 + j] = k[i][j];
                    }
                }
            }),
            Some(&bc),
        );
        // Load vector: lumped ∫ N_i · 1.
        let mut rhs = vec![0.0; map.n_local()];
        for e in 0..mesh.elements.len() {
            let lm = fem::element::lumped_mass(mesh.element_size(e));
            map.scatter_element(e, &lm, &mut rhs);
        }
        map.reverse_accumulate(&mut rhs);
        let mut rhs = rhs[..mesh.n_owned].to_vec();
        for (d, &m) in bc.iter().enumerate() {
            if m {
                rhs[d] = 0.0;
            }
        }
        let mut u = vec![0.0; mesh.n_owned];
        let info = cg(&op, None::<&la::Csr>, &rhs, &mut u, 1e-8, 500, &map);
        let umax = map.norm_inf(&u);

        (
            tree.global_count(),
            added,
            mesh.n_owned,
            mesh.n_global,
            info.iterations,
            umax,
        )
    });

    let (elems, added, _, dofs, iters, umax) = results[0];
    println!("elements after adaptation : {elems}");
    println!("leaves added by balance   : {added}");
    println!("global dofs               : {dofs}");
    for (r, (_, _, owned, ..)) in results.iter().enumerate() {
        println!("rank {r} owns              : {owned} dofs");
    }
    println!("CG iterations             : {iters}");
    println!("max potential             : {umax:.5}");
    println!("\n(the mesh tracks the spherical shell; hanging nodes are constrained");
    println!(" automatically; all ranks agree on the distributed solve)");
}
