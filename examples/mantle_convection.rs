//! Mantle convection with plastic yielding — a reduced-resolution version
//! of the paper's Section VI simulation: the 8×4×1 regional domain,
//! three-layer temperature-dependent viscosity with yielding, dynamic AMR
//! tracking plumes and yielding zones.
//!
//! Run with: `cargo run --release --example mantle_convection`

use rhea::adapt::AdaptParams;
use rhea::convection::{ConvectionParams, ConvectionSim};
use rhea::rheology::YieldingLaw;
use rhea::transport::TransportParams;
use scomm::spmd;
use stokes::StokesOptions;

fn main() {
    const RANKS: usize = 2;
    const STEPS: usize = 8;
    println!("RHEA: regional mantle convection with yielding ({RANKS} ranks, {STEPS} steps)\n");
    println!("domain 8×4×1 (≈23,200 × 11,600 × 2,900 km), free-slip walls,");
    println!("T=1 at the CMB, T=0 at the surface, Ra = 10^6\n");

    let rows = spmd::run(RANKS, |comm| {
        let params = ConvectionParams {
            rayleigh: 1e6,
            domain: [8.0, 4.0, 1.0],
            adapt_every: 2,
            adapt: AdaptParams {
                target_elements: 3000,
                max_level: 5,
                min_level: 1,
                ..Default::default()
            },
            transport: TransportParams {
                kappa: 1.0,
                source: 0.0,
                cfl: 0.4,
            },
            stokes: StokesOptions {
                tol: 1e-5,
                max_iter: 300,
                ..Default::default()
            },
            picard_steps: 2,
        };
        let mut sim = ConvectionSim::new(comm, 2, params);
        let law = YieldingLaw {
            yield_stress: 1.0,
            exponent: 6.9,
        };
        let mut rows = Vec::new();
        for _ in 0..STEPS {
            let rep = sim.step(&law);
            let eta_min = sim.viscosity.iter().cloned().fold(f64::INFINITY, f64::min);
            let eta_max = sim.viscosity.iter().cloned().fold(0.0f64, f64::max);
            let gmin = comm.allreduce_min(&[eta_min])[0];
            let gmax = comm.allreduce_max(&[eta_max])[0];
            rows.push((rep, gmin, gmax));
        }
        let timers = sim.timers();
        let amr_pct = 100.0 * timers.amr_total() / timers.total();
        (rows, amr_pct)
    });

    let (steps, amr_pct) = &rows[0];
    println!(
        "{:>4} {:>10} {:>8} {:>9} {:>10} {:>12} {:>14}",
        "step", "elements", "MINRES", "dt", "v_rms", "η range", "adapted?"
    );
    for (rep, gmin, gmax) in steps {
        println!(
            "{:>4} {:>10} {:>8} {:>9.2e} {:>10.2e} {:>6.0e}–{:<6.0e} {:>8}",
            rep.step,
            rep.n_elements,
            rep.minres_iterations,
            rep.dt,
            rep.v_rms,
            gmin,
            gmax,
            if rep.adapt.is_some() { "yes" } else { "" },
        );
    }
    println!("\nAMR overhead: {amr_pct:.2}% of total runtime (paper: < 1% for the full code)");
    println!("viscosity spans the yielding lithosphere / aesthenosphere / lower mantle");
    println!("structure of the paper's Section VI law.");
}
