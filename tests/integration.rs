//! Cross-crate integration tests: each exercises a full vertical slice
//! of the system (octree → mesh → discretization → solver → physics).

use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::mark::MarkParams;
use octree::parallel::DistOctree;
use scomm::spmd;

/// The complete Fig. 4 adaptation cycle repeated several times with a
/// moving feature, checking mesh validity and field integrity throughout.
#[test]
fn repeated_adaptation_cycles_stay_valid() {
    spmd::run(3, |c| {
        let mut tree = DistOctree::new_uniform(c, 3);
        let mut mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
        // A linear field must survive arbitrarily many transfers exactly.
        let f = |p: [f64; 3]| 2.0 * p[0] - p[1] + 0.5 * p[2];
        let mut field: Vec<f64> = (0..mesh.n_owned).map(|d| f(mesh.dof_coords(d))).collect();
        let rec = obs::Recorder::new(c.rank());
        for cycle in 0..4 {
            // Feature moves along x over the cycles.
            let x0 = 0.2 + 0.2 * cycle as f64;
            let ind: Vec<f64> = mesh
                .elements
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    (-(ctr[0] - x0).powi(2) * 60.0).exp()
                })
                .collect();
            let params = rhea::adapt::AdaptParams {
                target_elements: 900,
                max_level: 6,
                min_level: 1,
                ..Default::default()
            };
            let (nm, mut nf, _) =
                rhea::adapt::adapt_mesh(&mut tree, &mesh, &[field], &ind, &params, &rec);
            mesh = nm;
            field = nf.remove(0);
            assert!(tree.validate(), "cycle {cycle}");
            for d in 0..mesh.n_owned {
                let expect = f(mesh.dof_coords(d));
                assert!(
                    (field[d] - expect).abs() < 1e-9,
                    "cycle {cycle}, dof {d}: {} vs {expect}",
                    field[d]
                );
            }
        }
    });
}

/// Stokes + transport coupling on an adapted mesh: a full convection
/// step sequence conserves temperature bounds and produces flow.
#[test]
fn coupled_convection_on_adapted_mesh() {
    spmd::run(2, |c| {
        let params = rhea::convection::ConvectionParams {
            rayleigh: 1e5,
            adapt_every: 2,
            adapt: rhea::adapt::AdaptParams {
                target_elements: 700,
                max_level: 4,
                min_level: 1,
                ..Default::default()
            },
            stokes: stokes::StokesOptions {
                tol: 1e-5,
                max_iter: 250,
                ..Default::default()
            },
            picard_steps: 1,
            ..Default::default()
        };
        let mut sim = rhea::convection::ConvectionSim::new(c, 2, params);
        let law = rhea::rheology::ArrheniusLaw::default();
        let mut v_rms_last = 0.0;
        for _ in 0..4 {
            let rep = sim.step(&law);
            assert!(rep.t_min > -0.1 && rep.t_max < 1.1, "{rep:?}");
            v_rms_last = rep.v_rms;
        }
        assert!(v_rms_last > 0.0, "convection must drive flow");
    });
}

/// MarkElements keeps a global target across rank counts, and the
/// adapted tree re-partitions to an even load.
#[test]
fn mark_balance_partition_interplay() {
    for ranks in [1usize, 2, 4] {
        spmd::run(ranks, move |c| {
            let mut tree = DistOctree::new_uniform(c, 3);
            let ind: Vec<f64> = tree
                .local
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    ((ctr[0] - 0.5).powi(2) + (ctr[1] - 0.5).powi(2)).sqrt()
                })
                .collect();
            let params = MarkParams {
                target_elements: 1200,
                ..Default::default()
            };
            tree.adapt_to_target(&ind, &params);
            tree.balance(BalanceKind::Full);
            tree.partition();
            assert!(tree.validate());
            let n = tree.global_count();
            assert!(
                (n as f64 - 1200.0).abs() / 1200.0 < 0.4,
                "ranks={ranks}: {n} vs target 1200"
            );
            let share = n / ranks as u64;
            let local = tree.local.len() as u64;
            assert!(
                local >= share.saturating_sub(1) && local <= share + 1,
                "ranks={ranks}: local {local}, share {share}"
            );
        });
    }
}

/// The Stokes solver on a mesh with hanging nodes converges and its
/// iteration count stays in the same band as on a uniform mesh
/// (the essence of the paper's Fig. 2 claim under adaptivity).
#[test]
fn stokes_iterations_stable_under_adaptivity() {
    let iters: Vec<usize> = [false, true]
        .iter()
        .map(|&adapt| {
            let out = spmd::run(2, move |c| {
                let mut t = DistOctree::new_uniform(c, 2);
                if adapt {
                    t.refine(|o| o.center_unit()[2] > 0.6);
                    t.balance(BalanceKind::Full);
                    t.partition();
                }
                let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let n = m.n_owned;
                let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
                let visc: Vec<f64> = m
                    .elements
                    .iter()
                    .map(|o| if o.center_unit()[2] > 0.5 { 1e3 } else { 1.0 })
                    .collect();
                let mut s = stokes::StokesSolver::new(
                    &m,
                    c,
                    visc,
                    bc,
                    stokes::StokesOptions {
                        tol: 1e-7,
                        max_iter: 400,
                        ..Default::default()
                    },
                );
                let (rhs, mut x) = s.build_rhs(|p| [0.0, 0.0, (2.0 * p[0]).sin()], |_| [0.0; 3]);
                let info = s.solve(&rhs, &mut x);
                assert!(info.converged);
                info.iterations
            });
            out[0]
        })
        .collect();
    assert!(
        iters[1] <= 3 * iters[0] + 20,
        "hanging nodes must not blow up the solver: uniform {} vs adapted {}",
        iters[0],
        iters[1]
    );
}

/// DG on a forest coexists with the FEM stack: advect on a brick forest
/// while the same octree logic drives a Cartesian FEM mesh.
#[test]
fn dg_and_fem_share_octree_infrastructure() {
    use forest::{Connectivity, Forest};
    use std::sync::Arc;
    let conn = Arc::new(Connectivity::brick(2, 1, 1));
    spmd::run(2, |c| {
        let forest = Forest::new_uniform(c, conn.clone(), 2);
        let mut dg = mangll::advection::DgAdvection::new(
            &forest,
            mangll::advection::DgParams {
                order: 2,
                cfl: 0.3,
                ..Default::default()
            },
            |p| (-((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2)) / 0.02).exp(),
            |_| [1.0, 0.0, 0.0],
        );
        let dt = dg.stable_dt();
        for _ in 0..5 {
            dg.step(dt);
        }
        let mass = dg.total_mass();
        assert!(mass.is_finite() && mass > 0.0);

        // FEM side on a plain octree: level-2 uniform = 4³ elements,
        // (4+1)³ = 125 global nodes (domain scaling changes geometry,
        // not connectivity).
        let t = DistOctree::new_uniform(c, 2);
        let m = extract_mesh(&t, [2.0, 1.0, 1.0]);
        assert_eq!(m.n_global, 125);
    });
}

/// Machine-model sanity across the harness path: modeled times are
/// positive, increase with work, and collective terms grow with P.
#[test]
fn machine_model_behaviour() {
    let m = scomm::MachineModel::ranger();
    let stats = scomm::CommStats {
        p2p_messages: 100,
        p2p_bytes: 1 << 22,
        allreduces: 50,
        ..Default::default()
    };
    let t64 = m.t_comm(&stats, 64);
    let t16k = m.t_comm(&stats, 16384);
    assert!(t64 > 0.0 && t16k > t64);
    assert!(m.t_fem_flops(2e9) > m.t_fem_flops(1e9));
}

/// Differential P-vs-1 run of one full rhea AMR + Stokes-solve cycle:
/// the refined tree must be bitwise identical at P=1 and P=4, and the
/// MINRES residual history must match under the band contract that a
/// rank-local AMG preconditioner actually guarantees (same initial
/// residual to the percent level, convergence at both rank counts,
/// iteration counts in a narrow band — the paper's Fig. 2 claim).
#[test]
fn rhea_amr_solve_cycle_is_rank_count_independent() {
    // (refined, elements_after, packed global leaves, residual series)
    type RunResult = (u64, u64, Vec<u64>, Vec<f64>);
    let run_at = |p: usize| -> RunResult {
        let mut out = spmd::run(p, |c| {
            let rec = obs::Recorder::new(c.rank());
            c.set_recorder(rec.clone());
            let mut tree = DistOctree::new_uniform(c, 2);
            let mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            // Seeded, rank-independent indicator: a Gaussian blob.
            let ind: Vec<f64> = mesh
                .elements
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    (-((ctr[0] - 0.3).powi(2) + (ctr[1] - 0.6).powi(2)) * 40.0).exp()
                })
                .collect();
            let t: Vec<f64> = (0..mesh.n_owned).map(|d| mesh.dof_coords(d)[0]).collect();
            let params = rhea::adapt::AdaptParams {
                target_elements: 400,
                max_level: 4,
                // Pin the floor at the seed level and disable coarsening:
                // family coarsening is partition-local, hence legitimately
                // P-dependent; everything else in the cycle is not.
                min_level: 2,
                coarsen_ratio: 0.0,
                ..Default::default()
            };
            let (new_mesh, _fields, report) =
                rhea::adapt::adapt_mesh(&mut tree, &mesh, &[t], &ind, &params, &rec);
            let n = new_mesh.n_owned;
            let bc: Vec<bool> = (0..3 * n)
                .map(|i| new_mesh.dof_on_boundary(i / 3))
                .collect();
            let visc: Vec<f64> = new_mesh
                .elements
                .iter()
                .map(|o| if o.center_unit()[2] > 0.5 { 1e2 } else { 1.0 })
                .collect();
            let mut s = stokes::StokesSolver::new(
                &new_mesh,
                c,
                visc,
                bc,
                stokes::StokesOptions {
                    tol: 1e-6,
                    max_iter: 300,
                    ..Default::default()
                },
            );
            let (rhs, mut x) = s.build_rhs(|q| [0.0, 0.0, (2.0 * q[0]).sin()], |_| [0.0; 3]);
            let info = s.solve(&rhs, &mut x);
            assert!(info.converged, "P={}: solve must converge", c.size());
            // Pack the global leaf set (key, level) in rank order.
            let mut packed = Vec::with_capacity(2 * tree.local.len());
            for o in &tree.local {
                packed.push(o.key());
                packed.push(o.level as u64);
            }
            let leaves = c.allgatherv(&packed);
            let series = rec
                .profile()
                .series
                .get("minres.residual")
                .cloned()
                .unwrap_or_default();
            (report.refined, report.elements_after, leaves, series)
        });
        out.swap_remove(0) // globals agree on every rank; take rank 0's
    };
    let (ref1, after1, leaves1, series1) = run_at(1);
    let (ref4, after4, leaves4, series4) = run_at(4);
    assert!(ref1 > 0, "fixture must actually refine");
    assert_eq!(ref1, ref4, "refined leaf counts must match");
    assert_eq!(after1, after4, "global element counts must match");
    assert_eq!(leaves1, leaves4, "global leaf sets must be identical");
    assert!(!series1.is_empty() && !series4.is_empty());
    let (i1, i4) = (series1.len() as f64, series4.len() as f64);
    assert!(
        i1.max(i4) <= 1.5 * i1.min(i4) + 5.0,
        "MINRES iteration counts must stay in a band: {i1} vs {i4}"
    );
    assert!(
        (series1[0] - series4[0]).abs() <= 0.05 * series1[0].abs(),
        "initial residuals must agree to the percent level: {} vs {}",
        series1[0],
        series4[0]
    );
}
