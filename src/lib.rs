//! Umbrella package carrying the workspace examples and integration tests.
pub use alps;
