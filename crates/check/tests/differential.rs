//! P-vs-1 differential tests: the same seeded problem run at several
//! rank counts must produce the identical global leaf set and node-key
//! set, and solver residual series matching to tolerance.

use check::{run_differential, DiffOptions, Fingerprint};
use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::Comm;

/// The seeded AMR pipeline: uniform → graded refine → balance →
/// partition → mesh extraction. Entirely deterministic, no RNG.
fn amr_pipeline(c: &Comm) -> (Vec<(u32, u64, u8)>, Vec<u64>, Vec<(String, u64)>) {
    let mut t = DistOctree::new_uniform(c, 2);
    t.refine(|o| {
        let ctr = o.center_unit();
        (ctr[0] - 0.3).powi(2) + (ctr[1] - 0.4).powi(2) + (ctr[2] - 0.5).powi(2) < 0.1
    });
    t.balance(BalanceKind::Full);
    t.partition();
    let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
    let leaves = t.local.iter().map(|o| (0u32, o.key(), o.level)).collect();
    let node_keys = m.dof_keys[..m.n_owned].to_vec();
    let counts = vec![
        ("elements".to_string(), t.global_count()),
        ("dofs".to_string(), m.n_global),
    ];
    (leaves, node_keys, counts)
}

#[test]
fn amr_pipeline_is_rank_count_independent() {
    let result = run_differential(&[1, 2, 4, 8], &DiffOptions::default(), |c| {
        let (leaves, node_keys, counts) = amr_pipeline(c);
        Fingerprint {
            leaves,
            node_keys,
            counts,
            series: Vec::new(),
        }
    });
    result.unwrap_or_else(|errs| panic!("differential mismatches:\n{}", errs.join("\n")));
}

/// Solver-level differential. Two contracts, matching what the
/// algorithms guarantee:
///
/// * The assembled *operator* is rank-count independent: a normalized
///   power-iteration series through the full constrained matvec
///   (hanging-node resolution + ghost exchange + boundary masking)
///   matches to tight tolerance — FP drift only comes from the
///   reduction order of global dot products.
/// * The preconditioned MINRES *trajectory* is not: the AMG hierarchy
///   is built on the rank-local owned block (as BoomerAMG is in the
///   paper), so the series is legitimately P-dependent. What must hold
///   is the Fig.-2-style band contract: convergence at every P with
///   iteration counts in a narrow band, and initial residuals agreeing
///   to the percent level.
#[test]
fn stokes_residual_series_match_across_rank_counts() {
    use std::sync::Mutex;
    let minres: Mutex<Vec<(usize, usize, f64)>> = Mutex::new(Vec::new());
    let opts = DiffOptions {
        series_rel_tol: 1e-6,
        series_len_slack: 0,
    };
    let result = run_differential(&[1, 2, 4], &opts, |c| {
        let rec = obs::Recorder::new(c.rank());
        c.set_recorder(rec.clone());
        let mut t = DistOctree::new_uniform(c, 2);
        t.refine(|o| {
            let ctr = o.center_unit();
            (ctr[0] - 0.3).powi(2) + (ctr[1] - 0.4).powi(2) + (ctr[2] - 0.5).powi(2) < 0.1
        });
        t.balance(BalanceKind::Full);
        t.partition();
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let leaves = t.local.iter().map(|o| (0u32, o.key(), o.level)).collect();
        let node_keys = m.dof_keys[..m.n_owned].to_vec();
        let counts = vec![
            ("elements".to_string(), t.global_count()),
            ("dofs".to_string(), m.n_global),
        ];
        let n = m.n_owned;
        let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
        let visc: Vec<f64> = m
            .elements
            .iter()
            .map(|o| if o.center_unit()[2] > 0.5 { 1e2 } else { 1.0 })
            .collect();
        let mut s = stokes::StokesSolver::new(
            &m,
            c,
            visc,
            bc,
            stokes::StokesOptions {
                tol: 1e-6,
                max_iter: 300,
                ..Default::default()
            },
        );
        let (rhs, mut x) = s.build_rhs(|p| [0.0, 0.0, (2.0 * p[0]).sin()], |_| [0.0; 3]);
        // Operator fingerprint: normalized power iteration through the
        // full distributed matvec.
        let mut y = rhs.clone();
        let mut power = Vec::new();
        for _ in 0..10 {
            let mut ay = vec![0.0; y.len()];
            s.apply(&y, &mut ay);
            let nrm = s.dot(&ay, &ay).sqrt();
            power.push(nrm);
            for v in &mut ay {
                *v /= nrm;
            }
            y = ay;
        }
        let info = s.solve(&rhs, &mut x);
        assert!(info.converged, "fixture solve must converge");
        let series = rec
            .profile()
            .series
            .get("minres.residual")
            .cloned()
            .unwrap_or_default();
        assert!(!series.is_empty(), "solver must report a residual series");
        if c.rank() == 0 {
            minres
                .lock()
                .unwrap()
                .push((c.size(), series.len(), series[0]));
        }
        Fingerprint {
            leaves,
            node_keys,
            counts,
            series: vec![("operator.power".to_string(), power)],
        }
    });
    result.unwrap_or_else(|errs| panic!("differential mismatches:\n{}", errs.join("\n")));

    let minres = minres.into_inner().unwrap();
    assert_eq!(minres.len(), 3, "one MINRES record per rank count");
    let iters: Vec<usize> = minres.iter().map(|&(_, n, _)| n).collect();
    let (lo, hi) = (
        *iters.iter().min().unwrap() as f64,
        *iters.iter().max().unwrap() as f64,
    );
    assert!(
        hi <= 1.5 * lo + 5.0,
        "MINRES iteration counts must stay in a band across P: {minres:?}"
    );
    let r0: Vec<f64> = minres.iter().map(|&(_, _, r)| r).collect();
    for r in &r0[1..] {
        assert!(
            (r - r0[0]).abs() <= 0.05 * r0[0].abs(),
            "initial residuals must agree to percent level: {r0:?}"
        );
    }
}

#[test]
fn differential_harness_reports_rank_dependence() {
    // A deliberately P-dependent "problem": refine only on rank 0. The
    // harness must reject it, proving it can actually see differences.
    let result = run_differential(&[1, 2], &DiffOptions::default(), |c| {
        let mut t = DistOctree::new_uniform(c, 2);
        if c.rank() == 0 {
            t.refine(|o| o.center_unit()[0] < 0.3);
        } else {
            t.refine(|_| false);
        }
        Fingerprint {
            leaves: t.local.iter().map(|o| (0u32, o.key(), o.level)).collect(),
            node_keys: Vec::new(),
            counts: Vec::new(),
            series: Vec::new(),
        }
    });
    let errs = result.expect_err("rank-dependent refinement must be flagged");
    assert!(
        errs.iter().any(|e| e.contains("leaf sets differ")),
        "{errs:?}"
    );
}
