//! Forest partition edge cases, each checked against
//! `check::forest_checks::partition` and leaf-count conservation.

use std::sync::Arc;

use check::forest_checks;
use forest::{Connectivity, Forest};
use octree::balance::BalanceKind;
use scomm::spmd;

fn assert_partition_clean(f: &Forest) {
    let v = forest_checks::partition(f);
    assert!(v.is_empty(), "partition checker found: {v:?}");
    let v = forest_checks::morton_order(f);
    assert!(v.is_empty(), "morton_order checker found: {v:?}");
}

/// A single-leaf forest on four ranks: three ranks stay empty through
/// the partition, and the lone leaf must remain owned exactly once.
#[test]
fn single_leaf_forest_with_empty_ranks() {
    let conn = Arc::new(Connectivity::brick(1, 1, 1));
    spmd::run(4, |c| {
        let mut f = Forest::new_uniform(c, conn.clone(), 0);
        assert_eq!(f.global_count(), 1);
        let plan = f.partition();
        assert!(f.validate());
        assert_eq!(f.global_count(), 1, "leaf count not conserved");
        assert_eq!(plan.send_ranges.len(), 4);
        assert_partition_clean(&f);
        let owners: usize = c.allgatherv(&[f.local.len() as u64]).iter().sum::<u64>() as usize;
        assert_eq!(owners, 1);
    });
}

/// More ranks than initial leaves, then uneven refinement: empty send
/// and receive ranks on both sides of the exchange.
#[test]
fn empty_ranks_refill_on_partition() {
    let conn = Arc::new(Connectivity::brick(2, 1, 1));
    spmd::run(6, |c| {
        let mut f = Forest::new_uniform(c, conn.clone(), 0);
        // Two leaves on six ranks: four ranks start empty.
        assert_eq!(f.global_count(), 2);
        f.refine(|l| l.tree == 0);
        assert_eq!(f.global_count(), 9);
        let n = f.global_count();
        f.partition();
        assert!(f.validate());
        assert_eq!(f.global_count(), n, "leaf count not conserved");
        assert_partition_clean(&f);
        // An even split of 9 over 6 ranks leaves nobody with more than 2.
        assert!(f.local.len() <= 2);
    });
}

/// The already-balanced 24-tree cubed-sphere shell: balance adds
/// nothing, and the partition is a fixed point of an even distribution.
#[test]
fn balanced_24_tree_shell_partition_is_stable() {
    let conn = Arc::new(Connectivity::cubed_sphere(0.55, 1.0));
    spmd::run(8, |c| {
        let mut f = Forest::new_uniform(c, conn.clone(), 1);
        assert_eq!(f.global_count(), 24 * 8);
        let added = f.balance(BalanceKind::Full);
        assert_eq!(added, 0, "uniform shell is already balanced");
        let before = f.local.len();
        let n = f.global_count();
        let plan = f.partition();
        assert!(f.validate());
        assert_eq!(f.global_count(), n, "leaf count not conserved");
        assert_eq!(f.local.len(), before, "even split must be a fixed point");
        assert_eq!(plan.new_len, before);
        // The identity partition sends everything to self.
        let (s, e) = plan.send_ranges[c.rank()];
        assert_eq!(e - s, before);
        assert_partition_clean(&f);
        let v = forest_checks::balance21(&f, BalanceKind::Full);
        assert!(v.is_empty(), "balance checker found: {v:?}");
    });
}
