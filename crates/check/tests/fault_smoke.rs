//! Fault-injection smoke: the full AMR pipeline (refine → balance →
//! partition → ghost → mesh extraction), with invariant checkers on,
//! must produce identical results under an adversarial but seeded
//! message schedule — and produce them twice, identically.

use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::{spmd, FaultPlan};

/// One full pipeline run at 4 ranks, optionally under a fault plan.
/// Returns (global leaf keys by rank order, n_global dofs, total ghost
/// entries, per-rank delayed counts when faults were on).
fn pipeline(plan: Option<FaultPlan>) -> (Vec<u64>, u64, u64, Vec<u64>) {
    let per_rank = spmd::run(4, move |c| {
        c.set_fault_plan(plan);
        // A little p2p traffic with mixed tags so the jitter buffer is
        // actually exercised (the AMR collectives don't go through it).
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        for round in 0u64..8 {
            c.send(next, 0x10, &[c.rank() as u64, round]);
            c.send(next, 0x20, &[round]);
            let a: Vec<u64> = c.recv(prev, 0x10);
            let b: Vec<u64> = c.recv(prev, 0x20);
            assert_eq!(a, vec![prev as u64, round]);
            assert_eq!(b, vec![round]);
        }
        let mut t = DistOctree::new_uniform(c, 2);
        t.refine(|o| {
            let ctr = o.center_unit();
            ctr[0] + ctr[1] < 0.8
        });
        t.balance(BalanceKind::Full);
        t.partition();
        let g = t.ghost_layer();
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        // The checkers must stay clean under faulty scheduling.
        let mut v = check::octree_checks::morton_order(&t);
        v.extend(check::octree_checks::partition(&t));
        v.extend(check::octree_checks::balance21(&t, BalanceKind::Full));
        v.extend(check::octree_checks::ghost_symmetry(&t, &g));
        v.extend(check::mesh_checks::constraints(&t, &m));
        v.extend(check::mesh_checks::dof_numbering(&t, &m));
        check::assert_clean(c, &v);
        let delayed = c.fault_counters().map(|f| f.delayed).unwrap_or(0);
        c.set_fault_plan(None);
        (
            t.local.iter().map(|o| o.key()).collect::<Vec<u64>>(),
            m.n_global,
            g.len() as u64,
            delayed,
        )
    });
    let mut keys = Vec::new();
    let mut ghosts = 0;
    let mut delayed = Vec::new();
    let n_global = per_rank[0].1;
    for (k, ng, gh, d) in per_rank {
        assert_eq!(ng, n_global, "n_global must agree across ranks");
        keys.extend(k);
        ghosts += gh;
        delayed.push(d);
    }
    (keys, n_global, ghosts, delayed)
}

#[test]
fn pipeline_under_adversarial_schedule_is_deterministic() {
    let clean = pipeline(None);
    let faulted1 = pipeline(Some(FaultPlan::delays(0x5eed)));
    let faulted2 = pipeline(Some(FaultPlan::delays(0x5eed)));
    // Faults must not change any result...
    assert_eq!(clean.0, faulted1.0, "leaf keys must match the clean run");
    assert_eq!(clean.1, faulted1.1, "dof count must match the clean run");
    assert_eq!(clean.2, faulted1.2, "ghost count must match the clean run");
    // ...and the faulty schedule itself must be reproducible.
    assert_eq!(faulted1, faulted2, "same seed, same run, same counters");
    assert!(
        faulted1.3.iter().sum::<u64>() > 0,
        "the delay plan must actually delay something: {:?}",
        faulted1.3
    );
}

/// Nonblocking mirror of [`pipeline`]: the same p2p traffic is driven
/// through `isend`/`irecv`/`wait` (faults apply at completion time), and
/// the mesh extraction is followed by overlapped ghost exchanges through
/// the split-phase `DistOp` path. Returns (leaf keys, n_global, apply
/// result bits, per-rank delayed counts).
fn pipeline_nonblocking(plan: Option<scomm::FaultPlan>) -> (Vec<u64>, u64, Vec<u64>, Vec<u64>) {
    use fem::element::stiffness_matrix;
    use fem::op::{DistOp, DofMap};
    let per_rank = spmd::run(4, move |c| {
        c.set_fault_plan(plan);
        // The same ring traffic as the blocking smoke, but posted as
        // nonblocking requests completed out of post order — delays and
        // reordering must apply when `wait` pulls the message, while
        // preserving per-pair FIFO.
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        for round in 0u64..8 {
            c.isend(next, 0x10, &[c.rank() as u64, round]).wait();
            c.isend(next, 0x20, &[round]).wait();
            let ra = c.irecv::<u64>(prev, 0x10);
            let rb = c.irecv::<u64>(prev, 0x20);
            let b: Vec<u64> = c.wait(rb);
            let a: Vec<u64> = c.wait(ra);
            assert_eq!(a, vec![prev as u64, round]);
            assert_eq!(b, vec![round]);
        }
        let mut t = DistOctree::new_uniform(c, 2);
        t.refine(|o| {
            let ctr = o.center_unit();
            ctr[0] + ctr[1] < 0.8
        });
        t.balance(BalanceKind::Full);
        t.partition();
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let map = DofMap::new(&m, c, 1);
        let mesh_ref = &m;
        let op = DistOp::new(
            &map,
            Box::new(move |e, out: &mut [f64]| {
                let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                for i in 0..8 {
                    for j in 0..8 {
                        out[i * 8 + j] = k[i][j];
                    }
                }
            }),
            None,
        );
        assert!(op.overlap(), "split-phase path must be exercised");
        let x: Vec<f64> = (0..m.n_owned)
            .map(|d| ((m.global_offset + d as u64) % 11) as f64 - 5.0)
            .collect();
        let mut y = vec![0.0; m.n_owned];
        op.apply_owned(&x, &mut y);
        let delayed = c.fault_counters().map(|f| f.delayed).unwrap_or(0);
        c.set_fault_plan(None);
        (
            t.local.iter().map(|o| o.key()).collect::<Vec<u64>>(),
            m.n_global,
            y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            delayed,
        )
    });
    let mut keys = Vec::new();
    let mut ybits = Vec::new();
    let mut delayed = Vec::new();
    let n_global = per_rank[0].1;
    for (k, ng, y, d) in per_rank {
        assert_eq!(ng, n_global, "n_global must agree across ranks");
        keys.extend(k);
        ybits.extend(y);
        delayed.push(d);
    }
    (keys, n_global, ybits, delayed)
}

#[test]
fn nonblocking_pipeline_under_adversarial_schedule_is_deterministic() {
    let clean = pipeline_nonblocking(None);
    let faulted1 = pipeline_nonblocking(Some(FaultPlan::delays(0x5eed)));
    let faulted2 = pipeline_nonblocking(Some(FaultPlan::delays(0x5eed)));
    // Completion-time faults must not change any result...
    assert_eq!(clean.0, faulted1.0, "leaf keys must match the clean run");
    assert_eq!(clean.1, faulted1.1, "dof count must match the clean run");
    assert_eq!(
        clean.2, faulted1.2,
        "overlapped apply must be fault-invariant"
    );
    // ...and the faulty schedule itself must be reproducible.
    assert_eq!(faulted1, faulted2, "same seed, same run, same counters");
    assert!(
        faulted1.3.iter().sum::<u64>() > 0,
        "the delay plan must actually delay something: {:?}",
        faulted1.3
    );
}

#[test]
fn drop_plan_panics_on_wait_with_message_identity() {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        spmd::run(2, |c| {
            c.set_fault_plan(Some(FaultPlan::drops(7)));
            let peer = 1 - c.rank();
            c.isend(peer, 0x44, &[7u64]).wait();
            let req = c.irecv::<u64>(peer, 0x44);
            let _: Vec<u64> = c.wait(req);
        });
    }));
    let err = result.expect_err("drop plan must abort the completion");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("dropped message"),
        "wait must identify the dropped message, got: {msg}"
    );
}

#[test]
fn drop_plan_panics_with_message_identity() {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        spmd::run(2, |c| {
            c.set_fault_plan(Some(FaultPlan::drops(7)));
            let peer = 1 - c.rank();
            c.send(peer, 0x33, &[42u64]);
            let _: Vec<u64> = c.recv(peer, 0x33);
        });
    }));
    let err = result.expect_err("drop plan must abort the exchange");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("dropped message"),
        "panic must identify the dropped message, got: {msg}"
    );
}
