//! Differential suite for the split-phase exchange path (PR 5): the
//! overlapped operator application — post ghost exchange, sweep interior
//! elements, complete, sweep surface elements — must be **bitwise
//! identical** to the blocking oracle at every rank count. Covers the
//! scalar `fem::DistOp`, the AMG preconditioner application, and the
//! full Stokes MINRES solve.

use fem::element::stiffness_matrix;
use fem::op::{DistOp, DofMap};
use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::spmd;
use stokes::solver::{StokesOptions, StokesSolver};

const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Adapted fixture tree shared by every test: uniform level 2, refined
/// above z = 0.6, fully balanced and repartitioned — hanging constraints
/// and an uneven interior/surface split on every rank.
fn fixture(c: &scomm::Comm) -> DistOctree<'_> {
    let mut t = DistOctree::new_uniform(c, 2);
    t.refine(|o| o.center_unit()[2] > 0.6);
    t.balance(BalanceKind::Full);
    t.partition();
    t
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|f| f.to_bits()).collect()
}

#[test]
fn dist_op_apply_overlapped_matches_blocking_bitwise() {
    for p in RANK_COUNTS {
        let out = spmd::run(p, |c| {
            let t = fixture(c);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mesh_ref = &m;
            let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
            let op = DistOp::new(
                &map,
                Box::new(move |e, out: &mut [f64]| {
                    let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                    for i in 0..8 {
                        for j in 0..8 {
                            out[i * 8 + j] = k[i][j];
                        }
                    }
                }),
                Some(&bc),
            );
            let x: Vec<f64> = (0..m.n_owned)
                .map(|d| {
                    let g = m.global_offset + d as u64;
                    ((g.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % 9973) as f64 / 9973.0 - 0.5
                })
                .collect();
            let mut y_over = vec![0.0; m.n_owned];
            let mut y_block = vec![0.0; m.n_owned];
            assert!(op.overlap(), "split-phase must be the default");
            op.apply_owned(&x, &mut y_over);
            op.set_overlap(false);
            op.apply_owned(&x, &mut y_block);
            (bits(&y_over), bits(&y_block))
        });
        for (r, (over, block)) in out.into_iter().enumerate() {
            assert_eq!(over, block, "DistOp paths diverge on rank {r} at P={p}");
        }
    }
}

#[test]
fn amg_preconditioner_unaffected_by_overlap_toggle() {
    // The AMG hierarchy is rank-local by design (block-Jacobi across
    // ranks): a V-cycle performs no communication, so the preconditioner
    // application must be bitwise independent of the exchange path used
    // by the surrounding operator.
    for p in RANK_COUNTS {
        let out = spmd::run(p, |c| {
            let t = fixture(c);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let visc = vec![1.0; m.elements.len()];
            let mut z = Vec::new();
            for overlap in [true, false] {
                let opts = StokesOptions {
                    overlap_exchange: overlap,
                    ..StokesOptions::default()
                };
                let solver = StokesSolver::new(&m, c, visc.clone(), bc.clone(), opts);
                let r: Vec<f64> = (0..solver.n_owned())
                    .map(|i| ((i as u64 + 1).wrapping_mul(2654435761) % 8009) as f64 / 8009.0)
                    .collect();
                let mut zi = vec![0.0; solver.n_owned()];
                solver.apply_preconditioner(&r, &mut zi);
                z.push(bits(&zi));
            }
            z
        });
        for (r, z) in out.into_iter().enumerate() {
            assert_eq!(z[0], z[1], "V-cycle differs on rank {r} at P={p}");
        }
    }
}

#[test]
fn minres_solve_overlapped_matches_blocking_bitwise() {
    for p in RANK_COUNTS {
        let run = |overlap: bool| -> Vec<(Vec<u64>, usize)> {
            spmd::run(p, move |c| {
                let t = fixture(c);
                let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let n = m.n_owned;
                let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
                let visc: Vec<f64> = m
                    .elements
                    .iter()
                    .map(|o| if o.center_unit()[2] > 0.5 { 50.0 } else { 1.0 })
                    .collect();
                let opts = StokesOptions {
                    overlap_exchange: overlap,
                    ..StokesOptions::default()
                };
                let mut solver = StokesSolver::new(&m, c, visc, bc, opts);
                let (rhs, mut x) =
                    solver.build_rhs(|q| [0.0, 0.0, (4.0 * q[0]).sin()], |_| [0.0; 3]);
                let info = solver.solve(&rhs, &mut x);
                assert!(info.converged, "P={}: {info:?}", c.size());
                (bits(&x), info.iterations)
            })
        };
        let over = run(true);
        let block = run(false);
        for (r, (o, b)) in over.iter().zip(&block).enumerate() {
            assert_eq!(o.1, b.1, "iteration counts diverge on rank {r} at P={p}");
            assert_eq!(o.0, b.0, "solutions diverge on rank {r} at P={p}");
        }
    }
}
