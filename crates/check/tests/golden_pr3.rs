//! Golden contracts for the zero-allocation matvec pipeline:
//!
//! * fused MINRES with **batched** reductions (one allreduce of the whole
//!   scalar batch) is bitwise identical to the same algorithm issuing one
//!   reduction per scalar — the batching is a pure communication
//!   optimization;
//! * the **packed interleaved** ghost exchange and reverse accumulation
//!   are bitwise identical to the strided per-component reference path.
//!
//! Both run under [`check::run_differential`] at P ∈ {1, 4} so the
//! contracts are exercised serially and with real ghost traffic.

use check::{run_differential, DiffOptions, Fingerprint};
use fem::element::stiffness_matrix;
use fem::op::{DistOp, DofMap};
use la::minres_fused;
use mesh::extract::{extract_mesh, ExchangeBuffers, Mesh};
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::Comm;

/// Seeded AMR fixture shared by both golden tests.
fn fixture(c: &Comm) -> (DistOctree<'_>, Mesh) {
    let mut t = DistOctree::new_uniform(c, 2);
    t.refine(|o| {
        let ctr = o.center_unit();
        (ctr[0] - 0.3).powi(2) + (ctr[1] - 0.4).powi(2) + (ctr[2] - 0.5).powi(2) < 0.1
    });
    t.balance(BalanceKind::Full);
    t.partition();
    let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
    (t, m)
}

fn fingerprint_of(t: &DistOctree, m: &Mesh) -> (Vec<(u32, u64, u8)>, Vec<u64>, Vec<(String, u64)>) {
    let leaves = t.local.iter().map(|o| (0u32, o.key(), o.level)).collect();
    let node_keys = m.dof_keys[..m.n_owned].to_vec();
    let counts = vec![
        ("elements".to_string(), t.global_count()),
        ("dofs".to_string(), m.n_global),
    ];
    (leaves, node_keys, counts)
}

#[test]
fn fused_minres_batched_reductions_are_bitwise_identical() {
    let opts = DiffOptions {
        series_rel_tol: 1e-6,
        series_len_slack: 1,
    };
    let result = run_differential(&[1, 4], &opts, |c| {
        let (t, m) = fixture(c);
        let (leaves, node_keys, counts) = fingerprint_of(&t, &m);
        let map = DofMap::new(&m, c, 1);
        let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
        let mref = &m;
        let src = move |e: usize, out: &mut [f64]| {
            let k = stiffness_matrix(mref.element_size(e), 1.0);
            for i in 0..8 {
                for j in 0..8 {
                    out[i * 8 + j] = k[i][j];
                }
            }
        };
        let op = DistOp::new(&map, Box::new(src), Some(&bc));
        let mut rhs: Vec<f64> = (0..m.n_owned)
            .map(|d| {
                let p = m.dof_coords(d);
                (3.0 * p[0]).sin() + p[1] * p[2]
            })
            .collect();
        for (d, &isbc) in bc.iter().enumerate() {
            if isbc {
                rhs[d] = 0.0;
            }
        }

        // Same fused algorithm, two reduction schedules: one batched
        // allreduce per iteration vs one allreduce per scalar.
        let run = |batched: bool| {
            let mut x = vec![0.0; m.n_owned];
            let mut series = Vec::new();
            let info = if batched {
                minres_fused(
                    &op,
                    None::<&la::Csr>,
                    &rhs,
                    &mut x,
                    1e-8,
                    500,
                    &map,
                    |_, r| series.push(r),
                )
            } else {
                minres_fused(
                    &op,
                    None::<&la::Csr>,
                    &rhs,
                    &mut x,
                    1e-8,
                    500,
                    |a: &[f64], b: &[f64]| map.dot(a, b),
                    |_, r| series.push(r),
                )
            };
            assert!(info.converged, "golden fixture must converge: {info:?}");
            (x, series)
        };
        let (x_batched, s_batched) = run(true);
        let (x_separate, s_separate) = run(false);
        assert_eq!(
            s_batched, s_separate,
            "batched reductions must leave the residual series bitwise unchanged"
        );
        assert_eq!(
            x_batched, x_separate,
            "batched reductions must leave the solution bitwise unchanged"
        );

        Fingerprint {
            leaves,
            node_keys,
            counts,
            series: vec![("minres.fused.residual".to_string(), s_batched)],
        }
    });
    result.unwrap_or_else(|errs| panic!("differential mismatches:\n{}", errs.join("\n")));
}

#[test]
fn packed_exchange_is_bitwise_identical_to_strided() {
    let result = run_differential(&[1, 4], &DiffOptions::default(), |c| {
        let (t, m) = fixture(c);
        let (leaves, node_keys, counts) = fingerprint_of(&t, &m);
        let map = DofMap::new(&m, c, 3);

        // Owned values keyed off the global dof id, so the expected ghost
        // values are rank-count independent.
        let mut owned = vec![0.0; map.n_owned()];
        for d in 0..m.n_owned {
            let gid = m.global_offset + d as u64;
            for k in 0..3 {
                owned[3 * d + k] = gid as f64 * 1e-3 + k as f64;
            }
        }
        let strided = map.to_local(&owned);
        let mut packed = Vec::new();
        let mut buf = ExchangeBuffers::new();
        map.to_local_into(&owned, &mut packed, &mut buf);
        assert_eq!(
            strided, packed,
            "packed interleaved exchange must fill ghosts bitwise identically"
        );

        // Reverse accumulation of a deterministic owned+ghost vector.
        let seed = |i: usize| ((i.wrapping_mul(2654435761)) % 1000) as f64 / 7.0 - 60.0;
        let mut w_strided: Vec<f64> = (0..map.n_local()).map(seed).collect();
        let mut w_packed = w_strided.clone();
        map.reverse_accumulate(&mut w_strided);
        map.reverse_accumulate_with(&mut w_packed, &mut buf);
        assert_eq!(
            w_strided, w_packed,
            "packed reverse accumulation must match the strided path bitwise"
        );

        Fingerprint {
            leaves,
            node_keys,
            counts,
            series: Vec::new(),
        }
    });
    result.unwrap_or_else(|errs| panic!("differential mismatches:\n{}", errs.join("\n")));
}
