//! The fuzzed adaptation regression suite.
//!
//! `smoke_*` run on fixed seeds in a few seconds (the CI `amr-fuzz-smoke`
//! job). The `#[ignore]`d `full_200_cycles` test is the acceptance run:
//! 200 seeded cycles spread over P ∈ {1, 2, 4, 8} (4 ranks × 5 seeds ×
//! 10 cycles). Replay a failure by plugging the `(seed, cycle, p)` from
//! the panic message into a one-off `FuzzConfig`.

use check::fuzz_amr::{fuzz_amr, FuzzConfig};

#[test]
fn smoke_fixed_seeds_small_ranks() {
    for p in [1usize, 2] {
        for seed in [1u64, 2] {
            fuzz_amr(
                p,
                &FuzzConfig {
                    seed,
                    cycles: 3,
                    level: 2,
                    max_level: 3,
                    ..Default::default()
                },
            );
        }
    }
}

#[test]
fn smoke_four_ranks_deeper() {
    fuzz_amr(
        4,
        &FuzzConfig {
            seed: 3,
            cycles: 3,
            level: 2,
            max_level: 4,
            ..Default::default()
        },
    );
}

/// Acceptance: 200 seeded cycles at P ∈ {1, 2, 4, 8}.
#[test]
#[ignore = "acceptance run (~minutes); invoked explicitly"]
fn full_200_cycles() {
    for p in [1usize, 2, 4, 8] {
        for seed in 0..5u64 {
            fuzz_amr(
                p,
                &FuzzConfig {
                    seed,
                    cycles: 10,
                    level: 2,
                    max_level: 4,
                    ..Default::default()
                },
            );
        }
    }
}
