//! The fuzzed adaptation regression suite.
//!
//! `smoke_*` run on fixed seeds in a few seconds (the CI `amr-fuzz-smoke`
//! job). The `#[ignore]`d `full_200_cycles` test is the acceptance run:
//! 200 seeded cycles spread over P ∈ {1, 2, 4, 8} (4 ranks × 5 seeds ×
//! 10 cycles). The `#[ignore]`d `vrank_smoke_*` tests are the high-P
//! tier (CI `vrank-fuzz-smoke` job, release, time-boxed): 25 cycles at
//! P ∈ {64, 256} *virtual* ranks on a ≤16-worker pool. Replay a failure
//! by plugging the `(seed, cycle, p)` from the panic message into a
//! one-off `FuzzConfig`.

use check::fuzz_amr::{fuzz_amr, fuzz_amr_virtual, FuzzConfig};

#[test]
fn smoke_fixed_seeds_small_ranks() {
    for p in [1usize, 2] {
        for seed in [1u64, 2] {
            fuzz_amr(
                p,
                &FuzzConfig {
                    seed,
                    cycles: 3,
                    level: 2,
                    max_level: 3,
                    ..Default::default()
                },
            );
        }
    }
}

#[test]
fn smoke_four_ranks_deeper() {
    fuzz_amr(
        4,
        &FuzzConfig {
            seed: 3,
            cycles: 3,
            level: 2,
            max_level: 4,
            ..Default::default()
        },
    );
}

#[test]
fn smoke_virtual_sixteen_ranks() {
    // Always-on virtual smoke: the whole property set (six invariant
    // checkers, balance oracle, conservation) at a P beyond what the
    // thread-mode smokes cover, on a 4-worker pool.
    fuzz_amr_virtual(
        16,
        4,
        &FuzzConfig {
            seed: 5,
            cycles: 2,
            level: 2,
            max_level: 3,
            ..Default::default()
        },
    );
}

/// High-P smoke tier, part 1: 25 cycles at P = 64 virtual ranks.
#[test]
#[ignore = "high-P smoke (CI vrank-fuzz-smoke job, release)"]
fn vrank_smoke_p64() {
    fuzz_amr_virtual(
        64,
        8,
        &FuzzConfig {
            seed: 11,
            cycles: 25,
            level: 3,
            max_level: 4,
            ..Default::default()
        },
    );
}

/// High-P smoke tier, part 2: 25 cycles at P = 256 virtual ranks on a
/// 16-worker pool — the acceptance bar "all six invariant checkers +
/// fuzz_amr pass at P = 256 on a ≤16-worker pool".
#[test]
#[ignore = "high-P smoke (CI vrank-fuzz-smoke job, release)"]
fn vrank_smoke_p256() {
    fuzz_amr_virtual(
        256,
        16,
        &FuzzConfig {
            seed: 12,
            cycles: 25,
            level: 3,
            max_level: 4,
            ..Default::default()
        },
    );
}

/// Acceptance: 200 seeded cycles at P ∈ {1, 2, 4, 8}.
#[test]
#[ignore = "acceptance run (~minutes); invoked explicitly"]
fn full_200_cycles() {
    for p in [1usize, 2, 4, 8] {
        for seed in 0..5u64 {
            fuzz_amr(
                p,
                &FuzzConfig {
                    seed,
                    cycles: 10,
                    level: 2,
                    max_level: 4,
                    ..Default::default()
                },
            );
        }
    }
}
