//! Schema validation of the obs exporters fed by a checker-instrumented
//! 4-rank run: the run manifest and the Chrome trace must parse and
//! carry the structure downstream consumers (bench harness, trace
//! viewers) rely on.

use mesh::extract::extract_mesh;
use obs::json::{self, Value};
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::spmd;

#[test]
fn manifest_and_trace_validate_from_checker_run() {
    let (_, profiles) = spmd::run_traced(4, |c, rec| {
        let mut t = DistOctree::new_uniform(c, 2);
        t.refine(|o| {
            let ctr = o.center_unit();
            ctr[0] + ctr[1] < 0.8
        });
        t.balance(BalanceKind::Full);
        t.partition();
        check::guard_tree(&t, BalanceKind::Full, Some(rec));
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        check::guard_mesh(&t, &m, Some(rec));
    });
    assert_eq!(profiles.len(), 4);

    let dir = std::env::temp_dir().join(format!("check-obs-{}", std::process::id()));
    let session = obs::ObsSession::with_dir("check_run", &dir);
    let written = session
        .write(
            &profiles,
            Value::object([
                ("nranks", Value::from(4u64)),
                ("checkers", Value::from(5u64)),
            ]),
        )
        .expect("session write");

    // ---- run manifest -------------------------------------------------
    let text = std::fs::read_to_string(&written.manifest).unwrap();
    let m = json::parse(&text).expect("manifest is valid JSON");
    assert_eq!(m.get("schema").and_then(|v| v.as_str()), Some("obs.run.v1"));
    assert_eq!(m.get("name").and_then(|v| v.as_str()), Some("check_run"));
    assert_eq!(m.get("nranks").and_then(|v| v.as_u64()), Some(4));
    assert!(m.get("merged").is_some(), "manifest carries merged summary");
    let per_rank = m
        .get("per_rank")
        .and_then(|v| v.as_array())
        .expect("per_rank array");
    assert_eq!(per_rank.len(), 4);
    for (r, pr) in per_rank.iter().enumerate() {
        assert_eq!(pr.get("rank").and_then(|v| v.as_u64()), Some(r as u64));
        assert!(pr.get("summary").is_some());
    }
    // The checker spans must appear in the merged phase summary.
    let phases = m.get("merged").unwrap().get("phases").expect("phases");
    for span in ["check:tree", "check:mesh"] {
        let p = phases
            .get(span)
            .unwrap_or_else(|| panic!("merged phases must include '{span}'"));
        // One span per rank per guard call.
        assert_eq!(p.get("count").and_then(|v| v.as_u64()), Some(4), "{span}");
    }
    // The extra payload round-trips.
    let extra = m.get("extra").expect("extra");
    assert_eq!(extra.get("nranks").and_then(|v| v.as_u64()), Some(4));

    // ---- Chrome trace -------------------------------------------------
    let text = std::fs::read_to_string(&written.trace).unwrap();
    let t = json::parse(&text).expect("trace is valid JSON");
    let events = t
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // One thread_name metadata record per rank.
    let mut meta_tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
        .collect();
    meta_tids.sort_unstable();
    assert_eq!(meta_tids, vec![0, 1, 2, 3]);
    // Checker spans are complete events in the "check" category, with a
    // track per rank.
    let mut check_tids: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("cat").and_then(|c| c.as_str()) == Some("check")
        })
        .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
        .collect();
    check_tids.sort_unstable();
    check_tids.dedup();
    assert_eq!(check_tids, vec![0, 1, 2, 3], "check spans on every rank");
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) == Some("X") {
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
