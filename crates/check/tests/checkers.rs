//! One clean-pass and one violation-detection test per invariant
//! checker. Corruptions are injected by mutating the public fields of
//! the structures after construction — the checkers must catch every
//! one of them, on the rank(s) that can see them, without hanging the
//! other ranks (all checkers keep a data-independent collective
//! schedule, so these tests also prove "diagnose, don't deadlock").

use forest::{Connectivity, Forest};
use mesh::extract::{extract_mesh, NodeResolution};
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use octree::{Octant, MAX_LEVEL, ROOT_LEN};
use scomm::{spmd, Comm};
use std::sync::Arc;

/// A deterministic adapted tree: uniform level 2, graded refinement,
/// balanced, repartitioned. The shape is rank-count independent.
fn adapted_tree(c: &Comm) -> DistOctree<'_> {
    let mut t = DistOctree::new_uniform(c, 2);
    t.refine(|o| {
        let ctr = o.center_unit();
        ctr[0] + ctr[1] < 0.8
    });
    t.balance(BalanceKind::Full);
    t.partition();
    t
}

fn total_violations(c: &Comm, v: &[check::Violation]) -> u64 {
    c.allreduce_sum(&[v.len() as u64])[0]
}

// ---------------------------------------------------------------- morton

#[test]
fn morton_order_clean() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let v = check::octree_checks::morton_order(&t);
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn morton_order_detects_local_disorder() {
    spmd::run(2, |c| {
        let mut t = DistOctree::new_uniform(c, 2);
        if c.rank() == 0 {
            t.local.swap(0, 1);
        }
        let v = check::octree_checks::morton_order(&t);
        assert!(
            total_violations(c, &v) >= 1,
            "swapped leaves must be caught"
        );
        if c.rank() == 0 {
            assert!(v.iter().all(|x| x.checker == "morton_order"));
            assert!(!v.is_empty(), "the disorder is visible from rank 0");
        }
    });
}

#[test]
fn morton_order_detects_cross_rank_overlap() {
    spmd::run(2, |c| {
        // Each rank holds the *other* rank's segment of a uniform
        // level-2 tree: locally sorted, globally inverted.
        let n = 64u64;
        let r = (1 - c.rank()) as u64;
        let local: Vec<Octant> = (n * r / 2..n * (r + 1) / 2)
            .map(|i| Octant::from_uniform_index(2, i))
            .collect();
        let t = DistOctree::from_local(c, local);
        let v = check::octree_checks::morton_order(&t);
        assert!(
            total_violations(c, &v) >= 1,
            "globally inverted segments must be caught"
        );
    });
}

// --------------------------------------------------------------- balance

#[test]
fn balance21_clean() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let v = check::octree_checks::balance21(&t, BalanceKind::Full);
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn balance21_detects_unbalanced_corner() {
    spmd::run(2, |c| {
        // Complete but unbalanced: refine the origin child of a level-1
        // tree, then its *far-corner* child, with no balancing pass.
        // The level-3 leaves sit on the x = ROOT_LEN/2 plane, directly
        // touching untouched level-1 siblings — a jump of 2.
        let local = if c.rank() == 0 {
            let mut t = octree::ops::new_tree(1);
            octree::ops::refine(&mut t, |o| o.level == 1 && o.x == 0 && o.y == 0 && o.z == 0);
            octree::ops::refine(&mut t, |o| {
                o.level == 2
                    && o.x + o.len() == ROOT_LEN / 2
                    && o.y + o.len() == ROOT_LEN / 2
                    && o.z + o.len() == ROOT_LEN / 2
            });
            t
        } else {
            Vec::new()
        };
        let t = DistOctree::from_local(c, local);
        let v = check::octree_checks::balance21(&t, BalanceKind::Full);
        assert!(
            total_violations(c, &v) >= 1,
            "level jump of 2 must be caught"
        );
    });
}

// ------------------------------------------------------------- partition

#[test]
fn partition_clean() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let v = check::octree_checks::partition(&t);
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn partition_detects_missing_leaf() {
    spmd::run(2, |c| {
        let mut t = DistOctree::new_uniform(c, 2);
        if c.rank() == 0 {
            t.local.pop(); // hole in the domain; counts metadata stale
        }
        let v = check::octree_checks::partition(&t);
        assert!(
            total_violations(c, &v) >= 1,
            "dropped leaf must show up as count mismatch and volume gap"
        );
    });
}

// ------------------------------------------------------- ghost symmetry

#[test]
fn ghost_symmetry_clean() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let g = t.ghost_layer();
        let v = check::octree_checks::ghost_symmetry(&t, &g);
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn ghost_symmetry_detects_missing_and_bogus_ghosts() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let mut g = t.ghost_layer();
        if c.rank() == 0 {
            assert!(!g.is_empty(), "rank 0 must have ghosts in this fixture");
            // Missing: drop a real ghost — its owner must notice the
            // absent mirror.
            g.remove(0);
            // Bogus: claim a ghost of rank 1 that is not a leaf there
            // (the adapted tree never reaches MAX_LEVEL).
            g.push((1, Octant::new(0, 0, 0, MAX_LEVEL)));
        }
        let v = check::octree_checks::ghost_symmetry(&t, &g);
        let total = total_violations(c, &v);
        assert!(
            total >= 2,
            "one missing mirror and one bogus claim expected, got {total}"
        );
    });
}

// -------------------------------------------------------------- forest

#[test]
fn forest_morton_order_and_balance_clean() {
    let conn = Arc::new(Connectivity::brick(2, 1, 1));
    spmd::run(4, |c| {
        let mut f = Forest::new_uniform(c, conn.clone(), 1);
        f.refine(|l| l.tree == 0 && l.oct.center_unit()[0] > 0.5);
        f.balance(BalanceKind::Full);
        f.partition();
        let mut v = check::forest_checks::morton_order(&f);
        v.extend(check::forest_checks::balance21(&f, BalanceKind::Full));
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn forest_morton_order_detects_disorder() {
    let conn = Arc::new(Connectivity::brick(2, 1, 1));
    spmd::run(2, |c| {
        let mut f = Forest::new_uniform(c, conn.clone(), 1);
        if c.rank() == 0 && f.local.len() >= 2 {
            f.local.swap(0, 1);
        }
        let v = check::forest_checks::morton_order(&f);
        assert!(total_violations(c, &v) >= 1, "swapped forest leaves");
    });
}

#[test]
fn forest_balance21_detects_inter_tree_jump() {
    let conn = Arc::new(Connectivity::brick(2, 1, 1));
    spmd::run(2, |c| {
        // Refine tree 0's face touching tree 1 down two levels without
        // balancing: the inter-tree face transform must expose the jump.
        let mut f = Forest::new_uniform(c, conn.clone(), 0);
        for _ in 0..2 {
            f.refine(|l| l.tree == 0 && l.oct.x + l.oct.len() == ROOT_LEN);
        }
        let v = check::forest_checks::balance21(&f, BalanceKind::Full);
        assert!(
            total_violations(c, &v) >= 1,
            "level jump across the tree face must be caught"
        );
    });
}

// ----------------------------------------------------------- constraints

#[test]
fn constraints_clean() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let v = check::mesh_checks::constraints(&t, &m);
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn constraints_detects_broken_row_sum() {
    spmd::run(2, |c| {
        let t = adapted_tree(c);
        let mut m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let mut corrupted = 0u64;
        for res in &mut m.node_table {
            if let NodeResolution::Constrained(terms) = res {
                terms[0].1 += 0.25; // row sum now 1.25
                corrupted = 1;
                break;
            }
        }
        assert!(
            c.allreduce_sum(&[corrupted])[0] >= 1,
            "fixture must have hanging nodes"
        );
        let v = check::mesh_checks::constraints(&t, &m);
        assert!(
            total_violations(c, &v) >= 1,
            "weights summing to 1.25 must be caught"
        );
    });
}

#[test]
fn constraints_detects_cross_rank_disagreement() {
    spmd::run(2, |c| {
        let t = adapted_tree(c);
        let mut m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        // Find the smallest node key present on both ranks, then make
        // the higher rank resolve it differently. Each rank's view
        // stays locally well-formed — only the cross-rank comparison
        // can catch this.
        let lens = c.allgatherv(&[m.node_keys.len() as u64]);
        let all = c.allgatherv(&m.node_keys);
        let (r0, r1) = all.split_at(lens[0] as usize);
        let shared = {
            let mut s: Vec<u64> = r0.iter().filter(|k| r1.contains(k)).copied().collect();
            s.sort_unstable();
            s
        };
        let key = *shared.first().expect("interface nodes must exist at P=2");
        if c.rank() == 1 {
            let i = m.node_keys.iter().position(|&k| k == key).unwrap();
            let repl = match &m.node_table[i] {
                NodeResolution::Dof(d) => (*d + 1) % m.n_owned.max(1),
                NodeResolution::Constrained(_) => 0,
            };
            m.node_table[i] = NodeResolution::Dof(repl);
        }
        let v = check::mesh_checks::constraints(&t, &m);
        assert!(
            total_violations(c, &v) >= 1,
            "ranks resolving one node differently must be caught"
        );
    });
}

// --------------------------------------------------------- dof numbering

#[test]
fn dof_numbering_clean() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let v = check::mesh_checks::dof_numbering(&t, &m);
        assert_eq!(total_violations(c, &v), 0, "{v:?}");
    });
}

#[test]
fn dof_numbering_detects_ghost_gid_in_own_range() {
    spmd::run(2, |c| {
        let t = adapted_tree(c);
        let mut m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let has = c.allgatherv(&[(m.n_ghost > 0) as u64]);
        let corrupt = has
            .iter()
            .rposition(|&h| h == 1)
            .expect("some rank has ghosts");
        if c.rank() == corrupt {
            m.ghost_gids[0] = m.global_offset; // my own dof, claimed as ghost
        }
        let v = check::mesh_checks::dof_numbering(&t, &m);
        assert!(
            total_violations(c, &v) >= 1,
            "ghost gid inside the owner's own range must be caught"
        );
    });
}

#[test]
fn dof_numbering_detects_exchange_asymmetry() {
    spmd::run(2, |c| {
        let t = adapted_tree(c);
        let mut m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let sends = c.allgatherv(&[m.exchange.send_idx.iter().any(|s| !s.is_empty()) as u64]);
        let corrupt = sends.iter().position(|&s| s == 1).expect("someone sends");
        if c.rank() == corrupt {
            let idx = m
                .exchange
                .send_idx
                .iter()
                .position(|s| !s.is_empty())
                .unwrap();
            m.exchange.send_idx[idx].pop(); // peer still expects this value
        }
        let v = check::mesh_checks::dof_numbering(&t, &m);
        assert!(
            total_violations(c, &v) >= 1,
            "send/recv plan asymmetry must be caught"
        );
    });
}

// ---------------------------------------------------------- stage guards

#[test]
fn guards_pass_on_clean_pipeline() {
    spmd::run(4, |c| {
        let t = adapted_tree(c);
        check::guard_tree(&t, BalanceKind::Full, None);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        check::guard_mesh(&t, &m, None);
    });
}

#[test]
#[should_panic(expected = "invariant violation")]
fn guard_tree_panics_on_corruption() {
    spmd::run(2, |c| {
        let mut t = DistOctree::new_uniform(c, 2);
        if c.rank() == 0 {
            t.local.swap(0, 1);
        }
        check::guard_tree(&t, BalanceKind::Full, None);
    });
}
