//! Differential suite for virtual-rank execution (PR 6): running the
//! same program on `spmd::run_virtual` must be **bitwise identical** to
//! thread mode at every rank count — the scheduler may only change *when*
//! ranks run, never *what* they compute. Pins the AMR pipeline state
//! (leaf and node-key sets), the overlapped `fem::DistOp` application and
//! the full Stokes MINRES solve at P ∈ {1, 4, 8}.

use fem::element::stiffness_matrix;
use fem::op::{DistOp, DofMap};
use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::spmd;
use stokes::solver::{StokesOptions, StokesSolver};

const RANK_COUNTS: [usize; 3] = [1, 4, 8];

/// Workers deliberately smaller than the largest P so multiplexing (not
/// just 1:1 slot assignment) is exercised.
const WORKERS: usize = 3;

/// Adapted fixture tree shared by every test: uniform level 2, refined
/// above z = 0.6, fully balanced and repartitioned — hanging constraints
/// and an uneven interior/surface split on every rank.
fn fixture(c: &scomm::Comm) -> DistOctree<'_> {
    let mut t = DistOctree::new_uniform(c, 2);
    t.refine(|o| o.center_unit()[2] > 0.6);
    t.balance(BalanceKind::Full);
    t.partition();
    t
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|f| f.to_bits()).collect()
}

#[test]
fn amr_leaf_and_node_key_sets_match_thread_mode() {
    for p in RANK_COUNTS {
        let body = |c: &scomm::Comm| {
            let t = fixture(c);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let leaves: Vec<u64> = t.local.iter().map(|o| o.key()).collect();
            let ghosts: Vec<(usize, u64)> = t
                .ghost_layer()
                .iter()
                .map(|(owner, o)| (*owner, o.key()))
                .collect();
            (leaves, ghosts, m.node_keys.clone(), m.global_offset)
        };
        let thread = spmd::run(p, body);
        let virt = spmd::run_virtual(p, WORKERS, body);
        assert_eq!(virt, thread, "AMR state diverges at P={p}");
    }
}

#[test]
fn dist_op_apply_matches_thread_mode_bitwise() {
    for p in RANK_COUNTS {
        let body = |c: &scomm::Comm| {
            let t = fixture(c);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mesh_ref = &m;
            let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
            let op = DistOp::new(
                &map,
                Box::new(move |e, out: &mut [f64]| {
                    let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                    for i in 0..8 {
                        for j in 0..8 {
                            out[i * 8 + j] = k[i][j];
                        }
                    }
                }),
                Some(&bc),
            );
            let x: Vec<f64> = (0..m.n_owned)
                .map(|d| {
                    let g = m.global_offset + d as u64;
                    ((g.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % 9973) as f64 / 9973.0 - 0.5
                })
                .collect();
            let mut y = vec![0.0; m.n_owned];
            op.apply_owned(&x, &mut y);
            bits(&y)
        };
        let thread = spmd::run(p, body);
        let virt = spmd::run_virtual(p, WORKERS, body);
        assert_eq!(virt, thread, "DistOp apply diverges at P={p}");
    }
}

#[test]
fn minres_solve_matches_thread_mode_bitwise() {
    for p in RANK_COUNTS {
        let body = |c: &scomm::Comm| {
            let t = fixture(c);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let visc: Vec<f64> = m
                .elements
                .iter()
                .map(|o| if o.center_unit()[2] > 0.5 { 50.0 } else { 1.0 })
                .collect();
            let mut solver = StokesSolver::new(&m, c, visc, bc, StokesOptions::default());
            let (rhs, mut x) = solver.build_rhs(|q| [0.0, 0.0, (4.0 * q[0]).sin()], |_| [0.0; 3]);
            let info = solver.solve(&rhs, &mut x);
            assert!(info.converged, "P={}: {info:?}", c.size());
            (bits(&x), info.iterations)
        };
        let thread = spmd::run(p, body);
        let virt = spmd::run_virtual(p, WORKERS, body);
        for (r, (v, t)) in virt.iter().zip(&thread).enumerate() {
            assert_eq!(v.1, t.1, "iteration counts diverge on rank {r} at P={p}");
            assert_eq!(v.0, t.0, "solutions diverge on rank {r} at P={p}");
        }
    }
}
