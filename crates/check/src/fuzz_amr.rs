//! Seeded property-based fuzzer for the AMR adaptation pipeline.
//!
//! Each fuzz run drives randomized `mark → refine → coarsen → balance →
//! partition → transfer` cycles on a distributed octree and asserts,
//! every cycle:
//!
//! * all six PR 2 invariant checkers are clean on the post-partition
//!   state ([`crate::octree_checks`]::{morton_order, partition,
//!   balance21, ghost_symmetry} and [`crate::mesh_checks`]::{constraints,
//!   dof_numbering});
//! * the distributed fast balance produces a global leaf set **bitwise
//!   equal** to the serial naive oracle
//!   ([`octree::balance::balance_local_naive_kind`]) applied to the
//!   gathered pre-balance union;
//! * field transfer conserves: the interpolated field reproduces a
//!   linear function to 1e-12 through coarsen/refine/balance, the global
//!   corner-data sum is conserved across the repartition to 1e-12, and
//!   the unpacked post-partition nodal field is again exact to 1e-12.
//!
//! Randomness is a pure function of `(seed, cycle, octant)` — never of
//! the rank or the partition — so a failure replays exactly from the
//! `(seed, cycle, p)` triple carried in every panic message (the seed
//! replay protocol of DESIGN.md §11).

use mesh::extract::{extract_mesh, node_coords, Mesh, NodeResolution};
use mesh::interp::interpolate_node_field;
use octree::balance::{balance_local_naive_kind, BalanceKind};
use octree::parallel::{transfer_fields, DistOctree};
use octree::Octant;
use scomm::{spmd, Comm};

use crate::{mesh_checks, octree_checks, Violation};

/// Configuration of one fuzz run (one communicator size, many cycles).
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base seed; all per-cycle randomness derives from it.
    pub seed: u64,
    /// Number of adaptation cycles to drive.
    pub cycles: usize,
    /// Initial uniform refinement level.
    pub level: u8,
    /// Leaves at this level are never refined (bounds the problem size).
    pub max_level: u8,
    /// Balance neighborhood fuzzed against the naive oracle.
    pub kind: BalanceKind,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cycles: 10,
            level: 2,
            max_level: 4,
            kind: BalanceKind::Full,
        }
    }
}

/// splitmix64 finalizer: the per-octant decision hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic percentage in `0..100` for an octant's decision: a pure
/// function of `(seed, cycle, salt, octant)`, independent of rank and
/// partition so every rank count replays the same tree evolution per
/// locally-complete family.
fn roll(seed: u64, cycle: u64, salt: u64, o: &Octant) -> u64 {
    mix(seed ^ mix(cycle ^ mix(salt ^ mix(o.key() ^ ((o.level as u64) << 56))))) % 100
}

/// The linear field threaded through every transfer; trilinear
/// interpolation and corner transfer must reproduce it exactly.
fn field(q: [f64; 3]) -> f64 {
    0.75 * q[0] - 1.25 * q[1] + 2.0 * q[2] + 0.5
}

fn fail(ctx: &str, what: &str) -> ! {
    panic!("fuzz_amr[{ctx}] {what}");
}

fn assert_clean_with_ctx(comm: &Comm, ctx: &str, violations: &[Violation]) {
    let total = comm.allreduce_sum(&[violations.len() as u64])[0];
    if total > 0 {
        let mut msg = format!(
            "{total} invariant violation(s) globally ({} on this rank)",
            violations.len()
        );
        for v in violations {
            msg.push_str("\n  ");
            msg.push_str(&v.to_string());
        }
        fail(ctx, &msg);
    }
}

/// Unpack element-corner data onto the owned dofs of `mesh` (the same
/// first-match rule the rhea pipeline uses).
fn unpack_corners(mesh: &Mesh, data: &[f64]) -> Vec<f64> {
    let mut f = vec![0.0; mesh.n_owned];
    let mut filled = vec![false; mesh.n_owned];
    for e in 0..mesh.elements.len() {
        for (c, &nref) in mesh.elem_nodes[e].iter().enumerate() {
            if let NodeResolution::Dof(d) = mesh.node_table[nref as usize] {
                if d < mesh.n_owned && !filled[d] {
                    let _ = node_coords(mesh.node_keys[nref as usize]);
                    f[d] = data[8 * e + c];
                    filled[d] = true;
                }
            }
        }
    }
    assert!(filled.iter().all(|&x| x), "owned dof not covered by unpack");
    f
}

/// Drive `cfg.cycles` adaptation cycles on `comm`, asserting the full
/// property set each cycle. Returns the final global element count.
/// Collective over `comm`.
pub fn run_cycles(comm: &Comm, cfg: &FuzzConfig) -> u64 {
    let domain = [1.0, 1.0, 1.0];
    let mut tree = DistOctree::new_uniform(comm, cfg.level);
    let mut mesh = extract_mesh(&tree, domain);
    let mut vals: Vec<f64> = (0..mesh.n_owned)
        .map(|d| field(mesh.dof_coords(d)))
        .collect();

    for cycle in 0..cfg.cycles as u64 {
        let ctx = format!("seed={} cycle={cycle} p={}", cfg.seed, comm.size());

        // Mark + CoarsenTree + RefineTree, hash-driven.
        tree.coarsen(|o| o.level > 1 && roll(cfg.seed, cycle, 0xC0A5, o) < 35);
        tree.refine(|o| o.level < cfg.max_level && roll(cfg.seed, cycle, 0x5EF1, o) < 25);

        // BalanceTree: the distributed fast path must match the serial
        // naive oracle on the gathered union, bitwise.
        let pre: Vec<Octant> = comm.allgatherv(&tree.local);
        let mut expected = pre;
        balance_local_naive_kind(&mut expected, cfg.kind);
        tree.balance(cfg.kind);
        let post: Vec<Octant> = comm.allgatherv(&tree.local);
        if post != expected {
            fail(
                &ctx,
                &format!(
                    "balance mismatch vs naive oracle: {} leaves vs {} expected",
                    post.len(),
                    expected.len()
                ),
            );
        }

        // InterpolateFields onto the adapted (pre-partition) mesh: the
        // linear field must come through exactly.
        let mid_mesh = extract_mesh(&tree, domain);
        let mut fl = vec![0.0; mesh.n_local()];
        fl[..mesh.n_owned].copy_from_slice(&vals);
        mesh.exchange.exchange(comm, &mut fl, mesh.n_owned);
        let mut mid_vals = interpolate_node_field(&mesh, &fl, &mid_mesh);
        for d in 0..mid_mesh.n_owned {
            let expect = field(mid_mesh.dof_coords(d));
            if (mid_vals[d] - expect).abs() > 1e-12 {
                fail(
                    &ctx,
                    &format!(
                        "interpolation lost the linear field at dof {d}: {} vs {expect}",
                        mid_vals[d]
                    ),
                );
            }
        }

        // Pack corner data and repartition; the global corner sum is the
        // conservation functional.
        mid_mesh
            .exchange
            .exchange(comm, &mut mid_vals, mid_mesh.n_owned);
        let mut corner = Vec::with_capacity(8 * mid_mesh.elements.len());
        for e in 0..mid_mesh.elements.len() {
            corner.extend_from_slice(&mid_mesh.corner_values(e, &mid_vals));
        }
        let s0 = comm.allreduce_sum(&[corner.iter().sum::<f64>()])[0];
        let plan = tree.partition();
        let moved = transfer_fields(comm, &plan, &corner, 8);
        let s1 = comm.allreduce_sum(&[moved.iter().sum::<f64>()])[0];
        if (s0 - s1).abs() > 1e-12 * s0.abs().max(1.0) {
            fail(
                &ctx,
                &format!("transfer broke conservation: sum {s0} -> {s1}"),
            );
        }

        // All six PR 2 invariants on the post-partition state.
        let new_mesh = extract_mesh(&tree, domain);
        let mut v = octree_checks::morton_order(&tree);
        v.extend(octree_checks::partition(&tree));
        v.extend(octree_checks::balance21(&tree, cfg.kind));
        let ghosts = tree.ghost_layer();
        v.extend(octree_checks::ghost_symmetry(&tree, &ghosts));
        v.extend(mesh_checks::constraints(&tree, &new_mesh));
        v.extend(mesh_checks::dof_numbering(&tree, &new_mesh));
        assert_clean_with_ctx(comm, &ctx, &v);

        // Carry the field across to the next cycle through the unpacked
        // corner data; end-to-end it must still be the linear field.
        let new_vals = unpack_corners(&new_mesh, &moved);
        for d in 0..new_mesh.n_owned {
            let expect = field(new_mesh.dof_coords(d));
            if (new_vals[d] - expect).abs() > 1e-12 {
                fail(
                    &ctx,
                    &format!(
                        "post-transfer field wrong at dof {d}: {} vs {expect}",
                        new_vals[d]
                    ),
                );
            }
        }
        mesh = new_mesh;
        vals = new_vals;
    }
    tree.global_count()
}

/// Run [`run_cycles`] on a fresh `p`-rank simulated communicator.
pub fn fuzz_amr(p: usize, cfg: &FuzzConfig) {
    let cfg = *cfg;
    spmd::run(p, move |c| run_cycles(c, &cfg));
}

/// [`fuzz_amr`] on *virtual* ranks: `p` ranks multiplexed over a
/// `workers`-slot pool (see `scomm::spmd::run_virtual`). The high-P smoke
/// tier — the full property set at P ∈ {64, 256} — runs through here.
pub fn fuzz_amr_virtual(p: usize, workers: usize, cfg: &FuzzConfig) {
    let cfg = *cfg;
    spmd::run_virtual(p, workers, move |c| run_cycles(c, &cfg));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_rank_independent() {
        let o = Octant::root().child(3).child(5);
        let a = roll(7, 2, 0xC0A5, &o);
        let b = roll(7, 2, 0xC0A5, &o);
        assert_eq!(a, b);
        assert!(a < 100);
        // Different salts decorrelate refine and coarsen decisions.
        assert_ne!(roll(7, 2, 0xC0A5, &o), roll(7, 2, 0x5EF1, &o));
    }

    #[test]
    fn one_quick_cycle_at_two_ranks() {
        fuzz_amr(
            2,
            &FuzzConfig {
                seed: 42,
                cycles: 1,
                level: 1,
                max_level: 3,
                ..Default::default()
            },
        );
    }
}
