//! Invariant checkers for the extracted distributed FEM mesh:
//! hanging-node constraints and the global dof numbering.
//!
//! Same contract as [`crate::octree_checks`]: collective, read-only,
//! data-independent collective schedule.

use std::collections::HashMap;

use mesh::extract::{node_coords, Mesh, NodeResolution};
use octree::parallel::DistOctree;
use octree::{Octant, MAX_LEVEL, ROOT_LEN};

use crate::{violation, Violation};

/// Owner rank of the node at `key`: the owner of the Morton-smallest
/// finest-level cell incident to the node — the same arbitration rule
/// `extract_mesh` uses, recomputed here from the partition markers.
fn node_owner(tree: &DistOctree, key: u64) -> usize {
    let (px, py, pz) = node_coords(key);
    let lim = ROOT_LEN as i64;
    let mut smallest: Option<Octant> = None;
    for dz in 0..2i64 {
        for dy in 0..2i64 {
            for dx in 0..2i64 {
                let (x, y, z) = (px as i64 - dx, py as i64 - dy, pz as i64 - dz);
                if x >= 0 && y >= 0 && z >= 0 && x < lim && y < lim && z < lim {
                    let probe = Octant::new(x as u32, y as u32, z as u32, MAX_LEVEL);
                    smallest = match smallest {
                        Some(cur) if cur <= probe => Some(cur),
                        _ => Some(probe),
                    };
                }
            }
        }
    }
    tree.owner_of(&smallest.expect("node has at least one incident cell"))
}

/// Map a local dof index to its global id.
fn gid_of(mesh: &Mesh, dof: usize) -> u64 {
    if dof < mesh.n_owned {
        mesh.global_offset + dof as u64
    } else {
        mesh.ghost_gids[dof - mesh.n_owned]
    }
}

/// Wire record of one constraint term, shipped to the node's arbiter.
#[derive(Clone, Copy)]
#[repr(C)]
struct ResWire {
    key: u64,
    gid: u64,
    weight: f64,
}
// SAFETY: repr(C), all fields plain 8-byte scalars, no padding.
unsafe impl scomm::Pod for ResWire {}

/// Hanging-node constraint row-sum and cross-rank consistency.
/// Cost: O(local) for the structural checks + one alltoallv of the
/// interface resolutions (O(shared nodes)).
///
/// Structurally, every constrained node must combine 2–8 masters with
/// positive weights summing to 1 (a face node has 4, an edge node 2;
/// chain closure can merge more), and every dof reference must be in
/// range. For consistency, each rank ships its resolution of every
/// node — in global-id space — to the node's arbiter (its owner by the
/// smallest-incident-cell rule); the arbiter verifies that all ranks
/// seeing a node resolved it to the identical dof/weight combination.
pub fn constraints(tree: &DistOctree, mesh: &Mesh) -> Vec<Violation> {
    const NAME: &str = "constraints";
    let comm = tree.comm();
    let me = comm.rank();
    let p = comm.size();
    let n_local = mesh.n_owned + mesh.n_ghost;
    let mut out = Vec::new();

    // ---- Local structural checks --------------------------------------
    for (i, res) in mesh.node_table.iter().enumerate() {
        let key = mesh.node_keys[i];
        match res {
            NodeResolution::Dof(d) => {
                if *d >= n_local {
                    out.push(violation(
                        NAME,
                        me,
                        format!("node {key:#x}: dof index {d} out of range (n_local {n_local})"),
                    ));
                }
            }
            NodeResolution::Constrained(terms) => {
                if terms.len() < 2 || terms.len() > 8 {
                    out.push(violation(
                        NAME,
                        me,
                        format!(
                            "node {key:#x}: {} constraint terms (expected 2..=8)",
                            terms.len()
                        ),
                    ));
                }
                let mut sum = 0.0;
                for &(d, w) in terms {
                    if d >= n_local {
                        out.push(violation(
                            NAME,
                            me,
                            format!("node {key:#x}: master dof {d} out of range"),
                        ));
                    }
                    if !(w > 0.0 && w <= 1.0) {
                        out.push(violation(
                            NAME,
                            me,
                            format!("node {key:#x}: constraint weight {w} outside (0, 1]"),
                        ));
                    }
                    sum += w;
                }
                if (sum - 1.0).abs() > 1e-9 {
                    out.push(violation(
                        NAME,
                        me,
                        format!("node {key:#x}: constraint row sum {sum} != 1"),
                    ));
                }
            }
        }
    }

    // ---- Cross-rank consistency ---------------------------------------
    // Resolution of each node in gid space, sorted by gid.
    let resolve = |res: &NodeResolution| -> Vec<(u64, f64)> {
        let mut terms: Vec<(u64, f64)> = match res {
            NodeResolution::Dof(d) if *d < n_local => vec![(gid_of(mesh, *d), 1.0)],
            NodeResolution::Dof(_) => Vec::new(), // out of range, reported above
            NodeResolution::Constrained(ts) => ts
                .iter()
                .filter(|&&(d, _)| d < n_local)
                .map(|&(d, w)| (gid_of(mesh, d), w))
                .collect(),
        };
        terms.sort_by_key(|t| t.0);
        terms
    };
    let mut outgoing: Vec<Vec<ResWire>> = vec![Vec::new(); p];
    for (i, res) in mesh.node_table.iter().enumerate() {
        let key = mesh.node_keys[i];
        let arbiter = node_owner(tree, key);
        for (gid, weight) in resolve(res) {
            outgoing[arbiter].push(ResWire { key, gid, weight });
        }
    }
    let incoming = comm.alltoallv(&outgoing);
    // Group each source's records by node key (keys are unique per rank).
    let mut by_key: HashMap<u64, Vec<(usize, Vec<(u64, f64)>)>> = HashMap::new();
    for (src, records) in incoming.iter().enumerate() {
        let mut per_key: HashMap<u64, Vec<(u64, f64)>> = HashMap::new();
        for r in records {
            per_key.entry(r.key).or_default().push((r.gid, r.weight));
        }
        for (key, terms) in per_key {
            by_key.entry(key).or_default().push((src, terms));
        }
    }
    for (key, mut sources) in by_key {
        sources.sort_by_key(|s| s.0);
        let (r0, ref base) = sources[0];
        for (r1, terms) in &sources[1..] {
            let same = base.len() == terms.len()
                && base
                    .iter()
                    .zip(terms)
                    .all(|(a, b)| a.0 == b.0 && (a.1 - b.1).abs() < 1e-9);
            if !same {
                out.push(violation(
                    NAME,
                    me,
                    format!(
                        "node {key:#x}: ranks {r0} and {r1} disagree on its \
                         resolution ({base:?} vs {terms:?})"
                    ),
                ));
            }
        }
    }
    out
}

/// Global dof numbering and exchange-pattern symmetry.
/// Cost: O(local) + three O(P) collectives + one count alltoallv.
///
/// Verifies that the owned count metadata matches an independent
/// exscan/allreduce, that owned node keys are sorted, deduplicated, and
/// owned by this rank under the arbitration rule, that ghost gids are
/// sorted, foreign, in range, and grouped consistently with
/// `recv_counts`, and that the exchange pattern is symmetric: what rank
/// i expects to receive from rank j is exactly what j plans to send.
pub fn dof_numbering(tree: &DistOctree, mesh: &Mesh) -> Vec<Violation> {
    const NAME: &str = "dof_numbering";
    let comm = tree.comm();
    let me = comm.rank();
    let p = comm.size();
    let mut out = Vec::new();

    let n_owned = mesh.n_owned as u64;
    let total = comm.allreduce_sum(&[n_owned])[0];
    if mesh.n_global != total {
        out.push(violation(
            NAME,
            me,
            format!("n_global {} != sum of owned counts {total}", mesh.n_global),
        ));
    }
    let offset = comm.exscan_sum(n_owned);
    if mesh.global_offset != offset {
        out.push(violation(
            NAME,
            me,
            format!(
                "global_offset {} != exclusive prefix sum {offset}",
                mesh.global_offset
            ),
        ));
    }

    // Owned keys: sorted, unique, arbitrated to me.
    let owned_keys = &mesh.dof_keys[..mesh.n_owned];
    for w in owned_keys.windows(2) {
        if w[0] >= w[1] {
            out.push(violation(
                NAME,
                me,
                format!(
                    "owned dof keys not strictly sorted: {:#x} then {:#x}",
                    w[0], w[1]
                ),
            ));
        }
    }
    for &k in owned_keys {
        let owner = node_owner(tree, k);
        if owner != me {
            out.push(violation(
                NAME,
                me,
                format!("owned dof {k:#x} is arbitrated to rank {owner}, not to me"),
            ));
        }
    }

    // Ghost gids: sorted, foreign, in range; counts grouped per owner.
    if mesh.ghost_gids.len() != mesh.n_ghost {
        out.push(violation(
            NAME,
            me,
            format!(
                "ghost_gids length {} != n_ghost {}",
                mesh.ghost_gids.len(),
                mesh.n_ghost
            ),
        ));
    }
    for w in mesh.ghost_gids.windows(2) {
        if w[0] >= w[1] {
            out.push(violation(
                NAME,
                me,
                format!("ghost gids not strictly sorted: {} then {}", w[0], w[1]),
            ));
        }
    }
    let offsets = comm.allgatherv(&[mesh.global_offset, n_owned]);
    for &g in &mesh.ghost_gids {
        if g >= mesh.global_offset && g < mesh.global_offset + n_owned {
            out.push(violation(
                NAME,
                me,
                format!("ghost gid {g} lies in my own range"),
            ));
        }
        if g >= mesh.n_global {
            out.push(violation(
                NAME,
                me,
                format!("ghost gid {g} >= n_global {}", mesh.n_global),
            ));
        }
    }
    let mut per_owner = vec![0usize; p];
    for &g in &mesh.ghost_gids {
        // Owner of gid g by the gathered (offset, count) table.
        let mut owner = usize::MAX;
        for r in 0..p {
            let (off, cnt) = (offsets[2 * r], offsets[2 * r + 1]);
            if g >= off && g < off + cnt {
                owner = r;
                break;
            }
        }
        if owner == usize::MAX {
            out.push(violation(
                NAME,
                me,
                format!("ghost gid {g} belongs to no rank's owned range"),
            ));
        } else {
            per_owner[owner] += 1;
        }
    }
    if mesh.exchange.recv_counts.len() != p {
        out.push(violation(
            NAME,
            me,
            format!(
                "recv_counts has {} entries for {p} ranks",
                mesh.exchange.recv_counts.len()
            ),
        ));
    } else {
        for r in 0..p {
            if per_owner[r] != mesh.exchange.recv_counts[r] {
                out.push(violation(
                    NAME,
                    me,
                    format!(
                        "recv_counts[{r}] = {} but {} ghost gids fall in rank {r}'s range",
                        mesh.exchange.recv_counts[r], per_owner[r]
                    ),
                ));
            }
        }
    }

    // Send lists: in-range, unique per peer.
    for (r, idx) in mesh.exchange.send_idx.iter().enumerate() {
        let mut seen = idx.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != idx.len() {
            out.push(violation(
                NAME,
                me,
                format!("send_idx[{r}] contains duplicate dof indices"),
            ));
        }
        for &i in idx {
            if i >= mesh.n_owned {
                out.push(violation(
                    NAME,
                    me,
                    format!("send_idx[{r}] references non-owned dof {i}"),
                ));
            }
        }
    }

    // Exchange symmetry: ship "I expect recv_counts[r] values from you"
    // to each peer; each peer compares against its planned send length.
    let expect: Vec<Vec<u64>> = (0..p)
        .map(|r| vec![mesh.exchange.recv_counts.get(r).copied().unwrap_or(0) as u64])
        .collect();
    let expects = comm.alltoallv(&expect);
    for (src, e) in expects.iter().enumerate() {
        if src == me {
            continue;
        }
        let planned = mesh
            .exchange
            .send_idx
            .get(src)
            .map(|v| v.len())
            .unwrap_or(0) as u64;
        if e[0] != planned {
            out.push(violation(
                NAME,
                me,
                format!(
                    "exchange asymmetry: rank {src} expects {} values from me \
                     but I plan to send {planned}",
                    e[0]
                ),
            ));
        }
    }
    out
}
