//! Differential harness: prove rank-count independence by running the
//! same seeded problem at several rank counts and comparing global
//! results.
//!
//! The comparison contract follows what the algorithms actually
//! guarantee:
//!
//! * The **global leaf set** (concatenation of per-rank leaves in rank
//!   order) is bitwise identical — refinement marks come from exact
//!   integer/max reductions, so partitioning must not change them.
//! * The **node-key set** (sorted union of owned keys) is bitwise
//!   identical. The gid *assignment* is rank-major by construction and
//!   therefore legitimately P-dependent; the set of independent nodes
//!   is not.
//! * Named **counts** (global element/dof counts) are exactly equal.
//! * Named **series** (solver residual histories) match to a relative
//!   tolerance on the common prefix, with a bounded length difference:
//!   global dot products reduce partial sums in rank order, so the last
//!   bits differ with P and an iteration count near the stopping
//!   threshold may shift by one.

use scomm::{spmd, Comm};

/// Per-rank contribution to the differential comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fingerprint {
    /// Locally owned leaves as `(tree, morton key, level)`; use tree 0
    /// for single-octree runs. Concatenated across ranks in rank order.
    pub leaves: Vec<(u32, u64, u8)>,
    /// Locally owned node keys; compared as the sorted global union
    /// (each key must be owned by exactly one rank).
    pub node_keys: Vec<u64>,
    /// Named global integers; must agree across ranks within a run and
    /// exactly across rank counts.
    pub counts: Vec<(String, u64)>,
    /// Named global series; must agree across ranks within a run (to
    /// tolerance) and to tolerance across rank counts.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Tolerances for the series comparison.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative tolerance for series entries.
    pub series_rel_tol: f64,
    /// Maximum allowed series length difference between rank counts.
    pub series_len_slack: usize,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            series_rel_tol: 1e-6,
            series_len_slack: 1,
        }
    }
}

/// Globally merged view of one run.
struct Global {
    nranks: usize,
    leaves: Vec<(u32, u64, u8)>,
    node_keys: Vec<u64>,
    counts: Vec<(String, u64)>,
    series: Vec<(String, Vec<f64>)>,
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() <= tol * scale
}

fn merge(nranks: usize, fps: Vec<Fingerprint>, errs: &mut Vec<String>) -> Global {
    let mut leaves = Vec::new();
    let mut node_keys = Vec::new();
    for fp in &fps {
        leaves.extend(fp.leaves.iter().copied());
        node_keys.extend(fp.node_keys.iter().copied());
    }
    node_keys.sort_unstable();
    for w in node_keys.windows(2) {
        if w[0] == w[1] {
            errs.push(format!(
                "P={nranks}: node key {:#x} owned by more than one rank",
                w[0]
            ));
        }
    }
    node_keys.dedup();
    // Counts and series must agree across ranks within the run.
    for (r, fp) in fps.iter().enumerate().skip(1) {
        if fp.counts != fps[0].counts {
            errs.push(format!(
                "P={nranks}: rank {r} reports counts {:?}, rank 0 {:?}",
                fp.counts, fps[0].counts
            ));
        }
        let names_match = fp.series.len() == fps[0].series.len()
            && fp
                .series
                .iter()
                .zip(&fps[0].series)
                .all(|(a, b)| a.0 == b.0 && a.1.len() == b.1.len());
        let values_match = names_match
            && fp
                .series
                .iter()
                .zip(&fps[0].series)
                .all(|(a, b)| a.1.iter().zip(&b.1).all(|(&x, &y)| rel_close(x, y, 1e-12)));
        if !values_match {
            errs.push(format!(
                "P={nranks}: rank {r} series disagree with rank 0 \
                 (global reductions should make them identical)"
            ));
        }
    }
    Global {
        nranks,
        leaves,
        node_keys,
        counts: fps[0].counts.clone(),
        series: fps[0].series.clone(),
    }
}

fn compare(base: &Global, other: &Global, opts: &DiffOptions, errs: &mut Vec<String>) {
    let (p0, p1) = (base.nranks, other.nranks);
    if base.leaves != other.leaves {
        let n0 = base.leaves.len();
        let n1 = other.leaves.len();
        let first_diff = base
            .leaves
            .iter()
            .zip(&other.leaves)
            .position(|(a, b)| a != b);
        errs.push(format!(
            "P={p1} vs P={p0}: global leaf sets differ \
             ({n0} vs {n1} leaves, first difference at {first_diff:?})"
        ));
    }
    if base.node_keys != other.node_keys {
        errs.push(format!(
            "P={p1} vs P={p0}: independent node-key sets differ \
             ({} vs {} keys)",
            base.node_keys.len(),
            other.node_keys.len()
        ));
    }
    if base.counts != other.counts {
        errs.push(format!(
            "P={p1} vs P={p0}: global counts differ: {:?} vs {:?}",
            base.counts, other.counts
        ));
    }
    if base.series.len() != other.series.len()
        || base
            .series
            .iter()
            .zip(&other.series)
            .any(|(a, b)| a.0 != b.0)
    {
        errs.push(format!(
            "P={p1} vs P={p0}: series names differ: {:?} vs {:?}",
            base.series.iter().map(|s| &s.0).collect::<Vec<_>>(),
            other.series.iter().map(|s| &s.0).collect::<Vec<_>>()
        ));
        return;
    }
    for ((name, a), (_, b)) in base.series.iter().zip(&other.series) {
        if a.len().abs_diff(b.len()) > opts.series_len_slack {
            errs.push(format!(
                "P={p1} vs P={p0}: series '{name}' lengths {} vs {} exceed slack {}",
                a.len(),
                b.len(),
                opts.series_len_slack
            ));
        }
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            if !rel_close(x, y, opts.series_rel_tol) {
                errs.push(format!(
                    "P={p1} vs P={p0}: series '{name}'[{i}] differs: {x} vs {y}"
                ));
                break;
            }
        }
    }
}

/// Run `f` at every rank count in `ranks` and compare the merged global
/// results against the first entry. Returns the list of mismatches
/// (empty = rank-count independent).
pub fn run_differential<F>(ranks: &[usize], opts: &DiffOptions, f: F) -> Result<(), Vec<String>>
where
    F: Fn(&Comm) -> Fingerprint + Sync,
{
    assert!(!ranks.is_empty(), "need at least one rank count");
    let mut errs = Vec::new();
    let mut baseline: Option<Global> = None;
    for &p in ranks {
        let fps = spmd::run(p, |c| f(c));
        let g = merge(p, fps, &mut errs);
        match &baseline {
            None => baseline = Some(g),
            Some(base) => compare(base, &g, opts, &mut errs),
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}
