//! Invariant checkers for the distributed forest of octrees.
//!
//! Same contract as [`crate::octree_checks`]: collective, read-only,
//! data-independent collective schedule. Leaf identity lives in the
//! `(tree, Morton key)` curve space, and adjacency follows the
//! connectivity's inter-tree face transforms via [`Forest::neighbor`].

use forest::{Forest, ForestLeaf};
use octree::balance::BalanceKind;
use octree::ROOT_LEN;

use crate::{violation, Violation};

/// Curve position of a leaf's first descendant.
fn curve_start(l: &ForestLeaf) -> u128 {
    ((l.tree as u128) << 64) | l.oct.key() as u128
}

/// Curve position of a leaf's last descendant.
fn curve_end(l: &ForestLeaf) -> u128 {
    ((l.tree as u128) << 64) | l.oct.last_descendant().key() as u128
}

/// Containment search in a sorted global leaf union.
fn find_containing_in(leaves: &[ForestLeaf], target: &ForestLeaf) -> Option<usize> {
    let idx = leaves.partition_point(|l| l <= target);
    if idx == 0 {
        return None;
    }
    let cand = idx - 1;
    let c = &leaves[cand];
    if c.tree == target.tree && c.oct.contains(&target.oct) {
        Some(cand)
    } else {
        None
    }
}

/// Leaf curve ordering and non-overlap within and across trees and
/// ranks. Cost: O(local) + one allgather of four limbs per rank.
pub fn morton_order(forest: &Forest) -> Vec<Violation> {
    const NAME: &str = "morton_order";
    let comm = forest.comm();
    let me = comm.rank();
    let mut out = Vec::new();
    for (i, w) in forest.local.windows(2).enumerate() {
        if curve_end(&w[0]) >= curve_start(&w[1]) {
            out.push(violation(
                NAME,
                me,
                format!(
                    "local forest leaves {i} and {} out of order or overlapping: \
                     {:?} then {:?}",
                    i + 1,
                    w[0],
                    w[1]
                ),
            ));
        }
    }
    let first = forest.local.first().map(curve_start).unwrap_or(u128::MAX);
    let last = forest.local.last().map(curve_end).unwrap_or(0);
    let limbs = comm.allgatherv(&[
        (first >> 64) as u64,
        first as u64,
        (last >> 64) as u64,
        last as u64,
    ]);
    let mut prev: Option<(usize, u128)> = None;
    for r in 0..comm.size() {
        let f = ((limbs[4 * r] as u128) << 64) | limbs[4 * r + 1] as u128;
        let l = ((limbs[4 * r + 2] as u128) << 64) | limbs[4 * r + 3] as u128;
        if f == u128::MAX {
            continue;
        }
        if let Some((pr, pl)) = prev {
            if f <= pl && r == me {
                out.push(violation(
                    NAME,
                    me,
                    format!(
                        "rank {r} first curve key not after rank {pr} last: \
                         global forest order/overlap broken"
                    ),
                ));
            }
        }
        prev = Some((r, l.max(prev.map(|(_, pl)| pl).unwrap_or(0))));
    }
    out
}

/// Partition ownership completeness on the forest curve. Cost: O(local)
/// + two collectives.
///
/// Mirrors [`crate::octree_checks::partition`]: (1) every local leaf
/// maps back to this rank under the marker-based ownership search,
/// (2) the replicated count metadata matches the actual local count,
/// (3) the leaf regions exactly tile all trees of the connectivity by
/// volume (no gap, no double coverage).
pub fn partition(forest: &Forest) -> Vec<Violation> {
    const NAME: &str = "partition";
    let comm = forest.comm();
    let me = comm.rank();
    let mut out = Vec::new();
    for l in &forest.local {
        let owner = forest.owner_of(l);
        if owner != me {
            out.push(violation(
                NAME,
                me,
                format!("local forest leaf {l:?} maps to owner {owner}, not to me"),
            ));
        }
    }
    if forest.rank_counts()[me] != forest.local.len() as u64 {
        out.push(violation(
            NAME,
            me,
            format!(
                "replicated count {} disagrees with actual local count {}",
                forest.rank_counts()[me],
                forest.local.len()
            ),
        ));
    }
    let total = comm.allreduce_sum(&[forest.local.len() as u64])[0];
    if total != forest.global_count() && me == 0 {
        out.push(violation(
            NAME,
            me,
            format!(
                "global count metadata {} disagrees with actual total {total}",
                forest.global_count()
            ),
        ));
    }
    // Exact volume completeness over all trees in u128 via a two-limb
    // u64 transfer.
    let vol: u128 = forest
        .local
        .iter()
        .map(|l| {
            let s = l.oct.len() as u128;
            s * s * s
        })
        .sum();
    let limbs = comm.allgatherv(&[(vol >> 64) as u64, vol as u64]);
    let mut total_vol: u128 = 0;
    for c in limbs.chunks(2) {
        total_vol += ((c[0] as u128) << 64) | c[1] as u128;
    }
    let want = (ROOT_LEN as u128).pow(3) * forest.connectivity().num_trees() as u128;
    if total_vol != want && me == 0 {
        out.push(violation(
            NAME,
            me,
            format!(
                "forest leaf regions do not tile the trees: covered volume \
                 {total_vol} of {want} (missing or duplicated leaves)"
            ),
        ));
    }
    out
}

/// 2:1 balance across the forest, including inter-tree face transforms.
/// Cost: O(collective) — gathers the global leaf union.
pub fn balance21(forest: &Forest, kind: BalanceKind) -> Vec<Violation> {
    const NAME: &str = "balance21";
    let comm = forest.comm();
    let me = comm.rank();
    let mut union: Vec<ForestLeaf> = comm.allgatherv(&forest.local);
    union.sort();
    let dirs = kind.directions();
    let mut out = Vec::new();
    for l in &forest.local {
        for &(dx, dy, dz) in &dirs {
            let Some(n) = forest.neighbor(l, dx, dy, dz) else {
                continue;
            };
            if let Some(i) = find_containing_in(&union, &n) {
                if union[i].oct.level + 1 < l.oct.level {
                    out.push(violation(
                        NAME,
                        me,
                        format!(
                            "2:1 violated across the forest: leaf {l:?} (level {}) \
                             touches {:?} (level {}) in direction ({dx},{dy},{dz})",
                            l.oct.level, union[i], union[i].oct.level
                        ),
                    ));
                }
            }
        }
    }
    out
}
