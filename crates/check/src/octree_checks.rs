//! Invariant checkers for the distributed linear octree.
//!
//! Every checker is collective — all ranks of the tree's communicator
//! must enter it together — and the sequence of collective operations
//! inside never depends on the (possibly corrupted) data, so a broken
//! structure produces violations, not a hang.

use octree::balance::BalanceKind;
use octree::ops::find_containing;
use octree::parallel::DistOctree;
use octree::{Octant, ROOT_LEN};

use crate::{violation, Violation};

/// Leaf Morton ordering and non-overlap, within the rank and across rank
/// boundaries. Cost: O(local) + one `allgather` of two keys per rank.
///
/// Within a rank, a valid linear octree has strictly increasing,
/// disjoint descendant-key intervals `[key, last_descendant_key]`; any
/// out-of-order pair and any ancestor/descendant pair violates that.
/// Across ranks the same interval test is applied to the gathered
/// per-rank extremes. Cross-rank violations are attributed to the
/// later-indexed rank so each is reported exactly once.
pub fn morton_order(tree: &DistOctree) -> Vec<Violation> {
    const NAME: &str = "morton_order";
    let comm = tree.comm();
    let me = comm.rank();
    let mut out = Vec::new();
    for (i, w) in tree.local.windows(2).enumerate() {
        if w[0].last_descendant().key() >= w[1].key() {
            out.push(violation(
                NAME,
                me,
                format!(
                    "local leaves {i} and {} out of order or overlapping: {:?} then {:?}",
                    i + 1,
                    w[0],
                    w[1]
                ),
            ));
        }
    }
    let first = tree.local.first().map(|o| o.key()).unwrap_or(u64::MAX);
    let last = tree
        .local
        .last()
        .map(|o| o.last_descendant().key())
        .unwrap_or(0);
    let extremes = comm.allgatherv(&[first, last]);
    let mut prev: Option<(usize, u64)> = None;
    for r in 0..comm.size() {
        let (f, l) = (extremes[2 * r], extremes[2 * r + 1]);
        if f == u64::MAX {
            continue; // empty rank
        }
        if let Some((pr, pl)) = prev {
            if f <= pl && r == me {
                out.push(violation(
                    NAME,
                    me,
                    format!(
                        "rank {r} first key {f:#x} not after rank {pr} last \
                         descendant key {pl:#x}: global order/overlap broken"
                    ),
                ));
            }
        }
        prev = Some((r, l.max(prev.map(|(_, pl)| pl).unwrap_or(0))));
    }
    out
}

/// Partition ownership completeness. Cost: O(local) + two collectives.
///
/// Checks that (1) every local leaf maps back to this rank under the
/// marker-based ownership search, (2) the replicated count metadata
/// matches the actual local count, and (3) the leaf regions exactly
/// tile the root domain (no gap, no double coverage by volume).
pub fn partition(tree: &DistOctree) -> Vec<Violation> {
    const NAME: &str = "partition";
    let comm = tree.comm();
    let me = comm.rank();
    let mut out = Vec::new();
    for o in &tree.local {
        let owner = tree.owner_of(o);
        if owner != me {
            out.push(violation(
                NAME,
                me,
                format!("local leaf {o:?} maps to owner {owner}, not to me"),
            ));
        }
    }
    if tree.rank_counts()[me] != tree.local.len() as u64 {
        out.push(violation(
            NAME,
            me,
            format!(
                "replicated count {} disagrees with actual local count {}",
                tree.rank_counts()[me],
                tree.local.len()
            ),
        ));
    }
    let total = comm.allreduce_sum(&[tree.local.len() as u64])[0];
    if total != tree.global_count() && me == 0 {
        out.push(violation(
            NAME,
            me,
            format!(
                "global count metadata {} disagrees with actual total {total}",
                tree.global_count()
            ),
        ));
    }
    // Exact volume completeness in u128 via a two-limb u64 transfer.
    let vol: u128 = tree
        .local
        .iter()
        .map(|o| {
            let s = o.len() as u128;
            s * s * s
        })
        .sum();
    let limbs = comm.allgatherv(&[(vol >> 64) as u64, vol as u64]);
    let mut total_vol: u128 = 0;
    for c in limbs.chunks(2) {
        total_vol += ((c[0] as u128) << 64) | c[1] as u128;
    }
    let root_vol = (ROOT_LEN as u128).pow(3);
    if total_vol != root_vol && me == 0 {
        out.push(violation(
            NAME,
            me,
            format!(
                "leaf regions do not tile the domain: covered volume {total_vol} \
                 of {root_vol} (missing or duplicated leaves)"
            ),
        ));
    }
    out
}

/// 2:1 balance over the neighborhood of `kind`. Cost: O(collective) —
/// gathers the full global leaf union, so this is a test/debug checker.
///
/// Each rank checks its own leaves against the union: a leaf at level
/// `l` whose same-size neighbor region is covered by a leaf coarser
/// than `l − 1` is a violation. Too-*fine* neighbors are caught from
/// the fine side by the rank owning the fine leaf, so the sweep over
/// all ranks covers both directions.
pub fn balance21(tree: &DistOctree, kind: BalanceKind) -> Vec<Violation> {
    const NAME: &str = "balance21";
    let comm = tree.comm();
    let me = comm.rank();
    let mut union: Vec<Octant> = comm.allgatherv(&tree.local);
    union.sort();
    let dirs = kind.directions();
    let mut out = Vec::new();
    for o in &tree.local {
        for &(dx, dy, dz) in &dirs {
            let Some(n) = o.neighbor(dx, dy, dz) else {
                continue;
            };
            if let Some(i) = find_containing(&union, &n) {
                if union[i].level + 1 < o.level {
                    out.push(violation(
                        NAME,
                        me,
                        format!(
                            "2:1 violated: leaf {o:?} (level {}) touches {:?} \
                             (level {}) in direction ({dx},{dy},{dz})",
                            o.level, union[i], union[i].level
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Ghost-layer symmetry: rank i's ghosts of rank j must be exactly
/// rank j's mirror list for rank i. Cost: O(boundary) + one alltoallv.
///
/// Each rank ships every ghost entry back to its recorded owner; the
/// owner independently recomputes the mirror set it expects each peer
/// to hold (the same marker-based region predicate the ghost builder
/// uses, evaluated on the owner's leaves) and reports any claimed ghost
/// that is not an owned leaf, any spurious claim, and any missing
/// mirror.
pub fn ghost_symmetry(tree: &DistOctree, ghosts: &[(usize, Octant)]) -> Vec<Violation> {
    const NAME: &str = "ghost_symmetry";
    let comm = tree.comm();
    let me = comm.rank();
    let p = comm.size();
    let mut out = Vec::new();

    let mut outgoing: Vec<Vec<Octant>> = vec![Vec::new(); p];
    for &(owner, g) in ghosts {
        if owner >= p || owner == me {
            out.push(violation(
                NAME,
                me,
                format!("ghost {g:?} recorded with invalid owner {owner}"),
            ));
            continue;
        }
        outgoing[owner].push(g);
    }
    let claimed = comm.alltoallv(&outgoing);

    // Expected mirror set per peer: my leaves whose neighbor regions
    // intersect that peer's ownership range.
    let mut expected: Vec<Vec<Octant>> = vec![Vec::new(); p];
    for o in &tree.local {
        let mut sent: Vec<usize> = Vec::new();
        for (dx, dy, dz) in Octant::neighbor_directions() {
            let Some(n) = o.neighbor(dx, dy, dz) else {
                continue;
            };
            let (rlo, rhi) = tree.owner_range(&n);
            for r in rlo..=rhi.min(p - 1) {
                if r != me && !sent.contains(&r) {
                    sent.push(r);
                    expected[r].push(*o);
                }
            }
        }
    }

    for j in 0..p {
        if j == me {
            continue;
        }
        let mut have: Vec<Octant> = claimed[j].clone();
        have.sort();
        have.dedup();
        let mut want = expected[j].clone();
        want.sort();
        for g in &have {
            if tree.local.binary_search(g).is_err() {
                out.push(violation(
                    NAME,
                    me,
                    format!("rank {j} ghosts {g:?}, which is not a leaf I own"),
                ));
            } else if want.binary_search(g).is_err() {
                out.push(violation(
                    NAME,
                    me,
                    format!("rank {j} holds spurious ghost {g:?} (not adjacent to its range)"),
                ));
            }
        }
        for g in &want {
            if have.binary_search(g).is_err() {
                out.push(violation(
                    NAME,
                    me,
                    format!("rank {j} is missing the mirror of my boundary leaf {g:?}"),
                ));
            }
        }
    }
    out
}
