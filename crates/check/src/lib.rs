//! # check — runtime verification for the distributed AMR stack
//!
//! The paper's scalability results rest on distributed invariants that
//! are easy to break and hard to observe: global Morton order and leaf
//! non-overlap, 2:1 balance across rank and tree boundaries, partition
//! ownership completeness, hanging-node constraint consistency, and
//! ghost-layer symmetry. A violation of any of these does not crash the
//! run — it silently corrupts the solve many phases later, usually only
//! at specific rank counts. This crate makes them checkable:
//!
//! * **Invariant checkers** ([`octree_checks`], [`forest_checks`],
//!   [`mesh_checks`]) — collective functions that every rank enters
//!   together; each returns the [`Violation`]s visible from the calling
//!   rank. They are pure observers: no checker mutates the structure it
//!   inspects, and the number and order of collective operations inside
//!   a checker never depends on the data, so corrupted structures are
//!   diagnosed instead of deadlocked on.
//! * **Stage guards** ([`guard_tree`], [`guard_forest`], [`guard_mesh`])
//!   — the form used between AMR pipeline stages (rhea calls these in
//!   debug builds when `CHECK_INVARIANTS=1`): run a checker suite under
//!   an `obs` span, report violations through the recorder, and abort
//!   the run on the first global violation.
//! * **Differential harness** ([`differential`]) — runs the same seeded
//!   problem at several rank counts and asserts that the global leaf
//!   set, the node numbering, and (to tolerance) solver residual series
//!   are independent of P.
//! * **Adaptation fuzzer** ([`fuzz_amr`]) — seeded property-based
//!   mark→refine→coarsen→balance→partition→transfer cycles that assert
//!   every checker, bitwise balance equality against the naive oracle,
//!   and field-transfer conservation; failures replay from the
//!   `(seed, cycle, p)` triple in the panic message.
//!
//! Fault injection lives in `scomm::fault` (it must interpose on the
//! communicator internals); its smoke tests live here, where the full
//! AMR pipeline is available to exercise under an adversarial schedule.
//!
//! Cost classes are documented per checker and tabulated in DESIGN.md §9:
//! `O(local)` checkers touch only rank-local state plus O(P) metadata;
//! `O(collective)` checkers gather remote state proportional to the
//! global problem (the 2:1 checker gathers the full leaf union and is
//! meant for tests and debug runs, not production timesteps).

use obs::json::Value;
use obs::Recorder;
use scomm::Comm;

pub mod differential;
pub mod forest_checks;
pub mod fuzz_amr;
pub mod mesh_checks;
pub mod octree_checks;

pub use differential::{run_differential, DiffOptions, Fingerprint};

/// One invariant violation, attributed to the rank that observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Checker name (e.g. `"morton_order"`, `"ghost_symmetry"`).
    pub checker: &'static str,
    /// Rank that observed the violation.
    pub rank: usize,
    /// Human-readable description with the offending identities.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] rank {}: {}", self.checker, self.rank, self.detail)
    }
}

pub(crate) fn violation(checker: &'static str, rank: usize, detail: String) -> Violation {
    Violation {
        checker,
        rank,
        detail,
    }
}

/// Report violations through an `obs` recorder: one `check.violation`
/// instant per finding (carrying the checker name and detail, so trace
/// viewers show it with phase context) and a `check.violations` counter.
pub fn report(rec: &Recorder, violations: &[Violation]) {
    for v in violations {
        rec.instant(
            "check.violation",
            Value::object([
                ("checker", Value::Str(v.checker.to_string())),
                ("detail", Value::Str(v.detail.clone())),
            ]),
        );
    }
    if !violations.is_empty() {
        rec.add_count("check.violations", violations.len() as u64);
    }
}

/// Collective: panic on every rank if any rank found a violation.
/// Each rank's panic message carries its own findings plus the global
/// count, so the failure is diagnosable from any rank's backtrace.
pub fn assert_clean(comm: &Comm, violations: &[Violation]) {
    let total = comm.allreduce_sum(&[violations.len() as u64])[0];
    if total > 0 {
        let mut msg = format!(
            "{total} distributed invariant violation(s) detected globally \
             ({} visible from rank {})",
            violations.len(),
            comm.rank()
        );
        for v in violations {
            msg.push_str("\n  ");
            msg.push_str(&v.to_string());
        }
        panic!("{msg}");
    }
}

/// Stage guard over a distributed octree: Morton order, partition
/// completeness, and 2:1 balance, under a `check`-category span.
/// Collective; panics on the first global violation.
pub fn guard_tree(
    tree: &octree::parallel::DistOctree,
    kind: octree::balance::BalanceKind,
    rec: Option<&Recorder>,
) {
    let _s = rec.map(|r| r.span_cat("check:tree", "check"));
    let mut v = octree_checks::morton_order(tree);
    v.extend(octree_checks::partition(tree));
    v.extend(octree_checks::balance21(tree, kind));
    if let Some(r) = rec {
        report(r, &v);
    }
    assert_clean(tree.comm(), &v);
}

/// Stage guard over a forest: curve order, partition completeness, and
/// inter-tree 2:1 balance. Collective; panics on the first global
/// violation.
pub fn guard_forest(
    forest: &forest::Forest,
    kind: octree::balance::BalanceKind,
    rec: Option<&Recorder>,
) {
    let _s = rec.map(|r| r.span_cat("check:forest", "check"));
    let mut v = forest_checks::morton_order(forest);
    v.extend(forest_checks::partition(forest));
    v.extend(forest_checks::balance21(forest, kind));
    if let Some(r) = rec {
        report(r, &v);
    }
    assert_clean(forest.comm(), &v);
}

/// Stage guard over an extracted mesh (plus the ghost layer of the tree
/// it came from): constraint consistency, dof numbering, and ghost
/// symmetry. Collective; panics on the first global violation.
pub fn guard_mesh(
    tree: &octree::parallel::DistOctree,
    mesh: &mesh::extract::Mesh,
    rec: Option<&Recorder>,
) {
    let _s = rec.map(|r| r.span_cat("check:mesh", "check"));
    let ghosts = tree.ghost_layer();
    let mut v = octree_checks::ghost_symmetry(tree, &ghosts);
    v.extend(mesh_checks::constraints(tree, mesh));
    v.extend(mesh_checks::dof_numbering(tree, mesh));
    if let Some(r) = rec {
        report(r, &v);
    }
    assert_clean(tree.comm(), &v);
}
