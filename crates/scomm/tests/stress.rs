//! Stress and ordering tests for the simulated communicator.

use scomm::spmd;

/// Many interleaved collectives of different kinds must stay in lockstep
/// (barrier-generation alignment under heavy reuse).
#[test]
fn interleaved_collectives_stay_aligned() {
    let out = spmd::run(6, |c| {
        let mut acc = 0u64;
        for round in 0..50u64 {
            match round % 4 {
                0 => {
                    let g = c.allgather_u64(c.rank() as u64 + round);
                    acc += g.iter().sum::<u64>();
                }
                1 => {
                    let s = c.allreduce_sum(&[round as f64])[0];
                    acc += s as u64;
                }
                2 => {
                    let b = c.bcast(round as usize % c.size(), &[round]);
                    acc += b[0];
                }
                _ => {
                    let x = c.exscan_sum(1u64);
                    acc += x;
                }
            }
        }
        acc
    });
    // All ranks performed the same collective sequence; sums of symmetric
    // collectives must agree except the exscan part, which differs by
    // rank — recompute expectations directly.
    let expect = |rank: u64| -> u64 {
        let p = 6u64;
        let mut acc = 0u64;
        for round in 0..50u64 {
            match round % 4 {
                0 => acc += (0..p).map(|r| r + round).sum::<u64>(),
                1 => acc += p * round, // allreduce-sum of `round` over p ranks
                2 => acc += round,
                _ => acc += rank, // exscan of ones = rank
            }
        }
        acc
    };
    for (r, &v) in out.iter().enumerate() {
        assert_eq!(v, expect(r as u64), "rank {r}");
    }
}

/// Saturating point-to-point traffic with mixed tags across many ranks.
#[test]
fn p2p_mixed_tag_storm() {
    let p = 5;
    spmd::run(p, move |c| {
        // Everyone sends 3 messages with distinct tags to every other
        // rank, then receives in a rank-dependent (shuffled) order.
        for dst in 0..c.size() {
            if dst != c.rank() {
                for tag in 0..3u64 {
                    c.send(dst, tag, &[(c.rank() as u64) * 10 + tag]);
                }
            }
        }
        let mut total = 0u64;
        for src in 0..c.size() {
            if src == c.rank() {
                continue;
            }
            // Reverse tag order exercises the pending queue.
            for tag in (0..3u64).rev() {
                let v = c.recv::<u64>(src, tag);
                assert_eq!(v, vec![(src as u64) * 10 + tag]);
                total += v[0];
            }
        }
        assert!(total > 0);
    });
}

/// sendrecv ring with payloads growing per hop.
#[test]
fn sendrecv_ring_growing_payload() {
    spmd::run(4, |c| {
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        let mut payload = vec![c.rank() as f64];
        for hop in 0..8 {
            let received = c.sendrecv(next, prev, hop, &payload);
            payload = received;
            payload.push(c.rank() as f64);
        }
        assert_eq!(payload.len(), 9);
    });
}

/// Worlds of size 1..8 all work, including empty payloads everywhere.
#[test]
fn all_world_sizes() {
    for p in 1..=8 {
        let out = spmd::run(p, |c| {
            let empty: Vec<f64> = Vec::new();
            let g = c.allgatherv(&empty);
            assert!(g.is_empty());
            c.allreduce_max(&[c.rank() as f64])[0]
        });
        assert!(out.iter().all(|&m| m == (p - 1) as f64));
    }
}
