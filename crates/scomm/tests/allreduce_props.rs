//! Property tests for the generic allreduce path: for every world size we
//! run, all ranks must compute the *identical* result — bitwise — because
//! the fold order (ascending rank) is fixed independent of scheduling.

use proptest::prelude::*;
use scomm::spmd;

/// Strategy: a per-rank contribution length and a seed for deterministic
/// per-rank payloads (rank r derives its values from `seed ^ r`).
fn arb_case() -> impl Strategy<Value = (usize, u64)> {
    (1usize..32, any::<u64>())
}

fn rank_values(seed: u64, rank: usize, n: usize) -> Vec<f64> {
    let mut state = seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Mixed magnitudes and signs, all finite.
            ((state % 2_000_001) as f64 - 1_000_000.0) / 977.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_identical_on_every_rank((n, seed) in arb_case()) {
        for p in [1usize, 2, 4, 8] {
            let out = spmd::run(p, move |c| {
                let mine = rank_values(seed, c.rank(), n);
                let sum = c.allreduce_sum(&mine);
                let max = c.allreduce_max(&mine);
                let min = c.allreduce_min(&mine);
                (sum, max, min)
            });
            let (sum0, max0, min0) = &out[0];
            for (r, (sum, max, min)) in out.iter().enumerate() {
                // Bitwise comparison: identical fold order must give
                // identical floats, not merely close ones.
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(sum), bits(sum0), "sum differs on rank {} at P={}", r, p);
                prop_assert_eq!(bits(max), bits(max0), "max differs on rank {} at P={}", r, p);
                prop_assert_eq!(bits(min), bits(min0), "min differs on rank {} at P={}", r, p);
            }
            // Cross-check against a serial fold in rank order.
            let mut want = rank_values(seed, 0, n);
            for r in 1..p {
                for (w, v) in want.iter_mut().zip(rank_values(seed, r, n)) {
                    *w += v;
                }
            }
            for (w, s) in want.iter().zip(sum0.iter()) {
                prop_assert!((w - s).abs() <= 1e-9 * w.abs().max(1.0));
            }
        }
    }

    #[test]
    fn allreduce_into_matches_allocating_path((n, seed) in arb_case()) {
        let out = spmd::run(4, move |c| {
            let mine = rank_values(seed, c.rank(), n);
            let reference = c.allreduce(&mine, f64::max);
            let mut buf = Vec::new();
            c.allreduce_into(&mine, &mut buf, f64::max);
            assert_eq!(buf, reference);
            // Warm call reuses the output allocation.
            let ptr = buf.as_ptr();
            c.allreduce_into(&mine, &mut buf, f64::max);
            assert_eq!(ptr, buf.as_ptr(), "allreduce_into must not reallocate");
            (buf, reference, c.stats().allreduces)
        });
        for (buf, reference, count) in out {
            prop_assert_eq!(buf, reference);
            prop_assert_eq!(count, 3);
        }
    }
}
