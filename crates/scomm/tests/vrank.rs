//! Virtual-mode contract tests: `spmd::run_virtual` must be a drop-in
//! twin of `spmd::run` — identical program-observable results, stats and
//! fault-replay behaviour — while multiplexing many ranks over a small
//! worker pool, and its failure modes (peer panic, deadlock) must be
//! diagnosable panics rather than hangs.

use obs::Recorder;
use scomm::spmd::{self, VirtualCfg};
use scomm::{Comm, FaultPlan};

/// A workload touching every communication family: gather/reduce/scan
/// collectives, broadcast, both all-to-all paths, a p2p ring and a
/// split-phase exchange round.
fn mixed_workload(c: &Comm) -> (Vec<u64>, u64, u64, Vec<u64>, Vec<u64>, u64, Vec<u64>) {
    let me = c.rank() as u64;
    let p = c.size();
    let g = c.allgather_u64(me * 3 + 1);
    let s = c.allreduce_sum(&[me + 1])[0];
    let x = c.exscan_sum(me + 1);
    let b = c.bcast(p - 1, &[me, me + 7]);
    let counts = vec![1usize; p];
    let send: Vec<u64> = (0..p as u64).map(|d| me * 1000 + d).collect();
    let mut recv = Vec::new();
    let mut recv_counts = Vec::new();
    c.alltoallv_flat(&send, &counts, &mut recv, &mut recv_counts);
    let next = (c.rank() + 1) % p;
    let prev = (c.rank() + p - 1) % p;
    let mut token = vec![me];
    for _ in 0..p.min(8) {
        let req = c.irecv::<u64>(prev, 7);
        c.isend(next, 7, &token).wait();
        token = c.wait(req);
    }
    let mut ex = scomm::Exchange::new(2);
    let (mut er, mut ec): (Vec<u64>, Vec<usize>) = (Vec::new(), Vec::new());
    c.exchange_start(&send, &counts, &counts, &mut ex);
    c.exchange_end(&mut ex, &mut er, &mut ec);
    (g, s, x, b, recv, token[0], er)
}

#[test]
fn virtual_matches_thread_results_and_stats() {
    let p = 64;
    let (thread_res, thread_stats) = spmd::run_with_stats(p, mixed_workload);
    let (virt_res, virt_stats) = spmd::run_virtual_cfg(
        p,
        VirtualCfg {
            workers: 4,
            ..VirtualCfg::default()
        },
        mixed_workload,
    );
    assert_eq!(virt_res, thread_res, "virtual mode must be bit-identical");
    assert_eq!(virt_stats, thread_stats, "per-rank stats must agree");
}

#[test]
fn ring_at_p256_on_four_workers() {
    let p = 256;
    let out = spmd::run_virtual(p, 4, |c| {
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        let mut token = vec![c.rank() as u64];
        for _ in 0..4 {
            let req = c.irecv::<u64>(prev, 1);
            c.isend(next, 1, &token).wait();
            token = c.wait(req);
        }
        c.barrier();
        token[0]
    });
    for (r, v) in out.iter().enumerate() {
        assert_eq!(*v, ((r + 256 - 4) % 256) as u64);
    }
}

#[test]
fn worker_pool_sizes_agree() {
    // The pool size is an execution detail: 1, 3 and 16 workers must all
    // produce the thread-mode answer.
    let p = 32;
    let reference = spmd::run(p, mixed_workload);
    for workers in [1usize, 3, 16] {
        let got = spmd::run_virtual(p, workers, mixed_workload);
        assert_eq!(got, reference, "workers={workers}");
    }
}

#[test]
fn fault_replay_matches_thread_mode() {
    // FaultState depends only on (plan seed, rank, op sequence), so the
    // same plan must produce identical counters in both modes.
    let body = |c: &Comm| {
        c.set_fault_plan(Some(FaultPlan::delays(0xabad)));
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        for round in 0..12u64 {
            let req = c.irecv::<u64>(prev, round % 3);
            c.isend(next, round % 3, &[round]).wait();
            let v = c.wait(req);
            assert_eq!(v, vec![round]);
            c.barrier();
        }
        let counters = c.fault_counters().unwrap();
        c.set_fault_plan(None);
        counters
    };
    let thread = spmd::run(8, body);
    let virt = spmd::run_virtual(8, 3, body);
    assert_eq!(thread, virt);
    assert!(thread.iter().map(|f| f.delayed).sum::<u64>() > 0);
}

#[test]
fn scheduler_determinism_span_trees_and_overlap() {
    // Satellite: same (seed, P, workers) ⇒ identical obs span trees and
    // identical comm.overlap_ns totals across two runs. Manual-clock
    // recorders make time attribution exact, so any schedule-dependent
    // difference in op order or matching would change the trees.
    let run_once = || {
        let cfg = VirtualCfg {
            workers: 4,
            seed: 0xC0FFEE,
            ..VirtualCfg::default()
        };
        spmd::run_virtual_cfg(48, cfg, |c| {
            let rec = Recorder::new_manual_clock(c.rank());
            c.set_recorder(rec.clone());
            let me = c.rank() as u64;
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            for round in 0..6u64 {
                let req = c.irecv::<u64>(prev, round);
                c.isend(next, round, &[me]).wait();
                rec.advance_clock(100 + me * 3 + round);
                let _ = c.wait(req);
                let _ = c.allreduce_sum(&[me + round]);
            }
            let prof = rec.profile();
            let overlap = prof.summary.counter(scomm::OVERLAP_COUNTER);
            (prof.spans, overlap)
        })
        .0
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "same seed+P+workers must reproduce spans and overlap");
    assert!(a.iter().all(|(_, overlap)| *overlap > 0));
}

#[test]
fn merged_trace_caps_detail_and_merges_summaries_exactly() {
    let p = 64;
    let detail_tracks = 4;
    let cfg = VirtualCfg {
        workers: 8,
        ..VirtualCfg::default()
    };
    let (out, trace) = spmd::run_virtual_traced_merged(p, cfg, detail_tracks, |c, rec| {
        rec.with("Step", || {
            rec.add_count("work", c.rank() as u64 + 1);
        });
        c.barrier();
        c.rank()
    });
    assert_eq!(out, (0..p).collect::<Vec<_>>());
    assert_eq!(trace.detail.len(), detail_tracks, "track cap must hold");
    assert!(trace.detail.iter().all(|d| !d.spans.is_empty()));
    // The merged summary is exact across ALL ranks, capped or not.
    let expect: u64 = (1..=p as u64).sum();
    assert_eq!(trace.summary.counter("work"), expect);
    assert_eq!(trace.summary.phases["Step"].count, p as u64);
    assert_eq!(trace.summary.phases["comm:barrier"].count, p as u64);
}

#[test]
fn poll_loop_progresses_on_single_worker() {
    // Comm::test yields its worker slot in virtual mode; without that,
    // this poll loop would spin forever at workers == 1 because the
    // sender could never run.
    let out = spmd::run_virtual(2, 1, |c| {
        if c.rank() == 0 {
            let go = c.recv::<u8>(1, 9);
            assert_eq!(go, vec![1]);
            c.send(1, 5, &[33u64]);
            0
        } else {
            let req = c.irecv::<u64>(0, 5);
            assert!(!c.test(&req), "nothing sent yet");
            c.send(0, 9, &[1u8]);
            while !c.test(&req) {}
            let v = c.wait(req);
            v[0]
        }
    });
    assert_eq!(out[1], 33);
}

#[test]
fn wait_any_works_in_virtual_mode() {
    let out = spmd::run_virtual(3, 2, |c| {
        if c.rank() == 0 {
            let mut reqs = vec![c.irecv::<u64>(1, 1), c.irecv::<u64>(2, 2)];
            let mut sum = 0;
            while !reqs.is_empty() {
                let (_, v) = c.wait_any(&mut reqs);
                sum += v[0];
            }
            sum
        } else {
            c.send(0, c.rank() as u64, &[c.rank() as u64 * 11]);
            0
        }
    });
    assert_eq!(out[0], 33);
}

#[test]
#[should_panic(expected = "deliberate rank failure")]
fn rank_panic_propagates_with_original_payload() {
    spmd::run_virtual(8, 2, |c| {
        if c.rank() == 5 {
            panic!("deliberate rank failure");
        }
        // Everyone else blocks in a collective; the poison protocol must
        // wake them and the launcher must re-raise the *original* panic,
        // not the secondary peer-panic notification.
        c.barrier();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn unmatched_receive_is_a_detected_deadlock() {
    spmd::run_virtual(4, 2, |c| {
        if c.rank() == 0 {
            // This message never comes; once the other ranks finish, the
            // scheduler proves no wake-up can arrive and panics instead
            // of hanging the suite.
            let _ = c.recv::<u64>(1, 99);
        }
    });
}
