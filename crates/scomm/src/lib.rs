//! # scomm — simulated SPMD communication substrate
//!
//! The paper's algorithms (ALPS/P4EST/RHEA) are SPMD programs over MPI on
//! TACC Ranger. Rust's MPI ecosystem is thin and no Ranger-class machine is
//! available, so this crate provides the substitution described in
//! `DESIGN.md`: a faithful *simulated* message-passing machine in which each
//! rank runs as an OS thread and communicates through an MPI-like
//! [`Comm`] handle.
//!
//! The substrate provides:
//!
//! * **Point-to-point** tagged, typed, buffered sends and blocking receives
//!   ([`Comm::send`], [`Comm::recv`], [`Comm::sendrecv`]).
//! * **Nonblocking requests** ([`Comm::isend`], [`Comm::irecv`],
//!   [`Comm::wait`], [`Comm::waitall`], [`Comm::test`]) and a split-phase
//!   neighbor exchange ([`Comm::exchange_start`] / [`Comm::exchange_end`]
//!   over a reusable [`Exchange`] stream) — the request-based contract the
//!   FEM layers use to overlap ghost exchange with interior computation.
//!   Completion-time semantics (matching, fault jitter, the post→complete
//!   telemetry span and the `comm.overlap_ns` counter) live in
//!   [`request`].
//! * **Collectives** — [`Comm::barrier`], [`Comm::allgather`],
//!   [`Comm::allgatherv`], [`Comm::allreduce_sum`], [`Comm::exscan_sum`],
//!   [`Comm::bcast`], [`Comm::alltoallv`] — all with MPI semantics
//!   (every rank of the communicator must call them in the same order).
//! * **Statistics** ([`stats::CommStats`]) — per-rank message and byte
//!   counts, used by the machine model to extrapolate to Ranger scale.
//! * **Fault injection** ([`fault::FaultPlan`]) — a seeded adversarial
//!   scheduler that delays/reorders point-to-point deliveries, drops
//!   messages with a panic, and staggers collective entries, to shake out
//!   ordering assumptions deterministically ([`Comm::set_fault_plan`]).
//! * A **machine model** ([`machine::MachineModel`]) of a 2008-era
//!   Ranger-like system used by the benchmark harnesses to convert measured
//!   operation counts into modeled large-scale times.
//! * **Virtual ranks** ([`spmd::run_virtual`]) — the same SPMD programs
//!   multiplexed over a fixed worker pool by the cooperative `vrank`
//!   scheduler, so P ∈ {256, 1024, 4096} runs on a handful of cores with
//!   results bit-identical to thread mode.
//!
//! ## Example
//!
//! ```
//! use scomm::spmd;
//!
//! // Four ranks cooperatively compute a global sum.
//! let results = spmd::run(4, |comm| {
//!     let mine = (comm.rank() + 1) as f64;
//!     comm.allreduce_sum(&[mine])[0]
//! });
//! assert!(results.iter().all(|&s| s == 10.0));
//! ```

pub mod comm;
pub mod fault;
pub mod gate;
pub mod machine;
pub mod pod;
pub mod request;
pub mod spmd;
pub mod stats;

pub use comm::{Comm, OVERLAP_COUNTER};
pub use fault::{FaultCounters, FaultPlan};
pub use gate::checks_enabled;
pub use machine::MachineModel;
pub use pod::Pod;
pub use request::{Exchange, RecvRequest, SendRequest};
pub use stats::CommStats;
