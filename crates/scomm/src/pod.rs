//! Plain-old-data marker trait used for zero-copy message payloads.
//!
//! Messages travel between simulated ranks as `Vec<u8>` buffers. To send a
//! typed slice without a serialization framework we require the element type
//! to be [`Pod`]: `Copy`, with no padding-sensitive invariants, valid for
//! any bit pattern that another rank could have produced from a value of the
//! same type. All payloads originate from real values of `T` on the sending
//! rank, so round-tripping through bytes is always reading back bytes that
//! were a valid `T`.

/// Marker for types that can be sent between ranks as raw bytes.
///
/// # Safety
///
/// Implementors must be `#[repr(C)]` (or a primitive), contain no
/// references, pointers, or non-`Pod` fields, and must tolerate having
/// their padding bytes (if any) read. Every byte pattern produced by
/// `as_bytes` of a valid value must be accepted by `from_bytes`.
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<A: Pod, B: Pod> Pod for (A, B) {}
unsafe impl<A: Pod, B: Pod, C: Pod> Pod for (A, B, C) {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// View a slice of `Pod` values as raw bytes.
pub fn as_bytes<T: Pod>(data: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` guarantees the representation is plain bytes and
    // reading padding is tolerated. Lifetime and length are preserved.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}

/// Copy raw bytes (produced by [`as_bytes`] on the same type) back into a
/// typed vector.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert!(
        size == 0 || bytes.len().is_multiple_of(size),
        "byte buffer length {} not a multiple of element size {}",
        bytes.len(),
        size
    );
    if size == 0 {
        return Vec::new();
    }
    let n = bytes.len() / size;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: destination capacity is n elements = bytes.len() bytes; the
    // source bytes were produced from valid `T`s by `as_bytes`, and `T: Pod`
    // means any such bytes form valid values. Regions cannot overlap.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

/// Append typed values decoded from raw bytes onto `out`, reusing its
/// spare capacity. The allocation-free counterpart of [`from_bytes`] for
/// hot paths that recycle their receive buffers.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn extend_from_bytes<T: Pod>(out: &mut Vec<T>, bytes: &[u8]) {
    let size = std::mem::size_of::<T>();
    assert!(
        size == 0 || bytes.len().is_multiple_of(size),
        "byte buffer length {} not a multiple of element size {}",
        bytes.len(),
        size
    );
    if size == 0 {
        return;
    }
    let n = bytes.len() / size;
    out.reserve(n);
    let old_len = out.len();
    // SAFETY: `reserve` guarantees capacity for `old_len + n` elements;
    // the source bytes were produced from valid `T`s by `as_bytes`, and
    // `T: Pod` means any such bytes form valid values. The destination
    // region starts past the initialized prefix, so it cannot overlap
    // the source slice.
    unsafe {
        std::ptr::copy_nonoverlapping(
            bytes.as_ptr(),
            (out.as_mut_ptr() as *mut u8).add(old_len * size),
            bytes.len(),
        );
        out.set_len(old_len + n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = vec![1.5f64, -2.25, 1e300, 0.0];
        let bytes = as_bytes(&data);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = from_bytes(bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_tuple() {
        let data = vec![(1u64, 2.5f64), (3, 4.5)];
        let back: Vec<(u64, f64)> = from_bytes(as_bytes(&data));
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_empty() {
        let data: Vec<u32> = vec![];
        let back: Vec<u32> = from_bytes(as_bytes(&data));
        assert!(back.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_length_panics() {
        let bytes = [0u8; 7];
        let _: Vec<u32> = from_bytes(&bytes);
    }

    #[test]
    fn roundtrip_array() {
        let data = vec![[1u32, 2, 3], [4, 5, 6]];
        let back: Vec<[u32; 3]> = from_bytes(as_bytes(&data));
        assert_eq!(back, data);
    }

    #[test]
    fn extend_reuses_capacity_and_appends() {
        let mut out: Vec<f64> = Vec::with_capacity(8);
        out.push(9.0);
        let ptr = out.as_ptr();
        let data = [1.5f64, -2.25, 1e300];
        extend_from_bytes(&mut out, as_bytes(&data));
        assert_eq!(out, vec![9.0, 1.5, -2.25, 1e300]);
        assert_eq!(out.as_ptr(), ptr, "must reuse existing capacity");
        extend_from_bytes::<f64>(&mut out, &[]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn extend_bad_length_panics() {
        let mut out: Vec<u32> = Vec::new();
        extend_from_bytes(&mut out, &[0u8; 7]);
    }
}
