//! SPMD launcher: run the same closure on `P` simulated ranks.
//!
//! Each rank is a real OS thread with its own [`Comm`] handle; the closure
//! is the "main" of the simulated MPI program. Results are collected in
//! rank order.
//!
//! Two launch modes share the same closure signature:
//!
//! * [`run`] — thread mode: every rank's thread is runnable at all times.
//!   Fine up to a few dozen ranks; beyond that the host drowns in
//!   context switches between barrier entrants.
//! * [`run_virtual`] — virtual mode: ranks are multiplexed over a fixed
//!   worker pool by a [`vrank::Scheduler`]; a rank blocked in `scomm`
//!   parks and its worker slot goes to a runnable rank. This is how
//!   P ∈ {256, 1024, 4096} runs on a laptop-sized pool. Each virtual
//!   rank still owns an OS thread as its execution context, but with a
//!   small stack ([`VirtualCfg::stack_bytes`]) and parked threads cost
//!   no scheduler attention.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use obs::{RankProfile, Recorder, Reduce, Summary};

use crate::comm::{Comm, World};
use crate::stats::CommStats;

/// A standalone single-rank communicator (the analogue of `MPI_COMM_SELF`),
/// for running SPMD algorithms serially without a launcher.
pub fn self_comm() -> Comm {
    World::new(1).attach(0)
}

/// Run `f` on `nranks` ranks and return the per-rank results in rank order.
///
/// Panics in any rank propagate (the launcher re-panics after joining),
/// matching the fail-fast behaviour of an MPI abort.
pub fn run<F, R>(nranks: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    run_with_stats(nranks, f).0
}

/// Like [`run`] but additionally returns each rank's accumulated
/// [`CommStats`], which the benchmark harnesses feed into the machine
/// model.
pub fn run_with_stats<F, R>(nranks: usize, f: F) -> (Vec<R>, Vec<CommStats>)
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    let world = World::new(nranks);
    let mut results: Vec<Option<(R, CommStats)>> = (0..nranks).map(|_| None).collect();
    if nranks == 1 {
        // Fast path: run inline, no thread spawn.
        let comm = world.attach(0);
        let r = f(&comm);
        results[0] = Some((r, comm.stats()));
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for rank in 0..nranks {
                let world = &world;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = world.attach(rank);
                    let r = f(&comm);
                    let stats = comm.stats();
                    (r, stats)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => results[rank] = Some(pair),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
    }
    let mut out = Vec::with_capacity(nranks);
    let mut stats = Vec::with_capacity(nranks);
    for slot in results {
        let (r, s) = slot.expect("every rank produces a result");
        out.push(r);
        stats.push(s);
    }
    (out, stats)
}

/// Like [`run`] but with per-rank telemetry: each rank gets an
/// [`obs::Recorder`] attached to its communicator (so communication ops
/// auto-emit spans), the closure receives the recorder to add its own
/// spans/counters, and the per-rank [`RankProfile`]s come back in rank
/// order, ready for [`obs::ObsSession::write`] or a cross-rank
/// [`obs::Reduce`] merge.
pub fn run_traced<F, R>(nranks: usize, f: F) -> (Vec<R>, Vec<RankProfile>)
where
    F: Fn(&Comm, &Recorder) -> R + Sync,
    R: Send,
{
    let paired = run(nranks, |comm| {
        let rec = Recorder::new(comm.rank());
        comm.set_recorder(rec.clone());
        let r = f(comm, &rec);
        (r, rec.profile())
    });
    paired.into_iter().unzip()
}

// --------------------------------------------------------------------
// Virtual mode
// --------------------------------------------------------------------

/// Configuration for a virtual-mode launch (see [`run_virtual_cfg`]).
#[derive(Debug, Clone, Copy)]
pub struct VirtualCfg {
    /// Worker-slot pool size: at most this many ranks are runnable at
    /// any instant. 8–16 covers every experiment in the repo.
    pub workers: usize,
    /// Seed for the scheduler's dispatch tie-breaking. Part of the
    /// replay triple: the same `(seed, P, workers)` reproduces the same
    /// dispatch decisions (and, with one worker, the same interleaving).
    pub seed: u64,
    /// Stack size per virtual-rank thread. The default (2 MiB) holds the
    /// deepest recursion in the repo (octree balance) with a wide margin
    /// while keeping 4096 ranks under 8 GiB of reserved stack.
    pub stack_bytes: usize,
}

impl Default for VirtualCfg {
    fn default() -> VirtualCfg {
        VirtualCfg {
            workers: 8,
            seed: 0,
            stack_bytes: 2 << 20,
        }
    }
}

/// Run `f` on `nranks` *virtual* ranks over a `workers`-slot pool and
/// return the per-rank results in rank order — the drop-in twin of
/// [`run`] for large P. Program-observable results are identical to
/// thread mode (pinned by the `check` differential suite); only the
/// execution strategy differs.
pub fn run_virtual<F, R>(nranks: usize, workers: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    run_virtual_cfg(
        nranks,
        VirtualCfg {
            workers,
            ..VirtualCfg::default()
        },
        f,
    )
    .0
}

/// [`run_virtual`] with full configuration; additionally returns each
/// rank's accumulated [`CommStats`] (the [`run_with_stats`] twin).
pub fn run_virtual_cfg<F, R>(nranks: usize, cfg: VirtualCfg, f: F) -> (Vec<R>, Vec<CommStats>)
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    assert!(cfg.workers >= 1, "virtual mode needs at least one worker");
    let sched = Arc::new(vrank::Scheduler::new(nranks, cfg.workers, cfg.seed));
    let world = World::new_virtual(nranks, Arc::clone(&sched));
    let mut slots: Vec<Option<Result<(R, CommStats), Box<dyn std::any::Any + Send>>>> =
        (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let world = &world;
            let f = &f;
            let sched = Arc::clone(&sched);
            let handle = std::thread::Builder::new()
                .name(format!("vrank-{rank}"))
                .stack_size(cfg.stack_bytes)
                .spawn_scoped(scope, move || {
                    sched.rank_start(rank);
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        let comm = world.attach(rank);
                        let r = f(&comm);
                        let stats = comm.stats();
                        (r, stats)
                    }));
                    match out {
                        Ok(pair) => {
                            sched.rank_finish(rank);
                            Ok(pair)
                        }
                        Err(e) => {
                            // Wake every parked peer so nobody waits on a
                            // dead rank; idempotent across multiple panics.
                            sched.poison();
                            Err(e)
                        }
                    }
                })
                .expect("failed to spawn a virtual-rank thread");
            handles.push(handle);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(res) => slots[rank] = Some(res),
                Err(e) => slots[rank] = Some(Err(e)),
            }
        }
    });
    // On failure, re-panic with the *root cause*: prefer a payload that is
    // not the scheduler's secondary poison/deadlock notification.
    let mut fallback: Option<Box<dyn std::any::Any + Send>> = None;
    let mut primary: Option<Box<dyn std::any::Any + Send>> = None;
    let mut out = Vec::with_capacity(nranks);
    let mut stats = Vec::with_capacity(nranks);
    for slot in slots {
        match slot.expect("every rank thread was joined") {
            Ok((r, s)) => {
                out.push(r);
                stats.push(s);
            }
            Err(e) => {
                let is_secondary = e
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("vrank:"));
                if is_secondary {
                    fallback.get_or_insert(e);
                } else {
                    primary.get_or_insert(e);
                }
            }
        }
    }
    if let Some(e) = primary.or(fallback) {
        resume_unwind(e);
    }
    (out, stats)
}

/// Virtual-mode twin of [`run_traced`]: every rank gets a full-detail
/// recorder and the per-rank [`RankProfile`]s come back in rank order.
/// Intended for moderate P; at large P use
/// [`run_virtual_traced_merged`], which caps the per-event detail.
pub fn run_virtual_traced<F, R>(nranks: usize, cfg: VirtualCfg, f: F) -> (Vec<R>, Vec<RankProfile>)
where
    F: Fn(&Comm, &Recorder) -> R + Sync,
    R: Send,
{
    let paired = run_virtual_cfg(nranks, cfg, |comm| {
        let rec = Recorder::new(comm.rank());
        comm.set_recorder(rec.clone());
        let r = f(comm, &rec);
        (r, rec.profile())
    })
    .0;
    paired.into_iter().unzip()
}

/// Cross-rank telemetry from a large-P traced run: the exact merged
/// summary plus full per-event profiles for only the first
/// `detail_tracks` ranks.
#[derive(Debug, Clone)]
pub struct MergedTrace {
    /// Exact merge (via [`obs::Reduce`]) of *every* rank's summary —
    /// phase timings, counters and histograms lose nothing to the track
    /// cap.
    pub summary: Summary,
    /// Full profiles (spans, instants, series) of ranks
    /// `0..detail_tracks`, e.g. for a Chrome-trace export with a bounded
    /// track count.
    pub detail: Vec<RankProfile>,
}

/// Memory-bounded traced launch for large P: ranks `0..detail_tracks`
/// record full per-event detail, all other ranks record summary-only
/// (O(phases) memory each, see [`Recorder::new_summary_only`]), and all
/// `nranks` summaries are merged exactly in rank order. A P = 4096 run
/// therefore holds 4096 summaries + `detail_tracks` event lists — not
/// 4096 Chrome-trace tracks.
pub fn run_virtual_traced_merged<F, R>(
    nranks: usize,
    cfg: VirtualCfg,
    detail_tracks: usize,
    f: F,
) -> (Vec<R>, MergedTrace)
where
    F: Fn(&Comm, &Recorder) -> R + Sync,
    R: Send,
{
    let paired = run_virtual_cfg(nranks, cfg, |comm| {
        let rank = comm.rank();
        let rec = if rank < detail_tracks {
            Recorder::new(rank)
        } else {
            Recorder::new_summary_only(rank)
        };
        comm.set_recorder(rec.clone());
        let r = f(comm, &rec);
        (r, rec.profile())
    })
    .0;
    let mut out = Vec::with_capacity(nranks);
    let mut summary = Summary::default();
    let mut detail = Vec::new();
    for (r, profile) in paired {
        out.push(r);
        summary.reduce(&profile.summary);
        if profile.rank < detail_tracks {
            detail.push(profile);
        }
    }
    (out, MergedTrace { summary, detail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = run(8, |c| c.rank() * c.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn stats_returned_per_rank() {
        let (_, stats) = run_with_stats(3, |c| {
            if c.rank() == 1 {
                c.send(0, 0, &[1u8, 2, 3]);
            }
            if c.rank() == 0 {
                let _ = c.recv::<u8>(1, 0);
            }
            c.barrier();
        });
        assert_eq!(stats[1].p2p_bytes, 3);
        assert_eq!(stats[0].p2p_bytes, 0);
        assert!(stats.iter().all(|s| s.barriers == 1));
    }

    #[test]
    fn traced_run_collects_comm_spans_per_rank() {
        let (out, profiles) = run_traced(3, |c, rec| {
            let _step = rec.span("Step");
            let sum = c.allreduce_sum(&[c.rank() as u64 + 1]);
            c.barrier();
            sum[0]
        });
        assert_eq!(out, vec![6, 6, 6]);
        assert_eq!(profiles.len(), 3);
        for (r, p) in profiles.iter().enumerate() {
            assert_eq!(p.rank, r);
            // The user span plus auto-emitted comm spans are all present.
            assert_eq!(p.summary.phases["Step"].count, 1);
            assert_eq!(p.summary.phases["comm:allreduce"].cat, "comm");
            assert_eq!(p.summary.phases["comm:barrier"].count, 1);
            // allreduce nests allgatherv under it on the same rank.
            assert_eq!(p.summary.phases["comm:allgatherv"].count, 1);
            // Payload sizes landed in the histogram (8 bytes * 3 ranks).
            assert_eq!(p.summary.hists["comm.bytes"].count, 1);
            assert_eq!(p.summary.hists["comm.bytes"].sum, 24);
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        run(2, |c| {
            if c.rank() == 1 {
                panic!("deliberate");
            }
            // Rank 0 must not block forever on a collective with a dead
            // peer in this test; it just returns.
        });
    }
}
