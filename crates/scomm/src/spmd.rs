//! SPMD launcher: run the same closure on `P` simulated ranks.
//!
//! Each rank is a real OS thread with its own [`Comm`] handle; the closure
//! is the "main" of the simulated MPI program. Results are collected in
//! rank order.

use obs::{RankProfile, Recorder};

use crate::comm::{Comm, World};
use crate::stats::CommStats;

/// A standalone single-rank communicator (the analogue of `MPI_COMM_SELF`),
/// for running SPMD algorithms serially without a launcher.
pub fn self_comm() -> Comm {
    World::new(1).attach(0)
}

/// Run `f` on `nranks` ranks and return the per-rank results in rank order.
///
/// Panics in any rank propagate (the launcher re-panics after joining),
/// matching the fail-fast behaviour of an MPI abort.
pub fn run<F, R>(nranks: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    run_with_stats(nranks, f).0
}

/// Like [`run`] but additionally returns each rank's accumulated
/// [`CommStats`], which the benchmark harnesses feed into the machine
/// model.
pub fn run_with_stats<F, R>(nranks: usize, f: F) -> (Vec<R>, Vec<CommStats>)
where
    F: Fn(&Comm) -> R + Sync,
    R: Send,
{
    let world = World::new(nranks);
    let mut results: Vec<Option<(R, CommStats)>> = (0..nranks).map(|_| None).collect();
    if nranks == 1 {
        // Fast path: run inline, no thread spawn.
        let comm = world.attach(0);
        let r = f(&comm);
        results[0] = Some((r, comm.stats()));
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for rank in 0..nranks {
                let world = &world;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = world.attach(rank);
                    let r = f(&comm);
                    let stats = comm.stats();
                    (r, stats)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => results[rank] = Some(pair),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
    }
    let mut out = Vec::with_capacity(nranks);
    let mut stats = Vec::with_capacity(nranks);
    for slot in results {
        let (r, s) = slot.expect("every rank produces a result");
        out.push(r);
        stats.push(s);
    }
    (out, stats)
}

/// Like [`run`] but with per-rank telemetry: each rank gets an
/// [`obs::Recorder`] attached to its communicator (so communication ops
/// auto-emit spans), the closure receives the recorder to add its own
/// spans/counters, and the per-rank [`RankProfile`]s come back in rank
/// order, ready for [`obs::ObsSession::write`] or a cross-rank
/// [`obs::Reduce`] merge.
pub fn run_traced<F, R>(nranks: usize, f: F) -> (Vec<R>, Vec<RankProfile>)
where
    F: Fn(&Comm, &Recorder) -> R + Sync,
    R: Send,
{
    let paired = run(nranks, |comm| {
        let rec = Recorder::new(comm.rank());
        comm.set_recorder(rec.clone());
        let r = f(comm, &rec);
        (r, rec.profile())
    });
    paired.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = run(8, |c| c.rank() * c.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn stats_returned_per_rank() {
        let (_, stats) = run_with_stats(3, |c| {
            if c.rank() == 1 {
                c.send(0, 0, &[1u8, 2, 3]);
            }
            if c.rank() == 0 {
                let _ = c.recv::<u8>(1, 0);
            }
            c.barrier();
        });
        assert_eq!(stats[1].p2p_bytes, 3);
        assert_eq!(stats[0].p2p_bytes, 0);
        assert!(stats.iter().all(|s| s.barriers == 1));
    }

    #[test]
    fn traced_run_collects_comm_spans_per_rank() {
        let (out, profiles) = run_traced(3, |c, rec| {
            let _step = rec.span("Step");
            let sum = c.allreduce_sum(&[c.rank() as u64 + 1]);
            c.barrier();
            sum[0]
        });
        assert_eq!(out, vec![6, 6, 6]);
        assert_eq!(profiles.len(), 3);
        for (r, p) in profiles.iter().enumerate() {
            assert_eq!(p.rank, r);
            // The user span plus auto-emitted comm spans are all present.
            assert_eq!(p.summary.phases["Step"].count, 1);
            assert_eq!(p.summary.phases["comm:allreduce"].cat, "comm");
            assert_eq!(p.summary.phases["comm:barrier"].count, 1);
            // allreduce nests allgatherv under it on the same rank.
            assert_eq!(p.summary.phases["comm:allgatherv"].count, 1);
            // Payload sizes landed in the histogram (8 bytes * 3 ranks).
            assert_eq!(p.summary.hists["comm.bytes"].count, 1);
            assert_eq!(p.summary.hists["comm.bytes"].sum, 24);
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        run(2, |c| {
            if c.rank() == 1 {
                panic!("deliberate");
            }
            // Rank 0 must not block forever on a collective with a dead
            // peer in this test; it just returns.
        });
    }
}
