//! The per-rank communicator handle and the shared "world" behind it.
//!
//! Semantics mirror MPI: `P` ranks execute the same program; collectives
//! must be entered by every rank in the same order; point-to-point messages
//! are matched by `(source, tag)` in FIFO order per `(source, tag)` pair.
//!
//! Internally the world is a set of mpsc channels (point-to-point
//! mailboxes) plus a staging area and a reusable barrier for collectives.
//! A collective is: *write my slot → barrier → read everyone's slots →
//! barrier*. The trailing barrier makes slot reuse by the next collective
//! safe.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex};

use obs::Recorder;

use crate::fault::{FaultCounters, FaultPlan, FaultState};
use crate::pod::{as_bytes, from_bytes, Pod};
use crate::stats::CommStats;

/// A point-to-point message in flight.
pub(crate) struct Message {
    src: usize,
    tag: u64,
    bytes: Vec<u8>,
}

/// Shared state of a simulated machine with `nranks` ranks.
pub(crate) struct World {
    nranks: usize,
    /// Reusable rendezvous for collectives.
    barrier: Barrier,
    /// One staging slot per rank for gather-style collectives.
    slots: Vec<Mutex<Vec<u8>>>,
    /// `nranks * nranks` staging matrix for all-to-all collectives,
    /// indexed `src * nranks + dst`.
    matrix: Vec<Mutex<Vec<u8>>>,
    /// Sender endpoints into each rank's mailbox.
    senders: Vec<Sender<Message>>,
    /// Receiver endpoints, taken once by each rank at startup.
    receivers: Vec<Mutex<Option<Receiver<Message>>>>,
}

impl World {
    pub(crate) fn new(nranks: usize) -> Arc<World> {
        assert!(nranks >= 1, "a communicator needs at least one rank");
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Mutex::new(Some(rx)));
        }
        Arc::new(World {
            nranks,
            barrier: Barrier::new(nranks),
            slots: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            matrix: (0..nranks * nranks)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            senders,
            receivers,
        })
    }

    /// Build the communicator handle for `rank`. Each rank must be attached
    /// exactly once.
    pub(crate) fn attach(self: &Arc<World>, rank: usize) -> Comm {
        let rx = self.receivers[rank]
            .lock()
            .unwrap()
            .take()
            .expect("rank attached twice");
        Comm {
            world: Arc::clone(self),
            rank,
            inbox: rx,
            pending: RefCell::new(VecDeque::new()),
            stats: RefCell::new(CommStats::default()),
            rec: RefCell::new(None),
            fault: RefCell::new(None),
        }
    }
}

/// Per-rank communicator handle (the analogue of an `MPI_Comm` plus the
/// calling rank). Owned by exactly one thread; not `Sync`.
pub struct Comm {
    world: Arc<World>,
    rank: usize,
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call.
    pending: RefCell<VecDeque<Message>>,
    stats: RefCell<CommStats>,
    /// Optional telemetry recorder; when attached, every communication op
    /// emits a `comm`-category span and message sizes feed a histogram.
    rec: RefCell<Option<Recorder>>,
    /// Optional adversarial scheduler (see [`crate::fault`]); when attached,
    /// p2p deliveries pass through a seeded jitter buffer and collectives
    /// stagger their entry.
    fault: RefCell<Option<FaultState<Message>>>,
}

impl Comm {
    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.world.nranks
    }

    /// Snapshot of the communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// Reset the statistics counters (e.g. between benchmark phases).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }

    /// Attach a telemetry recorder. From here on every communication op
    /// records a span named `comm:<op>` (category `"comm"`) — wait time at
    /// barriers shows up as span duration — and payload sizes are recorded
    /// into the `comm.bytes` histogram.
    pub fn set_recorder(&self, rec: Recorder) {
        *self.rec.borrow_mut() = Some(rec);
    }

    /// The attached recorder, if any. Cloning is cheap: a `Recorder` is a
    /// shared handle, so layers above (solvers, AMR) can pick up the same
    /// per-rank recorder from the communicator they were given.
    pub fn recorder(&self) -> Option<Recorder> {
        self.rec.borrow().clone()
    }

    /// Open a `comm`-category span for one op, if a recorder is attached.
    fn op_span(&self, name: &'static str) -> Option<obs::SpanGuard> {
        self.rec.borrow().as_ref().map(|r| r.span_cat(name, "comm"))
    }

    /// Record one op's payload size into the message-size histogram.
    fn op_bytes(&self, bytes: u64) {
        if let Some(r) = self.rec.borrow().as_ref() {
            r.record_value("comm.bytes", bytes);
        }
    }

    // ----------------------------------------------------------------
    // Fault injection
    // ----------------------------------------------------------------

    /// Attach (or with `None`, detach) a seeded adversarial scheduler.
    /// While attached, point-to-point deliveries on *this rank* pass
    /// through a deterministic jitter buffer (delay / reorder /
    /// drop-with-panic) and collective entries may stagger. Typically
    /// every rank attaches the same plan right after `spmd::run` starts.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.borrow_mut() = plan.map(|p| FaultState::new(p, self.rank));
    }

    /// What the fault scheduler did so far (`None` when no plan attached).
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.fault.borrow().as_ref().map(|f| f.counters)
    }

    /// Pull the next message off the wire, through the fault scheduler when
    /// one is attached. Deadlock-free: the virtual clock only advances when
    /// the real inbox is empty, so every held message is eventually
    /// released without requiring further traffic.
    fn pull_message(&self) -> Message {
        let mut fault = self.fault.borrow_mut();
        let Some(fs) = fault.as_mut() else {
            drop(fault);
            return self
                .inbox
                .recv()
                .expect("all senders hung up while waiting for a message");
        };
        loop {
            // Admit everything already arrived without blocking.
            while let Ok(m) = self.inbox.try_recv() {
                let (src, tag) = (m.src, m.tag);
                fs.admit(src, tag, m);
            }
            if let Some(m) = fs.pop_ready() {
                return m;
            }
            if fs.is_drained() {
                // Nothing buffered: block for the next real arrival.
                let m = self
                    .inbox
                    .recv()
                    .expect("all senders hung up while waiting for a message");
                let (src, tag) = (m.src, m.tag);
                fs.admit(src, tag, m);
            } else {
                // Buffered but not yet released and nothing new arriving:
                // advance the virtual clock to the earliest release.
                fs.tick_to_next_release();
            }
        }
    }

    /// Seeded stagger before entering a collective rendezvous.
    fn maybe_stagger(&self) {
        let yields = self
            .fault
            .borrow_mut()
            .as_mut()
            .map_or(0, |f| f.collective_stagger());
        for _ in 0..yields {
            std::thread::yield_now();
        }
    }

    // ----------------------------------------------------------------
    // Point-to-point
    // ----------------------------------------------------------------

    /// Buffered, non-blocking send of a typed slice to `dst` with `tag`.
    pub fn send<T: Pod>(&self, dst: usize, tag: u64, data: &[T]) {
        let _t = self.op_span("comm:send");
        let bytes = as_bytes(data).to_vec();
        self.op_bytes(bytes.len() as u64);
        {
            let mut s = self.stats.borrow_mut();
            s.p2p_messages += 1;
            s.p2p_bytes += bytes.len() as u64;
        }
        self.world.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                bytes,
            })
            .expect("receiver hung up: peer rank terminated early");
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv<T: Pod>(&self, src: usize, tag: u64) -> Vec<T> {
        let _t = self.op_span("comm:recv");
        // First scan messages that arrived earlier but were not matched.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|m| m.src == src && m.tag == tag) {
                let msg = pending.remove(pos).unwrap();
                return from_bytes(&msg.bytes);
            }
        }
        loop {
            let msg = self.pull_message();
            if msg.src == src && msg.tag == tag {
                return from_bytes(&msg.bytes);
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Blocking receive of the next message with `tag` from any source.
    /// Returns `(source, data)`.
    pub fn recv_any<T: Pod>(&self, tag: u64) -> (usize, Vec<T>) {
        let _t = self.op_span("comm:recv");
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|m| m.tag == tag) {
                let msg = pending.remove(pos).unwrap();
                return (msg.src, from_bytes(&msg.bytes));
            }
        }
        loop {
            let msg = self.pull_message();
            if msg.tag == tag {
                return (msg.src, from_bytes(&msg.bytes));
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Combined send to `dst` and receive from `src` (both with `tag`);
    /// deadlock-free because sends are buffered.
    pub fn sendrecv<T: Pod>(&self, dst: usize, src: usize, tag: u64, data: &[T]) -> Vec<T> {
        self.send(dst, tag, data);
        self.recv(src, tag)
    }

    // ----------------------------------------------------------------
    // Collectives
    // ----------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let _t = self.op_span("comm:barrier");
        self.maybe_stagger();
        self.stats.borrow_mut().barriers += 1;
        self.world.barrier.wait();
    }

    /// Gather `data` (same length on every rank) from all ranks, in rank
    /// order, on all ranks.
    pub fn allgather<T: Pod>(&self, data: &[T]) -> Vec<T> {
        self.allgatherv(data)
    }

    /// Gather variable-length contributions from all ranks, concatenated in
    /// rank order, on all ranks.
    pub fn allgatherv<T: Pod>(&self, data: &[T]) -> Vec<T> {
        let _t = self.op_span("comm:allgatherv");
        self.maybe_stagger();
        let world = &self.world;
        {
            let mut slot = world.slots[self.rank].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(data));
        }
        world.barrier.wait();
        let mut out = Vec::new();
        let mut total_bytes = 0u64;
        for r in 0..world.nranks {
            let slot = world.slots[r].lock().unwrap();
            total_bytes += slot.len() as u64;
            out.extend(from_bytes::<T>(&slot));
        }
        world.barrier.wait();
        {
            let mut s = self.stats.borrow_mut();
            s.allgathers += 1;
            s.collective_bytes += total_bytes;
        }
        self.op_bytes(total_bytes);
        out
    }

    /// Allocation-free counterpart of [`Comm::allgatherv`]: gathered
    /// contributions are appended to `out` (cleared first, capacity
    /// reused) in rank order. Statistics and telemetry are identical to
    /// [`Comm::allgatherv`].
    pub fn allgatherv_into<T: Pod>(&self, data: &[T], out: &mut Vec<T>) {
        let _t = self.op_span("comm:allgatherv");
        self.maybe_stagger();
        let world = &self.world;
        {
            let mut slot = world.slots[self.rank].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(data));
        }
        world.barrier.wait();
        out.clear();
        let mut total_bytes = 0u64;
        for r in 0..world.nranks {
            let slot = world.slots[r].lock().unwrap();
            total_bytes += slot.len() as u64;
            crate::pod::extend_from_bytes(out, &slot);
        }
        world.barrier.wait();
        {
            let mut s = self.stats.borrow_mut();
            s.allgathers += 1;
            s.collective_bytes += total_bytes;
        }
        self.op_bytes(total_bytes);
    }

    /// All-reduce with an arbitrary elementwise combiner. All ranks must
    /// pass equal-length slices.
    pub fn allreduce<T: Pod, F: Fn(T, T) -> T>(&self, data: &[T], op: F) -> Vec<T> {
        let _t = self.op_span("comm:allreduce");
        let n = data.len();
        let gathered = self.allgatherv(data);
        assert_eq!(
            gathered.len(),
            n * self.size(),
            "allreduce requires equal-length contributions on every rank"
        );
        let mut s = self.stats.borrow_mut();
        s.allreduces += 1;
        s.allgathers -= 1; // implemented on top of allgather; count once
        drop(s);
        let mut out: Vec<T> = gathered[..n].to_vec();
        for r in 1..self.size() {
            for i in 0..n {
                out[i] = op(out[i], gathered[r * n + i]);
            }
        }
        out
    }

    /// Elementwise global sum.
    pub fn allreduce_sum<T: Pod + std::ops::Add<Output = T>>(&self, data: &[T]) -> Vec<T> {
        self.allreduce(data, |a, b| a + b)
    }

    /// Elementwise global max (by `PartialOrd`).
    pub fn allreduce_max<T: Pod + PartialOrd>(&self, data: &[T]) -> Vec<T> {
        self.allreduce(data, |a, b| if b > a { b } else { a })
    }

    /// Elementwise global min (by `PartialOrd`).
    pub fn allreduce_min<T: Pod + PartialOrd>(&self, data: &[T]) -> Vec<T> {
        self.allreduce(data, |a, b| if b < a { b } else { a })
    }

    /// Exclusive prefix sum over one value per rank: rank r receives the
    /// sum of the values of ranks `0..r` (0 on rank 0).
    pub fn exscan_sum<T>(&self, value: T) -> T
    where
        T: Pod + std::ops::Add<Output = T> + Default,
    {
        let _t = self.op_span("comm:exscan");
        let all = self.allgatherv(&[value]);
        let mut s = self.stats.borrow_mut();
        s.exscans += 1;
        s.allgathers -= 1;
        drop(s);
        let mut acc = T::default();
        for &v in &all[..self.rank] {
            acc = acc + v;
        }
        acc
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn bcast<T: Pod>(&self, root: usize, data: &[T]) -> Vec<T> {
        let _t = self.op_span("comm:bcast");
        self.maybe_stagger();
        let world = &self.world;
        if self.rank == root {
            let mut slot = world.slots[root].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(data));
        }
        world.barrier.wait();
        let out = {
            let slot = world.slots[root].lock().unwrap();
            from_bytes::<T>(&slot)
        };
        world.barrier.wait();
        {
            let mut s = self.stats.borrow_mut();
            s.bcasts += 1;
            s.collective_bytes += (out.len() * std::mem::size_of::<T>()) as u64;
        }
        self.op_bytes((out.len() * std::mem::size_of::<T>()) as u64);
        out
    }

    /// Personalized all-to-all: `outgoing[d]` is this rank's payload for
    /// rank `d` (length `size()`); returns `incoming` where `incoming[s]`
    /// is the payload rank `s` sent to this rank.
    pub fn alltoallv<T: Pod>(&self, outgoing: &[Vec<T>]) -> Vec<Vec<T>> {
        let _t = self.op_span("comm:alltoallv");
        let p = self.size();
        assert_eq!(outgoing.len(), p, "alltoallv needs one payload per rank");
        self.maybe_stagger();
        let world = &self.world;
        let mut sent_bytes = 0u64;
        for (dst, payload) in outgoing.iter().enumerate() {
            let mut slot = world.matrix[self.rank * p + dst].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(payload));
            if dst != self.rank {
                sent_bytes += slot.len() as u64;
            }
        }
        world.barrier.wait();
        let mut incoming = Vec::with_capacity(p);
        for src in 0..p {
            let slot = world.matrix[src * p + self.rank].lock().unwrap();
            incoming.push(from_bytes::<T>(&slot));
        }
        world.barrier.wait();
        {
            let mut s = self.stats.borrow_mut();
            s.alltoalls += 1;
            s.p2p_messages += outgoing
                .iter()
                .enumerate()
                .filter(|(d, v)| *d != self.rank && !v.is_empty())
                .count() as u64;
            s.p2p_bytes += sent_bytes;
        }
        self.op_bytes(sent_bytes);
        incoming
    }

    /// Personalized all-to-all over flat, caller-managed buffers — the
    /// allocation-free counterpart of [`Comm::alltoallv`]. `send` holds the
    /// payloads for ranks `0..size()` back to back, `send_counts[d]`
    /// elements each. Received payloads are appended to `recv` (cleared
    /// first, capacity reused) in source-rank order and `recv_counts[s]`
    /// reports how many elements rank `s` sent. Statistics and telemetry
    /// are identical to [`Comm::alltoallv`].
    pub fn alltoallv_flat<T: Pod>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
    ) {
        let _t = self.op_span("comm:alltoallv");
        let p = self.size();
        assert_eq!(send_counts.len(), p, "alltoallv needs one count per rank");
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            send.len(),
            "send counts must cover the flat send buffer exactly"
        );
        self.maybe_stagger();
        let world = &self.world;
        let mut sent_bytes = 0u64;
        let mut p2p_msgs = 0u64;
        let mut off = 0usize;
        for (dst, &cnt) in send_counts.iter().enumerate() {
            let mut slot = world.matrix[self.rank * p + dst].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(&send[off..off + cnt]));
            off += cnt;
            if dst != self.rank {
                sent_bytes += slot.len() as u64;
                if cnt != 0 {
                    p2p_msgs += 1;
                }
            }
        }
        world.barrier.wait();
        recv.clear();
        recv_counts.clear();
        let elem = std::mem::size_of::<T>().max(1);
        for src in 0..p {
            let slot = world.matrix[src * p + self.rank].lock().unwrap();
            recv_counts.push(slot.len() / elem);
            crate::pod::extend_from_bytes(recv, &slot);
        }
        world.barrier.wait();
        {
            let mut s = self.stats.borrow_mut();
            s.alltoalls += 1;
            s.p2p_messages += p2p_msgs;
            s.p2p_bytes += sent_bytes;
        }
        self.op_bytes(sent_bytes);
    }

    /// Convenience: gather one `u64` per rank (the classic "element counts"
    /// exchange used to establish global Morton ranges; cf. the paper's
    /// `MPI_Allgather` of one long integer per core).
    pub fn allgather_u64(&self, value: u64) -> Vec<u64> {
        self.allgatherv(&[value])
    }
}

#[cfg(test)]
mod tests {
    use crate::spmd;

    #[test]
    fn rank_and_size() {
        let out = spmd::run(5, |c| (c.rank(), c.size()));
        for (r, (rank, size)) in out.iter().enumerate() {
            assert_eq!(*rank, r);
            assert_eq!(*size, 5);
        }
    }

    #[test]
    fn p2p_ring() {
        // Each rank sends its id around a ring; after P hops it returns.
        let p = 6;
        let out = spmd::run(p, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let mut token = vec![c.rank() as u64];
            for _ in 0..c.size() {
                c.send(next, 7, &token);
                token = c.recv(prev, 7);
            }
            token[0]
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v, r as u64);
        }
    }

    #[test]
    fn p2p_tag_matching_out_of_order() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[10u64]);
                c.send(1, 2, &[20u64]);
                0
            } else {
                // Receive in reverse tag order; buffering must hold tag 1.
                let b = c.recv::<u64>(0, 2);
                let a = c.recv::<u64>(0, 1);
                a[0] * 100 + b[0]
            }
        });
        assert_eq!(out[1], 1020);
    }

    #[test]
    fn allgatherv_variable_lengths() {
        let out = spmd::run(4, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            c.allgatherv(&mine)
        });
        let expect: Vec<u64> = vec![0, 0, 1, 0, 1, 2];
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn allgatherv_into_matches_and_reuses_buffer() {
        let out = spmd::run(4, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            let reference = c.allgatherv(&mine);
            let mut buf = Vec::new();
            c.allgatherv_into(&mine, &mut buf);
            assert_eq!(buf, reference);
            // Warm call must reuse the output buffer's allocation.
            let ptr = buf.as_ptr();
            c.allgatherv_into(&mine, &mut buf);
            assert_eq!(buf, reference);
            assert_eq!(ptr, buf.as_ptr(), "allgatherv_into must not reallocate");
            (buf, c.stats().allgathers)
        });
        for (o, gathers) in out {
            assert_eq!(o, vec![0, 0, 1, 0, 1, 2]);
            assert_eq!(gathers, 3, "into-variant must count as an allgather");
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = spmd::run(4, |c| {
            let v = [c.rank() as f64, -(c.rank() as f64)];
            let mx = c.allreduce_max(&v);
            let mn = c.allreduce_min(&v);
            (mx[0], mx[1], mn[0], mn[1])
        });
        for o in out {
            assert_eq!(o, (3.0, 0.0, 0.0, -3.0));
        }
    }

    #[test]
    fn exscan() {
        let out = spmd::run(5, |c| c.exscan_sum((c.rank() + 1) as u64));
        assert_eq!(out, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = spmd::run(3, |c| {
            let data = if c.rank() == 2 {
                vec![42u32, 43]
            } else {
                vec![]
            };
            c.bcast(2, &data)
        });
        for o in out {
            assert_eq!(o, vec![42, 43]);
        }
    }

    #[test]
    fn alltoallv_exchange() {
        let p = 4;
        let out = spmd::run(p, |c| {
            let outgoing: Vec<Vec<u64>> = (0..c.size())
                .map(|d| vec![(c.rank() * 10 + d) as u64])
                .collect();
            c.alltoallv(&outgoing)
        });
        for (me, incoming) in out.iter().enumerate() {
            for (src, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![(src * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_flat_matches_nested_and_reuses_buffers() {
        let p = 4;
        let out = spmd::run(p, |c| {
            // Nested reference path.
            let outgoing: Vec<Vec<u64>> = (0..c.size())
                .map(|d| {
                    (0..d)
                        .map(|i| (c.rank() * 100 + d * 10 + i) as u64)
                        .collect()
                })
                .collect();
            let nested = c.alltoallv(&outgoing);
            let s0 = c.stats();

            // Flat path with the same payloads must deliver identical data
            // and account identical message/byte counts.
            let send: Vec<u64> = outgoing.iter().flatten().copied().collect();
            let send_counts: Vec<usize> = outgoing.iter().map(Vec::len).collect();
            let mut recv = Vec::new();
            let mut recv_counts = Vec::new();
            c.alltoallv_flat(&send, &send_counts, &mut recv, &mut recv_counts);
            let s1 = c.stats();
            assert_eq!(s1.alltoalls - s0.alltoalls, 1);
            assert_eq!(s1.p2p_messages - s0.p2p_messages, s0.p2p_messages);
            assert_eq!(s1.p2p_bytes - s0.p2p_bytes, s0.p2p_bytes);

            let flat_nested: Vec<u64> = nested.iter().flatten().copied().collect();
            assert_eq!(recv, flat_nested);
            assert_eq!(recv_counts, nested.iter().map(Vec::len).collect::<Vec<_>>());

            // Second call must reuse the receive buffer's allocation.
            let ptr = recv.as_ptr();
            c.alltoallv_flat(&send, &send_counts, &mut recv, &mut recv_counts);
            assert_eq!(recv, flat_nested);
            assert_eq!(recv.as_ptr(), ptr, "flat exchange must not reallocate");
            c.stats()
        });
        for s in out {
            assert_eq!(s.alltoalls, 3);
        }
    }

    #[test]
    fn alltoallv_empty_payloads() {
        let out = spmd::run(3, |c| {
            let outgoing: Vec<Vec<f64>> = vec![Vec::new(); c.size()];
            c.alltoallv(&outgoing)
        });
        for incoming in out {
            assert!(incoming.iter().all(|v| v.is_empty()));
        }
    }

    #[test]
    fn stats_counting() {
        let out = spmd::run(2, |c| {
            c.barrier();
            let _ = c.allgather_u64(1);
            if c.rank() == 0 {
                c.send(1, 0, &[1.0f64; 8]);
            } else {
                let _ = c.recv::<f64>(0, 0);
            }
            c.barrier();
            c.stats()
        });
        assert_eq!(out[0].barriers, 2);
        assert_eq!(out[0].allgathers, 1);
        assert_eq!(out[0].p2p_messages, 1);
        assert_eq!(out[0].p2p_bytes, 64);
        assert_eq!(out[1].p2p_messages, 0);
    }

    #[test]
    fn single_rank_world() {
        let out = spmd::run(1, |c| {
            let g = c.allgather_u64(9);
            let s = c.allreduce_sum(&[4.0f64]);
            (g, s[0])
        });
        assert_eq!(out[0].0, vec![9]);
        assert_eq!(out[0].1, 4.0);
    }

    #[test]
    fn fault_injection_preserves_p2p_semantics() {
        // Under aggressive delay/reorder, tag- and source-matched receives
        // must still return exactly the right payloads: many-to-one with
        // mixed tags, received in an adversarial order.
        use crate::fault::FaultPlan;
        let p = 5;
        let out = spmd::run(p, move |c| {
            c.set_fault_plan(Some(FaultPlan::delays(0xfeed)));
            if c.rank() == 0 {
                let mut sum = 0u64;
                // Receive low tags first even though they interleave.
                for tag in [1u64, 2, 3] {
                    for src in 1..c.size() {
                        let v = c.recv::<u64>(src, tag);
                        assert_eq!(v, vec![(src as u64) * 100 + tag]);
                        sum += v[0];
                    }
                }
                let delayed = c.fault_counters().unwrap().delayed;
                c.set_fault_plan(None);
                (sum, delayed)
            } else {
                for tag in [3u64, 1, 2] {
                    c.send(0, tag, &[(c.rank() as u64) * 100 + tag]);
                }
                c.set_fault_plan(None);
                (0, 0)
            }
        });
        let expect: u64 = (1..p as u64).map(|s| 3 * s * 100 + 6).sum();
        assert_eq!(out[0].0, expect);
        assert!(out[0].1 > 0, "the plan must actually delay something");
    }

    #[test]
    fn fault_injection_collectives_unaffected_by_stagger() {
        use crate::fault::FaultPlan;
        let out = spmd::run(4, |c| {
            c.set_fault_plan(Some(FaultPlan::delays(7)));
            let g = c.allgather_u64(c.rank() as u64);
            let s = c.allreduce_sum(&[1.0f64])[0];
            let outgoing: Vec<Vec<u64>> =
                (0..c.size()).map(|d| vec![(c.rank() + d) as u64]).collect();
            let inc = c.alltoallv(&outgoing);
            c.set_fault_plan(None);
            (g, s, inc)
        });
        for (me, (g, s, inc)) in out.iter().enumerate() {
            assert_eq!(g, &vec![0, 1, 2, 3]);
            assert_eq!(*s, 4.0);
            for (src, payload) in inc.iter().enumerate() {
                assert_eq!(payload, &vec![(src + me) as u64]);
            }
        }
    }

    #[test]
    fn fault_injection_is_deterministic_across_runs() {
        // The same seed must produce the same per-rank fault counters.
        use crate::fault::FaultPlan;
        let run_once = || {
            spmd::run(4, |c| {
                c.set_fault_plan(Some(FaultPlan::delays(99)));
                let next = (c.rank() + 1) % c.size();
                let prev = (c.rank() + c.size() - 1) % c.size();
                for round in 0..20u64 {
                    c.send(next, round % 3, &[round]);
                    let v = c.recv::<u64>(prev, round % 3);
                    assert_eq!(v, vec![round]);
                    c.barrier();
                }
                let counters = c.fault_counters().unwrap();
                c.set_fault_plan(None);
                counters
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        assert!(a.iter().all(|f| f.admitted == 20));
    }
}
