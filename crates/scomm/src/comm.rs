//! The per-rank communicator handle and the shared "world" behind it.
//!
//! Semantics mirror MPI: `P` ranks execute the same program; collectives
//! must be entered by every rank in the same order; point-to-point messages
//! are matched by `(source, tag)` in FIFO order per `(source, tag)` pair.
//!
//! Internally the world is a set of mpsc channels (point-to-point
//! mailboxes) plus a staging area and a reusable barrier for collectives.
//! A collective is: *write my slot → barrier → read everyone's slots →
//! barrier*. The trailing barrier makes slot reuse by the next collective
//! safe.
//!
//! ## Execution modes
//!
//! A world runs in one of two modes, chosen at construction and invisible
//! to the program running on it:
//!
//! * **Thread mode** ([`crate::spmd::run`]): one OS thread per rank, all
//!   runnable; blocking waits sit in `mpsc::recv` / `Barrier::wait`.
//! * **Virtual mode** ([`crate::spmd::run_virtual`]): ranks are virtual,
//!   multiplexed over a fixed worker pool by a [`vrank::Scheduler`].
//!   Every blocking point routes through the scheduler instead of the OS:
//!   a rank that would block *parks* (releasing its worker slot to a
//!   runnable rank) and is woken when mail arrives or the collective
//!   rendezvous completes. The yield surface is exactly the helpers
//!   below: [`Comm`] `recv_wire` (message wait), `rendezvous` (collective
//!   barrier), `post` (send-side wakeup), plus a cooperative yield in
//!   [`Comm::test`] and in the fault stagger so poll loops make progress
//!   on a single-worker pool.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Barrier, Mutex};

use vrank::Scheduler;

use obs::Recorder;

use crate::fault::{FaultCounters, FaultPlan, FaultState};
use crate::pod::{as_bytes, from_bytes, Pod};
use crate::request::{Exchange, RecvRequest, SendRequest};
use crate::stats::CommStats;

/// Name under which completed nonblocking receives and exchange rounds
/// accumulate their overlap window (post→wait-entry, i.e. the time a
/// request was in flight while the rank was free to compute).
pub const OVERLAP_COUNTER: &str = "comm.overlap_ns";

/// A point-to-point message in flight.
pub(crate) struct Message {
    src: usize,
    tag: u64,
    bytes: Vec<u8>,
}

/// Shared state of a simulated machine with `nranks` ranks.
pub(crate) struct World {
    nranks: usize,
    /// Reusable rendezvous for collectives.
    barrier: Barrier,
    /// One staging slot per rank for gather-style collectives.
    slots: Vec<Mutex<Vec<u8>>>,
    /// Sparse all-to-all staging: `a2a[dst]` collects the `(src, payload)`
    /// pairs addressed to `dst` for the round in flight; the receiver
    /// drains its own row between the two rendezvous. Sparse by
    /// construction (empty payloads are never staged), so the footprint
    /// is O(messages actually sent) — the dense per-pair matrix this
    /// replaces held `nranks²` mutexes, which at P = 4096 was 16.7M locks
    /// of dead weight before the first byte moved.
    a2a: Vec<Mutex<Vec<(usize, Vec<u8>)>>>,
    /// Sender endpoints into each rank's mailbox.
    senders: Vec<Sender<Message>>,
    /// Receiver endpoints, taken once by each rank at startup.
    receivers: Vec<Mutex<Option<Receiver<Message>>>>,
    /// Virtual-mode scheduler; `None` in thread-per-rank mode.
    vr: Option<Arc<Scheduler>>,
}

impl World {
    pub(crate) fn new(nranks: usize) -> Arc<World> {
        World::build(nranks, None)
    }

    /// A world whose ranks are virtual, scheduled cooperatively by `vr`
    /// (see [`crate::spmd::run_virtual`]). The scheduler must have been
    /// created for the same `nranks`.
    pub(crate) fn new_virtual(nranks: usize, vr: Arc<Scheduler>) -> Arc<World> {
        assert_eq!(vr.nranks(), nranks, "scheduler sized for a different world");
        World::build(nranks, Some(vr))
    }

    fn build(nranks: usize, vr: Option<Arc<Scheduler>>) -> Arc<World> {
        assert!(nranks >= 1, "a communicator needs at least one rank");
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Mutex::new(Some(rx)));
        }
        Arc::new(World {
            nranks,
            barrier: Barrier::new(nranks),
            slots: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            a2a: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            senders,
            receivers,
            vr,
        })
    }

    /// Build the communicator handle for `rank`. Each rank must be attached
    /// exactly once.
    pub(crate) fn attach(self: &Arc<World>, rank: usize) -> Comm {
        let rx = self.receivers[rank]
            .lock()
            .unwrap()
            .take()
            .expect("rank attached twice");
        Comm {
            world: Arc::clone(self),
            rank,
            inbox: rx,
            pending: RefCell::new(VecDeque::new()),
            stats: RefCell::new(CommStats::default()),
            rec: RefCell::new(None),
            fault: RefCell::new(None),
        }
    }
}

/// Per-rank communicator handle (the analogue of an `MPI_Comm` plus the
/// calling rank). Owned by exactly one thread; not `Sync`.
pub struct Comm {
    world: Arc<World>,
    rank: usize,
    inbox: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call.
    pending: RefCell<VecDeque<Message>>,
    stats: RefCell<CommStats>,
    /// Optional telemetry recorder; when attached, every communication op
    /// emits a `comm`-category span and message sizes feed a histogram.
    rec: RefCell<Option<Recorder>>,
    /// Optional adversarial scheduler (see [`crate::fault`]); when attached,
    /// p2p deliveries pass through a seeded jitter buffer and collectives
    /// stagger their entry.
    fault: RefCell<Option<FaultState<Message>>>,
}

impl Comm {
    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.world.nranks
    }

    /// Snapshot of the communication statistics accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// Reset the statistics counters (e.g. between benchmark phases).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }

    /// Attach a telemetry recorder. From here on every communication op
    /// records a span named `comm:<op>` (category `"comm"`) — wait time at
    /// barriers shows up as span duration — and payload sizes are recorded
    /// into the `comm.bytes` histogram.
    pub fn set_recorder(&self, rec: Recorder) {
        *self.rec.borrow_mut() = Some(rec);
    }

    /// The attached recorder, if any. Cloning is cheap: a `Recorder` is a
    /// shared handle, so layers above (solvers, AMR) can pick up the same
    /// per-rank recorder from the communicator they were given.
    pub fn recorder(&self) -> Option<Recorder> {
        self.rec.borrow().clone()
    }

    /// Open a `comm`-category span for one op, if a recorder is attached.
    fn op_span(&self, name: &'static str) -> Option<obs::SpanGuard> {
        self.rec.borrow().as_ref().map(|r| r.span_cat(name, "comm"))
    }

    /// Record one op's payload size into the message-size histogram.
    fn op_bytes(&self, bytes: u64) {
        if let Some(r) = self.rec.borrow().as_ref() {
            r.record_value("comm.bytes", bytes);
        }
    }

    // ----------------------------------------------------------------
    // Fault injection
    // ----------------------------------------------------------------

    /// Attach (or with `None`, detach) a seeded adversarial scheduler.
    /// While attached, point-to-point deliveries on *this rank* pass
    /// through a deterministic jitter buffer (delay / reorder /
    /// drop-with-panic) and collective entries may stagger. Typically
    /// every rank attaches the same plan right after `spmd::run` starts.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.borrow_mut() = plan.map(|p| FaultState::new(p, self.rank));
    }

    /// What the fault scheduler did so far (`None` when no plan attached).
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.fault.borrow().as_ref().map(|f| f.counters)
    }

    // ----------------------------------------------------------------
    // Blocking points (the virtual-mode yield surface)
    // ----------------------------------------------------------------

    /// Block until the next message arrives on this rank's mailbox. In
    /// thread mode this is a plain channel `recv`; in virtual mode the
    /// rank parks in the scheduler (releasing its worker slot) until a
    /// sender's [`Comm::post`] notifies its mailbox. The mail-epoch
    /// handshake closes the race where a message lands between the
    /// `try_recv` probe and the park: the epoch is read first, the sender
    /// bumps it after enqueuing, and a park with a stale epoch returns
    /// immediately.
    fn recv_wire(&self) -> Message {
        let Some(vs) = &self.world.vr else {
            return self
                .inbox
                .recv()
                .expect("all senders hung up while waiting for a message");
        };
        loop {
            let seen = vs.mail_epoch(self.rank);
            match self.inbox.try_recv() {
                Ok(m) => return m,
                Err(TryRecvError::Empty) => vs.park_mail(self.rank, seen),
                Err(TryRecvError::Disconnected) => {
                    panic!("all senders hung up while waiting for a message")
                }
            }
        }
    }

    /// Enqueue a message into `dst`'s mailbox and, in virtual mode, wake
    /// `dst` if it is parked waiting for mail. Every send-side path (p2p,
    /// split-phase exchange) must go through here — a raw channel send
    /// would leave a parked receiver sleeping forever.
    fn post(&self, dst: usize, tag: u64, bytes: Vec<u8>) {
        self.world.senders[dst]
            .send(Message {
                src: self.rank,
                tag,
                bytes,
            })
            .expect("receiver hung up: peer rank terminated early");
        if let Some(vs) = &self.world.vr {
            vs.notify_mail(dst);
        }
    }

    /// Collective rendezvous: all ranks enter, none leaves before the
    /// last. Thread mode uses the shared [`std::sync::Barrier`]; virtual
    /// mode uses the scheduler-aware barrier, in which the first
    /// `nranks - 1` arrivals park (handing their worker slots to ranks
    /// that still have work) and the last arrival releases everyone.
    fn rendezvous(&self) {
        match &self.world.vr {
            None => {
                self.world.barrier.wait();
            }
            Some(vs) => vs.barrier(self.rank),
        }
    }

    /// Cooperative yield inside poll loops: in virtual mode, offer the
    /// worker slot to a runnable rank (without this, a `test` poll loop
    /// on a single-worker pool would spin forever while the sender never
    /// runs); in thread mode, a plain OS yield.
    fn poll_yield(&self) {
        match &self.world.vr {
            None => std::thread::yield_now(),
            Some(vs) => vs.yield_now(self.rank),
        }
    }

    /// Pull the next message off the wire, through the fault scheduler when
    /// one is attached. Deadlock-free: the virtual clock only advances when
    /// the real inbox is empty, so every held message is eventually
    /// released without requiring further traffic.
    fn pull_message(&self) -> Message {
        let mut fault = self.fault.borrow_mut();
        let Some(fs) = fault.as_mut() else {
            drop(fault);
            return self.recv_wire();
        };
        loop {
            // Admit everything already arrived without blocking.
            while let Ok(m) = self.inbox.try_recv() {
                let (src, tag) = (m.src, m.tag);
                fs.admit(src, tag, m);
            }
            if let Some(m) = fs.pop_ready() {
                return m;
            }
            if fs.is_drained() {
                // Nothing buffered: block for the next real arrival.
                let m = self.recv_wire();
                let (src, tag) = (m.src, m.tag);
                fs.admit(src, tag, m);
            } else {
                // Buffered but not yet released and nothing new arriving:
                // advance the virtual clock to the earliest release.
                fs.tick_to_next_release();
            }
        }
    }

    /// Seeded stagger before entering a collective rendezvous.
    fn maybe_stagger(&self) {
        let yields = self
            .fault
            .borrow_mut()
            .as_mut()
            .map_or(0, |f| f.collective_stagger());
        for _ in 0..yields {
            self.poll_yield();
        }
    }

    // ----------------------------------------------------------------
    // Point-to-point
    // ----------------------------------------------------------------

    /// Buffered, non-blocking send of a typed slice to `dst` with `tag`.
    pub fn send<T: Pod>(&self, dst: usize, tag: u64, data: &[T]) {
        let _t = self.op_span("comm:send");
        let bytes = as_bytes(data).to_vec();
        self.op_bytes(bytes.len() as u64);
        {
            let mut s = self.stats.borrow_mut();
            s.p2p_messages += 1;
            s.p2p_bytes += bytes.len() as u64;
        }
        self.post(dst, tag, bytes);
    }

    /// Block until a message from `src` with `tag` is available and return
    /// it: the matching core shared by `recv`, `wait` and `exchange_end`.
    /// Scans earlier unmatched arrivals first, then pulls from the wire
    /// (through the fault scheduler when one is attached, so delays and
    /// reordering take effect here — at completion time).
    fn match_message(&self, src: usize, tag: u64) -> Message {
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|m| m.src == src && m.tag == tag) {
                return pending.remove(pos).unwrap();
            }
        }
        loop {
            let msg = self.pull_message();
            if msg.src == src && msg.tag == tag {
                return msg;
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv<T: Pod>(&self, src: usize, tag: u64) -> Vec<T> {
        let _t = self.op_span("comm:recv");
        from_bytes(&self.match_message(src, tag).bytes)
    }

    /// Blocking receive of the next message with `tag` from any source.
    /// Returns `(source, data)`.
    pub fn recv_any<T: Pod>(&self, tag: u64) -> (usize, Vec<T>) {
        let _t = self.op_span("comm:recv");
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|m| m.tag == tag) {
                let msg = pending.remove(pos).unwrap();
                return (msg.src, from_bytes(&msg.bytes));
            }
        }
        loop {
            let msg = self.pull_message();
            if msg.tag == tag {
                return (msg.src, from_bytes(&msg.bytes));
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Combined send to `dst` and receive from `src` (both with `tag`);
    /// deadlock-free because sends are buffered.
    pub fn sendrecv<T: Pod>(&self, dst: usize, src: usize, tag: u64, data: &[T]) -> Vec<T> {
        self.send(dst, tag, data);
        self.recv(src, tag)
    }

    // ----------------------------------------------------------------
    // Nonblocking point-to-point (request-based contract)
    // ----------------------------------------------------------------

    /// Nonblocking send. The simulated transport buffers sends, so the
    /// payload is already on its way when this returns and the request is
    /// complete at post time; statistics and telemetry are identical to
    /// [`Comm::send`].
    pub fn isend<T: Pod>(&self, dst: usize, tag: u64, data: &[T]) -> SendRequest {
        let _t = self.op_span("comm:isend");
        let bytes = as_bytes(data).to_vec();
        self.op_bytes(bytes.len() as u64);
        {
            let mut s = self.stats.borrow_mut();
            s.p2p_messages += 1;
            s.p2p_bytes += bytes.len() as u64;
        }
        self.post(dst, tag, bytes);
        SendRequest { dst, tag }
    }

    /// Post a nonblocking receive for a message from `src` with `tag`.
    ///
    /// Nothing happens at post time beyond timestamping: matching, fault
    /// jitter and telemetry all run when the request is completed with
    /// [`Comm::wait`] / [`Comm::wait_into`] / [`Comm::waitall`]. The span
    /// recorded at completion covers post→complete, and the time between
    /// post and the entry into `wait` — the window in which the rank was
    /// free to compute while the request was in flight — accumulates into
    /// the [`OVERLAP_COUNTER`] (`comm.overlap_ns`) counter.
    pub fn irecv<T: Pod>(&self, src: usize, tag: u64) -> RecvRequest<T> {
        RecvRequest {
            src,
            tag,
            posted_ns: self.rec.borrow().as_ref().map(|r| r.now_ns()),
            _elem: PhantomData,
        }
    }

    /// Complete a posted receive, blocking until the message arrives.
    /// Fault-plan delays stall *here*, and a planned drop panics *here* —
    /// completion time — never at post time.
    pub fn wait<T: Pod>(&self, req: RecvRequest<T>) -> Vec<T> {
        let wait_entry = self.rec.borrow().as_ref().map(|r| r.now_ns());
        let msg = self.match_message(req.src, req.tag);
        self.finish_recv(&req, wait_entry, msg.bytes.len() as u64);
        from_bytes(&msg.bytes)
    }

    /// Allocation-free counterpart of [`Comm::wait`]: the payload is
    /// appended to `out` (cleared first, capacity reused).
    pub fn wait_into<T: Pod>(&self, req: RecvRequest<T>, out: &mut Vec<T>) {
        let wait_entry = self.rec.borrow().as_ref().map(|r| r.now_ns());
        let msg = self.match_message(req.src, req.tag);
        self.finish_recv(&req, wait_entry, msg.bytes.len() as u64);
        out.clear();
        crate::pod::extend_from_bytes(out, &msg.bytes);
    }

    /// Complete a batch of posted receives **strictly in iteration
    /// order**; returns one payload per request, index-aligned with the
    /// input.
    ///
    /// The FIFO guarantee: request `i+1` is not completed (and its fault
    /// jitter not forced) before request `i` has its message in hand,
    /// regardless of the order in which the messages actually arrive —
    /// early arrivals for later requests are buffered in the pending
    /// queue, never lost and never reordered within a `(source, tag)`
    /// pair. Callers that want "whichever finishes first" ordering use
    /// [`Comm::wait_any`] instead.
    pub fn waitall<T: Pod>(&self, reqs: impl IntoIterator<Item = RecvRequest<T>>) -> Vec<Vec<T>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Complete *one* of the posted receives — whichever can finish first
    /// — removing it from `reqs` and returning `(index, payload)`, where
    /// `index` is the request's position in `reqs` at call time (the
    /// remaining requests keep their relative order, MPI `Waitany`
    /// style).
    ///
    /// Preference order when several are already completable: the
    /// earliest message in arrival order wins, and among requests
    /// matching the same `(source, tag)` the lowest index wins —
    /// consistent with the per-`(source, tag)` FIFO of the transport.
    /// Blocks (parking the rank in virtual mode) only while *none* of the
    /// requests has a matching message.
    pub fn wait_any<T: Pod>(&self, reqs: &mut Vec<RecvRequest<T>>) -> (usize, Vec<T>) {
        assert!(!reqs.is_empty(), "wait_any needs at least one request");
        let wait_entry = self.rec.borrow().as_ref().map(|r| r.now_ns());
        loop {
            let hit = {
                let pending = self.pending.borrow();
                // Earliest arrival that matches any request; ties on
                // (src, tag) go to the lowest request index.
                pending.iter().enumerate().find_map(|(pos, m)| {
                    reqs.iter()
                        .position(|r| r.src == m.src && r.tag == m.tag)
                        .map(|ri| (pos, ri))
                })
            };
            if let Some((pos, ri)) = hit {
                let msg = self.pending.borrow_mut().remove(pos).unwrap();
                let req = reqs.remove(ri);
                self.finish_recv(&req, wait_entry, msg.bytes.len() as u64);
                return (ri, from_bytes(&msg.bytes));
            }
            let msg = self.pull_message();
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Non-blocking probe: has the message for `req` arrived? Drains
    /// already-arrived traffic into the pending queue (through the fault
    /// scheduler's admission when a plan is attached) but never blocks and
    /// never advances the fault clock — a message the plan is still
    /// holding stays invisible until [`Comm::wait`] forces its release.
    pub fn test<T: Pod>(&self, req: &RecvRequest<T>) -> bool {
        // In virtual mode a poll loop must hand the worker slot to ranks
        // that still have work (e.g. the sender we are probing for).
        if self.world.vr.is_some() {
            self.poll_yield();
        }
        {
            let mut fault = self.fault.borrow_mut();
            if let Some(fs) = fault.as_mut() {
                while let Ok(m) = self.inbox.try_recv() {
                    let (src, tag) = (m.src, m.tag);
                    fs.admit(src, tag, m);
                }
                let mut pending = self.pending.borrow_mut();
                while let Some(m) = fs.pop_ready() {
                    pending.push_back(m);
                }
            } else {
                let mut pending = self.pending.borrow_mut();
                while let Ok(m) = self.inbox.try_recv() {
                    pending.push_back(m);
                }
            }
        }
        self.pending
            .borrow()
            .iter()
            .any(|m| m.src == req.src && m.tag == req.tag)
    }

    /// Completion-side telemetry shared by `wait`/`wait_into`: a span
    /// covering post→complete and the computed overlap window.
    fn finish_recv<T: Pod>(&self, req: &RecvRequest<T>, wait_entry: Option<u64>, bytes: u64) {
        if let Some(r) = self.rec.borrow().as_ref() {
            let end = r.now_ns();
            let post = req.posted_ns.unwrap_or(end);
            r.add_span_external("comm:irecv", "comm", post, end.saturating_sub(post));
            r.add_count(
                OVERLAP_COUNTER,
                wait_entry.unwrap_or(end).saturating_sub(post),
            );
            r.record_value("comm.bytes", bytes);
        }
    }

    // ----------------------------------------------------------------
    // Split-phase neighbor exchange
    // ----------------------------------------------------------------

    /// Post one round of a split-phase neighbor exchange: the
    /// request-based counterpart of [`Comm::alltoallv_flat`], with the
    /// same flat-buffer convention. `send` holds the payloads for ranks
    /// `0..size()` back to back (`send_counts[d]` elements each) and
    /// `recv_counts[s]` is the number of elements this rank expects from
    /// rank `s` — split-phase completion has no rendezvous at which the
    /// counts could be discovered, so the caller must know them (ghost
    /// exchange patterns always do).
    ///
    /// One tagged point-to-point message is posted per destination with a
    /// nonempty payload; the self-payload is staged locally. No barrier is
    /// involved at either end: a rank only ever waits for the neighbors it
    /// expects data from, and only at [`Comm::exchange_end`].
    pub fn exchange_start<T: Pod>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
        ex: &mut Exchange,
    ) {
        let p = self.size();
        assert_eq!(send_counts.len(), p, "exchange needs one count per rank");
        assert_eq!(recv_counts.len(), p, "exchange needs one count per rank");
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            send.len(),
            "send counts must cover the flat send buffer exactly"
        );
        assert!(
            !ex.in_flight,
            "exchange_start called twice on stream {} without exchange_end",
            ex.stream
        );
        let tag = ex.tag();
        ex.expect.clear();
        ex.expect.extend_from_slice(recv_counts);
        ex.self_buf.clear();
        ex.posted_ns = self.rec.borrow().as_ref().map(|r| r.now_ns());
        let mut sent_bytes = 0u64;
        let mut msgs = 0u64;
        let mut off = 0usize;
        for (dst, &cnt) in send_counts.iter().enumerate() {
            let chunk = &send[off..off + cnt];
            off += cnt;
            if dst == self.rank {
                ex.self_buf.extend_from_slice(as_bytes(chunk));
                continue;
            }
            if cnt == 0 {
                continue;
            }
            let bytes = as_bytes(chunk).to_vec();
            sent_bytes += bytes.len() as u64;
            msgs += 1;
            self.post(dst, tag, bytes);
        }
        {
            let mut s = self.stats.borrow_mut();
            s.exchanges += 1;
            s.p2p_messages += msgs;
            s.p2p_bytes += sent_bytes;
        }
        self.op_bytes(sent_bytes);
        ex.in_flight = true;
    }

    /// Complete the in-flight exchange round on `ex`. Payloads are
    /// appended to `recv` (cleared first, capacity reused) in source-rank
    /// order and `recv_counts` reports per-source element counts — the
    /// exact layout [`Comm::alltoallv_flat`] produces, so the two are
    /// drop-in interchangeable for a caller that knows its receive counts.
    ///
    /// Blocks per missing neighbor message; fault-plan delays and drops
    /// act here, at completion. With a recorder attached, a `comm`-span
    /// covering post→complete is recorded and the post→entry window
    /// accumulates into `comm.overlap_ns`.
    pub fn exchange_end<T: Pod>(
        &self,
        ex: &mut Exchange,
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
    ) {
        assert!(
            ex.in_flight,
            "exchange_end on stream {} without a posted exchange_start",
            ex.stream
        );
        let p = self.size();
        let tag = ex.tag();
        let wait_entry = self.rec.borrow().as_ref().map(|r| r.now_ns());
        recv.clear();
        recv_counts.clear();
        let elem = std::mem::size_of::<T>().max(1);
        for src in 0..p {
            let cnt = ex.expect[src];
            recv_counts.push(cnt);
            if src == self.rank {
                assert_eq!(
                    ex.self_buf.len(),
                    cnt * elem,
                    "self payload does not match the expected count"
                );
                crate::pod::extend_from_bytes(recv, &ex.self_buf);
                continue;
            }
            if cnt == 0 {
                continue;
            }
            let msg = self.match_message(src, tag);
            assert_eq!(
                msg.bytes.len(),
                cnt * elem,
                "exchange payload from rank {src} does not match the expected count"
            );
            crate::pod::extend_from_bytes(recv, &msg.bytes);
        }
        ex.in_flight = false;
        ex.seq = ex.seq.wrapping_add(1);
        if let Some(r) = self.rec.borrow().as_ref() {
            let end = r.now_ns();
            let post = ex.posted_ns.unwrap_or(end);
            r.add_span_external("comm:exchange", "comm", post, end.saturating_sub(post));
            r.add_count(
                OVERLAP_COUNTER,
                wait_entry.unwrap_or(end).saturating_sub(post),
            );
        }
    }

    // ----------------------------------------------------------------
    // Collectives
    // ----------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        let _t = self.op_span("comm:barrier");
        self.maybe_stagger();
        self.stats.borrow_mut().barriers += 1;
        self.rendezvous();
    }

    /// Gather `data` (same length on every rank) from all ranks, in rank
    /// order, on all ranks.
    pub fn allgather<T: Pod>(&self, data: &[T]) -> Vec<T> {
        self.allgatherv(data)
    }

    /// Gather variable-length contributions from all ranks, concatenated in
    /// rank order, on all ranks.
    pub fn allgatherv<T: Pod>(&self, data: &[T]) -> Vec<T> {
        let _t = self.op_span("comm:allgatherv");
        self.maybe_stagger();
        let world = &self.world;
        {
            let mut slot = world.slots[self.rank].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(data));
        }
        self.rendezvous();
        let mut out = Vec::new();
        let mut total_bytes = 0u64;
        for r in 0..world.nranks {
            let slot = world.slots[r].lock().unwrap();
            total_bytes += slot.len() as u64;
            out.extend(from_bytes::<T>(&slot));
        }
        self.rendezvous();
        {
            let mut s = self.stats.borrow_mut();
            s.allgathers += 1;
            s.collective_bytes += total_bytes;
        }
        self.op_bytes(total_bytes);
        out
    }

    /// Allocation-free counterpart of [`Comm::allgatherv`]: gathered
    /// contributions are appended to `out` (cleared first, capacity
    /// reused) in rank order. Statistics and telemetry are identical to
    /// [`Comm::allgatherv`].
    pub fn allgatherv_into<T: Pod>(&self, data: &[T], out: &mut Vec<T>) {
        let _t = self.op_span("comm:allgatherv");
        self.maybe_stagger();
        let world = &self.world;
        {
            let mut slot = world.slots[self.rank].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(data));
        }
        self.rendezvous();
        out.clear();
        let mut total_bytes = 0u64;
        for r in 0..world.nranks {
            let slot = world.slots[r].lock().unwrap();
            total_bytes += slot.len() as u64;
            crate::pod::extend_from_bytes(out, &slot);
        }
        self.rendezvous();
        {
            let mut s = self.stats.borrow_mut();
            s.allgathers += 1;
            s.collective_bytes += total_bytes;
        }
        self.op_bytes(total_bytes);
    }

    /// All-reduce with an arbitrary elementwise combiner. All ranks must
    /// pass equal-length slices.
    pub fn allreduce<T: Pod, F: Fn(T, T) -> T>(&self, data: &[T], op: F) -> Vec<T> {
        let mut out = Vec::with_capacity(data.len());
        self.allreduce_into(data, &mut out, op);
        out
    }

    /// The single generic reduction path behind every `allreduce*` entry
    /// point: gather contributions and fold them elementwise into `out`
    /// (cleared first, capacity reused). The fold order is fixed — rank 0's
    /// contribution first, then ascending rank order — independent of
    /// message timing, so for any deterministic combiner the result is
    /// bitwise identical on every rank.
    pub fn allreduce_into<T: Pod, F: Fn(T, T) -> T>(&self, data: &[T], out: &mut Vec<T>, op: F) {
        let _t = self.op_span("comm:allreduce");
        let n = data.len();
        let gathered = self.allgatherv(data);
        assert_eq!(
            gathered.len(),
            n * self.size(),
            "allreduce requires equal-length contributions on every rank"
        );
        let mut s = self.stats.borrow_mut();
        s.allreduces += 1;
        s.allgathers -= 1; // implemented on top of allgather; count once
        drop(s);
        out.clear();
        out.extend_from_slice(&gathered[..n]);
        for r in 1..self.size() {
            for i in 0..n {
                out[i] = op(out[i], gathered[r * n + i]);
            }
        }
    }

    /// Elementwise global sum (via the generic [`Comm::allreduce`] path).
    pub fn allreduce_sum<T: Pod + std::ops::Add<Output = T>>(&self, data: &[T]) -> Vec<T> {
        self.allreduce(data, |a, b| a + b)
    }

    /// Elementwise global max (via the generic [`Comm::allreduce`] path).
    pub fn allreduce_max<T: Pod + PartialOrd>(&self, data: &[T]) -> Vec<T> {
        self.allreduce(data, |a, b| if b > a { b } else { a })
    }

    /// Elementwise global min (via the generic [`Comm::allreduce`] path).
    pub fn allreduce_min<T: Pod + PartialOrd>(&self, data: &[T]) -> Vec<T> {
        self.allreduce(data, |a, b| if b < a { b } else { a })
    }

    /// Exclusive prefix sum over one value per rank: rank r receives the
    /// sum of the values of ranks `0..r` (0 on rank 0).
    pub fn exscan_sum<T>(&self, value: T) -> T
    where
        T: Pod + std::ops::Add<Output = T> + Default,
    {
        let _t = self.op_span("comm:exscan");
        let all = self.allgatherv(&[value]);
        let mut s = self.stats.borrow_mut();
        s.exscans += 1;
        s.allgathers -= 1;
        drop(s);
        let mut acc = T::default();
        for &v in &all[..self.rank] {
            acc = acc + v;
        }
        acc
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn bcast<T: Pod>(&self, root: usize, data: &[T]) -> Vec<T> {
        let _t = self.op_span("comm:bcast");
        self.maybe_stagger();
        let world = &self.world;
        if self.rank == root {
            let mut slot = world.slots[root].lock().unwrap();
            slot.clear();
            slot.extend_from_slice(as_bytes(data));
        }
        self.rendezvous();
        let out = {
            let slot = world.slots[root].lock().unwrap();
            from_bytes::<T>(&slot)
        };
        self.rendezvous();
        {
            let mut s = self.stats.borrow_mut();
            s.bcasts += 1;
            s.collective_bytes += (out.len() * std::mem::size_of::<T>()) as u64;
        }
        self.op_bytes((out.len() * std::mem::size_of::<T>()) as u64);
        out
    }

    /// Personalized all-to-all: `outgoing[d]` is this rank's payload for
    /// rank `d` (length `size()`); returns `incoming` where `incoming[s]`
    /// is the payload rank `s` sent to this rank.
    pub fn alltoallv<T: Pod>(&self, outgoing: &[Vec<T>]) -> Vec<Vec<T>> {
        let _t = self.op_span("comm:alltoallv");
        let p = self.size();
        assert_eq!(outgoing.len(), p, "alltoallv needs one payload per rank");
        self.maybe_stagger();
        let world = &self.world;
        let mut sent_bytes = 0u64;
        for (dst, payload) in outgoing.iter().enumerate() {
            if payload.is_empty() {
                continue; // receivers synthesize empties; keep staging sparse
            }
            let bytes = as_bytes(payload);
            if dst != self.rank {
                sent_bytes += bytes.len() as u64;
            }
            world.a2a[dst]
                .lock()
                .unwrap()
                .push((self.rank, bytes.to_vec()));
        }
        self.rendezvous();
        let mut incoming: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        {
            let mut row = world.a2a[self.rank].lock().unwrap();
            for (src, bytes) in row.drain(..) {
                incoming[src] = from_bytes::<T>(&bytes);
            }
        }
        self.rendezvous();
        {
            let mut s = self.stats.borrow_mut();
            s.alltoalls += 1;
            s.p2p_messages += outgoing
                .iter()
                .enumerate()
                .filter(|(d, v)| *d != self.rank && !v.is_empty())
                .count() as u64;
            s.p2p_bytes += sent_bytes;
        }
        self.op_bytes(sent_bytes);
        incoming
    }

    /// Personalized all-to-all over flat, caller-managed buffers — the
    /// allocation-free counterpart of [`Comm::alltoallv`]. `send` holds the
    /// payloads for ranks `0..size()` back to back, `send_counts[d]`
    /// elements each. Received payloads are appended to `recv` (cleared
    /// first, capacity reused) in source-rank order and `recv_counts[s]`
    /// reports how many elements rank `s` sent. Statistics and telemetry
    /// are identical to [`Comm::alltoallv`].
    pub fn alltoallv_flat<T: Pod>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
    ) {
        let _t = self.op_span("comm:alltoallv");
        let p = self.size();
        assert_eq!(send_counts.len(), p, "alltoallv needs one count per rank");
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            send.len(),
            "send counts must cover the flat send buffer exactly"
        );
        self.maybe_stagger();
        let world = &self.world;
        let mut sent_bytes = 0u64;
        let mut p2p_msgs = 0u64;
        let mut off = 0usize;
        for (dst, &cnt) in send_counts.iter().enumerate() {
            let chunk = &send[off..off + cnt];
            off += cnt;
            if cnt == 0 {
                continue;
            }
            let bytes = as_bytes(chunk);
            if dst != self.rank {
                sent_bytes += bytes.len() as u64;
                p2p_msgs += 1;
            }
            world.a2a[dst]
                .lock()
                .unwrap()
                .push((self.rank, bytes.to_vec()));
        }
        self.rendezvous();
        recv.clear();
        recv_counts.clear();
        recv_counts.resize(p, 0);
        let elem = std::mem::size_of::<T>().max(1);
        {
            let mut row = world.a2a[self.rank].lock().unwrap();
            // One entry per source per round; restore source-rank order.
            row.sort_unstable_by_key(|&(src, _)| src);
            for (src, bytes) in row.drain(..) {
                recv_counts[src] = bytes.len() / elem;
                crate::pod::extend_from_bytes(recv, &bytes);
            }
        }
        self.rendezvous();
        {
            let mut s = self.stats.borrow_mut();
            s.alltoalls += 1;
            s.p2p_messages += p2p_msgs;
            s.p2p_bytes += sent_bytes;
        }
        self.op_bytes(sent_bytes);
    }

    /// Convenience: gather one `u64` per rank (the classic "element counts"
    /// exchange used to establish global Morton ranges; cf. the paper's
    /// `MPI_Allgather` of one long integer per core).
    pub fn allgather_u64(&self, value: u64) -> Vec<u64> {
        self.allgatherv(&[value])
    }
}

#[cfg(test)]
mod tests {
    use crate::spmd;

    #[test]
    fn rank_and_size() {
        let out = spmd::run(5, |c| (c.rank(), c.size()));
        for (r, (rank, size)) in out.iter().enumerate() {
            assert_eq!(*rank, r);
            assert_eq!(*size, 5);
        }
    }

    #[test]
    fn p2p_ring() {
        // Each rank sends its id around a ring; after P hops it returns.
        let p = 6;
        let out = spmd::run(p, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let mut token = vec![c.rank() as u64];
            for _ in 0..c.size() {
                c.send(next, 7, &token);
                token = c.recv(prev, 7);
            }
            token[0]
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v, r as u64);
        }
    }

    #[test]
    fn p2p_tag_matching_out_of_order() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[10u64]);
                c.send(1, 2, &[20u64]);
                0
            } else {
                // Receive in reverse tag order; buffering must hold tag 1.
                let b = c.recv::<u64>(0, 2);
                let a = c.recv::<u64>(0, 1);
                a[0] * 100 + b[0]
            }
        });
        assert_eq!(out[1], 1020);
    }

    #[test]
    fn allgatherv_variable_lengths() {
        let out = spmd::run(4, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            c.allgatherv(&mine)
        });
        let expect: Vec<u64> = vec![0, 0, 1, 0, 1, 2];
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn allgatherv_into_matches_and_reuses_buffer() {
        let out = spmd::run(4, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            let reference = c.allgatherv(&mine);
            let mut buf = Vec::new();
            c.allgatherv_into(&mine, &mut buf);
            assert_eq!(buf, reference);
            // Warm call must reuse the output buffer's allocation.
            let ptr = buf.as_ptr();
            c.allgatherv_into(&mine, &mut buf);
            assert_eq!(buf, reference);
            assert_eq!(ptr, buf.as_ptr(), "allgatherv_into must not reallocate");
            (buf, c.stats().allgathers)
        });
        for (o, gathers) in out {
            assert_eq!(o, vec![0, 0, 1, 0, 1, 2]);
            assert_eq!(gathers, 3, "into-variant must count as an allgather");
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = spmd::run(4, |c| {
            let v = [c.rank() as f64, -(c.rank() as f64)];
            let mx = c.allreduce_max(&v);
            let mn = c.allreduce_min(&v);
            (mx[0], mx[1], mn[0], mn[1])
        });
        for o in out {
            assert_eq!(o, (3.0, 0.0, 0.0, -3.0));
        }
    }

    #[test]
    fn exscan() {
        let out = spmd::run(5, |c| c.exscan_sum((c.rank() + 1) as u64));
        assert_eq!(out, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = spmd::run(3, |c| {
            let data = if c.rank() == 2 {
                vec![42u32, 43]
            } else {
                vec![]
            };
            c.bcast(2, &data)
        });
        for o in out {
            assert_eq!(o, vec![42, 43]);
        }
    }

    #[test]
    fn alltoallv_exchange() {
        let p = 4;
        let out = spmd::run(p, |c| {
            let outgoing: Vec<Vec<u64>> = (0..c.size())
                .map(|d| vec![(c.rank() * 10 + d) as u64])
                .collect();
            c.alltoallv(&outgoing)
        });
        for (me, incoming) in out.iter().enumerate() {
            for (src, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![(src * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_flat_matches_nested_and_reuses_buffers() {
        let p = 4;
        let out = spmd::run(p, |c| {
            // Nested reference path.
            let outgoing: Vec<Vec<u64>> = (0..c.size())
                .map(|d| {
                    (0..d)
                        .map(|i| (c.rank() * 100 + d * 10 + i) as u64)
                        .collect()
                })
                .collect();
            let nested = c.alltoallv(&outgoing);
            let s0 = c.stats();

            // Flat path with the same payloads must deliver identical data
            // and account identical message/byte counts.
            let send: Vec<u64> = outgoing.iter().flatten().copied().collect();
            let send_counts: Vec<usize> = outgoing.iter().map(Vec::len).collect();
            let mut recv = Vec::new();
            let mut recv_counts = Vec::new();
            c.alltoallv_flat(&send, &send_counts, &mut recv, &mut recv_counts);
            let s1 = c.stats();
            assert_eq!(s1.alltoalls - s0.alltoalls, 1);
            assert_eq!(s1.p2p_messages - s0.p2p_messages, s0.p2p_messages);
            assert_eq!(s1.p2p_bytes - s0.p2p_bytes, s0.p2p_bytes);

            let flat_nested: Vec<u64> = nested.iter().flatten().copied().collect();
            assert_eq!(recv, flat_nested);
            assert_eq!(recv_counts, nested.iter().map(Vec::len).collect::<Vec<_>>());

            // Second call must reuse the receive buffer's allocation.
            let ptr = recv.as_ptr();
            c.alltoallv_flat(&send, &send_counts, &mut recv, &mut recv_counts);
            assert_eq!(recv, flat_nested);
            assert_eq!(recv.as_ptr(), ptr, "flat exchange must not reallocate");
            c.stats()
        });
        for s in out {
            assert_eq!(s.alltoalls, 3);
        }
    }

    #[test]
    fn alltoallv_empty_payloads() {
        let out = spmd::run(3, |c| {
            let outgoing: Vec<Vec<f64>> = vec![Vec::new(); c.size()];
            c.alltoallv(&outgoing)
        });
        for incoming in out {
            assert!(incoming.iter().all(|v| v.is_empty()));
        }
    }

    #[test]
    fn stats_counting() {
        let out = spmd::run(2, |c| {
            c.barrier();
            let _ = c.allgather_u64(1);
            if c.rank() == 0 {
                c.send(1, 0, &[1.0f64; 8]);
            } else {
                let _ = c.recv::<f64>(0, 0);
            }
            c.barrier();
            c.stats()
        });
        assert_eq!(out[0].barriers, 2);
        assert_eq!(out[0].allgathers, 1);
        assert_eq!(out[0].p2p_messages, 1);
        assert_eq!(out[0].p2p_bytes, 64);
        assert_eq!(out[1].p2p_messages, 0);
    }

    #[test]
    fn single_rank_world() {
        let out = spmd::run(1, |c| {
            let g = c.allgather_u64(9);
            let s = c.allreduce_sum(&[4.0f64]);
            (g, s[0])
        });
        assert_eq!(out[0].0, vec![9]);
        assert_eq!(out[0].1, 4.0);
    }

    #[test]
    fn fault_injection_preserves_p2p_semantics() {
        // Under aggressive delay/reorder, tag- and source-matched receives
        // must still return exactly the right payloads: many-to-one with
        // mixed tags, received in an adversarial order.
        use crate::fault::FaultPlan;
        let p = 5;
        let out = spmd::run(p, move |c| {
            c.set_fault_plan(Some(FaultPlan::delays(0xfeed)));
            if c.rank() == 0 {
                let mut sum = 0u64;
                // Receive low tags first even though they interleave.
                for tag in [1u64, 2, 3] {
                    for src in 1..c.size() {
                        let v = c.recv::<u64>(src, tag);
                        assert_eq!(v, vec![(src as u64) * 100 + tag]);
                        sum += v[0];
                    }
                }
                let delayed = c.fault_counters().unwrap().delayed;
                c.set_fault_plan(None);
                (sum, delayed)
            } else {
                for tag in [3u64, 1, 2] {
                    c.send(0, tag, &[(c.rank() as u64) * 100 + tag]);
                }
                c.set_fault_plan(None);
                (0, 0)
            }
        });
        let expect: u64 = (1..p as u64).map(|s| 3 * s * 100 + 6).sum();
        assert_eq!(out[0].0, expect);
        assert!(out[0].1 > 0, "the plan must actually delay something");
    }

    #[test]
    fn fault_injection_collectives_unaffected_by_stagger() {
        use crate::fault::FaultPlan;
        let out = spmd::run(4, |c| {
            c.set_fault_plan(Some(FaultPlan::delays(7)));
            let g = c.allgather_u64(c.rank() as u64);
            let s = c.allreduce_sum(&[1.0f64])[0];
            let outgoing: Vec<Vec<u64>> =
                (0..c.size()).map(|d| vec![(c.rank() + d) as u64]).collect();
            let inc = c.alltoallv(&outgoing);
            c.set_fault_plan(None);
            (g, s, inc)
        });
        for (me, (g, s, inc)) in out.iter().enumerate() {
            assert_eq!(g, &vec![0, 1, 2, 3]);
            assert_eq!(*s, 4.0);
            for (src, payload) in inc.iter().enumerate() {
                assert_eq!(payload, &vec![(src + me) as u64]);
            }
        }
    }

    #[test]
    fn isend_irecv_wait_ring() {
        // The p2p ring again, through the request-based contract: post the
        // receive before sending, then complete it.
        let p = 6;
        let out = spmd::run(p, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            let mut token = vec![c.rank() as u64];
            for _ in 0..c.size() {
                let rreq = c.irecv::<u64>(prev, 7);
                c.isend(next, 7, &token).wait();
                token = c.wait(rreq);
            }
            token[0]
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v, r as u64);
        }
    }

    #[test]
    fn waitall_completes_out_of_order_posts() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[10u64]);
                c.send(1, 2, &[20u64]);
                0
            } else {
                // Post in reverse tag order; waitall completes in post
                // order, exercising the pending-queue scan.
                let reqs = vec![c.irecv::<u64>(0, 2), c.irecv::<u64>(0, 1)];
                let got = c.waitall(reqs);
                got[0][0] * 100 + got[1][0]
            }
        });
        assert_eq!(out[1], 2010);
    }

    #[test]
    fn waitall_fifo_order_under_fault_delays() {
        // Satellite regression: requests posted out of send order, under
        // seeded adversarial delays, from two senders at once. `waitall`
        // must complete strictly in iteration order with the payloads
        // index-aligned to the posted requests — the FIFO guarantee its
        // docs promise — no matter when the messages actually arrive.
        use crate::fault::FaultPlan;
        let run_once = || {
            spmd::run(3, |c| {
                c.set_fault_plan(Some(FaultPlan::delays(0xD1CE)));
                if c.rank() > 0 {
                    // Senders emit tags in descending order; the receiver
                    // posts ascending.
                    for tag in [2u64, 1, 0] {
                        c.send(0, tag, &[c.rank() as u64 * 100 + tag]);
                    }
                    c.set_fault_plan(None);
                    return 0;
                }
                let reqs: Vec<_> = [0u64, 1, 2]
                    .iter()
                    .flat_map(|&tag| [c.irecv::<u64>(1, tag), c.irecv::<u64>(2, tag)])
                    .collect();
                let got = c.waitall(reqs);
                let flat: Vec<u64> = got.iter().map(|v| v[0]).collect();
                assert_eq!(
                    flat,
                    vec![100, 200, 101, 201, 102, 202],
                    "waitall must complete in iteration order"
                );
                let delayed = c.fault_counters().unwrap().delayed;
                c.set_fault_plan(None);
                delayed
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same seed must reproduce the same fault schedule");
        assert!(a[0] > 0, "the plan must actually delay some completions");
    }

    #[test]
    fn wait_any_completes_whichever_is_ready() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                let _ = c.recv::<u8>(1, 9);
                c.send(1, 5, &[5u64]);
                let _ = c.recv::<u8>(1, 10);
                c.send(1, 6, &[6u64]);
                0
            } else {
                let mut reqs = vec![c.irecv::<u64>(0, 5), c.irecv::<u64>(0, 6)];
                c.send(0, 9, &[1u8]);
                // Only the tag-5 message can exist at this point.
                let (i, v) = c.wait_any(&mut reqs);
                assert_eq!(i, 0);
                assert_eq!(v, vec![5]);
                assert_eq!(reqs.len(), 1);
                c.send(0, 10, &[1u8]);
                // The remaining request re-indexes to 0.
                let (i, v) = c.wait_any(&mut reqs);
                assert_eq!(i, 0);
                assert_eq!(v, vec![6]);
                assert!(reqs.is_empty());
                66
            }
        });
        assert_eq!(out[1], 66);
    }

    #[test]
    fn wait_any_prefers_earliest_arrival() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                // Tag 6 hits the wire before tag 5 (channel FIFO), then
                // the go-signal guarantees both precede the probe.
                c.send(1, 6, &[6u64]);
                c.send(1, 5, &[5u64]);
                c.send(1, 9, &[1u8]);
                0
            } else {
                let mut reqs = vec![c.irecv::<u64>(0, 5), c.irecv::<u64>(0, 6)];
                // Drain the wire: pulls tags 6 and 5 into pending.
                let _ = c.recv::<u8>(0, 9);
                let (i, v) = c.wait_any(&mut reqs);
                assert_eq!(i, 1, "earliest arrival (tag 6) must win");
                assert_eq!(v, vec![6]);
                let (i, v) = c.wait_any(&mut reqs);
                assert_eq!((i, v), (0, vec![5u64]));
                7
            }
        });
        assert_eq!(out[1], 7);
    }

    #[test]
    fn test_probes_without_consuming() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                let go = c.recv::<u8>(1, 9);
                assert_eq!(go, vec![1]);
                c.send(1, 5, &[33u64]);
                0
            } else {
                let req = c.irecv::<u64>(0, 5);
                assert!(!c.test(&req), "nothing sent yet");
                c.send(0, 9, &[1u8]);
                // Poll until the message lands; test must not consume it.
                while !c.test(&req) {
                    std::thread::yield_now();
                }
                assert!(c.test(&req), "probe must be repeatable");
                let v = c.wait(req);
                v[0]
            }
        });
        assert_eq!(out[1], 33);
    }

    #[test]
    fn wait_into_reuses_buffer() {
        let out = spmd::run(2, |c| {
            if c.rank() == 0 {
                for round in 0..4u64 {
                    c.send(1, 3, &[round; 16]);
                }
                0
            } else {
                let mut buf: Vec<u64> = Vec::new();
                let req = c.irecv::<u64>(0, 3);
                c.wait_into(req, &mut buf);
                let ptr = buf.as_ptr();
                for round in 1..4u64 {
                    let req = c.irecv::<u64>(0, 3);
                    c.wait_into(req, &mut buf);
                    assert_eq!(buf, vec![round; 16]);
                    assert_eq!(buf.as_ptr(), ptr, "wait_into must not reallocate");
                }
                buf[0]
            }
        });
        assert_eq!(out[1], 3);
    }

    #[test]
    fn exchange_matches_alltoallv_flat() {
        // The split-phase pair must produce the exact flat layout of
        // alltoallv_flat — including the staged self-payload — and account
        // the same p2p message/byte deltas plus one exchange round.
        let p = 4;
        let out = spmd::run(p, |c| {
            let me = c.rank();
            let send: Vec<u64> = (0..c.size())
                .flat_map(|d| (0..d).map(move |i| (me * 100 + d * 10 + i) as u64))
                .collect();
            let send_counts: Vec<usize> = (0..c.size()).collect();
            let mut recv = Vec::new();
            let mut recv_counts = Vec::new();
            c.alltoallv_flat(&send, &send_counts, &mut recv, &mut recv_counts);
            let s0 = c.stats();

            let mut ex = crate::request::Exchange::new(4);
            let expect = vec![me; c.size()];
            let mut recv2: Vec<u64> = Vec::new();
            let mut recv2_counts = Vec::new();
            c.exchange_start(&send, &send_counts, &expect, &mut ex);
            assert!(ex.in_flight());
            c.exchange_end(&mut ex, &mut recv2, &mut recv2_counts);
            assert!(!ex.in_flight());
            let s1 = c.stats();

            assert_eq!(recv2, recv);
            assert_eq!(recv2_counts, recv_counts);
            assert_eq!(s1.exchanges - s0.exchanges, 1);
            assert_eq!(s1.alltoalls, s0.alltoalls);
            assert_eq!(s1.p2p_messages - s0.p2p_messages, s0.p2p_messages);
            assert_eq!(s1.p2p_bytes - s0.p2p_bytes, s0.p2p_bytes);

            // Warm rounds must reuse the receive buffer's allocation.
            let ptr = recv2.as_ptr();
            c.exchange_start(&send, &send_counts, &expect, &mut ex);
            c.exchange_end(&mut ex, &mut recv2, &mut recv2_counts);
            assert_eq!(recv2, recv);
            assert_eq!(
                recv2.as_ptr(),
                ptr,
                "split-phase exchange must not reallocate"
            );
            recv2.len()
        });
        // Rank r expects r elements from each source in this payload shape.
        for (r, len) in out.iter().enumerate() {
            assert_eq!(*len, r * p);
        }
    }

    #[test]
    fn concurrent_exchange_streams_do_not_cross() {
        // Two exchanges in flight at once on distinct streams — the Stokes
        // velocity/pressure pattern — must each deliver their own payloads.
        let p = 3;
        let out = spmd::run(p, |c| {
            let me = c.rank() as u64;
            let ones = vec![1usize; c.size()];
            let a_send: Vec<u64> = (0..c.size() as u64).map(|d| 1000 + me * 10 + d).collect();
            let b_send: Vec<u64> = (0..c.size() as u64).map(|d| 2000 + me * 10 + d).collect();
            let mut exa = crate::request::Exchange::new(1);
            let mut exb = crate::request::Exchange::new(2);
            let (mut ra, mut ca): (Vec<u64>, Vec<usize>) = (Vec::new(), Vec::new());
            let (mut rb, mut cb): (Vec<u64>, Vec<usize>) = (Vec::new(), Vec::new());
            for _ in 0..8 {
                c.exchange_start(&a_send, &ones, &ones, &mut exa);
                c.exchange_start(&b_send, &ones, &ones, &mut exb);
                // Complete in the opposite order of posting.
                c.exchange_end(&mut exb, &mut rb, &mut cb);
                c.exchange_end(&mut exa, &mut ra, &mut ca);
                let want_a: Vec<u64> = (0..c.size() as u64).map(|s| 1000 + s * 10 + me).collect();
                let want_b: Vec<u64> = (0..c.size() as u64).map(|s| 2000 + s * 10 + me).collect();
                assert_eq!(ra, want_a);
                assert_eq!(rb, want_b);
            }
            c.stats().exchanges
        });
        for e in out {
            assert_eq!(e, 16);
        }
    }

    #[test]
    fn overlap_counter_measures_post_to_wait_window() {
        use obs::Recorder;
        let out = spmd::run(2, |c| {
            let rec = Recorder::new_manual_clock(c.rank());
            c.set_recorder(rec.clone());
            if c.rank() == 0 {
                let go = c.recv::<u8>(1, 9);
                assert_eq!(go, vec![2]);
                c.send(1, 5, &[7.0f64]);
                0
            } else {
                let req = c.irecv::<f64>(0, 5);
                c.send(0, 9, &[2u8]);
                // "Compute" for 1000 virtual ns while the request is in
                // flight, then complete it.
                rec.advance_clock(1000);
                let v = c.wait(req);
                assert_eq!(v, vec![7.0]);
                rec.profile().summary.counters[crate::comm::OVERLAP_COUNTER]
            }
        });
        assert_eq!(out[1], 1000, "overlap window must be post→wait-entry");
    }

    #[test]
    fn exchange_records_span_and_overlap() {
        use obs::Recorder;
        let p = 2;
        let out = spmd::run(p, |c| {
            let rec = Recorder::new_manual_clock(c.rank());
            c.set_recorder(rec.clone());
            let ones = vec![1usize; p];
            let send = vec![c.rank() as u64; p];
            let mut ex = crate::request::Exchange::new(1);
            let (mut recv, mut counts): (Vec<u64>, Vec<usize>) = (Vec::new(), Vec::new());
            c.exchange_start(&send, &ones, &ones, &mut ex);
            rec.advance_clock(500);
            c.exchange_end(&mut ex, &mut recv, &mut counts);
            let prof = rec.profile();
            let overlap = prof.summary.counters[crate::comm::OVERLAP_COUNTER];
            let has_span = prof.spans.iter().any(|s| s.name == "comm:exchange");
            (overlap, has_span)
        });
        for (overlap, has_span) in out {
            assert_eq!(overlap, 500);
            assert!(has_span, "exchange completion must record a comm span");
        }
    }

    #[test]
    fn fault_injection_nonblocking_delays_apply_at_completion() {
        // Mirrors the blocking fault test through irecv/wait: payloads and
        // FIFO per (src, tag) must survive adversarial delays, the plan
        // must actually delay something, and same seed ⇒ same counters.
        use crate::fault::FaultPlan;
        let run_once = || {
            spmd::run(4, |c| {
                c.set_fault_plan(Some(FaultPlan::delays(0xabad)));
                let next = (c.rank() + 1) % c.size();
                let prev = (c.rank() + c.size() - 1) % c.size();
                for round in 0..20u64 {
                    let req = c.irecv::<u64>(prev, round % 3);
                    c.isend(next, round % 3, &[round]).wait();
                    let v = c.wait(req);
                    assert_eq!(v, vec![round]);
                    c.barrier();
                }
                let counters = c.fault_counters().unwrap();
                c.set_fault_plan(None);
                counters
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        assert!(a.iter().all(|f| f.admitted == 20));
        assert!(
            a.iter().map(|f| f.delayed).sum::<u64>() > 0,
            "the plan must actually delay some completions"
        );
    }

    #[test]
    fn fault_injection_exchange_delays_apply_at_completion() {
        use crate::fault::FaultPlan;
        let p = 4;
        let run_once = || {
            spmd::run(p, |c| {
                c.set_fault_plan(Some(FaultPlan::delays(0x5eed)));
                let me = c.rank() as u64;
                let ones = vec![1usize; c.size()];
                let mut ex = crate::request::Exchange::new(3);
                let (mut recv, mut counts): (Vec<u64>, Vec<usize>) = (Vec::new(), Vec::new());
                for round in 0..12u64 {
                    let send: Vec<u64> = (0..c.size() as u64)
                        .map(|d| round * 100 + me * 10 + d)
                        .collect();
                    c.exchange_start(&send, &ones, &ones, &mut ex);
                    c.exchange_end(&mut ex, &mut recv, &mut counts);
                    let want: Vec<u64> = (0..c.size() as u64)
                        .map(|s| round * 100 + s * 10 + me)
                        .collect();
                    assert_eq!(recv, want, "round {round}");
                }
                let counters = c.fault_counters().unwrap();
                c.set_fault_plan(None);
                counters
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        assert!(a.iter().map(|f| f.delayed).sum::<u64>() > 0);
    }

    #[test]
    fn fault_injection_is_deterministic_across_runs() {
        // The same seed must produce the same per-rank fault counters.
        use crate::fault::FaultPlan;
        let run_once = || {
            spmd::run(4, |c| {
                c.set_fault_plan(Some(FaultPlan::delays(99)));
                let next = (c.rank() + 1) % c.size();
                let prev = (c.rank() + c.size() - 1) % c.size();
                for round in 0..20u64 {
                    c.send(next, round % 3, &[round]);
                    let v = c.recv::<u64>(prev, round % 3);
                    assert_eq!(v, vec![round]);
                    c.barrier();
                }
                let counters = c.fault_counters().unwrap();
                c.set_fault_plan(None);
                counters
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        assert!(a.iter().all(|f| f.admitted == 20));
    }
}
