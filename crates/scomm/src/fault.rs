//! Seeded fault injection for the simulated machine.
//!
//! Parallel AMR codes are full of latent ordering assumptions: a rank
//! that calls `recv_any` and silently assumes messages arrive in rank
//! order, a collective whose result depends on which rank reaches the
//! staging area first, an exchange pattern that only works because the
//! simulated network happens to be FIFO across *sources*. On a real
//! machine (the paper's Ranger runs at 62,464 cores) none of these hold.
//!
//! This module provides a deterministic adversarial scheduler that can be
//! attached to a [`crate::Comm`]:
//!
//! * **Delay / reorder** — point-to-point messages are admitted into a
//!   per-rank jitter buffer on the receive side; a seeded draw per message
//!   decides how many "virtual ticks" it is held before it becomes
//!   deliverable. Messages of *different* `(source, tag)` channels get
//!   reordered against each other; messages of the *same* channel are
//!   always released in order, preserving the MPI FIFO-per-channel
//!   guarantee that correct code is allowed to rely on.
//! * **Drop-with-panic** — a seeded draw marks a message as lost; instead
//!   of hanging the receiver forever the scheduler panics with the full
//!   message identity, so tests can assert that a run *would have* relied
//!   on that message.
//! * **Collective stagger** — before entering a collective rendezvous the
//!   rank spins through a seeded number of `yield_now` calls, perturbing
//!   the thread interleavings that reach the shared staging slots.
//!
//! Every decision is drawn from `splitmix64(seed ⊕ message identity)`
//! where the identity is `(src, dst, tag, per-channel sequence number)` —
//! no wall-clock, no OS entropy — so a run with a fixed seed makes the
//! same delay/drop decisions every time. The *interleaving* of racing
//! ranks stays as nondeterministic as the underlying threads, which is
//! exactly the point: results must not depend on it.
//!
//! **Nonblocking requests.** The scheduler sits on the receive side, in
//! the message-pull loop shared by every completion path, so it covers
//! the request-based contract with no extra machinery: for
//! [`crate::Comm::irecv`] / [`crate::Comm::wait`] and the split-phase
//! [`crate::Comm::exchange_end`], delays and reordering take effect at
//! *completion* time (the `wait` stalls, never the post), a planned drop
//! panics inside `wait`, and per-`(source, tag)` FIFO order is preserved
//! across blocking and nonblocking receives alike.
//! [`crate::Comm::test`] only admits already-arrived traffic — it never
//! advances the virtual clock, so a held message stays invisible to
//! polling until a `wait` forces its release.

use std::collections::HashMap;

/// Knobs of the adversarial scheduler. All probabilities are in permille
/// (0–1000) so the plan stays `Copy` and hashable-by-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every draw; two runs with the same seed make the same
    /// decisions.
    pub seed: u64,
    /// Probability (‰) that a point-to-point message is held in the
    /// jitter buffer.
    pub delay_permille: u32,
    /// Maximum hold, in virtual ticks (one tick per admitted message or
    /// drained-buffer step). Draws are uniform in `1..=max_hold_ticks`.
    pub max_hold_ticks: u32,
    /// Probability (‰) that a message is dropped; a drop panics with the
    /// message identity ("drop-with-panic").
    pub drop_permille: u32,
    /// Probability (‰) that a rank staggers (yields) before entering a
    /// collective rendezvous.
    pub stagger_permille: u32,
    /// Maximum number of `yield_now` calls per stagger.
    pub max_stagger_yields: u32,
}

impl FaultPlan {
    /// Aggressive delay/reordering, no drops: the standard smoke
    /// configuration for shaking out ordering assumptions.
    pub fn delays(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_permille: 400,
            max_hold_ticks: 8,
            drop_permille: 0,
            stagger_permille: 250,
            max_stagger_yields: 16,
        }
    }

    /// Certain drop of the first eligible message: every p2p receive path
    /// that depends on it panics deterministically.
    pub fn drops(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_permille: 0,
            max_hold_ticks: 1,
            drop_permille: 1000,
            stagger_permille: 0,
            max_stagger_yields: 0,
        }
    }
}

/// Counters of what the scheduler actually did (per rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages admitted through the scheduler.
    pub admitted: u64,
    /// Messages held at least one tick.
    pub delayed: u64,
    /// Collective entries staggered.
    pub staggered: u64,
}

/// SplitMix64: the standard 64-bit finalizer; full-period, stateless.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A message held in the jitter buffer.
struct Held<M> {
    /// Virtual tick at which the message becomes deliverable.
    release_at: u64,
    /// Global admission sequence (total order tie-break; preserves
    /// per-channel FIFO because later admissions of a channel get
    /// `release_at` clamped to at least the previous one's).
    admit_seq: u64,
    msg: M,
}

/// Per-rank scheduler state. `M` is the in-flight message type; the
/// scheduler only needs its channel identity `(src, tag)`.
pub(crate) struct FaultState<M> {
    plan: FaultPlan,
    /// Receiving rank (part of the draw identity).
    me: usize,
    /// Virtual clock: advances one tick per admission and when the
    /// receiver drains the buffer with nothing new arriving.
    now: u64,
    admit_seq: u64,
    /// Per-(src, tag) channel: (messages admitted, last release_at).
    channels: HashMap<(usize, u64), (u64, u64)>,
    held: Vec<Held<M>>,
    /// Sequence number of collective entries (stagger identity).
    collective_seq: u64,
    pub(crate) counters: FaultCounters,
}

impl<M> FaultState<M> {
    pub(crate) fn new(plan: FaultPlan, me: usize) -> FaultState<M> {
        FaultState {
            plan,
            me,
            now: 0,
            admit_seq: 0,
            channels: HashMap::new(),
            held: Vec::new(),
            collective_seq: 0,
            counters: FaultCounters::default(),
        }
    }

    fn draw(&self, src: usize, tag: u64, chan_seq: u64) -> u64 {
        let id = splitmix64(src as u64 ^ (self.me as u64).rotate_left(16))
            ^ splitmix64(tag).rotate_left(24)
            ^ splitmix64(chan_seq).rotate_left(40);
        splitmix64(self.plan.seed ^ id)
    }

    /// Admit one arriving message: decide drop (panics) or hold ticks,
    /// then buffer it. Advances the virtual clock by one tick.
    pub(crate) fn admit(&mut self, src: usize, tag: u64, msg: M) {
        let chan = self.channels.entry((src, tag)).or_insert((0, 0));
        let chan_seq = chan.0;
        chan.0 += 1;
        let r = self.draw(src, tag, chan_seq);
        self.counters.admitted += 1;
        self.now += 1;
        if (r % 1000) < self.plan.drop_permille as u64 {
            panic!(
                "scomm fault injection: dropped message src={} dst={} tag={:#x} seq={} (seed {:#x})",
                src, self.me, tag, chan_seq, self.plan.seed
            );
        }
        let hold = if ((r >> 10) % 1000) < self.plan.delay_permille as u64 {
            self.counters.delayed += 1;
            1 + (r >> 32) % self.plan.max_hold_ticks.max(1) as u64
        } else {
            0
        };
        // Per-channel FIFO: never release before the previous message of
        // the same channel.
        let release_at = (self.now + hold).max(self.channels[&(src, tag)].1);
        self.channels.get_mut(&(src, tag)).unwrap().1 = release_at;
        let admit_seq = self.admit_seq;
        self.admit_seq += 1;
        self.held.push(Held {
            release_at,
            admit_seq,
            msg,
        });
    }

    /// Pop the next deliverable message, if any: smallest
    /// `(release_at, admit_seq)` among those with `release_at <= now`.
    pub(crate) fn pop_ready(&mut self) -> Option<M> {
        let now = self.now;
        let best = self
            .held
            .iter()
            .enumerate()
            .filter(|(_, h)| h.release_at <= now)
            .min_by_key(|(_, h)| (h.release_at, h.admit_seq))
            .map(|(i, _)| i)?;
        Some(self.held.swap_remove(best).msg)
    }

    /// Whether the jitter buffer is empty.
    pub(crate) fn is_drained(&self) -> bool {
        self.held.is_empty()
    }

    /// Nothing new is arriving: advance the virtual clock to the earliest
    /// pending release so `pop_ready` makes progress. No-op when empty.
    pub(crate) fn tick_to_next_release(&mut self) {
        if let Some(next) = self.held.iter().map(|h| h.release_at).min() {
            self.now = self.now.max(next);
        }
    }

    /// Seeded stagger before a collective: returns the number of yields
    /// the caller should spin through (0 = none).
    pub(crate) fn collective_stagger(&mut self) -> u32 {
        let seq = self.collective_seq;
        self.collective_seq += 1;
        let r = self.draw(usize::MAX, u64::MAX, seq);
        if (r % 1000) < self.plan.stagger_permille as u64 {
            self.counters.staggered += 1;
            1 + ((r >> 16) % self.plan.max_stagger_yields.max(1) as u64) as u32
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        let a: FaultState<u8> = FaultState::new(FaultPlan::delays(7), 3);
        let b: FaultState<u8> = FaultState::new(FaultPlan::delays(7), 3);
        for (src, tag, seq) in [(0usize, 1u64, 0u64), (5, 9, 2), (1, 1, 1)] {
            assert_eq!(a.draw(src, tag, seq), b.draw(src, tag, seq));
        }
        let c: FaultState<u8> = FaultState::new(FaultPlan::delays(8), 3);
        assert_ne!(a.draw(0, 1, 0), c.draw(0, 1, 0), "seed must matter");
    }

    #[test]
    fn per_channel_fifo_is_preserved() {
        // Admit 50 messages of one channel under heavy delay; they must
        // come back in admission order.
        let mut fs: FaultState<u64> = FaultState::new(
            FaultPlan {
                seed: 42,
                delay_permille: 900,
                max_hold_ticks: 12,
                drop_permille: 0,
                stagger_permille: 0,
                max_stagger_yields: 0,
            },
            0,
        );
        for i in 0..50u64 {
            fs.admit(1, 7, i);
        }
        let mut out = Vec::new();
        while !fs.is_drained() {
            while let Some(m) = fs.pop_ready() {
                out.push(m);
            }
            fs.tick_to_next_release();
        }
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cross_channel_reordering_happens() {
        // Two channels interleaved: under delay some inversion between
        // channels must occur for this seed (the point of the jitter).
        let mut fs: FaultState<(usize, u64)> = FaultState::new(FaultPlan::delays(1), 0);
        for i in 0..40u64 {
            fs.admit(1, 0, (1, i));
            fs.admit(2, 0, (2, i));
        }
        let mut out = Vec::new();
        while !fs.is_drained() {
            while let Some(m) = fs.pop_ready() {
                out.push(m);
            }
            fs.tick_to_next_release();
        }
        assert_eq!(out.len(), 80);
        // Per-channel subsequences stay ordered...
        for ch in [1usize, 2] {
            let sub: Vec<u64> = out
                .iter()
                .filter(|(c, _)| *c == ch)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(sub, (0..40).collect::<Vec<_>>(), "channel {ch} FIFO");
        }
        // ...but the merged order differs from strict admission alternation.
        let alternating: Vec<(usize, u64)> = (0..40u64)
            .flat_map(|i| [(1usize, i), (2usize, i)])
            .collect();
        assert_ne!(out, alternating, "jitter must reorder across channels");
        assert!(fs.counters.delayed > 0);
    }

    #[test]
    #[should_panic(expected = "fault injection: dropped message")]
    fn drop_mode_panics_with_identity() {
        let mut fs: FaultState<u8> = FaultState::new(FaultPlan::drops(3), 2);
        fs.admit(0, 5, 1);
    }

    #[test]
    fn stagger_draws_bounded_and_deterministic() {
        let mk = || -> Vec<u32> {
            let mut fs: FaultState<u8> = FaultState::new(FaultPlan::delays(11), 1);
            (0..64).map(|_| fs.collective_stagger()).collect()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(a.iter().any(|&y| y > 0), "some collectives must stagger");
        assert!(a.iter().all(|&y| y <= 16));
    }
}
