//! Global switch for the embedded runtime invariant checks.
//!
//! The distributed data structures (octree, forest, mesh) carry optional
//! self-checks at the end of their collective mutations. Those checks are
//! collective and O(global) in the worst case, so they are compiled only
//! into debug builds (`#[cfg(debug_assertions)]` at each call site) *and*
//! gated at runtime on `CHECK_INVARIANTS=1` — a plain `cargo test` stays
//! fast, `CHECK_INVARIANTS=1 cargo test` verifies every intermediate
//! structure, and a release build pays nothing at all.
//!
//! The environment is read once per process; flipping the variable
//! mid-run has no effect (the checks must agree across ranks, and ranks
//! of the simulated machine share the process environment).

use std::sync::OnceLock;

/// True when `CHECK_INVARIANTS` is set to `1`/`true`/`on` in the
/// process environment.
pub fn checks_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("CHECK_INVARIANTS")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on"))
            .unwrap_or(false)
    })
}
