//! Per-rank communication statistics.
//!
//! Every [`crate::Comm`] operation increments these counters. The benchmark
//! harnesses run the real SPMD algorithms at host scale, read the counters,
//! and hand them to [`crate::MachineModel`] to model Ranger-scale behaviour.

use obs::{ToJson, Value};

/// Counters for one rank's communication activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (including those routed through
    /// `alltoallv`, excluding self-sends).
    pub p2p_messages: u64,
    /// Point-to-point payload bytes sent.
    pub p2p_bytes: u64,
    /// Barrier entries.
    pub barriers: u64,
    /// Allgather/allgatherv calls.
    pub allgathers: u64,
    /// Allreduce calls.
    pub allreduces: u64,
    /// Exclusive-scan calls.
    pub exscans: u64,
    /// Broadcast calls.
    pub bcasts: u64,
    /// All-to-all calls.
    pub alltoalls: u64,
    /// Split-phase neighbor exchange rounds (`exchange_start`/
    /// `exchange_end`). Their messages and bytes are already included in
    /// the point-to-point counters — an exchange is pure p2p, with no
    /// rendezvous — so this counts rounds, not traffic.
    pub exchanges: u64,
    /// Bytes moved through gather-style collectives (read volume).
    pub collective_bytes: u64,
}

impl CommStats {
    /// Total number of collective operations of any kind.
    pub fn collectives(&self) -> u64 {
        self.barriers
            + self.allgathers
            + self.allreduces
            + self.exscans
            + self.bcasts
            + self.alltoalls
    }

    /// Merge another rank's counters into this one (for aggregating a
    /// whole world's activity).
    pub fn merge(&mut self, other: &CommStats) {
        self.p2p_messages += other.p2p_messages;
        self.p2p_bytes += other.p2p_bytes;
        self.barriers += other.barriers;
        self.allgathers += other.allgathers;
        self.allreduces += other.allreduces;
        self.exscans += other.exscans;
        self.bcasts += other.bcasts;
        self.alltoalls += other.alltoalls;
        self.exchanges += other.exchanges;
        self.collective_bytes += other.collective_bytes;
    }
}

/// Machine-readable form, embedded in `results/obs/` run manifests.
/// (Hand-rolled via [`obs::ToJson`]: the offline build cannot fetch
/// `serde`, and the field set is small and stable.)
impl ToJson for CommStats {
    fn to_json_value(&self) -> Value {
        Value::object([
            ("p2p_messages", Value::from(self.p2p_messages)),
            ("p2p_bytes", Value::from(self.p2p_bytes)),
            ("barriers", Value::from(self.barriers)),
            ("allgathers", Value::from(self.allgathers)),
            ("allreduces", Value::from(self.allreduces)),
            ("exscans", Value::from(self.exscans)),
            ("bcasts", Value::from(self.bcasts)),
            ("alltoalls", Value::from(self.alltoalls)),
            ("exchanges", Value::from(self.exchanges)),
            ("collective_bytes", Value::from(self.collective_bytes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            p2p_messages: 1,
            p2p_bytes: 10,
            barriers: 2,
            ..Default::default()
        };
        let b = CommStats {
            p2p_messages: 3,
            allgathers: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.p2p_messages, 4);
        assert_eq!(a.p2p_bytes, 10);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.allgathers, 4);
        assert_eq!(a.collectives(), 6);
    }

    #[test]
    fn to_json_exposes_every_counter() {
        let s = CommStats {
            p2p_messages: 3,
            p2p_bytes: 96,
            barriers: 2,
            allgathers: 1,
            allreduces: 4,
            exscans: 5,
            bcasts: 6,
            alltoalls: 7,
            exchanges: 8,
            collective_bytes: 1024,
        };
        let v = s.to_json_value();
        for (field, want) in [
            ("p2p_messages", 3),
            ("p2p_bytes", 96),
            ("barriers", 2),
            ("allgathers", 1),
            ("allreduces", 4),
            ("exscans", 5),
            ("bcasts", 6),
            ("alltoalls", 7),
            ("exchanges", 8),
            ("collective_bytes", 1024),
        ] {
            assert_eq!(v.get(field).and_then(|x| x.as_u64()), Some(want), "{field}");
        }
        // The serialized text parses back to the same value.
        assert_eq!(obs::json::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn byte_accounting_matches_hand_computed_payloads() {
        // Rank r contributes r u64s to allgatherv and sends (r + d) u32s to
        // each destination d in alltoallv. Check counters against the sizes
        // computed by hand from those payload shapes.
        let p = 4usize;
        let stats = spmd::run(p, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64).collect();
            let _ = c.allgatherv(&mine);
            let outgoing: Vec<Vec<u32>> = (0..p).map(|d| vec![7u32; c.rank() + d]).collect();
            let _ = c.alltoallv(&outgoing);
            c.stats()
        });
        // allgatherv reads every rank's slot: (0+1+2+3) u64s = 48 bytes,
        // identical on all ranks.
        let gathered_bytes = 8 * (1 + 2 + 3) as u64;
        for (r, s) in stats.iter().enumerate() {
            assert_eq!(s.allgathers, 1);
            assert_eq!(s.collective_bytes, gathered_bytes, "rank {r}");
            assert_eq!(s.alltoalls, 1);
            // alltoallv sends 4*(r+d) bytes to each d != r.
            let sent: u64 = (0..p).filter(|&d| d != r).map(|d| 4 * (r + d) as u64).sum();
            assert_eq!(s.p2p_bytes, sent, "rank {r}");
            // One message per non-self destination with a non-empty payload;
            // rank 0's payload for d=0 is empty but that's the self slot, so
            // only rank 0 -> 0 is excluded anyway.
            let msgs = (0..p).filter(|&d| d != r && r + d > 0).count() as u64;
            assert_eq!(s.p2p_messages, msgs, "rank {r}");
        }
    }
}
