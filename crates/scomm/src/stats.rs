//! Per-rank communication statistics.
//!
//! Every [`crate::Comm`] operation increments these counters. The benchmark
//! harnesses run the real SPMD algorithms at host scale, read the counters,
//! and hand them to [`crate::MachineModel`] to model Ranger-scale behaviour.

/// Counters for one rank's communication activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (including those routed through
    /// `alltoallv`, excluding self-sends).
    pub p2p_messages: u64,
    /// Point-to-point payload bytes sent.
    pub p2p_bytes: u64,
    /// Barrier entries.
    pub barriers: u64,
    /// Allgather/allgatherv calls.
    pub allgathers: u64,
    /// Allreduce calls.
    pub allreduces: u64,
    /// Exclusive-scan calls.
    pub exscans: u64,
    /// Broadcast calls.
    pub bcasts: u64,
    /// All-to-all calls.
    pub alltoalls: u64,
    /// Bytes moved through gather-style collectives (read volume).
    pub collective_bytes: u64,
}

impl CommStats {
    /// Total number of collective operations of any kind.
    pub fn collectives(&self) -> u64 {
        self.barriers + self.allgathers + self.allreduces + self.exscans + self.bcasts
            + self.alltoalls
    }

    /// Merge another rank's counters into this one (for aggregating a
    /// whole world's activity).
    pub fn merge(&mut self, other: &CommStats) {
        self.p2p_messages += other.p2p_messages;
        self.p2p_bytes += other.p2p_bytes;
        self.barriers += other.barriers;
        self.allgathers += other.allgathers;
        self.allreduces += other.allreduces;
        self.exscans += other.exscans;
        self.bcasts += other.bcasts;
        self.alltoalls += other.alltoalls;
        self.collective_bytes += other.collective_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats { p2p_messages: 1, p2p_bytes: 10, barriers: 2, ..Default::default() };
        let b = CommStats { p2p_messages: 3, allgathers: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.p2p_messages, 4);
        assert_eq!(a.p2p_bytes, 10);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.allgathers, 4);
        assert_eq!(a.collectives(), 6);
    }
}
