//! Nonblocking request handles and split-phase neighbor exchange state.
//!
//! This module holds the *handle* types of the request-based communication
//! contract; the operations themselves live on [`crate::Comm`]
//! (`isend` / `irecv` / `wait` / `waitall` / `test`,
//! `exchange_start` / `exchange_end`).
//!
//! Semantics mirror MPI's nonblocking point-to-point layer, restricted to
//! what the simulated machine needs:
//!
//! * **Sends are buffered**, so [`Comm::isend`](crate::Comm::isend)
//!   completes at post time and the returned [`SendRequest`] exists for
//!   API symmetry — its `wait` is a no-op and its `test` is always true.
//! * **Receives complete at `wait`**. [`Comm::irecv`](crate::Comm::irecv)
//!   records the `(source, tag)` pair and a post timestamp; matching,
//!   fault-plan jitter (delays, reordering, drop-with-panic) and telemetry
//!   all happen when the request is completed, never at post time. This is
//!   what makes an attached [`crate::FaultPlan`] exercise the overlapped
//!   code paths: a delayed message stalls `wait`, not the post.
//! * **Per-`(source, tag)` FIFO order is preserved** across blocking and
//!   nonblocking receives, with or without a fault plan attached.
//!
//! [`Exchange`] is the reusable state for one *stream* of split-phase
//! neighbor exchanges (`exchange_start` / `exchange_end`) — the
//! request-based counterpart of
//! [`Comm::alltoallv_flat`](crate::Comm::alltoallv_flat). Unlike the
//! blocking collective it is pure point-to-point: no barrier, no shared
//! staging matrix, so a rank only synchronizes with the neighbors it
//! actually exchanges payloads with, and the messages are in flight while
//! the caller computes between `start` and `end`.

use std::marker::PhantomData;

use crate::pod::Pod;

/// Handle for a posted nonblocking send.
///
/// The simulated machine buffers sends (the payload is copied into the
/// destination mailbox at post time), so a send request is complete the
/// moment [`Comm::isend`](crate::Comm::isend) returns. The handle exists
/// so call sites read like their MPI counterparts and so the type system
/// reminds callers that a posted send conceptually has a completion point.
#[derive(Debug)]
#[must_use = "complete the posted send with wait() (a no-op for buffered sends)"]
pub struct SendRequest {
    pub(crate) dst: usize,
    pub(crate) tag: u64,
}

impl SendRequest {
    /// Complete the send. Buffered sends complete at post time, so this is
    /// a no-op that consumes the handle.
    pub fn wait(self) {}

    /// Whether the send has completed. Always true for buffered sends.
    pub fn test(&self) -> bool {
        true
    }

    /// Destination rank the send was posted to.
    pub fn dst(&self) -> usize {
        self.dst
    }

    /// Tag the send was posted with.
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// Handle for a posted nonblocking receive of `T` elements.
///
/// Created by [`Comm::irecv`](crate::Comm::irecv); completed by
/// [`Comm::wait`](crate::Comm::wait) /
/// [`Comm::wait_into`](crate::Comm::wait_into) /
/// [`Comm::waitall`](crate::Comm::waitall); probed (non-blocking, never
/// advancing the fault clock) by [`Comm::test`](crate::Comm::test).
///
/// Dropping a request without waiting leaves any matching message in the
/// rank's pending queue for a later `recv`/`wait` with the same
/// `(source, tag)` — exactly as if the request had never been posted.
#[derive(Debug)]
#[must_use = "a posted receive must be completed with wait()/wait_into()/waitall()"]
pub struct RecvRequest<T: Pod> {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    /// Recorder timestamp at post time; completion emits a `comm`-span
    /// covering post→complete plus the `comm.overlap_ns` counter.
    pub(crate) posted_ns: Option<u64>,
    pub(crate) _elem: PhantomData<T>,
}

impl<T: Pod> RecvRequest<T> {
    /// Source rank the receive was posted for.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Tag the receive was posted for.
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// Number of low bits of the exchange tag carrying the round sequence.
const EXCHANGE_SEQ_BITS: u32 = 32;

/// High-bit namespace for split-phase exchange tags, so exchange traffic
/// can never collide with user point-to-point tags (which are small in
/// practice: mesh extraction, AMR transfer and the tests all use tags well
/// below 2^32).
const EXCHANGE_TAG_BASE: u64 = 0xE5C0 << 48;

/// Reusable state for one stream of split-phase neighbor exchanges.
///
/// One `Exchange` value represents one logical communication *stream*: a
/// sequence of `exchange_start` / `exchange_end` rounds that are posted
/// and completed in order. Two exchanges may be in flight at the same time
/// (e.g. the velocity and pressure ghost layers of a Stokes operator
/// application) **iff** they use distinct stream ids — the stream id is
/// folded into the message tag, which is what keeps concurrently in-flight
/// rounds from matching each other's messages. Within one stream, rounds
/// are disambiguated by a sequence number in the tag's low bits, and the
/// per-`(source, tag)` FIFO of the transport does the rest.
///
/// The state is deliberately small and grow-only (the expected-count table
/// and the staged self-payload), so it can live inside a solver workspace
/// without violating warm-path zero-allocation guarantees;
/// [`Exchange::capacity_bytes`] reports its footprint for allocation
/// accounting.
#[derive(Debug)]
pub struct Exchange {
    pub(crate) stream: u64,
    /// Round counter; incremented by `exchange_end`.
    pub(crate) seq: u64,
    /// Expected element counts per source rank for the in-flight round.
    pub(crate) expect: Vec<usize>,
    /// Bytes this rank "sent to itself" at start, spliced back in at end
    /// without a mailbox round-trip.
    pub(crate) self_buf: Vec<u8>,
    pub(crate) in_flight: bool,
    /// Recorder timestamp at post time of the in-flight round.
    pub(crate) posted_ns: Option<u64>,
}

impl Exchange {
    /// Create the state for a new exchange stream. `stream` must be unique
    /// among all `Exchange` values that can be in flight simultaneously on
    /// the same communicator; it must fit in 16 bits.
    pub fn new(stream: u64) -> Exchange {
        assert!(stream < (1 << 16), "exchange stream id must fit in 16 bits");
        Exchange {
            stream,
            seq: 0,
            expect: Vec::new(),
            self_buf: Vec::new(),
            in_flight: false,
            posted_ns: None,
        }
    }

    /// The stream id this exchange posts under.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Whether a round is currently posted but not yet completed.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// The message tag for the current round.
    pub(crate) fn tag(&self) -> u64 {
        EXCHANGE_TAG_BASE
            | (self.stream << EXCHANGE_SEQ_BITS)
            | (self.seq & ((1u64 << EXCHANGE_SEQ_BITS) - 1))
    }

    /// Heap footprint of the exchange state, for workspace allocation
    /// accounting (grow-only, like the buffers it lives next to).
    pub fn capacity_bytes(&self) -> u64 {
        (self.expect.capacity() * std::mem::size_of::<usize>() + self.self_buf.capacity()) as u64
    }
}

impl Default for Exchange {
    /// Stream 0 — fine for any exchange that is never concurrently in
    /// flight with another one on the same communicator.
    fn default() -> Exchange {
        Exchange::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_tags_separate_streams_and_rounds() {
        let mut a = Exchange::new(1);
        let b = Exchange::new(2);
        assert_ne!(a.tag(), b.tag());
        let t0 = a.tag();
        a.seq += 1;
        assert_ne!(a.tag(), t0);
        // All exchange tags live in the reserved high-bit namespace.
        assert_eq!(a.tag() & EXCHANGE_TAG_BASE, EXCHANGE_TAG_BASE);
        assert_eq!(b.tag() & EXCHANGE_TAG_BASE, EXCHANGE_TAG_BASE);
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn oversized_stream_rejected() {
        let _ = Exchange::new(1 << 16);
    }

    #[test]
    fn capacity_accounting_tracks_growth() {
        let mut ex = Exchange::new(3);
        assert_eq!(ex.capacity_bytes(), 0);
        ex.expect.reserve(8);
        ex.self_buf.reserve(64);
        assert!(ex.capacity_bytes() >= 8 * std::mem::size_of::<usize>() as u64 + 64);
    }
}
