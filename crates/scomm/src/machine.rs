//! Machine model of a Ranger-class (2008) system.
//!
//! The paper's scaling figures were measured on TACC Ranger: 3,936 nodes of
//! four 2.3 GHz quad-core AMD Barcelona sockets (16 cores/node, 62,976
//! cores), 2 GB RAM per core, SDR InfiniBand in a fat tree. No such machine
//! is available, so (per DESIGN.md substitution #1) the benchmark harnesses
//! run the real distributed algorithms at host scale, measure per-element
//! compute cost and per-rank communication volumes, and use this α–β–γ
//! model to produce the modeled large-scale times that stand in for the
//! paper's wall-clock measurements.
//!
//! The modeled time for one rank executing a phase is
//!
//! ```text
//! T = flops / (ζ · peak_flops)                       (compute)
//!   + msgs · α + bytes / β                           (point-to-point)
//!   + Σ collectives: log2(P) · α + bytes(P) / β      (collectives)
//! ```
//!
//! which is the standard postal/LogP-style model; the log₂(P) collective
//! term is what bends the weak-scaling curves of Figs. 7–9 exactly as in
//! the paper.

use crate::stats::CommStats;

/// Parameters of the modeled machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Peak floating-point rate per core, flop/s.
    pub peak_flops_per_core: f64,
    /// Sustained fraction of peak achieved by FEM-style kernels.
    pub fem_efficiency: f64,
    /// Sustained fraction of peak achieved by dense (matrix-based DG)
    /// kernels.
    pub dense_efficiency: f64,
    /// Network injection latency α, seconds per message.
    pub latency: f64,
    /// Network bandwidth β per core, bytes/second.
    pub bandwidth: f64,
    /// Memory bandwidth per core, bytes/second (shared-node contention
    /// already divided out).
    pub mem_bandwidth: f64,
    /// Cores per node (16 on Ranger); used for intra-node discounting.
    pub cores_per_node: usize,
}

impl MachineModel {
    /// Ranger-like defaults: 2.3 GHz Barcelona (4 flop/cycle/core ⇒ 9.2
    /// Gflop/s peak), SDR InfiniBand (~1 GB/s per node, ~2.3 µs latency),
    /// ~2.1 GB/s sustained memory bandwidth per core under full-node load.
    pub fn ranger() -> Self {
        MachineModel {
            peak_flops_per_core: 9.2e9,
            fem_efficiency: 0.06,
            dense_efficiency: 0.50,
            latency: 2.3e-6,
            bandwidth: 0.9e9 / 16.0 * 4.0, // per-core share with some overlap
            mem_bandwidth: 2.1e9,
            cores_per_node: 16,
        }
    }

    /// Time to execute `flops` floating point operations in a sparse/FEM
    /// kernel (memory-bandwidth-limited regime).
    pub fn t_fem_flops(&self, flops: f64) -> f64 {
        flops / (self.fem_efficiency * self.peak_flops_per_core)
    }

    /// Time to execute `flops` in a dense (BLAS3-like) kernel.
    pub fn t_dense_flops(&self, flops: f64) -> f64 {
        flops / (self.dense_efficiency * self.peak_flops_per_core)
    }

    /// Time to stream `bytes` through memory.
    pub fn t_mem(&self, bytes: f64) -> f64 {
        bytes / self.mem_bandwidth
    }

    /// Time for one point-to-point message of `bytes`.
    pub fn t_p2p(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    /// Time for a barrier among `p` ranks (dissemination algorithm).
    pub fn t_barrier(&self, p: usize) -> f64 {
        (p.max(2) as f64).log2().ceil() * self.latency
    }

    /// Time for an allreduce of `bytes` among `p` ranks
    /// (recursive-doubling).
    pub fn t_allreduce(&self, bytes: f64, p: usize) -> f64 {
        let rounds = (p.max(2) as f64).log2().ceil();
        rounds * (self.latency + bytes / self.bandwidth)
    }

    /// Time for an allgather where each of `p` ranks contributes
    /// `bytes_per_rank` (ring algorithm: latency ~ p, bandwidth ~ total).
    pub fn t_allgather(&self, bytes_per_rank: f64, p: usize) -> f64 {
        let pf = p.max(2) as f64;
        pf.log2().ceil() * self.latency + (pf - 1.0) * bytes_per_rank / self.bandwidth
    }

    /// Time for an all-to-all where this rank sends `bytes_total` spread
    /// over `msgs` destinations.
    pub fn t_alltoallv(&self, bytes_total: f64, msgs: u64) -> f64 {
        msgs as f64 * self.latency + bytes_total / self.bandwidth
    }

    /// Total phase time when communication is *blocking*: the rank pays
    /// compute and communication as a sum, as every pre-split-phase code
    /// path does.
    pub fn t_phase_blocking(&self, t_comp: f64, t_comm: f64) -> f64 {
        t_comp + t_comm
    }

    /// Total phase time when communication is *overlapped* with
    /// computation (split-phase ghost exchange): the transfer hides behind
    /// the interior sweep and the rank pays `max(comp, comm)` instead of
    /// the sum. This is the idealized full-overlap bound; the measured
    /// `comm.overlap_ns` counter reports how much of the window a real run
    /// actually covered.
    pub fn t_phase_overlapped(&self, t_comp: f64, t_comm: f64) -> f64 {
        t_comp.max(t_comm)
    }

    /// Model the communication time of one rank's [`CommStats`] record at
    /// world size `p`, assuming gather-style collectives carried
    /// `avg_collective_bytes` per call.
    pub fn t_comm(&self, stats: &CommStats, p: usize) -> f64 {
        let mut t = 0.0;
        t += stats.p2p_messages as f64 * self.latency + stats.p2p_bytes as f64 / self.bandwidth;
        t += stats.barriers as f64 * self.t_barrier(p);
        let gathers = stats.allgathers + stats.bcasts;
        if gathers > 0 {
            let per = stats.collective_bytes as f64 / gathers.max(1) as f64 / p.max(1) as f64;
            t += gathers as f64 * self.t_allgather(per, p);
        }
        t += (stats.allreduces + stats.exscans) as f64 * self.t_allreduce(8.0, p);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranger_sanity() {
        let m = MachineModel::ranger();
        // 1 Gflop of FEM work should take on the order of a second at ~6%
        // of 9.2 Gflop/s peak.
        let t = m.t_fem_flops(1e9);
        assert!(t > 0.5 && t < 5.0, "t = {t}");
        // Dense kernels are much faster per flop.
        assert!(m.t_dense_flops(1e9) < t / 4.0);
    }

    #[test]
    fn collective_costs_grow_logarithmically() {
        let m = MachineModel::ranger();
        let t16 = m.t_allreduce(8.0, 16);
        let t256 = m.t_allreduce(8.0, 256);
        let t65536 = m.t_allreduce(8.0, 65536);
        assert!(t256 > t16);
        // log2(65536)/log2(256) = 2, so the ratio should be exactly 2.
        assert!((t65536 / t256 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn p2p_latency_dominates_small_messages() {
        let m = MachineModel::ranger();
        let small = m.t_p2p(8.0);
        assert!((small - m.latency) / m.latency < 0.1);
    }

    #[test]
    fn overlapped_phase_never_slower_than_blocking() {
        let m = MachineModel::ranger();
        for (comp, comm) in [(1.0, 0.2), (0.2, 1.0), (0.5, 0.5), (0.0, 3.0)] {
            let b = m.t_phase_blocking(comp, comm);
            let o = m.t_phase_overlapped(comp, comm);
            assert!(o <= b);
            assert_eq!(o, comp.max(comm));
            assert_eq!(b, comp + comm);
        }
    }

    #[test]
    fn comm_model_monotone_in_world_size() {
        let m = MachineModel::ranger();
        let stats = CommStats {
            p2p_messages: 10,
            p2p_bytes: 1 << 20,
            barriers: 5,
            allgathers: 3,
            allreduces: 7,
            collective_bytes: 3 * 1024,
            ..Default::default()
        };
        let t64 = m.t_comm(&stats, 64);
        let t4096 = m.t_comm(&stats, 4096);
        assert!(t4096 > t64);
    }
}
