//! Property-based tests for the linear algebra kernels.

use la::krylov::euclidean_dot;
use la::{cg, minres, Amg, AmgOptions, Cholesky, Csr};
use proptest::prelude::*;

/// Strategy: a random SPD matrix built as `AᵀA + n·I` from a random
/// sparse square seed (diagonal shift guarantees positive definiteness).
fn arb_spd(max_n: usize) -> impl Strategy<Value = Csr> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if (i + j) % 3 == 0 || i == j {
                    trips.push((i, j, rnd()));
                }
            }
        }
        let a = Csr::from_triplets(n, n, &trips);
        let at = a.transpose();
        let mut ata = at.matmul(&a);
        // Shift the diagonal.
        let mut t2: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..n {
            for k in ata.row_ptr[r]..ata.row_ptr[r + 1] {
                t2.push((r, ata.col_idx[k], ata.values[k]));
            }
            t2.push((r, r, n as f64));
        }
        ata = Csr::from_triplets(n, n, &t2);
        ata
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transpose_is_involution(a in arb_spd(12)) {
        let att = a.transpose().transpose();
        prop_assert!(att.diff_norm(&a) < 1e-12);
    }

    #[test]
    fn matmul_transposes_contravariantly(a in arb_spd(8), b in arb_spd(8)) {
        if a.ncols == b.nrows {
            let ab_t = a.matmul(&b).transpose();
            let bt_at = b.transpose().matmul(&a.transpose());
            prop_assert!(ab_t.diff_norm(&bt_at) < 1e-9);
        }
    }

    #[test]
    fn cg_solves_random_spd(a in arb_spd(14), seed in any::<u64>()) {
        let n = a.nrows;
        let b: Vec<f64> = (0..n)
            .map(|i| ((seed.wrapping_add(i as u64 * 977) % 1000) as f64) / 500.0 - 1.0)
            .collect();
        let mut x = vec![0.0; n];
        let info = cg(&a, None::<&Csr>, &b, &mut x, 1e-10, 10_000, euclidean_dot);
        prop_assert!(info.converged, "{info:?}");
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        for i in 0..n {
            prop_assert!((r[i] - b[i]).abs() < 1e-6, "row {i}");
        }
    }

    #[test]
    fn minres_matches_cg_on_spd(a in arb_spd(10)) {
        let n = a.nrows;
        let b = vec![1.0; n];
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        cg(&a, None::<&Csr>, &b, &mut x1, 1e-12, 10_000, euclidean_dot);
        minres(&a, None::<&Csr>, &b, &mut x2, 1e-12, 10_000, euclidean_dot);
        for i in 0..n {
            prop_assert!((x1[i] - x2[i]).abs() < 1e-6, "entry {i}: {} vs {}", x1[i], x2[i]);
        }
    }

    #[test]
    fn cholesky_matches_csr_solve(a in arb_spd(10)) {
        let n = a.nrows;
        // Densify.
        let mut dense = vec![0.0; n * n];
        for r in 0..n {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                dense[r * n + a.col_idx[k]] = a.values[k];
            }
        }
        let ch = Cholesky::factor(&dense, n).expect("SPD by construction");
        let b = vec![1.0; n];
        let mut x_ch = b.clone();
        ch.solve(&mut x_ch);
        let mut x_cg = vec![0.0; n];
        cg(&a, None::<&Csr>, &b, &mut x_cg, 1e-13, 10_000, euclidean_dot);
        for i in 0..n {
            prop_assert!((x_ch[i] - x_cg[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn amg_vcycle_is_spd_operator(a in arb_spd(30)) {
        let n = a.nrows;
        let amg = Amg::new(a, AmgOptions { max_coarse: 8, ..Default::default() });
        let u: Vec<f64> = (0..n).map(|i| ((i * 7919) % 100) as f64 / 50.0 - 1.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 104729) % 97) as f64 / 48.0 - 1.0).collect();
        let mut bu = vec![0.0; n];
        let mut bv = vec![0.0; n];
        amg.vcycle(&u, &mut bu);
        amg.vcycle(&v, &mut bv);
        let lhs = euclidean_dot(&bu, &v);
        let rhs = euclidean_dot(&u, &bv);
        prop_assert!((lhs - rhs).abs() <= 1e-8 * lhs.abs().max(rhs.abs()).max(1e-10),
            "not symmetric: {lhs} vs {rhs}");
        // Positivity on the test vector.
        let quad = euclidean_dot(&u, &bu);
        prop_assert!(quad >= -1e-10, "not positive: {quad}");
    }
}
