//! Small dense kernels: column-major matrices, Cholesky and LU solves.
//! Used for AMG coarse-grid solves and element-level operations.

/// Dense Cholesky factorization `A = L Lᵀ` of an SPD matrix given in
/// row-major order (symmetric, so layout is moot).
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Lower triangle, row-major packed full matrix.
    l: Vec<f64>,
}

impl Cholesky {
    /// Factor an SPD matrix (full `n × n`, row-major). Returns `None` if a
    /// non-positive pivot (to machine precision) is encountered.
    pub fn factor(a: &[f64], n: usize) -> Option<Cholesky> {
        assert_eq!(a.len(), n * n);
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(Cholesky { n, l })
    }

    /// Solve `A x = b` in place.
    pub fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * n + k] * b[k];
            }
            b[i] = sum / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in i + 1..n {
                sum -= self.l[k * n + i] * b[k];
            }
            b[i] = sum / self.l[i * n + i];
        }
    }

    /// Dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the factorization is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Dense LU with partial pivoting, for small general square systems
/// (used where SPD cannot be guaranteed).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl Lu {
    /// Factor a full row-major `n × n` matrix. Returns `None` on (near-)
    /// singularity.
    pub fn factor(a: &[f64], n: usize) -> Option<Lu> {
        assert_eq!(a.len(), n * n);
        let mut lu = a.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot.
            let mut pmax = k;
            let mut vmax = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > vmax {
                    vmax = v;
                    pmax = i;
                }
            }
            if vmax < 1e-300 {
                return None;
            }
            if pmax != k {
                for j in 0..n {
                    lu.swap(k * n + j, pmax * n + j);
                }
                piv.swap(k, pmax);
            }
            let pivot = lu[k * n + k];
            for i in k + 1..n {
                let f = lu[i * n + k] / pivot;
                lu[i * n + k] = f;
                for j in k + 1..n {
                    lu[i * n + j] -= f * lu[k * n + j];
                }
            }
        }
        Some(Lu { n, lu, piv })
    }

    /// Solve `A x = b`; returns `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.lu[i * n + k] * x[k];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= self.lu[i * n + k] * x[k];
            }
            x[i] = sum / self.lu[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd() {
        // A = [[4,2,0],[2,5,2],[0,2,5]]
        let a = [4.0, 2.0, 0.0, 2.0, 5.0, 2.0, 0.0, 2.0, 5.0];
        let ch = Cholesky::factor(&a, 3).unwrap();
        let mut b = [1.0, 2.0, 3.0];
        ch.solve(&mut b);
        // Verify A x = [1,2,3].
        let r0 = 4.0 * b[0] + 2.0 * b[1];
        let r1 = 2.0 * b[0] + 5.0 * b[1] + 2.0 * b[2];
        let r2 = 2.0 * b[1] + 5.0 * b[2];
        assert!((r0 - 1.0).abs() < 1e-12);
        assert!((r1 - 2.0).abs() < 1e-12);
        assert!((r2 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(Cholesky::factor(&a, 2).is_none());
    }

    #[test]
    fn lu_solves_general() {
        // Non-symmetric with pivoting needed.
        let a = [0.0, 2.0, 1.0, 3.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let lu = Lu::factor(&a, 3).unwrap();
        let x = lu.solve(&[5.0, 7.0, 6.0]);
        // Verify residual.
        let r = [
            2.0 * x[1] + x[2] - 5.0,
            3.0 * x[0] + x[2] - 7.0,
            x[0] + x[1] + x[2] - 6.0,
        ];
        assert!(r.iter().all(|v| v.abs() < 1e-12), "{x:?}");
    }

    #[test]
    fn lu_rejects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(Lu::factor(&a, 2).is_none());
    }
}
