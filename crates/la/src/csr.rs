//! Compressed sparse row matrices.

/// A CSR matrix with `f64` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    pub nrows: usize,
    pub ncols: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets; duplicate entries are summed.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut counts = vec![0usize; nrows];
        for &(r, _, _) in triplets {
            debug_assert!(r < nrows);
            counts[r] += 1;
        }
        let mut row_start = vec![0usize; nrows + 1];
        for r in 0..nrows {
            row_start[r + 1] = row_start[r] + counts[r];
        }
        let nnz_raw = row_start[nrows];
        let mut cols = vec![0usize; nnz_raw];
        let mut vals = vec![0.0; nnz_raw];
        let mut cursor = row_start.clone();
        for &(r, c, v) in triplets {
            debug_assert!(c < ncols);
            cols[cursor[r]] = c;
            vals[cursor[r]] = v;
            cursor[r] += 1;
        }
        // Sort each row and merge duplicates.
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(nnz_raw);
        let mut values = Vec::with_capacity(nnz_raw);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for i in row_start[r]..row_start[r + 1] {
                scratch.push((cols[i], vals[i]));
            }
            scratch.sort_unstable_by_key(|t| t.0);
            for &(c, v) in scratch.iter() {
                if let Some(last) = values.last_mut() {
                    if col_idx.last() == Some(&c) && col_idx.len() > row_ptr[r] {
                        *last += v;
                        continue;
                    }
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Csr {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            y[r] = acc;
        }
    }

    /// `y += A x`.
    pub fn matvec_add(&self, x: &[f64], y: &mut [f64]) {
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            y[r] += acc;
        }
    }

    /// `y = Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        y.fill(0.0);
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[i]] += self.values[i] * xr;
            }
        }
    }

    /// Main diagonal (zeros where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows];
        for r in 0..self.nrows.min(self.ncols) {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[i] == r {
                    d[r] = self.values[i];
                    break;
                }
            }
        }
        d
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c] += 1;
        }
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for c in 0..self.ncols {
            row_ptr[c + 1] = row_ptr[c] + counts[c];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = row_ptr.clone();
        for r in 0..self.nrows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i];
                col_idx[cursor[c]] = r;
                values[cursor[c]] = self.values[i];
                cursor[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse product `A · B`.
    pub fn matmul(&self, other: &Csr) -> Csr {
        assert_eq!(self.ncols, other.nrows);
        let n = self.nrows;
        let m = other.ncols;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        // Dense accumulator per row (classic Gustavson).
        let mut accum = vec![0.0f64; m];
        let mut marker = vec![usize::MAX; m];
        let mut row_cols: Vec<usize> = Vec::new();
        for r in 0..n {
            row_cols.clear();
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let k = self.col_idx[i];
                let av = self.values[i];
                for j in other.row_ptr[k]..other.row_ptr[k + 1] {
                    let c = other.col_idx[j];
                    if marker[c] != r {
                        marker[c] = r;
                        accum[c] = 0.0;
                        row_cols.push(c);
                    }
                    accum[c] += av * other.values[j];
                }
            }
            row_cols.sort_unstable();
            for &c in &row_cols {
                col_idx.push(c);
                values.push(accum[c]);
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Csr {
            nrows: n,
            ncols: m,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Frobenius-norm difference to another matrix of the same shape
    /// (test helper).
    pub fn diff_norm(&self, other: &Csr) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        let mut dense = std::collections::HashMap::new();
        for r in 0..self.nrows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                *dense.entry((r, self.col_idx[i])).or_insert(0.0) += self.values[i];
            }
        }
        for r in 0..other.nrows {
            for i in other.row_ptr[r]..other.row_ptr[r + 1] {
                *dense.entry((r, other.col_idx[i])).or_insert(0.0) -= other.values[i];
            }
        }
        dense.values().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [2 1 0]
        // [1 3 1]
        // [0 1 4]
        Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 4.0),
            ],
        )
    }

    #[test]
    fn triplets_sum_duplicates() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.diagonal(), vec![3.0, 5.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, [4.0, 10.0, 14.0]);
        // A is symmetric, so Aᵀx = Ax.
        let mut z = [0.0; 3];
        a.matvec_transpose(&x, &mut z);
        assert_eq!(z, y);
        assert_eq!(a.transpose().diff_norm(&a), 0.0);
    }

    #[test]
    fn matmul_against_identity_and_manual() {
        let a = example();
        let i = Csr::identity(3);
        assert_eq!(a.matmul(&i).diff_norm(&a), 0.0);
        assert_eq!(i.matmul(&a).diff_norm(&a), 0.0);
        // A·A spot check: (0,0) = 2·2 + 1·1 = 5.
        let aa = a.matmul(&a);
        let mut y = [0.0; 3];
        aa.matvec(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y[0], 5.0);
        assert_eq!(y[1], 2.0 + 3.0); // row1·col0 = 1·2+3·1+1·0
    }

    #[test]
    fn rectangular_shapes() {
        let a = Csr::from_triplets(2, 3, &[(0, 2, 1.0), (1, 0, 2.0)]);
        let at = a.transpose();
        assert_eq!((at.nrows, at.ncols), (3, 2));
        let mut y = [0.0; 2];
        a.matvec(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn matvec_add_accumulates() {
        let a = example();
        let mut y = [1.0, 1.0, 1.0];
        a.matvec_add(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y, [3.0, 2.0, 1.0]);
    }
}
