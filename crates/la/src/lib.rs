//! # la — sparse linear algebra, Krylov solvers, and algebraic multigrid
//!
//! The solver substrate of the reproduction. The paper's Stokes
//! preconditioner applies one V-cycle of BoomerAMG (hypre) to each
//! variable-viscosity Poisson block and to the Schur-complement mass
//! matrix; here the AMG is a smoothed-aggregation hierarchy
//! ([`amg::Amg`]), the substitution argued in DESIGN.md: both are
//! algebraic multigrids used strictly as black-box V-cycle
//! preconditioners, and the property the paper measures — MINRES
//! iteration counts that are nearly insensitive to problem size under
//! severe viscosity heterogeneity — is reproduced by the aggregation
//! hierarchy.
//!
//! Everything in this crate is rank-local (serial); distributed solvers
//! are composed on top by the `fem`/`stokes` crates, which supply
//! globally-reduced inner products and ghost-exchanging operators
//! through the [`LinearOp`] and dot-product hooks.

pub mod amg;
pub mod csr;
pub mod dense;
pub mod krylov;

pub use amg::{Amg, AmgOptions};
pub use csr::Csr;
pub use dense::Cholesky;
pub use krylov::{cg, minres, minres_fused, minres_observed, DotBatch, LinearOp, SolveInfo};
