//! Krylov solvers: preconditioned MINRES (Paige–Saunders) and CG.
//!
//! MINRES is the paper's outer solver for the stabilized Stokes saddle
//! point system (Section III): each iteration applies the Stokes operator
//! once, stores a handful of vectors, and takes two inner products. The
//! preconditioner must be symmetric positive definite; the implementation
//! follows Elman–Silvester–Wathen, *Finite Elements and Fast Iterative
//! Solvers* (the paper's reference [11]).
//!
//! Both solvers are written against the [`LinearOp`] trait plus a
//! caller-supplied inner product, so the same code runs serially and
//! distributed (where the dot product performs a global reduction and the
//! operator exchanges ghost values).

/// An abstract linear operator `y = A x` on vectors of fixed length.
pub trait LinearOp {
    fn apply(&self, x: &[f64], y: &mut [f64]);
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A `(len, closure)` pair is an operator.
impl<F: Fn(&[f64], &mut [f64])> LinearOp for (usize, F) {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.1)(x, y)
    }
    fn len(&self) -> usize {
        self.0
    }
}

impl LinearOp for crate::csr::Csr {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
    fn len(&self) -> usize {
        self.nrows
    }
}

/// Convergence report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveInfo {
    pub iterations: usize,
    pub converged: bool,
    /// Final residual norm estimate (preconditioned norm for MINRES).
    pub residual: f64,
}

/// Serial Euclidean inner product (the default `dot` hook).
pub fn euclidean_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Inner-product provider for Krylov solvers.
///
/// [`DotBatch::dot`] computes one (possibly global) inner product;
/// [`DotBatch::dots`] computes several in a single communication round.
/// **Batching contract:** `dots` must return values bitwise identical to
/// calling `dot` on each pair separately. Distributed implementations
/// satisfy this by computing per-pair local partial sums with the same
/// summation as `dot` and reducing them in one slice `allreduce`, whose
/// per-entry combination order equals the scalar reduction's.
///
/// Every `Fn(&[f64], &[f64]) -> f64` closure is a `DotBatch` whose
/// `dots` falls back to one call per pair — the unfused reference path.
pub trait DotBatch {
    fn dot(&self, a: &[f64], b: &[f64]) -> f64;

    /// Compute `out[k] = dot(pairs[k].0, pairs[k].1)` for all pairs.
    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        debug_assert_eq!(pairs.len(), out.len());
        for (o, (a, b)) in out.iter_mut().zip(pairs) {
            *o = self.dot(a, b);
        }
    }
}

impl<F: Fn(&[f64], &[f64]) -> f64> DotBatch for F {
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self(a, b)
    }
}

/// Preconditioned MINRES for symmetric (possibly indefinite) `A` with SPD
/// preconditioner applied by `m_inv ≈ A⁻¹`. Solves `A x = b`; the initial
/// content of `x` is the starting guess. Converges when the
/// preconditioned residual norm drops below `tol` times its initial
/// value.
#[allow(clippy::too_many_arguments)]
pub fn minres<A, M, D>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: DotBatch,
{
    minres_observed(a, m_inv, b, x, tol, max_iter, dot, |_, _| {})
}

/// [`minres`] with a per-iteration observer `observe(iteration,
/// residual_estimate)` — the hook the telemetry layer uses to record
/// residual histories without coupling the solver to any recorder type.
/// The residual estimate is the preconditioned norm `|η|` that the
/// convergence test uses.
#[allow(clippy::too_many_arguments)]
pub fn minres_observed<A, M, D, O>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
    mut observe: O,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: DotBatch,
    O: FnMut(usize, f64),
{
    let n = b.len();
    let apply_m = |r: &[f64], z: &mut [f64]| match m_inv {
        Some(m) => m.apply(r, z),
        None => z.copy_from_slice(r),
    };

    // r1 = b − A x ; z1 = M⁻¹ r1 ; γ1 = sqrt(<z1, r1>).
    let mut r0 = vec![0.0; n]; // previous Lanczos residual
    let mut r1 = vec![0.0; n];
    a.apply(x, &mut r1);
    for i in 0..n {
        r1[i] = b[i] - r1[i];
    }
    let mut z1 = vec![0.0; n];
    apply_m(&r1, &mut z1);
    // One batched reduction covers both startup scalars.
    let mut init = [0.0f64; 2];
    dot.dots(&[(&z1, &r1), (&r1, &r1)], &mut init);
    let g2 = init[0];
    assert!(
        g2 >= -1e-12 * init[1].max(1.0),
        "MINRES preconditioner is not positive definite"
    );
    let mut gamma1 = g2.max(0.0).sqrt();
    let gamma_init = gamma1;
    if gamma1 == 0.0 {
        return SolveInfo {
            iterations: 0,
            converged: true,
            residual: 0.0,
        };
    }
    let mut gamma0 = 1.0f64; // γ0 (unused weight on the vanishing j=1 term)

    let mut eta = gamma1;
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    let (mut c0, mut c1) = (1.0f64, 1.0f64);
    let mut w0 = vec![0.0; n];
    let mut w1 = vec![0.0; n];
    let mut az = vec![0.0; n];
    // Rotating buffers: all vectors live for the whole solve, so the
    // iteration performs zero heap allocations.
    let mut r2 = vec![0.0; n];
    let mut z2 = vec![0.0; n];
    let mut w2 = vec![0.0; n];

    for iter in 1..=max_iter {
        // Lanczos step.
        let inv_g = 1.0 / gamma1;
        for zi in z1.iter_mut() {
            *zi *= inv_g;
        }
        a.apply(&z1, &mut az);
        let delta = dot.dot(&az, &z1);
        for i in 0..n {
            r2[i] = az[i] - (delta / gamma1) * r1[i];
        }
        if iter > 1 {
            for i in 0..n {
                r2[i] -= (gamma1 / gamma0) * r0[i];
            }
        }
        apply_m(&r2, &mut z2);
        let gamma2 = dot.dot(&z2, &r2).max(0.0).sqrt();

        // Givens rotations.
        let alpha0 = c1 * delta - c0 * s1 * gamma1;
        let alpha1 = (alpha0 * alpha0 + gamma2 * gamma2).sqrt();
        let alpha2 = s1 * delta + c0 * c1 * gamma1;
        let alpha3 = s0 * gamma1;
        c0 = c1;
        s0 = s1;
        c1 = alpha0 / alpha1;
        s1 = gamma2 / alpha1;

        // Solution update: w2 = (z1 − α3 w0 − α2 w1)/α1 ; x += c1 η w2.
        for i in 0..n {
            w2[i] = (z1[i] - alpha3 * w0[i] - alpha2 * w1[i]) / alpha1;
            x[i] += c1 * eta * w2[i];
        }
        eta *= -s1;

        // Shift state (buffer rotation, no allocation: the vector cycled
        // into each scratch slot is fully overwritten next iteration).
        std::mem::swap(&mut r0, &mut r1);
        std::mem::swap(&mut r1, &mut r2);
        std::mem::swap(&mut z1, &mut z2);
        gamma0 = gamma1;
        gamma1 = gamma2;
        std::mem::swap(&mut w0, &mut w1);
        std::mem::swap(&mut w1, &mut w2);

        observe(iter, eta.abs());
        if eta.abs() <= tol * gamma_init || gamma1 == 0.0 {
            return SolveInfo {
                iterations: iter,
                converged: true,
                residual: eta.abs(),
            };
        }
    }
    SolveInfo {
        iterations: max_iter,
        converged: false,
        residual: eta.abs(),
    }
}

/// Single-reduction preconditioned MINRES: algebraically equivalent to
/// [`minres_observed`] but with **one** batched global reduction per
/// iteration instead of two sequentially dependent ones.
///
/// The classic iteration needs `δ = <Az₁, z₁>` elementwise before it can
/// form the next residual whose norm is the second reduction — the two
/// cannot be batched transparently. This variant removes the dependency
/// (Chronopoulos/Gear-style recurrence adapted to preconditioned MINRES):
/// with `r₂ = Az₁ − (δ/γ₁)r₁ − (γ₁/γ₀)r₀` and
/// `z₂ = M⁻¹Az₁ − δz₁ − γ₁z₀` (z's normalized, r's unnormalized), the
/// norm `γ₂² = <z₂, r₂>` is a bilinear form in vectors that are all known
/// *before* `δ` is — so one reduction of the nine constituent dots
///
/// ```text
/// <Az₁,z₁>  <M⁻¹Az₁,Az₁>  <Az₁,z₀>
/// <z₁,r₀>   <M⁻¹Az₁,r₁>   <M⁻¹Az₁,r₀>
/// <z₁,r₁>   <z₀,r₁>       <z₀,r₀>
/// ```
///
/// determines `δ` and `γ₂²` simultaneously. The expansion is *exact* —
/// it assumes no Lanczos orthogonality or normalization identities, which
/// is what keeps the recurrence stable: a γ₂ computed from the idealized
/// `d₂ − δ² − γ₁²` drifts from the true norm of the computed vectors and
/// the error compounds geometrically, while the full expansion re-measures
/// the actual vectors every iteration (in exact arithmetic the cross terms
/// collapse and both reduce to `d₂ − δ² − γ₁²`). The next preconditioned
/// vector follows without a second solve by linearity of the
/// preconditioner (`z₂` above) — so the cost per iteration stays one
/// operator and one preconditioner application. Requires `m_inv` to be a
/// *linear* operator (an AMG V-cycle with zero initial guess is).
///
/// Floating-point results differ from [`minres_observed`] in the last
/// bits (different evaluation order); with a batched [`DotBatch`] the
/// residual series is bitwise identical to running this same algorithm
/// with per-scalar reductions — that is the batching contract the golden
/// tests pin down.
#[allow(clippy::too_many_arguments)]
pub fn minres_fused<A, M, D, O>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
    mut observe: O,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: DotBatch,
    O: FnMut(usize, f64),
{
    let n = b.len();
    let apply_m = |r: &[f64], z: &mut [f64]| match m_inv {
        Some(m) => m.apply(r, z),
        None => z.copy_from_slice(r),
    };

    // r1 = b − A x ; z1 = M⁻¹ r1 ; γ1 = sqrt(<z1, r1>).
    let mut r0 = vec![0.0; n];
    let mut r1 = vec![0.0; n];
    a.apply(x, &mut r1);
    for i in 0..n {
        r1[i] = b[i] - r1[i];
    }
    let mut z1 = vec![0.0; n];
    apply_m(&r1, &mut z1);
    let mut init = [0.0f64; 2];
    dot.dots(&[(&z1, &r1), (&r1, &r1)], &mut init);
    let g2 = init[0];
    assert!(
        g2 >= -1e-12 * init[1].max(1.0),
        "MINRES preconditioner is not positive definite"
    );
    let mut gamma1 = g2.max(0.0).sqrt();
    let gamma_init = gamma1;
    if gamma1 == 0.0 {
        return SolveInfo {
            iterations: 0,
            converged: true,
            residual: 0.0,
        };
    }
    // Normalize z1 once; from here z0/z1 stay normalized.
    let inv_g = 1.0 / gamma1;
    for zi in z1.iter_mut() {
        *zi *= inv_g;
    }
    let mut z0 = vec![0.0; n];
    let mut gamma0 = 1.0f64;

    let mut eta = gamma1;
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    let (mut c0, mut c1) = (1.0f64, 1.0f64);
    let mut w0 = vec![0.0; n];
    let mut w1 = vec![0.0; n];
    let mut w2 = vec![0.0; n];
    let mut az = vec![0.0; n];
    let mut maz = vec![0.0; n];
    let mut scalars = [0.0f64; 9];

    for iter in 1..=max_iter {
        a.apply(&z1, &mut az);
        apply_m(&az, &mut maz);
        // The single fused reduction of the iteration. The batch length
        // is fixed at 9 so every rank always reduces the same slice; on
        // the first iteration z0 and r0 are zero vectors and the entries
        // involving them vanish identically.
        dot.dots(
            &[
                (&az, &z1),
                (&maz, &az),
                (&az, &z0),
                (&z1, &r0),
                (&maz, &r1),
                (&maz, &r0),
                (&z1, &r1),
                (&z0, &r1),
                (&z0, &r0),
            ],
            &mut scalars,
        );
        let [delta, d2, e0, c01, mr1, mr0, n11, zr01, n00] = scalars;

        // γ₂² = <z₂, r₂> expanded over the nine dots. With aa = δ/γ₁ and
        // bb = γ₁/γ₀ the r-recurrence coefficients (bb = 0 on the first
        // iteration, where r₀ = z₀ = 0):
        //   <maz − δz₁ − γ₁z₀, az − aa·r₁ − bb·r₀>
        let aa = delta / gamma1;
        let bb = if iter == 1 { 0.0 } else { gamma1 / gamma0 };
        let g2sq = d2 - aa * mr1 - bb * mr0 - delta * delta + aa * delta * n11 + bb * delta * c01
            - gamma1 * e0
            + aa * gamma1 * zr01
            + bb * gamma1 * n00;
        let gamma2 = g2sq.max(0.0).sqrt();

        // Residual recurrence (r's unnormalized, z's normalized):
        // r2 = Az₁ − (δ/γ₁) r1 − (γ₁/γ₀) r0 ; z2 = M⁻¹Az₁ − δ z1 − γ₁ z0.
        // r2 overwrites r0, z2 overwrites z0 — those slots become the
        // new r1/z1 after the shift below.
        if iter == 1 {
            for i in 0..n {
                r0[i] = az[i] - (delta / gamma1) * r1[i];
                z0[i] = maz[i] - delta * z1[i];
            }
        } else {
            for i in 0..n {
                r0[i] = az[i] - (delta / gamma1) * r1[i] - (gamma1 / gamma0) * r0[i];
                z0[i] = maz[i] - delta * z1[i] - gamma1 * z0[i];
            }
        }
        if gamma2 > 0.0 {
            let inv = 1.0 / gamma2;
            for zi in z0.iter_mut() {
                *zi *= inv;
            }
        }

        // Givens rotations (identical to the classic variant).
        let alpha0 = c1 * delta - c0 * s1 * gamma1;
        let alpha1 = (alpha0 * alpha0 + gamma2 * gamma2).sqrt();
        let alpha2 = s1 * delta + c0 * c1 * gamma1;
        let alpha3 = s0 * gamma1;
        c0 = c1;
        s0 = s1;
        c1 = alpha0 / alpha1;
        s1 = gamma2 / alpha1;

        for i in 0..n {
            w2[i] = (z1[i] - alpha3 * w0[i] - alpha2 * w1[i]) / alpha1;
            x[i] += c1 * eta * w2[i];
        }
        eta *= -s1;

        // Shift: (r0, r1) ← (r1, r2) and (z0, z1) ← (z1, z2), where r2/z2
        // currently occupy the r0/z0 slots.
        std::mem::swap(&mut r0, &mut r1);
        std::mem::swap(&mut z0, &mut z1);
        gamma0 = gamma1;
        gamma1 = gamma2;
        std::mem::swap(&mut w0, &mut w1);
        std::mem::swap(&mut w1, &mut w2);

        observe(iter, eta.abs());
        if eta.abs() <= tol * gamma_init || gamma1 == 0.0 {
            return SolveInfo {
                iterations: iter,
                converged: true,
                residual: eta.abs(),
            };
        }
    }
    SolveInfo {
        iterations: max_iter,
        converged: false,
        residual: eta.abs(),
    }
}

/// Conjugate gradients for SPD `A` with optional SPD preconditioner.
pub fn cg<A, M, D>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: DotBatch,
{
    let n = b.len();
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    match m_inv {
        Some(m) => m.apply(&r, &mut z),
        None => z.copy_from_slice(&r),
    }
    let mut init = [0.0f64; 2];
    dot.dots(&[(&r, &z), (b, b)], &mut init);
    let mut rz = init[0];
    let norm_b = init[1].sqrt().max(f64::MIN_POSITIVE);
    let mut ap = vec![0.0; n];
    let mut p = z.clone();
    let mut pair = [0.0f64; 2];
    for iter in 1..=max_iter {
        a.apply(&p, &mut ap);
        let pap = dot.dot(&p, &ap);
        if pap <= 0.0 {
            return SolveInfo {
                iterations: iter,
                converged: false,
                residual: rz.abs().sqrt(),
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        // Apply the preconditioner *before* the convergence test so the
        // residual norm and <r, z> reduce in one batch (values are
        // unchanged — the two scalars are independent; the only cost is
        // one discarded preconditioner application on the final
        // iteration).
        match m_inv {
            Some(m) => m.apply(&r, &mut z),
            None => z.copy_from_slice(&r),
        }
        dot.dots(&[(&r, &r), (&r, &z)], &mut pair);
        let rnorm = pair[0].sqrt();
        if rnorm <= tol * norm_b {
            return SolveInfo {
                iterations: iter,
                converged: true,
                residual: rnorm,
            };
        }
        let rz_new = pair[1];
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rnorm = dot.dot(&r, &r).sqrt();
    SolveInfo {
        iterations: max_iter,
        converged: rnorm <= tol * norm_b,
        residual: rnorm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    /// SPD tridiagonal test matrix (1D Laplacian).
    fn laplace1d(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, n, &t)
    }

    /// A symmetric *indefinite* saddle-point-like matrix.
    fn indefinite(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            let d = if i < n / 2 { 2.0 } else { -1.5 };
            t.push((i, i, d));
            if i > 0 {
                t.push((i, i - 1, 0.3));
                t.push((i - 1, i, 0.3));
            }
        }
        Csr::from_triplets(n, n, &t)
    }

    fn residual(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.matvec(x, &mut r);
        r.iter()
            .zip(b)
            .map(|(ri, bi)| (ri - bi).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn cg_solves_spd() {
        let a = laplace1d(50);
        let b = vec![1.0; 50];
        let mut x = vec![0.0; 50];
        let info = cg(&a, None::<&Csr>, &b, &mut x, 1e-10, 500, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(residual(&a, &x, &b) < 1e-7);
    }

    #[test]
    fn cg_with_jacobi_preconditioner_converges_faster() {
        let n = 80;
        // Badly scaled SPD diagonal + Laplacian.
        let mut t = Vec::new();
        for i in 0..n {
            let scale = 10f64.powi((i % 5) as i32);
            t.push((i, i, 2.0 * scale));
            if i > 0 {
                t.push((i, i - 1, -0.5));
                t.push((i - 1, i, -0.5));
            }
        }
        let a = Csr::from_triplets(n, n, &t);
        let d = a.diagonal();
        let jacobi = (n, move |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                y[i] = x[i] / d[i];
            }
        });
        let b = vec![1.0; n];
        let mut x0 = vec![0.0; n];
        let plain = cg(&a, None::<&Csr>, &b, &mut x0, 1e-10, 2000, euclidean_dot);
        let mut x1 = vec![0.0; n];
        let pre = cg(&a, Some(&jacobi), &b, &mut x1, 1e-10, 2000, euclidean_dot);
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "{} !< {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn minres_solves_spd_like_cg() {
        let a = laplace1d(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut x = vec![0.0; 60];
        let info = minres(&a, None::<&Csr>, &b, &mut x, 1e-10, 1000, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(
            residual(&a, &x, &b) < 1e-6,
            "res = {}",
            residual(&a, &x, &b)
        );
    }

    #[test]
    fn minres_solves_indefinite_system() {
        let a = indefinite(40);
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let info = minres(&a, None::<&Csr>, &b, &mut x, 1e-12, 2000, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(
            residual(&a, &x, &b) < 1e-8,
            "res = {}",
            residual(&a, &x, &b)
        );
    }

    #[test]
    fn minres_with_spd_preconditioner_on_indefinite_system() {
        let a = indefinite(40);
        // |diag| Jacobi is SPD and admissible for MINRES.
        let d = a.diagonal();
        let m = (40, move |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                y[i] = x[i] / d[i].abs();
            }
        });
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let info = minres(&a, Some(&m), &b, &mut x, 1e-12, 2000, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn observer_sees_monotone_iteration_numbers_and_final_residual() {
        let a = laplace1d(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut x = vec![0.0; 60];
        let mut history: Vec<(usize, f64)> = Vec::new();
        let info = minres_observed(
            &a,
            None::<&Csr>,
            &b,
            &mut x,
            1e-10,
            1000,
            euclidean_dot,
            |it, r| history.push((it, r)),
        );
        assert!(info.converged);
        assert_eq!(history.len(), info.iterations);
        for (k, &(it, r)) in history.iter().enumerate() {
            assert_eq!(it, k + 1, "iterations reported in order");
            assert!(r.is_finite() && r >= 0.0);
        }
        assert_eq!(history.last().unwrap().1, info.residual);
    }

    #[test]
    fn minres_fused_matches_classic_on_spd() {
        let a = laplace1d(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut x_ref = vec![0.0; 60];
        let info_ref = minres(&a, None::<&Csr>, &b, &mut x_ref, 1e-10, 1000, euclidean_dot);
        let mut x = vec![0.0; 60];
        let info = minres_fused(
            &a,
            None::<&Csr>,
            &b,
            &mut x,
            1e-10,
            1000,
            euclidean_dot,
            |_, _| {},
        );
        assert!(info.converged, "{info:?}");
        assert!(residual(&a, &x, &b) < 1e-6);
        // Same algorithm in exact arithmetic: iteration counts agree to
        // within one and the solutions coincide to solver tolerance.
        assert!(
            info.iterations.abs_diff(info_ref.iterations) <= 1,
            "{} vs {}",
            info.iterations,
            info_ref.iterations
        );
        for (u, v) in x.iter().zip(&x_ref) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn minres_fused_solves_indefinite_system() {
        let a = indefinite(40);
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let info = minres_fused(
            &a,
            None::<&Csr>,
            &b,
            &mut x,
            1e-12,
            2000,
            euclidean_dot,
            |_, _| {},
        );
        assert!(info.converged, "{info:?}");
        assert!(
            residual(&a, &x, &b) < 1e-8,
            "res = {}",
            residual(&a, &x, &b)
        );
    }

    #[test]
    fn minres_fused_with_spd_preconditioner() {
        let a = indefinite(40);
        let d = a.diagonal();
        let m = (40, move |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                y[i] = x[i] / d[i].abs();
            }
        });
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let info = minres_fused(
            &a,
            Some(&m),
            &b,
            &mut x,
            1e-12,
            2000,
            euclidean_dot,
            |_, _| {},
        );
        assert!(info.converged, "{info:?}");
        assert!(residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn minres_fused_observer_and_warm_start() {
        let a = laplace1d(20);
        let b = vec![1.0; 20];
        let mut x = vec![0.0; 20];
        cg(&a, None::<&Csr>, &b, &mut x, 1e-12, 500, euclidean_dot);
        let mut y = x.clone();
        let mut history = Vec::new();
        let info = minres_fused(
            &a,
            None::<&Csr>,
            &b,
            &mut y,
            1e-8,
            100,
            euclidean_dot,
            |it, r| history.push((it, r)),
        );
        assert!(info.iterations <= 2, "warm start should converge fast");
        assert_eq!(history.len(), info.iterations);
        if let Some(&(_, last)) = history.last() {
            assert_eq!(last, info.residual);
        }
    }

    /// A batch-aware dot provider whose `dots` computes per-pair partial
    /// sums exactly like `dot` and "reduces" them together — the serial
    /// stand-in for the distributed batched reduction. Fused MINRES must
    /// produce a bitwise-identical residual series through either path.
    struct Batched;
    impl DotBatch for Batched {
        fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
            euclidean_dot(a, b)
        }
        fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
            for (o, (a, b)) in out.iter_mut().zip(pairs) {
                *o = euclidean_dot(a, b);
            }
        }
    }

    #[test]
    fn fused_batched_and_separate_reductions_are_bitwise_identical() {
        let a = indefinite(50);
        let b: Vec<f64> = (0..50).map(|i| 1.0 + (i as f64 * 0.2).cos()).collect();
        let run = |batched: bool| {
            let mut x = vec![0.0; 50];
            let mut series = Vec::new();
            let info = if batched {
                minres_fused(&a, None::<&Csr>, &b, &mut x, 1e-10, 500, Batched, |_, r| {
                    series.push(r)
                })
            } else {
                minres_fused(
                    &a,
                    None::<&Csr>,
                    &b,
                    &mut x,
                    1e-10,
                    500,
                    euclidean_dot,
                    |_, r| series.push(r),
                )
            };
            (info, x, series)
        };
        let (i0, x0, s0) = run(false);
        let (i1, x1, s1) = run(true);
        assert_eq!(i0, i1);
        assert_eq!(s0, s1, "residual series must be bitwise identical");
        assert_eq!(x0, x1, "solutions must be bitwise identical");
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = laplace1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let info = minres(&a, None::<&Csr>, &b, &mut x, 1e-10, 100, euclidean_dot);
        assert_eq!(info.iterations, 0);
        assert!(info.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        let a = laplace1d(20);
        let b = vec![1.0; 20];
        // Solve once, restart from the solution: 0 extra progress needed.
        let mut x = vec![0.0; 20];
        cg(&a, None::<&Csr>, &b, &mut x, 1e-12, 500, euclidean_dot);
        let mut y = x.clone();
        let info = minres(&a, None::<&Csr>, &b, &mut y, 1e-8, 100, euclidean_dot);
        assert!(
            info.iterations <= 2,
            "warm start should converge immediately"
        );
    }
}
