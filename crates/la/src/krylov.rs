//! Krylov solvers: preconditioned MINRES (Paige–Saunders) and CG.
//!
//! MINRES is the paper's outer solver for the stabilized Stokes saddle
//! point system (Section III): each iteration applies the Stokes operator
//! once, stores a handful of vectors, and takes two inner products. The
//! preconditioner must be symmetric positive definite; the implementation
//! follows Elman–Silvester–Wathen, *Finite Elements and Fast Iterative
//! Solvers* (the paper's reference [11]).
//!
//! Both solvers are written against the [`LinearOp`] trait plus a
//! caller-supplied inner product, so the same code runs serially and
//! distributed (where the dot product performs a global reduction and the
//! operator exchanges ghost values).

/// An abstract linear operator `y = A x` on vectors of fixed length.
pub trait LinearOp {
    fn apply(&self, x: &[f64], y: &mut [f64]);
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A `(len, closure)` pair is an operator.
impl<F: Fn(&[f64], &mut [f64])> LinearOp for (usize, F) {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.1)(x, y)
    }
    fn len(&self) -> usize {
        self.0
    }
}

impl LinearOp for crate::csr::Csr {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
    fn len(&self) -> usize {
        self.nrows
    }
}

/// Convergence report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveInfo {
    pub iterations: usize,
    pub converged: bool,
    /// Final residual norm estimate (preconditioned norm for MINRES).
    pub residual: f64,
}

/// Serial Euclidean inner product (the default `dot` hook).
pub fn euclidean_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Preconditioned MINRES for symmetric (possibly indefinite) `A` with SPD
/// preconditioner applied by `m_inv ≈ A⁻¹`. Solves `A x = b`; the initial
/// content of `x` is the starting guess. Converges when the
/// preconditioned residual norm drops below `tol` times its initial
/// value.
#[allow(clippy::too_many_arguments)]
pub fn minres<A, M, D>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: Fn(&[f64], &[f64]) -> f64,
{
    minres_observed(a, m_inv, b, x, tol, max_iter, dot, |_, _| {})
}

/// [`minres`] with a per-iteration observer `observe(iteration,
/// residual_estimate)` — the hook the telemetry layer uses to record
/// residual histories without coupling the solver to any recorder type.
/// The residual estimate is the preconditioned norm `|η|` that the
/// convergence test uses.
#[allow(clippy::too_many_arguments)]
pub fn minres_observed<A, M, D, O>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
    mut observe: O,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: Fn(&[f64], &[f64]) -> f64,
    O: FnMut(usize, f64),
{
    let n = b.len();
    let apply_m = |r: &[f64], z: &mut [f64]| match m_inv {
        Some(m) => m.apply(r, z),
        None => z.copy_from_slice(r),
    };

    // r1 = b − A x ; z1 = M⁻¹ r1 ; γ1 = sqrt(<z1, r1>).
    let mut r0 = vec![0.0; n]; // previous Lanczos residual
    let mut r1 = vec![0.0; n];
    a.apply(x, &mut r1);
    for i in 0..n {
        r1[i] = b[i] - r1[i];
    }
    let mut z1 = vec![0.0; n];
    apply_m(&r1, &mut z1);
    let g2 = dot(&z1, &r1);
    assert!(
        g2 >= -1e-12 * dot(&r1, &r1).max(1.0),
        "MINRES preconditioner is not positive definite"
    );
    let mut gamma1 = g2.max(0.0).sqrt();
    let gamma_init = gamma1;
    if gamma1 == 0.0 {
        return SolveInfo {
            iterations: 0,
            converged: true,
            residual: 0.0,
        };
    }
    let mut gamma0 = 1.0f64; // γ0 (unused weight on the vanishing j=1 term)

    let mut eta = gamma1;
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    let (mut c0, mut c1) = (1.0f64, 1.0f64);
    let mut w0 = vec![0.0; n];
    let mut w1 = vec![0.0; n];
    let mut az = vec![0.0; n];

    for iter in 1..=max_iter {
        // Lanczos step.
        let inv_g = 1.0 / gamma1;
        for zi in z1.iter_mut() {
            *zi *= inv_g;
        }
        a.apply(&z1, &mut az);
        let delta = dot(&az, &z1);
        let mut r2 = az.clone();
        for i in 0..n {
            r2[i] -= (delta / gamma1) * r1[i];
        }
        if iter > 1 {
            for i in 0..n {
                r2[i] -= (gamma1 / gamma0) * r0[i];
            }
        }
        let mut z2 = vec![0.0; n];
        apply_m(&r2, &mut z2);
        let gamma2 = dot(&z2, &r2).max(0.0).sqrt();

        // Givens rotations.
        let alpha0 = c1 * delta - c0 * s1 * gamma1;
        let alpha1 = (alpha0 * alpha0 + gamma2 * gamma2).sqrt();
        let alpha2 = s1 * delta + c0 * c1 * gamma1;
        let alpha3 = s0 * gamma1;
        c0 = c1;
        s0 = s1;
        c1 = alpha0 / alpha1;
        s1 = gamma2 / alpha1;

        // Solution update: w2 = (z1 − α3 w0 − α2 w1)/α1 ; x += c1 η w2.
        let mut w2 = vec![0.0; n];
        for i in 0..n {
            w2[i] = (z1[i] - alpha3 * w0[i] - alpha2 * w1[i]) / alpha1;
            x[i] += c1 * eta * w2[i];
        }
        eta *= -s1;

        // Shift state.
        std::mem::swap(&mut r0, &mut r1);
        r1 = r2;
        z1 = z2;
        gamma0 = gamma1;
        gamma1 = gamma2;
        w0 = w1;
        w1 = w2;

        observe(iter, eta.abs());
        if eta.abs() <= tol * gamma_init || gamma1 == 0.0 {
            return SolveInfo {
                iterations: iter,
                converged: true,
                residual: eta.abs(),
            };
        }
    }
    SolveInfo {
        iterations: max_iter,
        converged: false,
        residual: eta.abs(),
    }
}

/// Conjugate gradients for SPD `A` with optional SPD preconditioner.
pub fn cg<A, M, D>(
    a: &A,
    m_inv: Option<&M>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    dot: D,
) -> SolveInfo
where
    A: LinearOp + ?Sized,
    M: LinearOp + ?Sized,
    D: Fn(&[f64], &[f64]) -> f64,
{
    let n = b.len();
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    match m_inv {
        Some(m) => m.apply(&r, &mut z),
        None => z.copy_from_slice(&r),
    }
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let norm_b = dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let mut ap = vec![0.0; n];
    for iter in 1..=max_iter {
        a.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return SolveInfo {
                iterations: iter,
                converged: false,
                residual: rz.abs().sqrt(),
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rnorm = dot(&r, &r).sqrt();
        if rnorm <= tol * norm_b {
            return SolveInfo {
                iterations: iter,
                converged: true,
                residual: rnorm,
            };
        }
        match m_inv {
            Some(m) => m.apply(&r, &mut z),
            None => z.copy_from_slice(&r),
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rnorm = dot(&r, &r).sqrt();
    SolveInfo {
        iterations: max_iter,
        converged: rnorm <= tol * norm_b,
        residual: rnorm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    /// SPD tridiagonal test matrix (1D Laplacian).
    fn laplace1d(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, n, &t)
    }

    /// A symmetric *indefinite* saddle-point-like matrix.
    fn indefinite(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            let d = if i < n / 2 { 2.0 } else { -1.5 };
            t.push((i, i, d));
            if i > 0 {
                t.push((i, i - 1, 0.3));
                t.push((i - 1, i, 0.3));
            }
        }
        Csr::from_triplets(n, n, &t)
    }

    fn residual(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.matvec(x, &mut r);
        r.iter()
            .zip(b)
            .map(|(ri, bi)| (ri - bi).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn cg_solves_spd() {
        let a = laplace1d(50);
        let b = vec![1.0; 50];
        let mut x = vec![0.0; 50];
        let info = cg(&a, None::<&Csr>, &b, &mut x, 1e-10, 500, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(residual(&a, &x, &b) < 1e-7);
    }

    #[test]
    fn cg_with_jacobi_preconditioner_converges_faster() {
        let n = 80;
        // Badly scaled SPD diagonal + Laplacian.
        let mut t = Vec::new();
        for i in 0..n {
            let scale = 10f64.powi((i % 5) as i32);
            t.push((i, i, 2.0 * scale));
            if i > 0 {
                t.push((i, i - 1, -0.5));
                t.push((i - 1, i, -0.5));
            }
        }
        let a = Csr::from_triplets(n, n, &t);
        let d = a.diagonal();
        let jacobi = (n, move |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                y[i] = x[i] / d[i];
            }
        });
        let b = vec![1.0; n];
        let mut x0 = vec![0.0; n];
        let plain = cg(&a, None::<&Csr>, &b, &mut x0, 1e-10, 2000, euclidean_dot);
        let mut x1 = vec![0.0; n];
        let pre = cg(&a, Some(&jacobi), &b, &mut x1, 1e-10, 2000, euclidean_dot);
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "{} !< {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn minres_solves_spd_like_cg() {
        let a = laplace1d(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut x = vec![0.0; 60];
        let info = minres(&a, None::<&Csr>, &b, &mut x, 1e-10, 1000, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(
            residual(&a, &x, &b) < 1e-6,
            "res = {}",
            residual(&a, &x, &b)
        );
    }

    #[test]
    fn minres_solves_indefinite_system() {
        let a = indefinite(40);
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let info = minres(&a, None::<&Csr>, &b, &mut x, 1e-12, 2000, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(
            residual(&a, &x, &b) < 1e-8,
            "res = {}",
            residual(&a, &x, &b)
        );
    }

    #[test]
    fn minres_with_spd_preconditioner_on_indefinite_system() {
        let a = indefinite(40);
        // |diag| Jacobi is SPD and admissible for MINRES.
        let d = a.diagonal();
        let m = (40, move |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                y[i] = x[i] / d[i].abs();
            }
        });
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let info = minres(&a, Some(&m), &b, &mut x, 1e-12, 2000, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn observer_sees_monotone_iteration_numbers_and_final_residual() {
        let a = laplace1d(60);
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut x = vec![0.0; 60];
        let mut history: Vec<(usize, f64)> = Vec::new();
        let info = minres_observed(
            &a,
            None::<&Csr>,
            &b,
            &mut x,
            1e-10,
            1000,
            euclidean_dot,
            |it, r| history.push((it, r)),
        );
        assert!(info.converged);
        assert_eq!(history.len(), info.iterations);
        for (k, &(it, r)) in history.iter().enumerate() {
            assert_eq!(it, k + 1, "iterations reported in order");
            assert!(r.is_finite() && r >= 0.0);
        }
        assert_eq!(history.last().unwrap().1, info.residual);
    }

    #[test]
    fn zero_rhs_returns_immediately() {
        let a = laplace1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let info = minres(&a, None::<&Csr>, &b, &mut x, 1e-10, 100, euclidean_dot);
        assert_eq!(info.iterations, 0);
        assert!(info.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        let a = laplace1d(20);
        let b = vec![1.0; 20];
        // Solve once, restart from the solution: 0 extra progress needed.
        let mut x = vec![0.0; 20];
        cg(&a, None::<&Csr>, &b, &mut x, 1e-12, 500, euclidean_dot);
        let mut y = x.clone();
        let info = minres(&a, None::<&Csr>, &b, &mut y, 1e-8, 100, euclidean_dot);
        assert!(
            info.iterations <= 2,
            "warm start should converge immediately"
        );
    }
}
