//! Smoothed-aggregation algebraic multigrid — the BoomerAMG substitute.
//!
//! The paper preconditions each variable-viscosity Poisson block of the
//! Stokes operator with one V-cycle of BoomerAMG (hypre); AMG is chosen
//! over geometric multigrid precisely because it mitigates heterogeneity
//! in mesh size and viscosity (Section III). This module provides the
//! same contract: [`Amg::new`] is the *setup phase* (coarse hierarchy +
//! transfer operators), [`Amg::vcycle`] applies one V-cycle, and the
//! operator is SPD (symmetric Gauss–Seidel smoothing with matching pre-
//! and post-sweeps), making it admissible inside MINRES and CG.
//!
//! Algorithm: Vaněk–Mandel–Brezina smoothed aggregation with the constant
//! near-nullspace — strength graph by `|a_ij| ≥ θ √(a_ii a_jj)`, greedy
//! aggregation, tentative piecewise-constant prolongator, one step of
//! weighted-Jacobi prolongator smoothing with the spectral radius
//! estimated by power iteration.
//!
//! **Communication.** This hierarchy is deliberately *rank-local*
//! (block-Jacobi across ranks): [`Amg::new`] takes the owned diagonal
//! block and every smoother sweep, restriction, and coarse solve touches
//! only local data — there are no ghost exchanges to overlap, split-phase
//! or otherwise. The split-phase machinery (`fem::DofMap::exchange_begin`
//! / `exchange_end`) therefore lives in the distributed operator
//! applications that wrap these V-cycles (`fem::op::DistOp`,
//! `stokes`), not here; if a distributed smoother is ever added, its
//! halo exchange should adopt the same begin/end pattern. See DESIGN.md
//! §12 for the deviation note versus the paper's distributed BoomerAMG.

use std::cell::RefCell;

use crate::csr::Csr;
use crate::dense::{Cholesky, Lu};
use crate::krylov::LinearOp;

/// Setup options.
#[derive(Debug, Clone, Copy)]
pub struct AmgOptions {
    /// Strength-of-connection threshold θ.
    pub theta: f64,
    /// Pre/post symmetric Gauss–Seidel sweeps per level.
    pub smooth_sweeps: usize,
    /// Stop coarsening below this size and solve directly.
    pub max_coarse: usize,
    /// Hard cap on hierarchy depth.
    pub max_levels: usize,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            theta: 0.08,
            smooth_sweeps: 1,
            max_coarse: 64,
            max_levels: 20,
        }
    }
}

#[derive(Clone)]
struct Level {
    a: Csr,
    diag: Vec<f64>,
    /// Prolongator to this (finer) level from the next coarser one.
    p: Csr,
    r: Csr,
}

#[derive(Clone)]
enum CoarseSolve {
    Cholesky(Cholesky),
    Lu(Lu),
    /// Semi-definite fallback: damped Jacobi sweeps.
    Jacobi(Csr, Vec<f64>),
}

/// Per-level V-cycle scratch (residual, restricted residual, coarse
/// correction, prolonged correction), sized at setup so steady-state
/// V-cycles are allocation-free.
#[derive(Clone, Default)]
struct CycleScratch {
    r: Vec<f64>,
    rc: Vec<f64>,
    ec: Vec<f64>,
    e: Vec<f64>,
}

/// A smoothed-aggregation AMG hierarchy for an SPD (or semi-definite)
/// matrix.
#[derive(Clone)]
pub struct Amg {
    levels: Vec<Level>,
    coarse_a: Csr,
    coarse: CoarseSolve,
    options: AmgOptions,
    /// One scratch set per non-coarse level; interior mutability because
    /// `LinearOp::apply` takes `&self`. V-cycles never nest, so the
    /// borrow is always uncontended.
    scratch: RefCell<Vec<CycleScratch>>,
}

/// Greedy aggregation on the strength graph. Returns (aggregate id per
/// node, number of aggregates).
fn aggregate(a: &Csr, theta: f64) -> (Vec<usize>, usize) {
    let n = a.nrows;
    let diag = a.diagonal();
    // Strong neighbor lists.
    let mut strong: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            let j = a.col_idx[k];
            if j != i {
                let bound = theta * (diag[i].abs() * diag[j].abs()).sqrt();
                if a.values[k].abs() >= bound {
                    strong[i].push(j);
                }
            }
        }
    }
    const UNAGG: usize = usize::MAX;
    let mut agg = vec![UNAGG; n];
    let mut n_agg = 0;
    // Pass 1: roots whose entire strong neighborhood is unaggregated.
    for i in 0..n {
        if agg[i] != UNAGG {
            continue;
        }
        if strong[i].iter().all(|&j| agg[j] == UNAGG) {
            agg[i] = n_agg;
            for &j in &strong[i] {
                agg[j] = n_agg;
            }
            n_agg += 1;
        }
    }
    // Pass 2: attach stragglers to a neighboring aggregate.
    for i in 0..n {
        if agg[i] == UNAGG {
            if let Some(&j) = strong[i].iter().find(|&&j| agg[j] != UNAGG) {
                agg[i] = agg[j];
            }
        }
    }
    // Pass 3: leftovers become singletons.
    for i in 0..n {
        if agg[i] == UNAGG {
            agg[i] = n_agg;
            n_agg += 1;
        }
    }
    (agg, n_agg)
}

/// Estimate ρ(D⁻¹A) by power iteration (deterministic start).
fn spectral_radius_dinv_a(a: &Csr, diag: &[f64], iters: usize) -> f64 {
    let n = a.nrows;
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let mut y = vec![0.0; n];
    let mut lambda = 1.0f64;
    for _ in 0..iters {
        a.matvec(&x, &mut y);
        for i in 0..n {
            y[i] /= diag[i].max(1e-300);
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 1.0;
        }
        lambda = norm / x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        for i in 0..n {
            x[i] = y[i] / norm;
        }
    }
    lambda.max(1e-8)
}

/// One symmetric-Gauss–Seidel smoothing sweep (forward then backward).
fn sgs_sweep(a: &Csr, diag: &[f64], b: &[f64], x: &mut [f64]) {
    let n = a.nrows;
    for i in 0..n {
        let mut sigma = b[i];
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            let j = a.col_idx[k];
            if j != i {
                sigma -= a.values[k] * x[j];
            }
        }
        x[i] = sigma / diag[i];
    }
    for i in (0..n).rev() {
        let mut sigma = b[i];
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            let j = a.col_idx[k];
            if j != i {
                sigma -= a.values[k] * x[j];
            }
        }
        x[i] = sigma / diag[i];
    }
}

impl Amg {
    /// Setup phase: build the hierarchy for SPD `a`.
    pub fn new(a: Csr, options: AmgOptions) -> Amg {
        let mut levels = Vec::new();
        let mut current = a;
        while current.nrows > options.max_coarse && levels.len() < options.max_levels {
            let diag = current.diagonal();
            let (agg, n_agg) = aggregate(&current, options.theta);
            if n_agg >= current.nrows {
                break; // no coarsening progress; stop here
            }
            // Tentative prolongator: piecewise constant over aggregates.
            let triplets: Vec<(usize, usize, f64)> =
                agg.iter().enumerate().map(|(i, &g)| (i, g, 1.0)).collect();
            let p0 = Csr::from_triplets(current.nrows, n_agg, &triplets);
            // Smooth: P = (I − ω D⁻¹ A) P0 with ω = 4/(3ρ).
            let rho = spectral_radius_dinv_a(&current, &diag, 12);
            let omega = 4.0 / (3.0 * rho);
            let ap0 = current.matmul(&p0);
            // P = P0 − ω D⁻¹ (A P0): subtract scaled rows.
            let mut p_trip: Vec<(usize, usize, f64)> = Vec::with_capacity(ap0.nnz() + p0.nnz());
            for i in 0..p0.nrows {
                for k in p0.row_ptr[i]..p0.row_ptr[i + 1] {
                    p_trip.push((i, p0.col_idx[k], p0.values[k]));
                }
                let scale = omega / diag[i].max(1e-300);
                for k in ap0.row_ptr[i]..ap0.row_ptr[i + 1] {
                    p_trip.push((i, ap0.col_idx[k], -scale * ap0.values[k]));
                }
            }
            let p = Csr::from_triplets(current.nrows, n_agg, &p_trip);
            let r = p.transpose();
            let coarse = r.matmul(&current.matmul(&p));
            levels.push(Level {
                a: current,
                diag,
                p,
                r,
            });
            current = coarse;
        }
        // Direct coarse solve, with graceful degradation for singular
        // coarse operators (e.g. pure-Neumann problems).
        let n = current.nrows;
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            for k in current.row_ptr[i]..current.row_ptr[i + 1] {
                dense[i * n + current.col_idx[k]] = current.values[k];
            }
        }
        let coarse = match Cholesky::factor(&dense, n) {
            Some(ch) => CoarseSolve::Cholesky(ch),
            None => match Lu::factor(&dense, n) {
                Some(lu) => CoarseSolve::Lu(lu),
                None => {
                    let d = current
                        .diagonal()
                        .iter()
                        .map(|&v| if v.abs() < 1e-300 { 1.0 } else { v })
                        .collect();
                    CoarseSolve::Jacobi(current.clone(), d)
                }
            },
        };
        let scratch = levels
            .iter()
            .map(|l| CycleScratch {
                r: vec![0.0; l.a.nrows],
                rc: vec![0.0; l.p.ncols],
                ec: vec![0.0; l.p.ncols],
                e: vec![0.0; l.a.nrows],
            })
            .collect();
        Amg {
            levels,
            coarse_a: current,
            coarse,
            options,
            scratch: RefCell::new(scratch),
        }
    }

    /// Number of levels including the coarse grid.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Operator complexity: Σ nnz(Aₗ) / nnz(A₀) — the standard AMG memory
    /// metric (cf. De Sterck–Yang–Heys, the paper's reference [14]).
    pub fn operator_complexity(&self) -> f64 {
        if self.levels.is_empty() {
            return 1.0;
        }
        let fine = self.levels[0].a.nnz() as f64;
        let total: usize =
            self.levels.iter().map(|l| l.a.nnz()).sum::<usize>() + self.coarse_a.nnz();
        total as f64 / fine
    }

    fn cycle(&self, level: usize, b: &[f64], x: &mut [f64], scratch: &mut [CycleScratch]) {
        if level == self.levels.len() {
            match &self.coarse {
                CoarseSolve::Cholesky(ch) => {
                    x.copy_from_slice(b);
                    ch.solve(x);
                }
                CoarseSolve::Lu(lu) => {
                    let sol = lu.solve(b);
                    x.copy_from_slice(&sol);
                }
                CoarseSolve::Jacobi(a, d) => {
                    x.fill(0.0);
                    for _ in 0..20 {
                        sgs_sweep(a, d, b, x);
                    }
                }
            }
            return;
        }
        let lvl = &self.levels[level];
        let n = lvl.a.nrows;
        let (s, rest) = scratch
            .split_first_mut()
            .expect("one scratch set per level");
        // Pre-smooth.
        for _ in 0..self.options.smooth_sweeps {
            sgs_sweep(&lvl.a, &lvl.diag, b, x);
        }
        // Residual and restriction (scratch is fully overwritten, so
        // reuse is bitwise-transparent; only `ec` carries state in as the
        // coarse initial guess and is re-zeroed).
        lvl.a.matvec(x, &mut s.r);
        for i in 0..n {
            s.r[i] = b[i] - s.r[i];
        }
        lvl.r.matvec(&s.r, &mut s.rc);
        // Coarse correction.
        s.ec.fill(0.0);
        self.cycle(level + 1, &s.rc, &mut s.ec, rest);
        lvl.p.matvec(&s.ec, &mut s.e);
        for i in 0..n {
            x[i] += s.e[i];
        }
        // Post-smooth.
        for _ in 0..self.options.smooth_sweeps {
            sgs_sweep(&lvl.a, &lvl.diag, b, x);
        }
    }

    /// Apply one V-cycle to `b` with zero initial guess: `x = B b` where
    /// `B ≈ A⁻¹` is SPD. Allocation-free: all per-level scratch was sized
    /// during setup (the rare dense-LU coarse fallback excepted).
    pub fn vcycle(&self, b: &[f64], x: &mut [f64]) {
        x.fill(0.0);
        let mut scratch = self.scratch.borrow_mut();
        self.cycle(0, b, x, &mut scratch);
    }
}

impl LinearOp for Amg {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.vcycle(x, y);
    }
    fn len(&self) -> usize {
        if let Some(l) = self.levels.first() {
            l.a.nrows
        } else {
            self.coarse_a.nrows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{cg, euclidean_dot};

    /// 3D 7-point Poisson with optional variable coefficient field.
    fn poisson3d(n: usize, kappa: impl Fn(usize, usize, usize) -> f64) -> Csr {
        let id = |i: usize, j: usize, k: usize| i + n * (j + n * k);
        let mut t = Vec::new();
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let c = id(i, j, k);
                    let mut diag = 0.0;
                    let mut push = |ii: i64, jj: i64, kk: i64| {
                        if ii < 0
                            || jj < 0
                            || kk < 0
                            || ii >= n as i64
                            || jj >= n as i64
                            || kk >= n as i64
                        {
                            // Dirichlet boundary: drop the neighbor but
                            // keep the diagonal contribution.
                            diag += kappa(i, j, k);
                            return;
                        }
                        let o = id(ii as usize, jj as usize, kk as usize);
                        // Harmonic-mean-ish symmetric coefficient.
                        let kc =
                            0.5 * (kappa(i, j, k) + kappa(ii as usize, jj as usize, kk as usize));
                        t.push((c, o, -kc));
                        diag += kc;
                    };
                    push(i as i64 - 1, j as i64, k as i64);
                    push(i as i64 + 1, j as i64, k as i64);
                    push(i as i64, j as i64 - 1, k as i64);
                    push(i as i64, j as i64 + 1, k as i64);
                    push(i as i64, j as i64, k as i64 - 1);
                    push(i as i64, j as i64, k as i64 + 1);
                    t.push((c, c, diag));
                }
            }
        }
        Csr::from_triplets(n * n * n, n * n * n, &t)
    }

    #[test]
    fn vcycle_reduces_error() {
        let a = poisson3d(8, |_, _, _| 1.0);
        let amg = Amg::new(a.clone(), AmgOptions::default());
        assert!(amg.num_levels() >= 2);
        let n = a.nrows;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        amg.vcycle(&b, &mut x);
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        let res: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi).powi(2))
            .sum::<f64>()
            .sqrt();
        let b0: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            res < 0.5 * b0,
            "one V-cycle should cut the residual: {res} vs {b0}"
        );
    }

    #[test]
    fn pcg_with_amg_is_mesh_independent() {
        // Iteration counts must stay nearly flat as n grows — the paper's
        // core algorithmic-scalability property (its Fig. 2 analogue at
        // unit viscosity).
        let mut iters = Vec::new();
        for n in [6, 10, 14] {
            let a = poisson3d(n, |_, _, _| 1.0);
            let amg = Amg::new(a.clone(), AmgOptions::default());
            let b = vec![1.0; a.nrows];
            let mut x = vec![0.0; a.nrows];
            let info = cg(&a, Some(&amg), &b, &mut x, 1e-8, 200, euclidean_dot);
            assert!(info.converged);
            iters.push(info.iterations);
        }
        let max = *iters.iter().max().unwrap();
        let min = *iters.iter().min().unwrap();
        assert!(
            max <= min + 8,
            "iterations should be nearly size-independent: {iters:?}"
        );
        assert!(max < 40, "AMG-PCG should converge fast: {iters:?}");
    }

    #[test]
    fn handles_severe_coefficient_jumps() {
        // 10^5 viscosity contrast, the regime the paper stresses.
        let a = poisson3d(10, |i, _, _| if i < 5 { 1.0 } else { 1e5 });
        let amg = Amg::new(a.clone(), AmgOptions::default());
        let b = vec![1.0; a.nrows];
        let mut x = vec![0.0; a.nrows];
        let info = cg(&a, Some(&amg), &b, &mut x, 1e-8, 300, euclidean_dot);
        assert!(info.converged, "{info:?}");
        assert!(info.iterations < 60, "{} iterations", info.iterations);
    }

    #[test]
    fn coarse_only_hierarchy_solves_directly() {
        let a = poisson3d(3, |_, _, _| 1.0); // 27 unknowns < max_coarse
        let amg = Amg::new(a.clone(), AmgOptions::default());
        assert_eq!(amg.num_levels(), 1);
        let b = vec![1.0; 27];
        let mut x = vec![0.0; 27];
        amg.vcycle(&b, &mut x);
        let mut r = vec![0.0; 27];
        a.matvec(&x, &mut r);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10, "direct solve must be exact");
        }
    }

    #[test]
    fn operator_complexity_is_bounded() {
        let a = poisson3d(12, |_, _, _| 1.0);
        let amg = Amg::new(a, AmgOptions::default());
        let oc = amg.operator_complexity();
        assert!((1.0..3.0).contains(&oc), "operator complexity {oc}");
    }

    #[test]
    fn amg_preconditioner_is_symmetric() {
        // <B u, v> == <u, B v> for the V-cycle operator (required by
        // MINRES/CG). Check on random-ish vectors.
        let a = poisson3d(6, |i, j, _| 1.0 + (i * j) as f64);
        let n = a.nrows;
        let amg = Amg::new(a, AmgOptions::default());
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let v: Vec<f64> = (0..n)
            .map(|i| ((i * 40503) % 997) as f64 / 997.0 - 0.3)
            .collect();
        let mut bu = vec![0.0; n];
        let mut bv = vec![0.0; n];
        amg.vcycle(&u, &mut bu);
        amg.vcycle(&v, &mut bv);
        let lhs = euclidean_dot(&bu, &v);
        let rhs = euclidean_dot(&u, &bv);
        assert!(
            (lhs - rhs).abs() <= 1e-10 * lhs.abs().max(rhs.abs()),
            "V-cycle not symmetric: {lhs} vs {rhs}"
        );
    }
}
