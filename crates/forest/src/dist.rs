//! The distributed forest of octrees.
//!
//! Leaves are `(tree, octant)` pairs ordered lexicographically — the
//! space-filling curve traverses tree 0's octree, then tree 1's, and so
//! on, exactly as in P4EST. Partitioning, balancing, ghost construction,
//! and field transfer mirror the single-tree implementations in the
//! `octree` crate, extended by the inter-tree face transforms of the
//! [`crate::Connectivity`].
//!
//! *Scope note (documented in DESIGN.md):* the 2:1 balance is enforced
//! over the full 26-neighborhood within each tree and across tree *faces*;
//! inter-tree edge/corner adjacency (trees meeting only at an edge or
//! corner, with arbitrary valence) is not traversed. The paper's Fig. 12
//! experiment — high-order DG advection on the cubed sphere — needs face
//! adjacency only, since DG couples elements exclusively through face
//! fluxes.

use std::sync::Arc;

use octree::balance::BalanceKind;
use octree::mark::{Mark, MarkParams};
use octree::{Octant, ROOT_LEN};
use scomm::Comm;

use crate::connectivity::Connectivity;

/// A leaf of the forest: an octant within a named tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct ForestLeaf {
    pub tree: u32,
    pub oct: Octant,
}

// SAFETY: repr(C); both fields are Pod; padding (3 bytes after the inner
// octant's level) is tolerated.
unsafe impl scomm::Pod for ForestLeaf {}

impl PartialOrd for ForestLeaf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ForestLeaf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tree.cmp(&other.tree).then(self.oct.cmp(&other.oct))
    }
}

impl ForestLeaf {
    /// Linearized curve position `(tree, morton key)` used for ownership
    /// queries.
    fn curve_key(&self) -> u128 {
        ((self.tree as u128) << 64) | self.oct.key() as u128
    }

    /// Containment within the same tree.
    fn contains(&self, other: &ForestLeaf) -> bool {
        self.tree == other.tree && self.oct.contains(&other.oct)
    }
}

/// Re-export of the partition plan shape shared with the octree crate.
pub use octree::parallel::PartitionPlan;

/// Grow-only scratch for the forest adaptation hot path, mirroring the
/// octree crate's workspace discipline: once warm, balance and partition
/// perform no steady-state heap allocation ([`Forest::alloc_bytes`]).
#[derive(Default)]
struct ForestWorkspace {
    /// Swap partner for refine/coarsen rebuilds.
    scratch: Vec<ForestLeaf>,
    /// Per-destination staging of balance size-requests.
    req_bufs: Vec<Vec<(ForestLeaf, u64)>>,
    /// Flat balance exchange buffers.
    send_flat: Vec<(ForestLeaf, u64)>,
    send_counts: Vec<usize>,
    recv_flat: Vec<(ForestLeaf, u64)>,
    recv_counts: Vec<usize>,
    /// Per-leaf refine flags.
    to_refine: Vec<bool>,
    /// Partition exchange buffers (the send side is `local` itself).
    part_counts: Vec<usize>,
    part_recv: Vec<ForestLeaf>,
    part_recv_counts: Vec<usize>,
}

impl ForestWorkspace {
    fn capacity_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        let mut b = cap(&self.scratch) + cap(&self.send_flat) + cap(&self.recv_flat);
        b += cap(&self.send_counts) + cap(&self.recv_counts) + cap(&self.to_refine);
        b += cap(&self.part_counts) + cap(&self.part_recv) + cap(&self.part_recv_counts);
        b += cap(&self.req_bufs);
        for v in &self.req_bufs {
            b += cap(v);
        }
        b
    }
}

/// A distributed forest of octrees on a simulated communicator.
pub struct Forest<'c> {
    comm: &'c Comm,
    conn: Arc<Connectivity>,
    /// Locally owned leaves in global `(tree, Morton)` order.
    pub local: Vec<ForestLeaf>,
    /// Curve key of each rank's first leaf (`u128::MAX` when empty).
    markers: Vec<u128>,
    counts: Vec<u64>,
    /// Marker gather buffer. A direct field (not part of the workspace) so
    /// `update_markers` stays usable while the workspace is temporarily
    /// moved out during balance/partition.
    gather: Vec<u64>,
    /// Grow-only adaptation scratch.
    ws: ForestWorkspace,
}

impl<'c> Forest<'c> {
    /// Build a forest with every tree uniformly refined to `level`,
    /// leaves divided evenly among ranks along the curve.
    pub fn new_uniform(comm: &'c Comm, conn: Arc<Connectivity>, level: u8) -> Self {
        let per_tree = 1u64 << (3 * level as u64);
        let n = per_tree * conn.num_trees() as u64;
        let p = comm.size() as u64;
        let r = comm.rank() as u64;
        let lo = n * r / p;
        let hi = n * (r + 1) / p;
        let local = (lo..hi)
            .map(|g| ForestLeaf {
                tree: (g / per_tree) as u32,
                oct: Octant::from_uniform_index(level, g % per_tree),
            })
            .collect();
        let mut f = Forest {
            comm,
            conn,
            local,
            markers: Vec::new(),
            counts: Vec::new(),
            gather: Vec::new(),
            ws: ForestWorkspace::default(),
        };
        f.update_markers();
        f
    }

    /// The connectivity this forest is built on.
    pub fn connectivity(&self) -> &Arc<Connectivity> {
        &self.conn
    }

    /// The communicator.
    pub fn comm(&self) -> &'c Comm {
        self.comm
    }

    fn update_markers(&mut self) {
        let comm = self.comm;
        let first = self
            .local
            .first()
            .map(|l| l.curve_key())
            .unwrap_or(u128::MAX);
        comm.allgatherv_into(
            &[(first >> 64) as u64, first as u64, self.local.len() as u64],
            &mut self.gather,
        );
        let p = comm.size();
        self.markers.clear();
        self.markers.resize(p, u128::MAX);
        self.counts.clear();
        self.counts.resize(p, 0);
        for r in 0..p {
            let hi = self.gather[3 * r] as u128;
            let lo = self.gather[3 * r + 1] as u128;
            self.markers[r] = (hi << 64) | lo;
            self.counts[r] = self.gather[3 * r + 2];
        }
        let mut next = u128::MAX;
        for r in (0..p).rev() {
            if self.counts[r] == 0 {
                self.markers[r] = next;
            } else {
                next = self.markers[r];
            }
        }
    }

    /// Global leaf count.
    pub fn global_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Global index of this rank's first leaf.
    pub fn global_offset(&self) -> u64 {
        self.counts[..self.comm.rank()].iter().sum()
    }

    /// Replicated per-rank leaf counts (one entry per rank).
    pub fn rank_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rank owning the region of `leaf`.
    pub fn owner_of(&self, leaf: &ForestLeaf) -> usize {
        let key = leaf.curve_key();
        self.markers
            .partition_point(|&m| m <= key)
            .saturating_sub(1)
    }

    /// Inclusive rank range intersecting the region of `leaf`.
    pub fn owner_range(&self, leaf: &ForestLeaf) -> (usize, usize) {
        let lo = self.owner_of(&ForestLeaf {
            tree: leaf.tree,
            oct: leaf.oct.first_descendant(),
        });
        let hi = self.owner_of(&ForestLeaf {
            tree: leaf.tree,
            oct: leaf.oct.last_descendant(),
        });
        (lo, hi)
    }

    /// Same-size neighbor of `(tree, oct)` in direction `(dx,dy,dz)`,
    /// following a face transform when exactly one axis exits the tree.
    /// Returns `None` on the domain boundary and for inter-tree
    /// edge/corner crossings (see module docs).
    pub fn neighbor(&self, leaf: &ForestLeaf, dx: i32, dy: i32, dz: i32) -> Option<ForestLeaf> {
        let o = &leaf.oct;
        let len = o.len() as i64;
        let a = [
            o.x as i64 + dx as i64 * len,
            o.y as i64 + dy as i64 * len,
            o.z as i64 + dz as i64 * len,
        ];
        let lim = ROOT_LEN as i64;
        let out: Vec<usize> = (0..3).filter(|&i| a[i] < 0 || a[i] >= lim).collect();
        match out.len() {
            0 => Some(ForestLeaf {
                tree: leaf.tree,
                oct: Octant::new(a[0] as u32, a[1] as u32, a[2] as u32, o.level),
            }),
            1 => {
                let axis = out[0];
                let face = (2 * axis + usize::from(a[axis] >= lim)) as u8;
                let t = self.conn.neighbor_across(leaf.tree, face)?;
                Some(ForestLeaf {
                    tree: t.tree,
                    oct: t.apply(a, o.level),
                })
            }
            _ => None,
        }
    }

    /// Binary-search the local leaves for the one containing `target`.
    pub fn find_containing(&self, target: &ForestLeaf) -> Option<usize> {
        let idx = self.local.partition_point(|l| l <= target);
        if idx == 0 {
            return None;
        }
        let cand = idx - 1;
        if self.local[cand].contains(target) {
            Some(cand)
        } else {
            None
        }
    }

    /// `RefineTree` on the forest: local, no communication. Warm calls
    /// reuse the workspace swap buffer and do not allocate.
    pub fn refine<F: FnMut(&ForestLeaf) -> bool>(&mut self, mut should_refine: F) -> usize {
        let out = &mut self.ws.scratch;
        out.clear();
        let mut count = 0;
        for &l in &self.local {
            if should_refine(&l) && l.oct.level < octree::MAX_LEVEL {
                out.extend(l.oct.children().into_iter().map(|c| ForestLeaf {
                    tree: l.tree,
                    oct: c,
                }));
                count += 1;
            } else {
                out.push(l);
            }
        }
        std::mem::swap(&mut self.local, out);
        self.update_markers();
        count
    }

    /// `CoarsenTree` on the forest: merge complete same-tree families
    /// whose eight leaves are all marked. Warm calls reuse workspace
    /// buffers and do not allocate.
    pub fn coarsen<F: FnMut(&ForestLeaf) -> bool>(&mut self, should_coarsen: F) -> usize {
        let mut ws = std::mem::take(&mut self.ws);
        ws.to_refine.clear();
        ws.to_refine.extend(self.local.iter().map(should_coarsen));
        let ForestWorkspace {
            scratch, to_refine, ..
        } = &mut ws;
        let n = Self::coarsen_marked_into(&mut self.local, scratch, to_refine);
        self.ws = ws;
        self.update_markers();
        n
    }

    fn coarsen_marked(&mut self, marks: &[bool]) -> usize {
        Self::coarsen_marked_into(&mut self.local, &mut self.ws.scratch, marks)
    }

    fn coarsen_marked_into(
        local: &mut Vec<ForestLeaf>,
        scratch: &mut Vec<ForestLeaf>,
        marks: &[bool],
    ) -> usize {
        let leaves = &*local;
        scratch.clear();
        let mut count = 0;
        let mut i = 0;
        while i < leaves.len() {
            let l = leaves[i];
            if l.oct.level > 0 && l.oct.child_id() == 0 && i + 8 <= leaves.len() {
                let parent = l.oct.parent();
                let ok = (0..8).all(|k| {
                    leaves[i + k].tree == l.tree
                        && leaves[i + k].oct == parent.child(k as u8)
                        && marks[i + k]
                });
                if ok {
                    scratch.push(ForestLeaf {
                        tree: l.tree,
                        oct: parent,
                    });
                    count += 1;
                    i += 8;
                    continue;
                }
            }
            scratch.push(l);
            i += 1;
        }
        std::mem::swap(local, scratch);
        count
    }

    /// `MarkElements` + apply on the forest (same threshold iteration as
    /// the octree crate, applied to forest leaves).
    pub fn adapt_to_target(&mut self, indicators: &[f64], params: &MarkParams) -> (usize, usize) {
        // Reuse the octree mark logic on the octant parts. Its octant-only
        // family detection cannot straddle trees inside one rank's local
        // list: a contiguous curve segment that contains leaves of two
        // trees contains all of the first tree's tail, which ends on a
        // child-7 leaf, so every 8-window starting at a child 0 lies in a
        // single tree. Hence mark families coincide with ours exactly.
        let octs: Vec<Octant> = self.local.iter().map(|l| l.oct).collect();
        let marks = octree::mark::mark_elements(self.comm, &octs, indicators, params);
        let coar: Vec<bool> = marks.iter().map(|m| *m == Mark::Coarsen).collect();
        let refn: Vec<bool> = marks.iter().map(|m| *m == Mark::Refine).collect();
        let coarsened = self.coarsen_marked(&coar);
        let mut new_flags = Vec::with_capacity(self.local.len());
        let mut j = 0usize;
        while new_flags.len() < self.local.len() {
            if coar[j] {
                new_flags.push(false); // freshly coarsened parent
                j += 8;
            } else {
                new_flags.push(refn[j]);
                j += 1;
            }
        }
        let mut k = 0usize;
        let refined = self.refine(|_| {
            let m = new_flags[k];
            k += 1;
            m
        });
        self.update_markers();
        (refined, coarsened)
    }

    /// Parallel 2:1 `BalanceTree` across the forest, face-connected
    /// between trees. Returns leaves added globally.
    pub fn balance(&mut self, kind: BalanceKind) -> u64 {
        let before = self.global_count();
        let dirs = kind.direction_slice();
        let p = self.comm.size();
        let me = self.comm.rank();
        let mut ws = std::mem::take(&mut self.ws);
        if ws.req_bufs.len() < p {
            ws.req_bufs.resize_with(p, Vec::new);
        }
        loop {
            let mut changed_local = true;
            // Local fixpoint: within this rank's leaves (any tree).
            while changed_local {
                changed_local = false;
                ws.to_refine.clear();
                ws.to_refine.resize(self.local.len(), false);
                for l in &self.local {
                    for &(dx, dy, dz) in dirs {
                        let Some(n) = self.neighbor(l, dx, dy, dz) else {
                            continue;
                        };
                        if let Some(i) = self.find_containing(&n) {
                            if self.local[i].oct.level + 1 < l.oct.level && !ws.to_refine[i] {
                                ws.to_refine[i] = true;
                                changed_local = true;
                            }
                        }
                    }
                }
                if changed_local {
                    let mut i = 0;
                    self.refine_flags_no_marker(&ws.to_refine, &mut ws.scratch, &mut i);
                }
            }
            self.update_markers();

            // Remote requests, exchanged through the flat reusable buffers.
            for buf in &mut ws.req_bufs {
                buf.clear();
            }
            for l in &self.local {
                for &(dx, dy, dz) in dirs {
                    let Some(n) = self.neighbor(l, dx, dy, dz) else {
                        continue;
                    };
                    let (rlo, rhi) = self.owner_range(&n);
                    for r in rlo..=rhi {
                        if r != me {
                            ws.req_bufs[r].push((n, l.oct.level as u64));
                        }
                    }
                }
            }
            ws.send_flat.clear();
            ws.send_counts.clear();
            for buf in &ws.req_bufs[..p] {
                ws.send_counts.push(buf.len());
                ws.send_flat.extend_from_slice(buf);
            }
            self.comm.alltoallv_flat(
                &ws.send_flat,
                &ws.send_counts,
                &mut ws.recv_flat,
                &mut ws.recv_counts,
            );
            ws.to_refine.clear();
            ws.to_refine.resize(self.local.len(), false);
            let mut changed = 0u64;
            for &(n, lvl) in &ws.recv_flat {
                if let Some(i) = self.find_containing(&n) {
                    if (self.local[i].oct.level as u64) + 1 < lvl && !ws.to_refine[i] {
                        ws.to_refine[i] = true;
                        changed += 1;
                    }
                }
            }
            let global_changed = self.comm.allreduce_sum(&[changed])[0];
            if global_changed == 0 {
                break;
            }
            if changed > 0 {
                let mut i = 0;
                self.refine_flags_no_marker(&ws.to_refine, &mut ws.scratch, &mut i);
            }
            self.update_markers();
        }
        self.ws = ws;
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(self.validate(), "forest invariants violated after balance");
        }
        self.global_count() - before
    }

    fn refine_flags_no_marker(
        &mut self,
        flags: &[bool],
        scratch: &mut Vec<ForestLeaf>,
        cursor: &mut usize,
    ) {
        scratch.clear();
        for &l in &self.local {
            if flags[*cursor] {
                scratch.extend(l.oct.children().into_iter().map(|c| ForestLeaf {
                    tree: l.tree,
                    oct: c,
                }));
            } else {
                scratch.push(l);
            }
            *cursor += 1;
        }
        std::mem::swap(&mut self.local, scratch);
    }

    /// `PartitionTree` on the forest: equal share of the curve per rank.
    pub fn partition(&mut self) -> PartitionPlan {
        let mut plan = PartitionPlan {
            send_ranges: Vec::new(),
            new_len: 0,
        };
        self.partition_with(&mut plan);
        plan
    }

    /// [`Forest::partition`] writing the plan into a caller-provided value
    /// (ranges cleared first, capacity reused). As in the octree crate,
    /// the send ranges tile the local leaf array contiguously in rank
    /// order, so `local` itself is the flat send buffer — no packing copy,
    /// and warm calls do not allocate.
    pub fn partition_with(&mut self, plan: &mut PartitionPlan) {
        let p = self.comm.size() as u64;
        let n = self.global_count();
        let my_off = self.global_offset();
        let my_len = self.local.len() as u64;
        let target_lo = |r: u64| (n * r) / p;
        let mut ws = std::mem::take(&mut self.ws);
        plan.send_ranges.clear();
        ws.part_counts.clear();
        for r in 0..p {
            let lo = target_lo(r).max(my_off);
            let hi = target_lo(r + 1).min(my_off + my_len);
            if lo < hi {
                let s = (lo - my_off) as usize;
                let e = (hi - my_off) as usize;
                plan.send_ranges.push((s, e));
                ws.part_counts.push(e - s);
            } else {
                let s = (lo.min(my_off + my_len).max(my_off) - my_off) as usize;
                plan.send_ranges.push((s, s));
                ws.part_counts.push(0);
            }
        }
        self.comm.alltoallv_flat(
            &self.local,
            &ws.part_counts,
            &mut ws.part_recv,
            &mut ws.part_recv_counts,
        );
        std::mem::swap(&mut self.local, &mut ws.part_recv);
        self.ws = ws;
        self.update_markers();
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(
                self.validate(),
                "forest invariants violated after partition"
            );
        }
        plan.new_len = self.local.len();
    }

    /// Heap capacity currently held by this forest's tracked buffers, in
    /// bytes; its growth across a warm adapt cycle must be zero at steady
    /// state (the forest's contribution to `amr.alloc_bytes`).
    pub fn alloc_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        self.ws.capacity_bytes()
            + cap(&self.local)
            + cap(&self.markers)
            + cap(&self.counts)
            + cap(&self.gather)
    }

    /// Ghost layer: remote leaves adjacent (within-tree 26-neighborhood or
    /// across tree faces) to this rank's leaves, with owners, sorted.
    pub fn ghost_layer(&self) -> Vec<(usize, ForestLeaf)> {
        let p = self.comm.size();
        let me = self.comm.rank();
        let mut outgoing: Vec<Vec<ForestLeaf>> = vec![Vec::new(); p];
        for l in &self.local {
            let mut sent = Vec::new();
            for (dx, dy, dz) in Octant::neighbor_directions() {
                let Some(n) = self.neighbor(l, dx, dy, dz) else {
                    continue;
                };
                let (rlo, rhi) = self.owner_range(&n);
                for r in rlo..=rhi.min(p - 1) {
                    if r != me && !sent.contains(&r) {
                        sent.push(r);
                        outgoing[r].push(*l);
                    }
                }
            }
        }
        let incoming = self.comm.alltoallv(&outgoing);
        let mut ghosts: Vec<(usize, ForestLeaf)> = Vec::new();
        for (src, leaves) in incoming.iter().enumerate() {
            for &l in leaves {
                let adjacent = Octant::neighbor_directions().any(|(dx, dy, dz)| {
                    self.neighbor(&l, dx, dy, dz)
                        .map(|n| {
                            let (rlo, rhi) = self.owner_range(&n);
                            rlo <= me && me <= rhi
                        })
                        .unwrap_or(false)
                });
                if adjacent {
                    ghosts.push((src, l));
                }
            }
        }
        ghosts.sort_by_key(|a| a.1);
        ghosts.dedup();
        ghosts
    }

    /// Collective validation: per-rank sortedness, cross-rank ordering,
    /// and per-tree volume completeness.
    pub fn validate(&self) -> bool {
        let sorted = self
            .local
            .windows(2)
            .all(|w| w[0] < w[1] && !w[0].contains(&w[1]));
        // Global order across ranks.
        let first = self
            .local
            .first()
            .map(|l| l.curve_key())
            .unwrap_or(u128::MAX);
        let last = self
            .local
            .last()
            .map(|l| ((l.tree as u128) << 64) | l.oct.last_descendant().key() as u128)
            .unwrap_or(0);
        let firsts = self.comm.allgatherv(&[(first >> 64) as u64, first as u64]);
        let lasts = self.comm.allgatherv(&[(last >> 64) as u64, last as u64]);
        let mut ordered = true;
        let mut prev = 0u128;
        for r in 0..self.comm.size() {
            let f = ((firsts[2 * r] as u128) << 64) | firsts[2 * r + 1] as u128;
            let l = ((lasts[2 * r] as u128) << 64) | lasts[2 * r + 1] as u128;
            if f == u128::MAX {
                continue;
            }
            if f < prev {
                ordered = false;
            }
            prev = prev.max(l);
        }
        // Exact per-tree volumes in u128 via two-limb transfer.
        let ntrees = self.conn.num_trees();
        let mut vol_lo = vec![0u64; ntrees];
        let mut vol_hi = vec![0u64; ntrees];
        for l in &self.local {
            let s = l.oct.len() as u128;
            let v = s * s * s;
            let t = l.tree as usize;
            let prev = ((vol_hi[t] as u128) << 64) | vol_lo[t] as u128;
            let next = prev + v;
            vol_hi[t] = (next >> 64) as u64;
            vol_lo[t] = next as u64;
        }
        // Low limbs may carry, so sum in u128 from gathered pairs.
        let gathered = self.comm.allgatherv(&{
            let mut v = Vec::with_capacity(2 * ntrees);
            for t in 0..ntrees {
                v.push(vol_hi[t]);
                v.push(vol_lo[t]);
            }
            v
        });

        let mut complete = true;
        let root_vol = (ROOT_LEN as u128).pow(3);
        for t in 0..ntrees {
            let mut total: u128 = 0;
            for r in 0..self.comm.size() {
                let base = r * 2 * ntrees + 2 * t;
                total += ((gathered[base] as u128) << 64) | gathered[base + 1] as u128;
            }
            if total != root_vol {
                complete = false;
            }
        }
        let ok = sorted && ordered && complete;
        self.comm.allreduce_min(&[ok as u64])[0] == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scomm::spmd;

    fn sphere() -> Arc<Connectivity> {
        Arc::new(Connectivity::cubed_sphere(0.55, 1.0))
    }

    #[test]
    fn uniform_forest_counts() {
        let conn = sphere();
        let counts = spmd::run(4, |c| {
            let f = Forest::new_uniform(c, conn.clone(), 1);
            assert!(f.validate());
            assert_eq!(f.global_count(), 24 * 8);
            f.local.len()
        });
        assert_eq!(counts.iter().sum::<usize>(), 192);
        assert!(counts.iter().all(|&n| n == 48));
    }

    #[test]
    fn neighbor_within_and_across_trees() {
        let conn = Arc::new(Connectivity::brick(2, 1, 1));
        spmd::run(1, |c| {
            let f = Forest::new_uniform(c, conn.clone(), 1);
            // Leaf at +x boundary of tree 0 crosses into tree 1.
            let l = ForestLeaf {
                tree: 0,
                oct: Octant::new(ROOT_LEN / 2, 0, 0, 1),
            };
            let n = f.neighbor(&l, 1, 0, 0).expect("crosses into tree 1");
            assert_eq!(n.tree, 1);
            assert_eq!((n.oct.x, n.oct.y, n.oct.z), (0, 0, 0));
            // Interior neighbor stays in tree 0.
            let m = f.neighbor(&l, -1, 0, 0).expect("stays in tree 0");
            assert_eq!(m.tree, 0);
            // −y exits the domain.
            assert!(f.neighbor(&l, 0, -1, 0).is_none());
        });
    }

    #[test]
    fn cubed_sphere_neighbors_total() {
        // On the sphere every leaf has all 4 lateral face neighbors.
        let conn = sphere();
        spmd::run(1, |c| {
            let f = Forest::new_uniform(c, conn.clone(), 2);
            for l in &f.local {
                for (f_dir, (dx, dy, dz)) in [
                    (0, (-1, 0, 0)),
                    (1, (1, 0, 0)),
                    (2, (0, -1, 0)),
                    (3, (0, 1, 0)),
                ] {
                    let _ = f_dir;
                    assert!(
                        f.neighbor(l, dx, dy, dz).is_some(),
                        "lateral neighbor missing for {l:?}"
                    );
                }
            }
        });
    }

    #[test]
    fn forest_balance_across_tree_faces() {
        let conn = Arc::new(Connectivity::brick(2, 1, 1));
        spmd::run(2, |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 1);
            // Deep refinement hugging the shared face in tree 0 only.
            for _ in 0..3 {
                f.refine(|l| {
                    l.tree == 0 && l.oct.x + l.oct.len() == ROOT_LEN && l.oct.y == 0 && l.oct.z == 0
                });
            }
            let added = f.balance(BalanceKind::Full);
            assert!(f.validate());
            assert!(added > 0, "tree 1 must be refined through the shared face");
            // Verify 2:1 across the face: gather all leaves and check.
            let all: Vec<ForestLeaf> = c.allgatherv(&f.local);
            for l in &all {
                for (dx, dy, dz) in Octant::neighbor_directions() {
                    if let Some(n) = f.neighbor(l, dx, dy, dz) {
                        // Find the containing leaf in `all`.
                        if let Some(cont) = all.iter().find(|x| x.contains(&n)) {
                            assert!(
                                cont.oct.level + 1 >= l.oct.level,
                                "2:1 violated between {l:?} and {cont:?}"
                            );
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn forest_partition_even() {
        let conn = sphere();
        spmd::run(3, |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 1);
            if c.rank() == 0 {
                f.refine(|l| l.tree < 4);
            } else {
                f.refine(|_| false);
            }
            let n = f.global_count();
            f.partition();
            assert!(f.validate());
            assert_eq!(f.global_count(), n);
            let share = n / 3;
            assert!((f.local.len() as u64) >= share && (f.local.len() as u64) <= share + 1);
        });
    }

    #[test]
    fn forest_ghosts_are_remote_and_adjacent() {
        let conn = sphere();
        spmd::run(4, |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 1);
            f.refine(|l| l.tree % 2 == 0);
            f.balance(BalanceKind::Full);
            f.partition();
            let ghosts = f.ghost_layer();
            for (owner, g) in &ghosts {
                assert_ne!(*owner, c.rank());
                assert_eq!(f.owner_of(g), *owner);
            }
        });
    }

    #[test]
    fn warm_forest_cycle_does_not_allocate() {
        let conn = sphere();
        spmd::run(4, |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 1);
            let mut plan = PartitionPlan {
                send_ranges: Vec::new(),
                new_len: 0,
            };
            // Deterministic geometric cycle: reaches a periodic orbit, so
            // after warm-up no buffer finds a new capacity maximum.
            let cycle = |f: &mut Forest, plan: &mut PartitionPlan| {
                f.refine(|l| l.oct.level < 3 && l.tree < 6 && l.oct.x < ROOT_LEN / 2);
                f.coarsen(|l| l.oct.level > 1 && l.tree >= 12);
                f.balance(BalanceKind::Full);
                f.partition_with(plan);
            };
            for _ in 0..3 {
                cycle(&mut f, &mut plan);
            }
            let baseline = f.alloc_bytes();
            for _ in 0..4 {
                cycle(&mut f, &mut plan);
                assert_eq!(
                    f.alloc_bytes(),
                    baseline,
                    "warm forest adapt cycle allocated (rank {})",
                    c.rank()
                );
            }
        });
    }

    #[test]
    fn adapt_to_target_on_forest() {
        let conn = sphere();
        spmd::run(2, |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 2);
            let ind: Vec<f64> = f
                .local
                .iter()
                .map(|l| {
                    let p = f.connectivity().octant_center(l.tree, &l.oct);
                    (-(p[0] - 1.0).powi(2) * 10.0).exp()
                })
                .collect();
            let params = MarkParams {
                target_elements: 3000,
                ..Default::default()
            };
            f.adapt_to_target(&ind, &params);
            assert!(f.validate());
            let n = f.global_count() as f64;
            assert!((n - 3000.0).abs() / 3000.0 < 0.35, "count {n}");
        });
    }
}
