//! # forest — forest-of-octrees adaptivity (the P4EST analogue)
//!
//! Section VII of the paper extends the single-octree algorithms to
//! domains decomposable into non-overlapping hexahedron-mappable
//! subdomains: each subdomain is the root of an adaptive octree, and a
//! *connectivity* structure records the topological relations between
//! neighboring trees, including the coordinate transformations across
//! their shared faces.
//!
//! As in P4EST, trees are defined by their eight corner vertices; face
//! adjacency and the inter-tree coordinate transforms are *derived* from
//! shared vertex ids, so a connectivity is correct by construction.
//! Provided connectivities:
//!
//! * [`Connectivity::unit_cube`] — one tree (reduces to the `octree` crate),
//! * [`Connectivity::brick`] — an `nx × ny × nz` Cartesian arrangement
//!   (the paper's 8×4×1 regional mantle domain is `brick(8, 4, 1)`),
//! * [`Connectivity::cubed_sphere`] — a spherical shell split into 6 caps
//!   of 4 trees each, 24 octrees total, exactly the decomposition used for
//!   the paper's Fig. 12 advection experiment.
//!
//! The distributed forest ([`Forest`]) orders leaves by `(tree, Morton)` —
//! the curve threads the trees one after another — and supports the same
//! AMR operations as the single tree: refine, coarsen, 2:1 balance
//! (full 26-neighbor inside a tree, face-connected across trees), SFC
//! partition, and ghost layers.

pub mod connectivity;
pub mod dist;

pub use connectivity::{Connectivity, FaceTransform, TreeGeometry};
pub use dist::{Forest, ForestLeaf};
