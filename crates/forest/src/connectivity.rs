//! Tree connectivity: how the octrees of a forest are glued together.
//!
//! A tree is a hexahedron given by eight corner vertex ids in z-order
//! (corner `c` sits at reference coordinates `((c&1), (c>>1)&1, (c>>2)&1)`).
//! Two trees are face-connected when they share the four vertex ids of a
//! face; the inter-tree coordinate transform (a signed axis permutation
//! plus offset on the octree lattice) is derived from the vertex
//! correspondence, never specified by hand.

use octree::{Octant, ROOT_LEN};

/// Faces are numbered `0..6` as −x, +x, −y, +y, −z, +z.
pub const NUM_FACES: usize = 6;

/// Corner indices of each face, ordered by the in-face z-order of the two
/// tangential axes (lower axis index varies fastest).
pub const FACE_CORNERS: [[usize; 4]; 6] = [
    [0, 2, 4, 6], // −x: (y,z)
    [1, 3, 5, 7], // +x
    [0, 1, 4, 5], // −y: (x,z)
    [2, 3, 6, 7], // +y
    [0, 1, 2, 3], // −z: (x,y)
    [4, 5, 6, 7], // +z
];

/// How tree reference coordinates map to physical space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeGeometry {
    /// Trilinear interpolation of the eight corner vertices.
    Trilinear,
    /// Spherical-shell projection: tangential position interpolates the
    /// corner *directions* (then normalizes), radius is linear in the
    /// reference z between the two radii. Used by the cubed sphere.
    Shell { r_inner: f64, r_outer: f64 },
}

/// Signed axis permutation + offset mapping octant coordinates from one
/// tree's lattice into a face-neighboring tree's lattice. Operates on
/// *doubled* extended coordinates so octant centers stay integral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaceTransform {
    /// Destination tree.
    pub tree: u32,
    /// Destination face (the one shared with the source tree).
    pub face: u8,
    /// `out[i] = sign[i] * in[axis[i]] + off[i]` in doubled lattice units.
    axis: [usize; 3],
    sign: [i64; 3],
    off: [i64; 3],
}

impl FaceTransform {
    /// Map a continuous point given in *doubled* source-tree lattice
    /// coordinates (possibly outside `[0, 2·ROOT_LEN]` along the face
    /// normal) into doubled destination-tree coordinates. Used by the DG
    /// layer to locate face-node counterparts across tree boundaries.
    pub fn apply_point(&self, p2: [f64; 3]) -> [f64; 3] {
        let mut out = [0.0; 3];
        for i in 0..3 {
            out[i] = self.sign[i] as f64 * p2[self.axis[i]] + self.off[i] as f64;
        }
        out
    }

    /// Map an octant given by extended (possibly out-of-tree) anchor
    /// coordinates in the source tree into the destination tree.
    /// The result must land inside the destination tree.
    pub fn apply(&self, anchor: [i64; 3], level: u8) -> Octant {
        let len = (1u32 << (octree::MAX_LEVEL - level)) as i64;
        // Doubled center coordinates stay integral under reflections.
        let c2 = [
            2 * anchor[0] + len,
            2 * anchor[1] + len,
            2 * anchor[2] + len,
        ];
        let mut out2 = [0i64; 3];
        for i in 0..3 {
            out2[i] = self.sign[i] * c2[self.axis[i]] + self.off[i];
        }
        let ax = (out2[0] - len) / 2;
        let ay = (out2[1] - len) / 2;
        let az = (out2[2] - len) / 2;
        let lim = ROOT_LEN as i64;
        assert!(
            (0..lim).contains(&ax) && (0..lim).contains(&ay) && (0..lim).contains(&az),
            "face transform produced out-of-tree coordinates {ax},{ay},{az}"
        );
        Octant::new(ax as u32, ay as u32, az as u32, level)
    }
}

/// The forest topology: vertices, trees, and derived face connections.
#[derive(Debug, Clone)]
pub struct Connectivity {
    /// Physical corner vertex positions.
    pub vertices: Vec<[f64; 3]>,
    /// Eight corner vertex ids per tree, z-ordered.
    pub trees: Vec<[u32; 8]>,
    /// Geometry map used by [`Connectivity::map_point`].
    pub geometry: TreeGeometry,
    /// Derived: per tree, per face, the transform to the neighbor (or
    /// `None` on the domain boundary).
    face_neighbors: Vec<[Option<FaceTransform>; 6]>,
}

/// Lattice coordinates of tree corner `c` (doubled units not applied).
fn corner_coords(c: usize) -> [i64; 3] {
    let r = ROOT_LEN as i64;
    [
        ((c & 1) as i64) * r,
        (((c >> 1) & 1) as i64) * r,
        (((c >> 2) & 1) as i64) * r,
    ]
}

impl Connectivity {
    /// Build a connectivity from vertices and trees, deriving all face
    /// connections from shared vertex ids.
    pub fn new(vertices: Vec<[f64; 3]>, trees: Vec<[u32; 8]>, geometry: TreeGeometry) -> Self {
        let mut conn = Connectivity {
            face_neighbors: vec![[None; 6]; trees.len()],
            vertices,
            trees,
            geometry,
        };
        conn.derive_face_neighbors();
        conn
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The face connection of `(tree, face)`, if any.
    pub fn neighbor_across(&self, tree: u32, face: u8) -> Option<&FaceTransform> {
        self.face_neighbors[tree as usize][face as usize].as_ref()
    }

    fn derive_face_neighbors(&mut self) {
        // Index faces by their sorted vertex-id quadruple.
        use std::collections::HashMap;
        let mut by_key: HashMap<[u32; 4], Vec<(u32, u8)>> = HashMap::new();
        for (t, corners) in self.trees.iter().enumerate() {
            for f in 0..NUM_FACES {
                let mut key = [0u32; 4];
                for (i, &fc) in FACE_CORNERS[f].iter().enumerate() {
                    key[i] = corners[fc];
                }
                key.sort_unstable();
                by_key.entry(key).or_default().push((t as u32, f as u8));
            }
        }
        for (key, sides) in &by_key {
            match sides.len() {
                1 => {} // domain boundary
                2 => {
                    let (t0, f0) = sides[0];
                    let (t1, f1) = sides[1];
                    let fwd = self.derive_transform(t0, f0, t1, f1);
                    let bwd = self.derive_transform(t1, f1, t0, f0);
                    self.face_neighbors[t0 as usize][f0 as usize] = Some(fwd);
                    self.face_neighbors[t1 as usize][f1 as usize] = Some(bwd);
                }
                n => panic!("face {key:?} shared by {n} trees; a face joins at most 2"),
            }
        }
    }

    /// Derive the lattice transform carrying octants that exit `t0`
    /// through `f0` into `t1` (entering through `f1`).
    fn derive_transform(&self, t0: u32, f0: u8, t1: u32, f1: u8) -> FaceTransform {
        let c0 = &self.trees[t0 as usize];
        let c1 = &self.trees[t1 as usize];
        // Map each face corner of t0.f0 to the t1 corner with the same id.
        let mut src_pts = [[0i64; 3]; 4];
        let mut dst_pts = [[0i64; 3]; 4];
        for (k, &fc) in FACE_CORNERS[f0 as usize].iter().enumerate() {
            let vid = c0[fc];
            let c1pos = c1
                .iter()
                .position(|&v| v == vid)
                .expect("shared face vertex missing in neighbor tree");
            src_pts[k] = corner_coords(fc);
            dst_pts[k] = corner_coords(c1pos);
        }
        // Columns of A from the two in-face tangent correspondences and
        // the normal-axis rule (outward of t0 maps to inward of t1).
        let mut axis = [usize::MAX; 3];
        let mut sign = [0i64; 3];
        let r = ROOT_LEN as i64;
        for (a, b) in [(1usize, 0usize), (2usize, 0usize)] {
            let d_src: Vec<i64> = (0..3).map(|i| src_pts[a][i] - src_pts[b][i]).collect();
            let d_dst: Vec<i64> = (0..3).map(|i| dst_pts[a][i] - dst_pts[b][i]).collect();
            let sa = d_src.iter().position(|&v| v != 0).unwrap();
            let da = d_dst.iter().position(|&v| v != 0).unwrap();
            // Column `sa` of A is ±e_da.
            axis_set(
                &mut axis,
                &mut sign,
                da,
                sa,
                d_dst[da] / r * d_src[sa].signum(),
            );
        }
        let n0 = (f0 / 2) as usize;
        let n1 = (f1 / 2) as usize;
        let s0: i64 = if f0 % 2 == 1 { 1 } else { -1 };
        let s1: i64 = if f1 % 2 == 1 { 1 } else { -1 };
        // A (s0 e_n0) = −s1 e_n1  ⇒  column n0 of A = −s0·s1 · e_n1.
        axis_set(&mut axis, &mut sign, n1, n0, -s0 * s1);
        debug_assert!(axis.iter().all(|&a| a != usize::MAX));
        // Offset from the first corner correspondence, in doubled units.
        let mut off = [0i64; 3];
        for i in 0..3 {
            off[i] = 2 * (dst_pts[0][i] - sign[i] * src_pts[0][axis[i]]);
        }
        FaceTransform {
            tree: t1,
            face: f1,
            axis,
            sign,
            off,
        }
    }

    /// Map a reference point `(u,v,w) ∈ [0,1]^3` of `tree` to physical
    /// coordinates.
    pub fn map_point(&self, tree: u32, uvw: [f64; 3]) -> [f64; 3] {
        let corners = &self.trees[tree as usize];
        match self.geometry {
            TreeGeometry::Trilinear => {
                let mut p = [0.0; 3];
                for c in 0..8 {
                    let w = weight(uvw, c);
                    let v = self.vertices[corners[c] as usize];
                    for i in 0..3 {
                        p[i] += w * v[i];
                    }
                }
                p
            }
            TreeGeometry::Shell { r_inner, r_outer } => {
                // Bilinear blend of the inner-face corner *directions*,
                // normalized; linear radius in w.
                let mut d = [0.0; 3];
                for c in 0..4 {
                    let w2 = weight([uvw[0], uvw[1], 0.0], c);
                    let v = self.vertices[corners[c] as usize];
                    let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
                    for i in 0..3 {
                        d[i] += w2 * v[i] / norm;
                    }
                }
                let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                let r = r_inner + uvw[2] * (r_outer - r_inner);
                [r * d[0] / norm, r * d[1] / norm, r * d[2] / norm]
            }
        }
    }

    /// Physical center of an octant of `tree`.
    pub fn octant_center(&self, tree: u32, o: &Octant) -> [f64; 3] {
        self.map_point(tree, o.center_unit())
    }

    // ----------------------------------------------------------------
    // Builders
    // ----------------------------------------------------------------

    /// A single unit-cube tree (no inter-tree faces).
    pub fn unit_cube() -> Self {
        let vertices = (0..8)
            .map(|c| {
                let p = corner_coords(c);
                [
                    p[0] as f64 / ROOT_LEN as f64,
                    p[1] as f64 / ROOT_LEN as f64,
                    p[2] as f64 / ROOT_LEN as f64,
                ]
            })
            .collect();
        Connectivity::new(
            vertices,
            vec![[0, 1, 2, 3, 4, 5, 6, 7]],
            TreeGeometry::Trilinear,
        )
    }

    /// An `nx × ny × nz` brick of unit-cube trees covering
    /// `[0,nx] × [0,ny] × [0,nz]` (the paper's regional mantle domain is
    /// `brick(8, 4, 1)`, Section VI).
    pub fn brick(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        let vid =
            |i: usize, j: usize, k: usize| -> u32 { (i + (nx + 1) * (j + (ny + 1) * k)) as u32 };
        let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    vertices.push([i as f64, j as f64, k as f64]);
                }
            }
        }
        let mut trees = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    trees.push([
                        vid(i, j, k),
                        vid(i + 1, j, k),
                        vid(i, j + 1, k),
                        vid(i + 1, j + 1, k),
                        vid(i, j, k + 1),
                        vid(i + 1, j, k + 1),
                        vid(i, j + 1, k + 1),
                        vid(i + 1, j + 1, k + 1),
                    ]);
                }
            }
        }
        Connectivity::new(vertices, trees, TreeGeometry::Trilinear)
    }

    /// The paper's spherical-shell decomposition: 6 cube faces ("caps"),
    /// each split 2×2, every patch extruded radially from `r_inner` to
    /// `r_outer` — 24 adaptive octrees (Section VII). Reference z is the
    /// radial direction of every tree.
    pub fn cubed_sphere(r_inner: f64, r_outer: f64) -> Self {
        assert!(0.0 < r_inner && r_inner < r_outer);
        // Vertex dedup by quantized surface position.
        use std::collections::HashMap;
        let mut vertices: Vec<[f64; 3]> = Vec::new();
        let mut index: HashMap<[i64; 4], u32> = HashMap::new();
        let quant = |p: [f64; 3], layer: i64| -> [i64; 4] {
            [
                (p[0] * 1e9).round() as i64,
                (p[1] * 1e9).round() as i64,
                (p[2] * 1e9).round() as i64,
                layer,
            ]
        };
        let mut trees: Vec<[u32; 8]> = Vec::new();

        // The 6 cube faces with outward axes; (a, b) are the two in-face
        // axes chosen so that (a, b, outward) is right-handed.
        // Each entry: (fixed axis, fixed value, axis a, axis b).
        let caps: [(usize, f64, usize, usize); 6] = [
            (0, -1.0, 2, 1), // −x
            (0, 1.0, 1, 2),  // +x
            (1, -1.0, 0, 2), // −y
            (1, 1.0, 2, 0),  // +y
            (2, -1.0, 1, 0), // −z
            (2, 1.0, 0, 1),  // +z
        ];
        let radii = [r_inner, r_outer];
        for &(fix, val, a, b) in &caps {
            for pj in 0..2 {
                for pi in 0..2 {
                    // Patch [pi, pi+1]×[pj, pj+1] of the 2×2 cap split,
                    // in cap coordinates mapped to [−1, 1].
                    let mut corner_ids = [0u32; 8];
                    for c in 0..8 {
                        let du = (c & 1) as f64;
                        let dv = ((c >> 1) & 1) as f64;
                        let layer = (c >> 2) & 1; // reference z = radial
                        let u = -1.0 + (pi as f64 + du); // [−1,1] in steps of 1
                        let v = -1.0 + (pj as f64 + dv);
                        let mut s = [0.0f64; 3];
                        s[fix] = val;
                        s[a] = u;
                        s[b] = v;
                        let n = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]).sqrt();
                        let dir = [s[0] / n, s[1] / n, s[2] / n];
                        let key = quant(dir, layer as i64);
                        let id = *index.entry(key).or_insert_with(|| {
                            let r = radii[layer];
                            vertices.push([r * dir[0], r * dir[1], r * dir[2]]);
                            (vertices.len() - 1) as u32
                        });
                        corner_ids[c] = id;
                    }
                    trees.push(corner_ids);
                }
            }
        }
        Connectivity::new(vertices, trees, TreeGeometry::Shell { r_inner, r_outer })
    }

    /// Consistency check: every face connection is mutual, and composing
    /// the forward and backward transforms is the identity on octants
    /// crossing the face.
    pub fn validate(&self) -> bool {
        for t in 0..self.num_trees() as u32 {
            for f in 0..NUM_FACES as u8 {
                if let Some(fwd) = self.neighbor_across(t, f) {
                    let Some(bwd) = self.neighbor_across(fwd.tree, fwd.face) else {
                        return false;
                    };
                    if bwd.tree != t || bwd.face != f {
                        return false;
                    }
                    // Round-trip a probe octant crossing the face.
                    let level = 3u8;
                    let len = (1u32 << (octree::MAX_LEVEL - level)) as i64;
                    let r = ROOT_LEN as i64;
                    // Anchor just outside face f of tree t, interior in
                    // the tangential directions.
                    let mut anchor = [r / 2, r / 2, r / 2];
                    let n = (f / 2) as usize;
                    anchor[n] = if f % 2 == 1 { r } else { -len };
                    let img = fwd.apply(anchor, level);
                    // Map the image's *interior* position back: the image
                    // sits just inside tree fwd.tree at face fwd.face;
                    // push it out through that face and apply bwd.
                    let mut back_anchor = [img.x as i64, img.y as i64, img.z as i64];
                    let n1 = (fwd.face / 2) as usize;
                    back_anchor[n1] += if fwd.face % 2 == 1 { len } else { -len };
                    let back = bwd.apply(back_anchor, level);
                    // `back` must be the octant just inside face f of t at
                    // the probe's tangential position.
                    let mut expect = [r / 2, r / 2, r / 2];
                    expect[n] = if f % 2 == 1 { r - len } else { 0 };
                    if [back.x as i64, back.y as i64, back.z as i64] != expect {
                        return false;
                    }
                }
            }
        }
        true
    }
}

fn axis_set(axis: &mut [usize; 3], sign: &mut [i64; 3], out_axis: usize, in_axis: usize, s: i64) {
    axis[out_axis] = in_axis;
    sign[out_axis] = s;
}

/// Trilinear corner weight of corner `c` at reference point `uvw`.
fn weight(uvw: [f64; 3], c: usize) -> f64 {
    let wx = if c & 1 == 1 { uvw[0] } else { 1.0 - uvw[0] };
    let wy = if (c >> 1) & 1 == 1 {
        uvw[1]
    } else {
        1.0 - uvw[1]
    };
    let wz = if (c >> 2) & 1 == 1 {
        uvw[2]
    } else {
        1.0 - uvw[2]
    };
    wx * wy * wz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cube_has_no_neighbors() {
        let c = Connectivity::unit_cube();
        assert_eq!(c.num_trees(), 1);
        for f in 0..6 {
            assert!(c.neighbor_across(0, f).is_none());
        }
        assert!(c.validate());
    }

    #[test]
    fn brick_connectivity_counts() {
        let c = Connectivity::brick(8, 4, 1);
        assert_eq!(c.num_trees(), 32);
        assert_eq!(c.vertices.len(), 9 * 5 * 2);
        assert!(c.validate());
        // Interior tree (1,1,0) = index 1 + 8*1 = 9 has 4 lateral
        // neighbors and no vertical ones (nz = 1).
        let t = 9u32;
        assert!(c.neighbor_across(t, 0).is_some());
        assert!(c.neighbor_across(t, 1).is_some());
        assert!(c.neighbor_across(t, 2).is_some());
        assert!(c.neighbor_across(t, 3).is_some());
        assert!(c.neighbor_across(t, 4).is_none());
        assert!(c.neighbor_across(t, 5).is_none());
    }

    #[test]
    fn brick_transform_is_translation() {
        let c = Connectivity::brick(2, 1, 1);
        let fwd = c.neighbor_across(0, 1).expect("trees 0,1 share +x face");
        assert_eq!(fwd.tree, 1);
        assert_eq!(fwd.face, 0);
        // An octant exiting +x of tree 0 lands at x=0 of tree 1, same y,z.
        let level = 2u8;
        let len = (1u32 << (octree::MAX_LEVEL - level)) as i64;
        let r = ROOT_LEN as i64;
        let img = fwd.apply([r, len, 2 * len], level);
        assert_eq!((img.x, img.y as i64, img.z as i64), (0, len, 2 * len));
        assert_eq!(img.level, level);
    }

    #[test]
    fn cubed_sphere_topology() {
        let c = Connectivity::cubed_sphere(0.55, 1.0);
        assert_eq!(c.num_trees(), 24, "6 caps × 4 trees (paper, Sec. VII)");
        // Each cap contributes a 3×3 grid of surface points per layer; cap
        // corners and edges are shared. Euler: cube subdivided 2×2 per
        // face has 8 + 12·1 + 6·1 = 26 surface vertices per layer.
        assert_eq!(c.vertices.len(), 52);
        assert!(c.validate(), "all 24-tree face transforms must round-trip");
        // Every tree has exactly 4 lateral connections (z is radial).
        for t in 0..24u32 {
            let lateral = (0..4)
                .filter(|&f| c.neighbor_across(t, f).is_some())
                .count();
            assert_eq!(lateral, 4, "tree {t}");
            assert!(c.neighbor_across(t, 4).is_none(), "inner shell boundary");
            assert!(c.neighbor_across(t, 5).is_none(), "outer shell boundary");
        }
    }

    #[test]
    fn cubed_sphere_geometry_on_sphere() {
        let c = Connectivity::cubed_sphere(0.55, 1.0);
        for t in 0..24u32 {
            for &(u, v) in &[(0.0, 0.0), (0.5, 0.5), (1.0, 0.25)] {
                let inner = c.map_point(t, [u, v, 0.0]);
                let outer = c.map_point(t, [u, v, 1.0]);
                let rn = |p: [f64; 3]| (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
                assert!((rn(inner) - 0.55).abs() < 1e-12);
                assert!((rn(outer) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn brick_geometry_is_affine() {
        let c = Connectivity::brick(8, 4, 1);
        // Tree (i,j,k) maps [0,1]^3 to [i,i+1]×[j,j+1]×[k,k+1].
        let t = 9u32; // (1,1,0)
        assert_eq!(c.map_point(t, [0.0, 0.0, 0.0]), [1.0, 1.0, 0.0]);
        assert_eq!(c.map_point(t, [1.0, 1.0, 1.0]), [2.0, 2.0, 1.0]);
        assert_eq!(c.map_point(t, [0.5, 0.5, 0.5]), [1.5, 1.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "shared by")]
    fn triple_shared_face_rejected() {
        // Three trees claiming the same face is invalid.
        let verts = vec![[0.0; 3]; 12];
        let t0 = [0, 1, 2, 3, 4, 5, 6, 7];
        let t1 = [4, 5, 6, 7, 8, 9, 10, 11];
        let t2 = [4, 5, 6, 7, 8, 9, 10, 11];
        let _ = Connectivity::new(verts, vec![t0, t1, t2], TreeGeometry::Trilinear);
    }
}
