//! Property-based tests for the forest-of-octrees layer.

use forest::{Connectivity, Forest};
use octree::balance::BalanceKind;
use proptest::prelude::*;
use scomm::spmd;
use std::sync::Arc;

fn arb_brick() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..4, 1usize..3, 1usize..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn brick_connectivities_validate((nx, ny, nz) in arb_brick()) {
        let c = Connectivity::brick(nx, ny, nz);
        prop_assert_eq!(c.num_trees(), nx * ny * nz);
        prop_assert!(c.validate());
        // Total face connections = internal faces × 2 sides.
        let internal = (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
        let mut count = 0;
        for t in 0..c.num_trees() as u32 {
            for f in 0..6 {
                if c.neighbor_across(t, f).is_some() {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, 2 * internal);
    }

    #[test]
    fn random_forest_refinement_stays_valid(
        (nx, ny, nz) in arb_brick(),
        seed in any::<u64>(),
        ranks in 1usize..4,
    ) {
        let conn = Arc::new(Connectivity::brick(nx, ny, nz));
        spmd::run(ranks, move |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 1);
            let mut h = seed | 1;
            f.refine(|l| {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                (h.wrapping_add(l.oct.key())) % 5 == 0
            });
            f.balance(BalanceKind::Full);
            f.partition();
            assert!(f.validate());
            // Neighbor relation is symmetric through transforms: the
            // neighbor's neighbor in the reverse direction contains us.
            for l in f.local.iter().take(20) {
                for (dx, dy, dz) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
                    if let Some(n) = f.neighbor(l, dx, dy, dz) {
                        if let Some(back) = f.neighbor(&n, -dx, -dy, -dz) {
                            assert_eq!(back.tree, l.tree, "round trip tree");
                            assert_eq!(back.oct, l.oct, "round trip octant");
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn cubed_sphere_radii_validate(r0 in 0.2f64..0.8, dr in 0.1f64..1.0) {
        let c = Connectivity::cubed_sphere(r0, r0 + dr);
        prop_assert_eq!(c.num_trees(), 24);
        prop_assert!(c.validate());
    }
}
