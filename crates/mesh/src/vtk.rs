//! Legacy-VTK output of distributed meshes and nodal fields.
//!
//! Each rank writes its owned elements (with resolved corner values, so
//! hanging nodes display correctly); rank files form a simple series
//! `<base>_<rank>.vtk` loadable together in ParaView — the standard way
//! the original RHEA runs were inspected (cf. the paper's Figs. 1, 11,
//! 12 renderings).

use crate::extract::Mesh;
use std::io::Write;

/// Write this rank's portion of the mesh and the given nodal fields
/// (owned+ghost layout, ghosts current) as legacy VTK unstructured grid.
pub fn write_vtk(mesh: &Mesh, fields: &[(&str, &[f64])], path: &str) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    let ne = mesh.elements.len();
    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "rhea-rs adaptive mesh")?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET UNSTRUCTURED_GRID")?;
    // Points: 8 per element (duplicated corners keep hanging-node values
    // exact without a conforming point index).
    writeln!(out, "POINTS {} double", 8 * ne)?;
    let s = octree::ROOT_LEN as f64;
    for o in &mesh.elements {
        let l = o.len();
        for c in 0..8u32 {
            let x = (o.x + (c & 1) * l) as f64 / s * mesh.domain[0];
            let y = (o.y + ((c >> 1) & 1) * l) as f64 / s * mesh.domain[1];
            let z = (o.z + ((c >> 2) & 1) * l) as f64 / s * mesh.domain[2];
            writeln!(out, "{x} {y} {z}")?;
        }
    }
    writeln!(out, "CELLS {} {}", ne, 9 * ne)?;
    for e in 0..ne {
        // VTK_HEXAHEDRON ordering differs from z-order: swap corners 2↔3
        // and 6↔7.
        let b = 8 * e;
        writeln!(
            out,
            "8 {} {} {} {} {} {} {} {}",
            b,
            b + 1,
            b + 3,
            b + 2,
            b + 4,
            b + 5,
            b + 7,
            b + 6
        )?;
    }
    writeln!(out, "CELL_TYPES {ne}")?;
    for _ in 0..ne {
        writeln!(out, "12")?;
    }
    writeln!(out, "POINT_DATA {}", 8 * ne)?;
    for (name, values) in fields {
        assert_eq!(
            values.len(),
            mesh.n_local(),
            "field '{name}' must be in owned+ghost layout"
        );
        writeln!(out, "SCALARS {name} double 1")?;
        writeln!(out, "LOOKUP_TABLE default")?;
        for e in 0..ne {
            let cv = mesh.corner_values(e, values);
            for v in cv {
                writeln!(out, "{v}")?;
            }
        }
    }
    // Per-cell refinement level as cell data.
    writeln!(out, "CELL_DATA {ne}")?;
    writeln!(out, "SCALARS level int 1")?;
    writeln!(out, "LOOKUP_TABLE default")?;
    for o in &mesh.elements {
        writeln!(out, "{}", o.level)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_mesh;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    #[test]
    fn vtk_output_is_well_formed() {
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] < 0.3);
            t.balance(octree::balance::BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let mut f = vec![0.0; m.n_local()];
            for d in 0..m.n_owned {
                f[d] = m.dof_coords(d)[0];
            }
            m.exchange.exchange(c, &mut f, m.n_owned);
            let path = format!("/tmp/rhea_vtk_test_{}.vtk", c.rank());
            write_vtk(&m, &[("x", &f)], &path).expect("write ok");
            let content = std::fs::read_to_string(&path).unwrap();
            assert!(content.starts_with("# vtk DataFile"));
            let ne = m.elements.len();
            assert!(content.contains(&format!("POINTS {} double", 8 * ne)));
            assert!(content.contains(&format!("CELL_TYPES {ne}")));
            assert!(content.contains("SCALARS x double 1"));
            assert!(content.contains("SCALARS level int 1"));
            // Point count consistency: POINTS line count parses.
            let lines = content.lines().count();
            assert!(lines > 8 * ne + ne);
            std::fs::remove_file(&path).ok();
        });
    }

    #[test]
    fn hanging_node_values_interpolated_in_output() {
        // A linear field written through corner_values must be linear at
        // every duplicated corner point, including hanging ones.
        spmd::run(1, |c| {
            let mut t = DistOctree::new_uniform(c, 1);
            t.refine(|o| o.child_id() == 0);
            t.balance(octree::balance::BalanceKind::Full);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let mut f = vec![0.0; m.n_local()];
            for d in 0..m.n_owned {
                let p = m.dof_coords(d);
                f[d] = p[0] + 2.0 * p[1] - p[2];
            }
            let path = "/tmp/rhea_vtk_hanging.vtk";
            write_vtk(&m, &[("lin", &f)], path).unwrap();
            let content = std::fs::read_to_string(path).unwrap();
            // Parse points and values back and verify linearity.
            let mut lines = content.lines();
            for l in lines.by_ref() {
                if l.starts_with("POINTS") {
                    break;
                }
            }
            let ne = m.elements.len();
            let pts: Vec<[f64; 3]> = (0..8 * ne)
                .map(|_| {
                    let l = lines.next().unwrap();
                    let v: Vec<f64> = l.split_whitespace().map(|t| t.parse().unwrap()).collect();
                    [v[0], v[1], v[2]]
                })
                .collect();
            let vals_start = content.find("LOOKUP_TABLE default").unwrap();
            let vals: Vec<f64> = content[vals_start..]
                .lines()
                .skip(1)
                .take(8 * ne)
                .map(|l| l.trim().parse().unwrap())
                .collect();
            for (p, v) in pts.iter().zip(&vals) {
                let expect = p[0] + 2.0 * p[1] - p[2];
                assert!((v - expect).abs() < 1e-9, "at {p:?}: {v} vs {expect}");
            }
            std::fs::remove_file(path).ok();
        });
    }
}
