//! `InterpolateFields`: transfer nodal fields between meshes related by
//! one adaptation step.
//!
//! As in the paper, the transfer is purely local given ghost values: the
//! new mesh is produced from the old one by at most one level of
//! coarsening and refinement *before* repartitioning, so every new node
//! lies inside (or on the boundary of) an old local element; its value is
//! the trilinear interpolant of that element's resolved corner values.
//! Refinement injects exactly; coarsening restricts by sampling the
//! parent's corner positions (which are corners of the old children).

use crate::extract::{node_coords, Mesh};
use octree::ops::find_containing;
use octree::{Octant, MAX_LEVEL, ROOT_LEN};

/// Evaluate the old field at lattice point `p` using the old mesh.
/// Returns `None` if no old local element covers `p`.
fn eval_at(old: &Mesh, old_vals: &[f64], p: (u32, u32, u32)) -> Option<f64> {
    // Probe the up-to-8 incident unit cells until one lies in an old
    // local element.
    for dz in 0..2u32 {
        for dy in 0..2u32 {
            for dx in 0..2u32 {
                let (x, y, z) = (
                    p.0 as i64 - dx as i64,
                    p.1 as i64 - dy as i64,
                    p.2 as i64 - dz as i64,
                );
                let lim = ROOT_LEN as i64;
                if x < 0 || y < 0 || z < 0 || x >= lim || y >= lim || z >= lim {
                    continue;
                }
                let probe = Octant::new(x as u32, y as u32, z as u32, MAX_LEVEL);
                if let Some(e) = find_containing(&old.elements, &probe) {
                    let o = &old.elements[e];
                    let l = o.len() as f64;
                    let r = [
                        (p.0 - o.x) as f64 / l,
                        (p.1 - o.y) as f64 / l,
                        (p.2 - o.z) as f64 / l,
                    ];
                    let c = old.corner_values(e, old_vals);
                    let mut v = 0.0;
                    for (ci, &cv) in c.iter().enumerate() {
                        let wx = if ci & 1 == 1 { r[0] } else { 1.0 - r[0] };
                        let wy = if (ci >> 1) & 1 == 1 { r[1] } else { 1.0 - r[1] };
                        let wz = if (ci >> 2) & 1 == 1 { r[2] } else { 1.0 - r[2] };
                        v += wx * wy * wz * cv;
                    }
                    return Some(v);
                }
            }
        }
    }
    None
}

/// Interpolate a nodal field from `old` (with ghost values current in
/// `old_vals`) onto the owned dofs of `new`. The ghost block of the
/// returned vector is zero; call `new.exchange.exchange(...)` afterwards.
///
/// Requires that `new` was extracted from the same octree partition as
/// `old` after at most one adaptation step and **before** repartitioning.
pub fn interpolate_node_field(old: &Mesh, old_vals: &[f64], new: &Mesh) -> Vec<f64> {
    let mut out = Vec::new();
    interpolate_node_field_into(old, old_vals, new, &mut out);
    out
}

/// [`interpolate_node_field`] writing into a caller-provided buffer
/// (cleared first, capacity reused): warm calls do not allocate, which
/// makes this the field-transfer kernel of the zero-allocation adapt
/// cycle.
pub fn interpolate_node_field_into(old: &Mesh, old_vals: &[f64], new: &Mesh, out: &mut Vec<f64>) {
    assert_eq!(old_vals.len(), old.n_local());
    out.clear();
    out.resize(new.n_local(), 0.0);
    for d in 0..new.n_owned {
        let p = node_coords(new.dof_keys[d]);
        out[d] = eval_at(old, old_vals, p).unwrap_or_else(|| {
            panic!(
                "new node {:?} not covered by any old local element — \
                 was the mesh repartitioned before the field transfer?",
                p
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_mesh;
    use octree::balance::BalanceKind;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    /// Linear fields must transfer exactly under refinement and
    /// coarsening (trilinear interpolation is exact on linears).
    #[test]
    fn linear_field_transfers_exactly() {
        spmd::run(2, |c| {
            let f = |p: [f64; 3]| 2.0 * p[0] - p[1] + 3.0 * p[2] + 0.25;
            let mut t = DistOctree::new_uniform(c, 2);
            let old_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let mut v = vec![0.0; old_mesh.n_local()];
            for d in 0..old_mesh.n_owned {
                v[d] = f(old_mesh.dof_coords(d));
            }
            old_mesh.exchange.exchange(c, &mut v, old_mesh.n_owned);

            // One adaptation step: refine one region, coarsen another.
            t.refine(|o| o.center_unit()[0] < 0.3);
            t.coarsen(|o| o.center_unit()[0] > 0.7);
            t.balance(BalanceKind::Full);
            let new_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let mut w = interpolate_node_field(&old_mesh, &v, &new_mesh);
            new_mesh.exchange.exchange(c, &mut w, new_mesh.n_owned);
            for d in 0..new_mesh.n_owned {
                let expect = f(new_mesh.dof_coords(d));
                assert!(
                    (w[d] - expect).abs() < 1e-11,
                    "dof {d}: {} vs {expect}",
                    w[d]
                );
            }
        });
    }

    /// Refinement must inject nodal values exactly (new nodes coincide
    /// with old nodes or are interpolated, but old nodes keep values).
    #[test]
    fn refinement_injects_old_nodes() {
        spmd::run(1, |c| {
            let mut t = DistOctree::new_uniform(c, 1);
            let old_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            // An arbitrary nodal field.
            let mut v = vec![0.0; old_mesh.n_local()];
            for d in 0..old_mesh.n_owned {
                let p = old_mesh.dof_coords(d);
                v[d] = (p[0] * 7.0).sin() + p[1] * p[2];
            }
            let old_coords: Vec<[f64; 3]> = (0..old_mesh.n_owned)
                .map(|d| old_mesh.dof_coords(d))
                .collect();
            t.refine(|_| true);
            let new_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let w = interpolate_node_field(&old_mesh, &v, &new_mesh);
            for d in 0..new_mesh.n_owned {
                let p = new_mesh.dof_coords(d);
                if let Some(j) = old_coords.iter().position(|q| {
                    (q[0] - p[0]).abs() + (q[1] - p[1]).abs() + (q[2] - p[2]).abs() < 1e-14
                }) {
                    assert!((w[d] - v[j]).abs() < 1e-13, "old node value changed");
                }
            }
        });
    }

    /// Golden round trip: coarsen one level everywhere, transfer, refine
    /// back, transfer again. Trilinear interpolation reproduces the
    /// discretization-order space span{1,x,y,z,xy,xz,yz,xyz} exactly, so a
    /// field with all eight coefficients nonzero must survive the round
    /// trip to 1e-12, serially and on four ranks.
    #[test]
    fn coarsen_refine_round_trip_exact_trilinear() {
        for p in [1usize, 4] {
            spmd::run(p, |c| {
                let f = |q: [f64; 3]| {
                    1.0 + 2.0 * q[0] - q[1] + 0.5 * q[2] + 3.0 * q[0] * q[1] - 2.0 * q[1] * q[2]
                        + q[0] * q[2]
                        + 4.0 * q[0] * q[1] * q[2]
                };
                let mut t = DistOctree::new_uniform(c, 2);
                let m_fine = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let mut v = vec![0.0; m_fine.n_local()];
                for d in 0..m_fine.n_owned {
                    v[d] = f(m_fine.dof_coords(d));
                }
                m_fine.exchange.exchange(c, &mut v, m_fine.n_owned);

                t.coarsen(|_| true);
                let m_coarse = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let mut vc = Vec::new();
                interpolate_node_field_into(&m_fine, &v, &m_coarse, &mut vc);
                m_coarse.exchange.exchange(c, &mut vc, m_coarse.n_owned);

                t.refine(|_| true);
                let m_back = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let mut vb = Vec::new();
                interpolate_node_field_into(&m_coarse, &vc, &m_back, &mut vb);
                for d in 0..m_back.n_owned {
                    let expect = f(m_back.dof_coords(d));
                    assert!(
                        (vb[d] - expect).abs() < 1e-12,
                        "P={p} dof {d}: {} vs {expect}",
                        vb[d]
                    );
                }
            });
        }
    }

    /// Pinned values on one known tree: the root element with corner
    /// values [3,1,4,1,5,9,2,6] (corner index = xbit + 2·ybit + 4·zbit) is
    /// refined once; the midpoint nodes must carry the hand-computed
    /// trilinear averages.
    #[test]
    fn pinned_refinement_values_on_known_tree() {
        spmd::run(1, |c| {
            let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
            let mut t = DistOctree::new_uniform(c, 0);
            let old_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            assert_eq!(old_mesh.n_owned, 8);
            let mut v = vec![0.0; old_mesh.n_local()];
            for d in 0..old_mesh.n_owned {
                let q = old_mesh.dof_coords(d);
                let ci = (q[0] > 0.5) as usize
                    | ((q[1] > 0.5) as usize) << 1
                    | ((q[2] > 0.5) as usize) << 2;
                v[d] = vals[ci];
            }
            t.refine(|_| true);
            let new_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let w = interpolate_node_field(&old_mesh, &v, &new_mesh);
            // Hand-computed: cell center = mean of all 8; face centers and
            // edge midpoints = means of their 4 resp. 2 corners.
            let pinned: [([f64; 3], f64); 7] = [
                ([0.5, 0.5, 0.5], 3.875), // (3+1+4+1+5+9+2+6)/8
                ([0.5, 0.0, 0.0], 2.0),   // (3+1)/2
                ([0.5, 0.5, 0.0], 2.25),  // (3+1+4+1)/4
                ([0.0, 0.5, 0.5], 3.5),   // (3+4+5+2)/4
                ([1.0, 0.5, 1.0], 7.5),   // (9+6)/2
                ([0.0, 0.0, 0.0], 3.0),
                ([1.0, 1.0, 1.0], 6.0),
            ];
            for (q, expect) in pinned {
                let d = (0..new_mesh.n_owned)
                    .find(|&d| {
                        let r = new_mesh.dof_coords(d);
                        (r[0] - q[0]).abs() + (r[1] - q[1]).abs() + (r[2] - q[2]).abs() < 1e-14
                    })
                    .unwrap_or_else(|| panic!("no dof at {q:?}"));
                assert_eq!(w[d], expect, "node {q:?}");
            }
        });
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn transfer_after_partition_is_rejected() {
        // Interpolating across a repartition must fail loudly: rank 1's
        // new elements aren't covered by its old ones.
        let conn_failed = spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            let old_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let v = vec![0.0; old_mesh.n_local()];
            if c.rank() == 0 {
                t.refine(|_| true);
            } else {
                t.refine(|_| false);
            }
            t.partition(); // moves elements between ranks
            let new_mesh = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let _ = interpolate_node_field(&old_mesh, &v, &new_mesh);
        });
        let _ = conn_failed;
    }
}
