//! `ExtractMesh`: build the distributed FEM mesh from a balanced octree.
//!
//! Terminology: a *node* is a lattice point that is a corner of at least
//! one element. A node is *independent* (it carries a degree of freedom)
//! iff it is a vertex of **every** leaf whose closed region touches it;
//! otherwise it is *hanging* (it sits on a face or edge of some coarser
//! neighbor) and its value is algebraically constrained to the coarse
//! element's corner dofs. Constraint chains (a master that is itself
//! hanging) are resolved recursively; chains crossing rank boundaries are
//! resolved with a bounded number of query/answer rounds.

use std::collections::HashMap;

use octree::morton::{morton_decode, morton_key};
use octree::ops::find_containing;
use octree::parallel::DistOctree;
use octree::{Octant, MAX_LEVEL, ROOT_LEN};
use scomm::Comm;

/// Lattice key of a node: Morton key of its coordinates (which may equal
/// `ROOT_LEN` on the upper domain boundary; keys use 20 bits per axis).
pub type NodeKey = u64;

/// Pack node coordinates into a key.
#[inline]
pub fn node_key(x: u32, y: u32, z: u32) -> NodeKey {
    morton_key(x, y, z)
}

/// Unpack a node key.
#[inline]
pub fn node_coords(key: NodeKey) -> (u32, u32, u32) {
    morton_decode(key)
}

/// Resolution of one mesh node into independent dofs.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeResolution {
    /// An independent node: local dof index (owned or ghost).
    Dof(usize),
    /// A hanging node: weighted combination of local dof indices.
    Constrained(Vec<(usize, f64)>),
}

/// Per-element corner reference into [`Mesh::node_table`].
pub type CornerRef = u32;

/// Ghost-value exchange pattern between ranks.
#[derive(Debug, Clone, Default)]
pub struct ExchangePattern {
    /// For each rank, the local *owned* dof indices whose values it needs.
    pub send_idx: Vec<Vec<usize>>,
    /// For each rank, how many ghost values it contributes to our ghost
    /// block (ghosts are stored grouped by owner rank, gid-sorted).
    pub recv_counts: Vec<usize>,
}

/// Reusable pack/unpack buffers for the interleaved (flat) exchange
/// paths — blocking and split-phase alike. Grow-only: once a solver
/// reaches steady state every call recycles the same allocations.
///
/// One `ExchangeBuffers` value also carries the [`scomm::Exchange`]
/// stream state for the split-phase paths, so at most one split-phase
/// round (forward *or* reverse) can be in flight per buffer set. Two
/// buffer sets whose rounds overlap in time (e.g. the velocity and
/// pressure ghost layers of a Stokes operator) must use distinct stream
/// ids — construct them with [`ExchangeBuffers::with_stream`].
#[derive(Debug, Default)]
pub struct ExchangeBuffers {
    send: Vec<f64>,
    send_counts: Vec<usize>,
    recv: Vec<f64>,
    recv_counts: Vec<usize>,
    /// Expected per-source element counts of the posted round.
    expect: Vec<usize>,
    /// Split-phase stream state (tag namespace + round sequencing).
    ex: scomm::Exchange,
}

impl ExchangeBuffers {
    pub fn new() -> ExchangeBuffers {
        ExchangeBuffers::default()
    }

    /// Buffers posting split-phase rounds under exchange stream `stream`.
    pub fn with_stream(stream: u64) -> ExchangeBuffers {
        ExchangeBuffers {
            ex: scomm::Exchange::new(stream),
            ..ExchangeBuffers::default()
        }
    }

    /// Whether a split-phase round is posted but not yet completed.
    pub fn in_flight(&self) -> bool {
        self.ex.in_flight()
    }

    /// Total heap capacity currently held, in bytes. Allocation audits
    /// diff this across operator applications: a zero delta proves the
    /// exchange reused its buffers.
    pub fn capacity_bytes(&self) -> u64 {
        ((self.send.capacity() + self.recv.capacity()) * std::mem::size_of::<f64>()
            + (self.send_counts.capacity() + self.recv_counts.capacity() + self.expect.capacity())
                * std::mem::size_of::<usize>()) as u64
            + self.ex.capacity_bytes()
    }
}

impl ExchangePattern {
    /// Fill the ghost block of `v` (`v.len() = n_owned + n_ghost`) with
    /// the owners' current values. Collective.
    pub fn exchange(&self, comm: &Comm, v: &mut [f64], n_owned: usize) {
        let outgoing: Vec<Vec<f64>> = self
            .send_idx
            .iter()
            .map(|idx| idx.iter().map(|&i| v[i]).collect())
            .collect();
        let incoming = comm.alltoallv(&outgoing);
        let mut pos = n_owned;
        for (r, part) in incoming.iter().enumerate() {
            assert_eq!(part.len(), self.recv_counts[r]);
            v[pos..pos + part.len()].copy_from_slice(part);
            pos += part.len();
        }
    }

    /// Reverse exchange: add each ghost value back into the owner's entry
    /// and zero the ghost block (FEM assembly accumulation). Collective.
    pub fn reverse_accumulate(&self, comm: &Comm, v: &mut [f64], n_owned: usize) {
        let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); self.recv_counts.len()];
        let mut pos = n_owned;
        for (r, &cnt) in self.recv_counts.iter().enumerate() {
            outgoing[r] = v[pos..pos + cnt].to_vec();
            for g in &mut v[pos..pos + cnt] {
                *g = 0.0;
            }
            pos += cnt;
        }
        let incoming = comm.alltoallv(&outgoing);
        for (r, part) in incoming.iter().enumerate() {
            assert_eq!(part.len(), self.send_idx[r].len());
            for (&i, &val) in self.send_idx[r].iter().zip(part) {
                v[i] += val;
            }
        }
    }

    /// Allocation-free ghost fill for a vector with `ncomp` interleaved
    /// components per dof (`v[d*ncomp + k]`): one packed exchange instead
    /// of one strided exchange per component. The ghost block is grouped
    /// by owner rank in receive order, so the flat receive buffer copies
    /// straight into it — ghost values are bitwise identical to the
    /// per-component [`ExchangePattern::exchange`] path. Collective.
    pub fn exchange_interleaved(
        &self,
        comm: &Comm,
        v: &mut [f64],
        n_owned: usize,
        ncomp: usize,
        buf: &mut ExchangeBuffers,
    ) {
        buf.send.clear();
        buf.send_counts.clear();
        for idx in &self.send_idx {
            buf.send_counts.push(idx.len() * ncomp);
            for &i in idx {
                buf.send.extend_from_slice(&v[i * ncomp..(i + 1) * ncomp]);
            }
        }
        comm.alltoallv_flat(
            &buf.send,
            &buf.send_counts,
            &mut buf.recv,
            &mut buf.recv_counts,
        );
        for (r, &cnt) in self.recv_counts.iter().enumerate() {
            assert_eq!(buf.recv_counts[r], cnt * ncomp);
        }
        let ghost = &mut v[n_owned * ncomp..];
        assert_eq!(ghost.len(), buf.recv.len());
        ghost.copy_from_slice(&buf.recv);
    }

    /// Allocation-free reverse accumulation for interleaved components:
    /// the ghost block itself is the flat send buffer (no pack pass).
    /// Contributions accumulate into each owned entry in ascending source
    /// rank order — the same order as the per-component
    /// [`ExchangePattern::reverse_accumulate`] path, so results are
    /// bitwise identical. Collective.
    pub fn reverse_accumulate_interleaved(
        &self,
        comm: &Comm,
        v: &mut [f64],
        n_owned: usize,
        ncomp: usize,
        buf: &mut ExchangeBuffers,
    ) {
        buf.send_counts.clear();
        buf.send_counts
            .extend(self.recv_counts.iter().map(|&c| c * ncomp));
        let (owned, ghost) = v.split_at_mut(n_owned * ncomp);
        comm.alltoallv_flat(ghost, &buf.send_counts, &mut buf.recv, &mut buf.recv_counts);
        ghost.fill(0.0);
        self.accumulate_received(owned, ncomp, buf);
    }

    /// Fold the received reverse contributions into the owned block, in
    /// ascending source-rank then send-index order — the accumulation
    /// order every reverse path (blocking or split-phase) shares, which
    /// is what makes them bitwise interchangeable.
    fn accumulate_received(&self, owned: &mut [f64], ncomp: usize, buf: &ExchangeBuffers) {
        let mut pos = 0;
        for (r, idx) in self.send_idx.iter().enumerate() {
            assert_eq!(buf.recv_counts[r], idx.len() * ncomp);
            for &i in idx {
                for k in 0..ncomp {
                    owned[i * ncomp + k] += buf.recv[pos];
                    pos += 1;
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // Split-phase (overlapped) counterparts
    // ----------------------------------------------------------------

    /// Post the ghost fill of [`ExchangePattern::exchange_interleaved`]
    /// without completing it: pack the owned values each neighbor needs
    /// and start a split-phase round on `buf`'s stream. Only the *owned*
    /// block of `v` is read, so the caller is free to compute with it —
    /// interior-element sweeps — until
    /// [`ExchangePattern::exchange_end_interleaved`]. Not collective in
    /// the rendezvous sense: no barrier at either end.
    pub fn exchange_begin_interleaved(
        &self,
        comm: &Comm,
        v: &[f64],
        ncomp: usize,
        buf: &mut ExchangeBuffers,
    ) {
        buf.send.clear();
        buf.send_counts.clear();
        for idx in &self.send_idx {
            buf.send_counts.push(idx.len() * ncomp);
            for &i in idx {
                buf.send.extend_from_slice(&v[i * ncomp..(i + 1) * ncomp]);
            }
        }
        buf.expect.clear();
        buf.expect
            .extend(self.recv_counts.iter().map(|&c| c * ncomp));
        comm.exchange_start(&buf.send, &buf.send_counts, &buf.expect, &mut buf.ex);
    }

    /// Complete the round posted by
    /// [`ExchangePattern::exchange_begin_interleaved`] and copy the
    /// received values into the ghost block of `v`. The ghost block ends
    /// up bitwise identical to what the blocking
    /// [`ExchangePattern::exchange_interleaved`] produces: the payloads,
    /// their packing order and the source-rank receive order are all the
    /// same — only the completion point moved.
    pub fn exchange_end_interleaved(
        &self,
        comm: &Comm,
        v: &mut [f64],
        n_owned: usize,
        ncomp: usize,
        buf: &mut ExchangeBuffers,
    ) {
        comm.exchange_end(&mut buf.ex, &mut buf.recv, &mut buf.recv_counts);
        for (r, &cnt) in self.recv_counts.iter().enumerate() {
            assert_eq!(buf.recv_counts[r], cnt * ncomp);
        }
        let ghost = &mut v[n_owned * ncomp..];
        assert_eq!(ghost.len(), buf.recv.len());
        ghost.copy_from_slice(&buf.recv);
    }

    /// Post the reverse accumulation of
    /// [`ExchangePattern::reverse_accumulate_interleaved`] without
    /// completing it: the ghost block is sent back to the owners (payload
    /// copied at post time) and zeroed. The owned block is untouched until
    /// [`ExchangePattern::reverse_accumulate_end_interleaved`].
    pub fn reverse_accumulate_begin_interleaved(
        &self,
        comm: &Comm,
        v: &mut [f64],
        n_owned: usize,
        ncomp: usize,
        buf: &mut ExchangeBuffers,
    ) {
        buf.send_counts.clear();
        buf.send_counts
            .extend(self.recv_counts.iter().map(|&c| c * ncomp));
        buf.expect.clear();
        buf.expect
            .extend(self.send_idx.iter().map(|idx| idx.len() * ncomp));
        let ghost = &mut v[n_owned * ncomp..];
        comm.exchange_start(ghost, &buf.send_counts, &buf.expect, &mut buf.ex);
        ghost.fill(0.0);
    }

    /// Complete the round posted by
    /// [`ExchangePattern::reverse_accumulate_begin_interleaved`],
    /// accumulating the neighbors' contributions into the owned block in
    /// the shared source-rank order — bitwise identical to the blocking
    /// reverse path.
    pub fn reverse_accumulate_end_interleaved(
        &self,
        comm: &Comm,
        v: &mut [f64],
        n_owned: usize,
        ncomp: usize,
        buf: &mut ExchangeBuffers,
    ) {
        comm.exchange_end(&mut buf.ex, &mut buf.recv, &mut buf.recv_counts);
        let owned = &mut v[..n_owned * ncomp];
        self.accumulate_received(owned, ncomp, buf);
    }
}

/// The distributed trilinear hexahedral mesh extracted from an octree.
pub struct Mesh {
    /// Physical domain extents: the unit cube is scaled to
    /// `[0,Lx]×[0,Ly]×[0,Lz]`.
    pub domain: [f64; 3],
    /// Local elements (copies of the octree leaves at extraction time).
    pub elements: Vec<Octant>,
    /// Per element, indices of its 8 corner nodes into `node_table`
    /// (z-order).
    pub elem_nodes: Vec<[CornerRef; 8]>,
    /// Distinct local nodes: resolution into local dofs.
    pub node_table: Vec<NodeResolution>,
    /// Lattice key of each entry of `node_table`.
    pub node_keys: Vec<NodeKey>,
    /// Number of owned dofs (local dof indices `0..n_owned`).
    pub n_owned: usize,
    /// Number of ghost dofs (local dof indices `n_owned..n_owned+n_ghost`).
    pub n_ghost: usize,
    /// This rank's first global dof id.
    pub global_offset: u64,
    /// Global dof count.
    pub n_global: u64,
    /// Global ids of the ghost dofs, in ghost-block order.
    pub ghost_gids: Vec<u64>,
    /// Lattice key of each local dof (owned then ghost).
    pub dof_keys: Vec<NodeKey>,
    /// Ghost exchange pattern.
    pub exchange: ExchangePattern,
    /// Local element indices whose corners resolve (through hanging-node
    /// constraints) exclusively to owned dofs that no neighbor rank
    /// ghosts: their sweep neither reads ghost values nor contributes to
    /// any value another rank is waiting for, so they can be processed
    /// while a ghost exchange is in flight.
    pub interior_elems: Vec<u32>,
    /// The complement of [`Mesh::interior_elems`]: elements touching a
    /// ghost dof or a shared owned dof, swept only after the exchange
    /// completes. `interior_elems ∪ surface_elems` enumerates
    /// `0..elements.len()` exactly once, each list ascending.
    pub surface_elems: Vec<u32>,
}

impl Mesh {
    /// Number of local dofs including ghosts (= length of field vectors).
    pub fn n_local(&self) -> usize {
        self.n_owned + self.n_ghost
    }

    /// Physical coordinates of a local dof.
    pub fn dof_coords(&self, dof: usize) -> [f64; 3] {
        let (x, y, z) = node_coords(self.dof_keys[dof]);
        let s = ROOT_LEN as f64;
        [
            x as f64 / s * self.domain[0],
            y as f64 / s * self.domain[1],
            z as f64 / s * self.domain[2],
        ]
    }

    /// Whether a local dof lies on the domain boundary.
    pub fn dof_on_boundary(&self, dof: usize) -> bool {
        let (x, y, z) = node_coords(self.dof_keys[dof]);
        x == 0 || y == 0 || z == 0 || x == ROOT_LEN || y == ROOT_LEN || z == ROOT_LEN
    }

    /// Which boundary faces a dof lies on: bitmask with bit `f` set for
    /// face `f` (−x,+x,−y,+y,−z,+z).
    pub fn dof_boundary_faces(&self, dof: usize) -> u8 {
        let (x, y, z) = node_coords(self.dof_keys[dof]);
        let mut m = 0u8;
        if x == 0 {
            m |= 1;
        }
        if x == ROOT_LEN {
            m |= 2;
        }
        if y == 0 {
            m |= 4;
        }
        if y == ROOT_LEN {
            m |= 8;
        }
        if z == 0 {
            m |= 16;
        }
        if z == ROOT_LEN {
            m |= 32;
        }
        m
    }

    /// Physical edge lengths of local element `e`.
    pub fn element_size(&self, e: usize) -> [f64; 3] {
        let h = self.elements[e].len_unit();
        [h * self.domain[0], h * self.domain[1], h * self.domain[2]]
    }

    /// Resolve the 8 corner values of element `e` from a local field
    /// vector (owned + ghost layout), applying hanging-node constraints.
    pub fn corner_values(&self, e: usize, v: &[f64]) -> [f64; 8] {
        let mut out = [0.0; 8];
        for (c, &nref) in self.elem_nodes[e].iter().enumerate() {
            out[c] = match &self.node_table[nref as usize] {
                NodeResolution::Dof(d) => v[*d],
                NodeResolution::Constrained(terms) => terms.iter().map(|&(d, w)| w * v[d]).sum(),
            };
        }
        out
    }

    /// Scatter per-corner contributions of element `e` into a local
    /// residual vector, transposing the hanging-node constraints
    /// (element-level `Cᵀ` application).
    pub fn scatter_corners(&self, e: usize, contrib: &[f64; 8], v: &mut [f64]) {
        for (c, &nref) in self.elem_nodes[e].iter().enumerate() {
            match &self.node_table[nref as usize] {
                NodeResolution::Dof(d) => v[*d] += contrib[c],
                NodeResolution::Constrained(terms) => {
                    for &(d, w) in terms {
                        v[d] += w * contrib[c];
                    }
                }
            }
        }
    }
}

/// Vertex keys of a leaf (z-order).
fn leaf_corner_keys(o: &Octant) -> [NodeKey; 8] {
    let l = o.len();
    std::array::from_fn(|c| {
        node_key(
            o.x + (c as u32 & 1) * l,
            o.y + ((c as u32 >> 1) & 1) * l,
            o.z + ((c as u32 >> 2) & 1) * l,
        )
    })
}

/// Is node `p` a vertex of leaf `o`?
fn is_vertex_of(p: (u32, u32, u32), o: &Octant) -> bool {
    let l = o.len();
    (p.0 == o.x || p.0 == o.x + l)
        && (p.1 == o.y || p.1 == o.y + l)
        && (p.2 == o.z || p.2 == o.z + l)
}

/// The up-to-8 finest-level cells incident to node `p`, as octants.
fn incident_probes(p: (u32, u32, u32)) -> Vec<Octant> {
    let mut probes = Vec::with_capacity(8);
    for dz in 0..2u32 {
        for dy in 0..2u32 {
            for dx in 0..2u32 {
                let (x, y, z) = (
                    p.0 as i64 - dx as i64,
                    p.1 as i64 - dy as i64,
                    p.2 as i64 - dz as i64,
                );
                let lim = ROOT_LEN as i64;
                if x >= 0 && y >= 0 && z >= 0 && x < lim && y < lim && z < lim {
                    probes.push(Octant::new(x as u32, y as u32, z as u32, MAX_LEVEL));
                }
            }
        }
    }
    probes
}

/// Owner rank of node `p`: the owner of the Morton-smallest incident
/// cell — computable on every rank from the partition markers alone.
fn node_owner(tree: &DistOctree, p: (u32, u32, u32)) -> usize {
    let probes = incident_probes(p);
    let smallest = probes
        .iter()
        .min()
        .expect("node has at least one incident cell");
    tree.owner_of(smallest)
}

/// Wire term of a remote constraint answer.
#[derive(Clone, Copy)]
#[repr(C)]
struct WireTerm {
    /// Key of the node this term resolves (the query key).
    query: u64,
    /// Key of a contributing node.
    node: u64,
    weight: f64,
    /// `u64::MAX` if `node` is independent, else the rank to ask next.
    next_owner: u64,
}
unsafe impl scomm::Pod for WireTerm {}

/// Build the distributed mesh from a balanced octree (collective).
pub fn extract_mesh(tree: &DistOctree, domain: [f64; 3]) -> Mesh {
    let comm = tree.comm();
    let me = comm.rank();
    let p = comm.size();

    // ---- Gather the local + ghost leaf view ------------------------
    let ghosts = tree.ghost_layer();
    let mut view: Vec<(Octant, usize)> = tree.local.iter().map(|&o| (o, me)).collect();
    view.extend(ghosts.iter().map(|&(r, o)| (o, r)));
    view.sort_by_key(|a| a.0);
    let view_octs: Vec<Octant> = view.iter().map(|v| v.0).collect();

    // ---- Collect local nodes (corners of local elements) ------------
    let mut node_ids: HashMap<NodeKey, u32> = HashMap::new();
    let mut node_keys: Vec<NodeKey> = Vec::new();
    let mut elem_nodes: Vec<[CornerRef; 8]> = Vec::with_capacity(tree.local.len());
    for o in &tree.local {
        let corners = leaf_corner_keys(o);
        let refs = corners.map(|k| {
            *node_ids.entry(k).or_insert_with(|| {
                node_keys.push(k);
                (node_keys.len() - 1) as u32
            })
        });
        elem_nodes.push(refs);
    }

    // ---- Local hanging classification and recursive resolution ------
    // For each node seen locally: independent, or expand through the
    // coarsest non-vertex touching leaf. Foreign masters (corners of
    // ghost elements) are resolved in rounds below.

    // Pending foreign queries: (owner rank, node key) with multiplied
    // weights folded in by the requesting node's partial expansion.
    // We first build "one-step" expansions; chains are then closed
    // transitively.
    #[derive(Clone, Debug)]
    enum OneStep {
        Independent,
        Hanging(Vec<(NodeKey, f64, Option<usize>)>), // (master, w, foreign owner)
    }
    let mut one_step: HashMap<NodeKey, OneStep> = HashMap::new();

    // Classify a node given the local+ghost view. Returns None if some
    // incident cell is not covered by the view (cannot happen for corners
    // of local elements; used as a sanity check).
    let classify = |key: NodeKey| -> Option<OneStep> {
        let pc = node_coords(key);
        let mut coarsest: Option<usize> = None;
        for probe in incident_probes(pc) {
            let idx = find_containing(&view_octs, &probe)?;
            let leaf = &view_octs[idx];
            if !is_vertex_of(pc, leaf) {
                coarsest = match coarsest {
                    Some(cur) if view_octs[cur].level <= leaf.level => Some(cur),
                    _ => Some(idx),
                };
            }
        }
        match coarsest {
            None => Some(OneStep::Independent),
            Some(ci) => {
                let (c, owner) = view[ci];
                // Reference position of the node inside c: each component
                // is 0, 1/2 or 1 by the 2:1 balance.
                let l = c.len() as f64;
                let r = [
                    (pc.0 - c.x) as f64 / l,
                    (pc.1 - c.y) as f64 / l,
                    (pc.2 - c.z) as f64 / l,
                ];
                let ckeys = leaf_corner_keys(&c);
                let mut terms = Vec::new();
                for (ci2, &ck) in ckeys.iter().enumerate() {
                    let wx = if ci2 & 1 == 1 { r[0] } else { 1.0 - r[0] };
                    let wy = if (ci2 >> 1) & 1 == 1 {
                        r[1]
                    } else {
                        1.0 - r[1]
                    };
                    let wz = if (ci2 >> 2) & 1 == 1 {
                        r[2]
                    } else {
                        1.0 - r[2]
                    };
                    let w = wx * wy * wz;
                    if w > 0.0 {
                        let foreign = if owner == me { None } else { Some(owner) };
                        terms.push((ck, w, foreign));
                    }
                }
                Some(OneStep::Hanging(terms))
            }
        }
    };

    // Seed classification with every node referenced by local elements.
    // Drain the seeds lazily rather than copying `node_keys` wholesale;
    // only chained masters enter the explicit worklist.
    let mut seeds = node_keys.iter().copied();
    let mut work: Vec<NodeKey> = Vec::new();
    while let Some(key) = work.pop().or_else(|| seeds.next()) {
        if one_step.contains_key(&key) {
            continue;
        }
        let step = classify(key).unwrap_or_else(|| {
            panic!(
                "incident cell of node {:?} missing from local+ghost view",
                node_coords(key)
            )
        });
        if let OneStep::Hanging(terms) = &step {
            for &(mk, _, foreign) in terms {
                // Local masters can be classified here too (their
                // incident cells neighbor a local or ghost element we
                // contain — if not, they are foreign and resolved
                // remotely).
                if foreign.is_none() && !one_step.contains_key(&mk) {
                    work.push(mk);
                }
            }
        }
        one_step.insert(key, step);
    }

    // Close local chains and collect foreign queries. `expand` memoizes
    // each key's expansion (terms over independent keys + foreign
    // remainders `(owner, key, weight)`) and returns a borrow of the memo
    // entry — callers iterate it in place instead of cloning the term
    // vectors on every lookup.
    fn expand<'m>(
        key: NodeKey,
        one_step: &HashMap<NodeKey, OneStep>,
        memo: &'m mut HashMap<NodeKey, (Vec<(NodeKey, f64)>, Vec<(usize, NodeKey, f64)>)>,
        depth: usize,
    ) -> &'m (Vec<(NodeKey, f64)>, Vec<(usize, NodeKey, f64)>) {
        if !memo.contains_key(&key) {
            assert!(depth < 64, "hanging-node constraint chain too deep");
            let result = match one_step.get(&key) {
                Some(OneStep::Independent) => (vec![(key, 1.0)], Vec::new()),
                Some(OneStep::Hanging(terms)) => {
                    let mut indep: Vec<(NodeKey, f64)> = Vec::new();
                    let mut foreign: Vec<(usize, NodeKey, f64)> = Vec::new();
                    for &(mk, w, f) in terms {
                        match f {
                            Some(owner) => foreign.push((owner, mk, w)),
                            None => {
                                let (sub_i, sub_f) = expand(mk, one_step, memo, depth + 1);
                                for &(k2, w2) in sub_i {
                                    indep.push((k2, w * w2));
                                }
                                for &(o2, k2, w2) in sub_f {
                                    foreign.push((o2, k2, w * w2));
                                }
                            }
                        }
                    }
                    (indep, foreign)
                }
                None => unreachable!("every reachable key was classified"),
            };
            memo.insert(key, result);
        }
        memo.get(&key).expect("just inserted")
    }

    let mut memo: HashMap<NodeKey, (Vec<(NodeKey, f64)>, Vec<(usize, NodeKey, f64)>)> =
        HashMap::new();
    // Final expansions per local node (keys referenced by local elements).
    let mut final_terms: HashMap<NodeKey, Vec<(NodeKey, f64)>> = HashMap::new();
    // Outstanding foreign parts: (local node key, owner, remote key, w).
    let mut pending: Vec<(NodeKey, usize, NodeKey, f64)> = Vec::new();
    for &key in &node_keys {
        let (indep, foreign) = expand(key, &one_step, &mut memo, 0);
        for &(o, k, w) in foreign {
            pending.push((key, o, k, w));
        }
        final_terms.insert(key, indep.clone());
    }

    // ---- Rounds: resolve foreign constraint chains -------------------
    loop {
        let n_pending = comm.allreduce_sum(&[pending.len() as u64])[0];
        if n_pending == 0 {
            break;
        }
        // One query per distinct (owner, key): several pending entries may
        // need the same remote node, and it may even be reachable through
        // ghost elements of different owners — answer sets are keyed by
        // (owner, key) below so each entry consumes exactly one answer.
        let mut queries: Vec<Vec<u64>> = vec![Vec::new(); p];
        for &(_, owner, k, _) in &pending {
            queries[owner].push(k);
        }
        for q in &mut queries {
            q.sort_unstable();
            q.dedup();
        }
        let incoming = comm.alltoallv(&queries);
        // Answer: expand each queried key with MY one-step data.
        let mut answers: Vec<Vec<WireTerm>> = vec![Vec::new(); p];
        for (src, qs) in incoming.iter().enumerate() {
            for &qk in qs {
                let (indep, foreign) = expand(qk, &one_step, &mut memo, 0);
                for &(k2, w2) in indep {
                    answers[src].push(WireTerm {
                        query: qk,
                        node: k2,
                        weight: w2,
                        next_owner: u64::MAX,
                    });
                }
                for &(o2, k2, w2) in foreign {
                    answers[src].push(WireTerm {
                        query: qk,
                        node: k2,
                        weight: w2,
                        next_owner: o2 as u64,
                    });
                }
            }
        }
        let replies = comm.alltoallv(&answers);
        // Substitute into pending: answers keyed by (answering rank, key).
        let mut reply_map: HashMap<(usize, u64), Vec<&WireTerm>> = HashMap::new();
        for (src, part) in replies.iter().enumerate() {
            for t in part {
                reply_map.entry((src, t.query)).or_default().push(t);
            }
        }
        let mut next_pending = Vec::new();
        for (local_key, owner, k, w) in pending {
            let terms = reply_map.get(&(owner, k)).expect("query must be answered");
            for t in terms {
                if t.next_owner == u64::MAX {
                    final_terms
                        .get_mut(&local_key)
                        .unwrap()
                        .push((t.node, w * t.weight));
                } else {
                    next_pending.push((local_key, t.next_owner as usize, t.node, w * t.weight));
                }
            }
        }
        pending = next_pending;
    }

    // Merge duplicate keys in each final expansion.
    for terms in final_terms.values_mut() {
        terms.sort_by_key(|t| t.0);
        let mut merged: Vec<(NodeKey, f64)> = Vec::with_capacity(terms.len());
        for &(k, w) in terms.iter() {
            match merged.last_mut() {
                Some(last) if last.0 == k => last.1 += w,
                _ => merged.push((k, w)),
            }
        }
        *terms = merged;
    }

    // ---- Own + number the independent dofs --------------------------
    // Owned = independent keys appearing in any final expansion whose
    // node-owner is me AND that I see as a local-element corner... by the
    // ownership rule the owner always sees its node as a local corner, so
    // collecting from node_keys suffices.
    let mut owned_keys: Vec<NodeKey> = node_keys
        .iter()
        .copied()
        .filter(|&k| matches!(one_step.get(&k), Some(OneStep::Independent)))
        .filter(|&k| node_owner(tree, node_coords(k)) == me)
        .collect();
    owned_keys.sort_unstable();
    owned_keys.dedup();
    let n_owned = owned_keys.len();
    let global_offset = comm.exscan_sum(n_owned as u64);
    let n_global = comm.allreduce_sum(&[n_owned as u64])[0];
    let owned_index: HashMap<NodeKey, usize> = owned_keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();

    // ---- Foreign gid lookup + exchange pattern -----------------------
    // Foreign independent keys referenced by my expansions.
    let mut foreign_keys: Vec<NodeKey> = final_terms
        .values()
        .flatten()
        .map(|&(k, _)| k)
        .filter(|k| !owned_index.contains_key(k))
        .collect();
    foreign_keys.sort_unstable();
    foreign_keys.dedup();
    let mut gid_queries: Vec<Vec<u64>> = vec![Vec::new(); p];
    for &k in &foreign_keys {
        let owner = node_owner(tree, node_coords(k));
        debug_assert_ne!(owner, me, "owned key classified as foreign");
        gid_queries[owner].push(k);
    }
    let gid_incoming = comm.alltoallv(&gid_queries);
    // Answer with gids; also record requests for the exchange pattern.
    let mut gid_answers: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut send_requests: Vec<Vec<NodeKey>> = vec![Vec::new(); p];
    for (src, qs) in gid_incoming.iter().enumerate() {
        for &k in qs {
            let li = *owned_index
                .get(&k)
                .unwrap_or_else(|| panic!("rank {me} asked for non-owned node {k}"));
            gid_answers[src].push(global_offset + li as u64);
            send_requests[src].push(k);
        }
    }
    let gid_replies = comm.alltoallv(&gid_answers);
    let mut key_to_gid: HashMap<NodeKey, u64> = HashMap::new();
    for (r, qs) in gid_queries.iter().enumerate() {
        for (i, &k) in qs.iter().enumerate() {
            key_to_gid.insert(k, gid_replies[r][i]);
        }
    }

    // Ghost block: foreign keys sorted by gid (groups by owner since gid
    // ranges are contiguous per rank).
    let mut ghost_pairs: Vec<(u64, NodeKey)> =
        foreign_keys.iter().map(|&k| (key_to_gid[&k], k)).collect();
    ghost_pairs.sort_unstable();
    let ghost_gids: Vec<u64> = ghost_pairs.iter().map(|&(g, _)| g).collect();
    let ghost_index: HashMap<NodeKey, usize> = ghost_pairs
        .iter()
        .enumerate()
        .map(|(i, &(_, k))| (k, n_owned + i))
        .collect();
    let n_ghost = ghost_pairs.len();

    // Exchange pattern: for each rank, owned indices it requested,
    // ordered by gid (matching the requester's ghost-block order).
    let mut send_idx: Vec<Vec<usize>> = vec![Vec::new(); p];
    for (r, reqs) in send_requests.iter().enumerate() {
        let mut pairs: Vec<(u64, usize)> = reqs
            .iter()
            .map(|k| {
                let li = owned_index[k];
                (global_offset + li as u64, li)
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        send_idx[r] = pairs.into_iter().map(|(_, li)| li).collect();
    }
    let mut recv_counts = vec![0usize; p];
    for &(g, _) in &ghost_pairs {
        // Owner of gid g: the rank whose [offset, offset+n) contains it.
        // Recover via search over gathered offsets.
        let _ = g;
    }
    // recv counts per owner rank: gather rank offsets to map gid→rank.
    let offsets = comm.allgatherv(&[global_offset]);
    for &(g, _) in &ghost_pairs {
        let r = offsets.partition_point(|&o| o <= g) - 1;
        recv_counts[r] += 1;
    }
    // De-duplicated send counts must match requester's recv counts: the
    // requester deduplicated before querying, and we deduplicated pairs
    // above, so both sides agree.

    // ---- Build the node table over local dof indices ----------------
    let lookup_dof = |k: NodeKey| -> usize {
        owned_index
            .get(&k)
            .copied()
            .or_else(|| ghost_index.get(&k).copied())
            .unwrap_or_else(|| panic!("unresolved node key {k}"))
    };
    let node_table: Vec<NodeResolution> = node_keys
        .iter()
        .map(|&k| {
            let terms = &final_terms[&k];
            if terms.len() == 1 && terms[0].0 == k && (terms[0].1 - 1.0).abs() < 1e-14 {
                NodeResolution::Dof(lookup_dof(k))
            } else {
                NodeResolution::Constrained(
                    terms.iter().map(|&(mk, w)| (lookup_dof(mk), w)).collect(),
                )
            }
        })
        .collect();

    // ---- Interior/surface element classification --------------------
    // An element is *interior* iff every corner resolves (through
    // hanging-node constraints) exclusively to owned dofs that appear in
    // no rank's send list: reading its corners needs no ghost value and
    // writing its residual touches no dof a neighbor exchange carries.
    // Interior elements are exactly the ones an overlapped operator may
    // sweep while the ghost exchange is still in flight (Tu, O'Hallaron
    // & Ghattas SC'05; Burstedde et al. SC'08 §4).
    let mut shared = vec![false; n_owned + n_ghost];
    for s in shared.iter_mut().skip(n_owned) {
        *s = true; // every ghost dof is shared by definition
    }
    for idx in &send_idx {
        for &i in idx {
            shared[i] = true;
        }
    }
    let dof_is_interior = |d: usize| !shared[d];
    let mut interior_elems: Vec<u32> = Vec::new();
    let mut surface_elems: Vec<u32> = Vec::new();
    for (e, refs) in elem_nodes.iter().enumerate() {
        let interior = refs.iter().all(|&nref| match &node_table[nref as usize] {
            NodeResolution::Dof(d) => dof_is_interior(*d),
            NodeResolution::Constrained(terms) => terms.iter().all(|&(d, _)| dof_is_interior(d)),
        });
        if interior {
            interior_elems.push(e as u32);
        } else {
            surface_elems.push(e as u32);
        }
    }

    // dof keys: owned then ghost (`owned_keys` is not needed again, so
    // move it instead of copying).
    let mut dof_keys = owned_keys;
    dof_keys.extend(ghost_pairs.iter().map(|&(_, k)| k));

    // Hanging-node rows are convex combinations: weights in (0,1]
    // summing to 1. O(local); the cross-rank consistency checks live in
    // the `check` crate.
    #[cfg(debug_assertions)]
    if scomm::checks_enabled() {
        for (i, res) in node_table.iter().enumerate() {
            if let NodeResolution::Constrained(terms) = res {
                let sum: f64 = terms.iter().map(|t| t.1).sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9 && terms.iter().all(|t| t.1 > 0.0 && t.1 <= 1.0),
                    "constraint row for node {:#x} is not a partition of unity: {terms:?}",
                    node_keys[i]
                );
            }
        }
    }

    Mesh {
        domain,
        elements: tree.local.clone(),
        elem_nodes,
        node_table,
        node_keys,
        n_owned,
        n_ghost,
        global_offset,
        n_global,
        ghost_gids,
        dof_keys,
        exchange: ExchangePattern {
            send_idx,
            recv_counts,
        },
        interior_elems,
        surface_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octree::balance::BalanceKind;
    use scomm::spmd;

    fn extract(nranks: usize, level: u8, refine_corner: bool) -> Vec<(usize, usize, u64)> {
        spmd::run(nranks, move |c| {
            let mut t = DistOctree::new_uniform(c, level);
            if refine_corner {
                t.refine(|o| o.x == 0 && o.y == 0 && o.z == 0);
                t.balance(BalanceKind::Full);
                t.partition();
            }
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            (m.n_owned, m.n_ghost, m.n_global)
        })
    }

    #[test]
    fn uniform_mesh_dof_count() {
        // Uniform level-2: (4+1)^3 = 125 global nodes, no hanging nodes.
        for nranks in [1, 2, 4] {
            let out = extract(nranks, 2, false);
            let total: usize = out.iter().map(|o| o.0).sum();
            assert_eq!(total, 125, "nranks={nranks}");
            assert!(out.iter().all(|o| o.2 == 125));
        }
    }

    #[test]
    fn refined_mesh_has_hanging_nodes_excluded() {
        // Level-1 tree with child 0 refined: 8 + 7 = 15 elements.
        // Global independent nodes: 27 (coarse) + interior/face nodes of
        // the refined octant that are NOT hanging.
        let out = extract(1, 1, true);
        let (n_owned, _, n_global) = out[0];
        assert_eq!(n_owned as u64, n_global);
        // Hand count: 27 coarse lattice nodes. The refined child-0 cell
        // adds lattice points at spacing 1/4 inside [0,1/2]^3: 27 points,
        // of which 8 coincide with coarse nodes. Of the 19 new points,
        // the 12 lying on an interface plane (some coordinate = 1/2) sit
        // on a face or edge of a coarse sibling without being its vertex
        // — hanging. The 7 with all coordinates in {0, 1/4} touch only
        // fine cells — independent. Total: 27 + 7 = 34.
        assert_eq!(n_global, 34, "independent dof count for this fixture");
    }

    #[test]
    fn parallel_matches_serial_dof_count() {
        let serial = extract(1, 1, true)[0].2;
        for nranks in [2, 3, 4] {
            let out = extract(nranks, 1, true);
            assert!(out.iter().all(|o| o.2 == serial), "nranks={nranks}");
            let total: usize = out.iter().map(|o| o.0).sum();
            assert_eq!(total as u64, serial);
        }
    }

    #[test]
    fn constraints_partition_unity() {
        // Sum of constraint weights at every hanging node must be 1
        // (interpolation of the constant function is exact).
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] < 0.4);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let mut n_hanging = 0;
            for res in &m.node_table {
                if let NodeResolution::Constrained(terms) = res {
                    n_hanging += 1;
                    let s: f64 = terms.iter().map(|t| t.1).sum();
                    assert!((s - 1.0).abs() < 1e-12, "weights sum to {s}");
                    assert!(
                        terms.len() == 2 || terms.len() == 4,
                        "face/edge hanging nodes have 2 or 4 masters, got {}",
                        terms.len()
                    );
                }
            }
            let total = c.allreduce_sum(&[n_hanging as u64])[0];
            assert!(total > 0, "fixture must contain hanging nodes");
        });
    }

    #[test]
    fn linear_field_is_reproduced_across_constraints() {
        // A globally linear function sampled at dofs must be exactly
        // interpolated at every element corner, including hanging ones.
        spmd::run(3, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| {
                let ctr = o.center_unit();
                ctr[0] + ctr[1] + ctr[2] < 1.0
            });
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [2.0, 1.0, 1.0]);
            let f = |p: [f64; 3]| 3.0 * p[0] - 2.0 * p[1] + 0.5 * p[2] + 1.0;
            let mut v = vec![0.0; m.n_local()];
            for d in 0..m.n_owned {
                v[d] = f(m.dof_coords(d));
            }
            m.exchange.exchange(c, &mut v, m.n_owned);
            for e in 0..m.elements.len() {
                let vals = m.corner_values(e, &v);
                let o = &m.elements[e];
                let keys = super::leaf_corner_keys(o);
                for (i, &k) in keys.iter().enumerate() {
                    let (x, y, z) = node_coords(k);
                    let s = ROOT_LEN as f64;
                    let pc = [x as f64 / s * 2.0, y as f64 / s * 1.0, z as f64 / s * 1.0];
                    assert!(
                        (vals[i] - f(pc)).abs() < 1e-10,
                        "corner {i} of elem {e}: {} vs {}",
                        vals[i],
                        f(pc)
                    );
                }
            }
        });
    }

    #[test]
    fn exchange_roundtrip_and_accumulate() {
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[2] > 0.6);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            // exchange: ghosts receive the owner's gid value.
            let mut v = vec![0.0; m.n_local()];
            for d in 0..m.n_owned {
                v[d] = (m.global_offset + d as u64) as f64;
            }
            m.exchange.exchange(c, &mut v, m.n_owned);
            for (g, &gid) in m.ghost_gids.iter().enumerate() {
                assert_eq!(v[m.n_owned + g], gid as f64);
            }
            // reverse_accumulate: each ghost sends 1.0; the owner's total
            // equals the number of ranks ghosting that dof; globally the
            // sum equals the global number of ghost entries.
            let mut w = vec![0.0; m.n_local()];
            for g in 0..m.n_ghost {
                w[m.n_owned + g] = 1.0;
            }
            let ghost_total = c.allreduce_sum(&[m.n_ghost as f64])[0];
            m.exchange.reverse_accumulate(c, &mut w, m.n_owned);
            let own_sum: f64 = w[..m.n_owned].iter().sum();
            let total = c.allreduce_sum(&[own_sum])[0];
            assert!((total - ghost_total).abs() < 1e-12);
            assert!(w[m.n_owned..].iter().all(|&x| x == 0.0));
        });
    }

    #[test]
    fn interleaved_exchange_bitwise_matches_strided() {
        // The packed ncomp=3 exchange and reverse accumulation must agree
        // bit for bit with one strided pass per component, and the pack
        // buffers must stop growing after the first call.
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[2] > 0.6);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let ncomp = 3;
            let n_local = m.n_local();
            let fill = |d: usize, k: usize| {
                let g = (m.global_offset + d as u64) as f64;
                (g + 1.0) * (k as f64 + 1.0) * 0.37 - g * 0.11
            };

            // Strided reference: exchange each component separately.
            let mut v_ref = vec![0.0; n_local * ncomp];
            for d in 0..m.n_owned {
                for k in 0..ncomp {
                    v_ref[d * ncomp + k] = fill(d, k);
                }
            }
            let mut scratch = vec![0.0; n_local];
            for k in 0..ncomp {
                for i in 0..n_local {
                    scratch[i] = v_ref[i * ncomp + k];
                }
                m.exchange.exchange(c, &mut scratch, m.n_owned);
                for i in 0..n_local {
                    v_ref[i * ncomp + k] = scratch[i];
                }
            }

            // Packed path.
            let mut v = vec![0.0; n_local * ncomp];
            for d in 0..m.n_owned {
                for k in 0..ncomp {
                    v[d * ncomp + k] = fill(d, k);
                }
            }
            let mut buf = ExchangeBuffers::new();
            m.exchange
                .exchange_interleaved(c, &mut v, m.n_owned, ncomp, &mut buf);
            assert_eq!(v, v_ref, "ghost values must be bitwise identical");

            // Reverse accumulation: seed ghosts, compare owner sums.
            let mut w_ref = vec![0.0; n_local * ncomp];
            let mut w = vec![0.0; n_local * ncomp];
            for g in 0..m.n_ghost {
                for k in 0..ncomp {
                    let val = fill(g, k) + 0.5;
                    w_ref[(m.n_owned + g) * ncomp + k] = val;
                    w[(m.n_owned + g) * ncomp + k] = val;
                }
            }
            for k in 0..ncomp {
                for i in 0..n_local {
                    scratch[i] = w_ref[i * ncomp + k];
                }
                m.exchange.reverse_accumulate(c, &mut scratch, m.n_owned);
                for i in 0..n_local {
                    w_ref[i * ncomp + k] = scratch[i];
                }
            }
            m.exchange
                .reverse_accumulate_interleaved(c, &mut w, m.n_owned, ncomp, &mut buf);
            assert_eq!(w, w_ref, "accumulated values must be bitwise identical");
            // Steady state: further exchanges must not grow the buffers.
            let cap = buf.capacity_bytes();
            m.exchange
                .exchange_interleaved(c, &mut v, m.n_owned, ncomp, &mut buf);
            m.exchange
                .reverse_accumulate_interleaved(c, &mut w, m.n_owned, ncomp, &mut buf);
            assert_eq!(buf.capacity_bytes(), cap, "buffers must be reused");
        });
    }

    #[test]
    fn split_phase_exchange_bitwise_matches_blocking() {
        // The begin/end pair must reproduce the blocking interleaved
        // paths bit for bit — same payloads, same packing, same receive
        // order; only the completion point moves — and the buffers must
        // stop growing after the first round.
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[2] > 0.6);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let ncomp = 3;
            let n_local = m.n_local();
            let fill = |d: usize, k: usize| {
                let g = (m.global_offset + d as u64) as f64;
                (g + 1.0) * (k as f64 + 1.0) * 0.37 - g * 0.11
            };

            // Blocking reference.
            let mut v_ref = vec![0.0; n_local * ncomp];
            for d in 0..m.n_owned {
                for k in 0..ncomp {
                    v_ref[d * ncomp + k] = fill(d, k);
                }
            }
            let mut buf_ref = ExchangeBuffers::new();
            m.exchange
                .exchange_interleaved(c, &mut v_ref, m.n_owned, ncomp, &mut buf_ref);

            // Split-phase path.
            let mut v = vec![0.0; n_local * ncomp];
            for d in 0..m.n_owned {
                for k in 0..ncomp {
                    v[d * ncomp + k] = fill(d, k);
                }
            }
            let mut buf = ExchangeBuffers::with_stream(1);
            m.exchange
                .exchange_begin_interleaved(c, &v, ncomp, &mut buf);
            assert!(buf.in_flight());
            m.exchange
                .exchange_end_interleaved(c, &mut v, m.n_owned, ncomp, &mut buf);
            assert!(!buf.in_flight());
            assert_eq!(v, v_ref, "ghost values must be bitwise identical");

            // Reverse: seed identical ghost contributions on both paths.
            let mut w_ref = vec![0.0; n_local * ncomp];
            let mut w = vec![0.0; n_local * ncomp];
            for g in 0..m.n_ghost {
                for k in 0..ncomp {
                    let val = fill(g, k) + 0.5;
                    w_ref[(m.n_owned + g) * ncomp + k] = val;
                    w[(m.n_owned + g) * ncomp + k] = val;
                }
            }
            m.exchange.reverse_accumulate_interleaved(
                c,
                &mut w_ref,
                m.n_owned,
                ncomp,
                &mut buf_ref,
            );
            m.exchange
                .reverse_accumulate_begin_interleaved(c, &mut w, m.n_owned, ncomp, &mut buf);
            m.exchange
                .reverse_accumulate_end_interleaved(c, &mut w, m.n_owned, ncomp, &mut buf);
            assert_eq!(w, w_ref, "accumulated values must be bitwise identical");

            // Steady state: warm rounds reuse every allocation.
            let cap = buf.capacity_bytes();
            m.exchange
                .exchange_begin_interleaved(c, &v, ncomp, &mut buf);
            m.exchange
                .exchange_end_interleaved(c, &mut v, m.n_owned, ncomp, &mut buf);
            m.exchange
                .reverse_accumulate_begin_interleaved(c, &mut w, m.n_owned, ncomp, &mut buf);
            m.exchange
                .reverse_accumulate_end_interleaved(c, &mut w, m.n_owned, ncomp, &mut buf);
            assert_eq!(buf.capacity_bytes(), cap, "buffers must be reused");
        });
    }

    #[test]
    fn interior_surface_partition_invariants() {
        for nranks in [1usize, 2, 4] {
            spmd::run(nranks, |c| {
                let mut t = DistOctree::new_uniform(c, 2);
                t.refine(|o| o.center_unit()[2] > 0.6);
                t.balance(BalanceKind::Full);
                t.partition();
                let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                // The two lists partition 0..elements.len(), each ascending.
                let mut all: Vec<u32> = m
                    .interior_elems
                    .iter()
                    .chain(m.surface_elems.iter())
                    .copied()
                    .collect();
                assert!(m.interior_elems.windows(2).all(|w| w[0] < w[1]));
                assert!(m.surface_elems.windows(2).all(|w| w[0] < w[1]));
                all.sort_unstable();
                let want: Vec<u32> = (0..m.elements.len() as u32).collect();
                assert_eq!(all, want, "lists must partition the element range");
                // Interior elements must resolve to owned dofs only (the
                // not-shared half of the rule is pinned by construction
                // and by the overlap differential tests).
                for &e in &m.interior_elems {
                    for &nref in &m.elem_nodes[e as usize] {
                        match &m.node_table[nref as usize] {
                            NodeResolution::Dof(d) => assert!(*d < m.n_owned),
                            NodeResolution::Constrained(terms) => {
                                assert!(terms.iter().all(|&(d, _)| d < m.n_owned))
                            }
                        }
                    }
                }
                if c.size() == 1 {
                    // Serial: nothing is shared, every element is interior.
                    assert!(m.surface_elems.is_empty());
                    assert_eq!(m.interior_elems.len(), m.elements.len());
                } else {
                    assert!(
                        !m.surface_elems.is_empty(),
                        "a partitioned mesh must have surface elements"
                    );
                }
            });
        }
    }

    #[test]
    fn interior_surface_counts_pinned_on_adapted_tree() {
        // Known 4-rank adapted fixture (same tree as the exchange tests):
        // uniform level 2, refine z > 0.6, full balance, repartition.
        // Pinned per-rank (interior, surface) counts catch silent changes
        // to the classification rule or the partition.
        let out = spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[2] > 0.6);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            (m.interior_elems.len(), m.surface_elems.len())
        });
        // 64 level-2 cells; the 32 with z-center > 0.6 refine into 8 each:
        // 32 + 256 = 288 elements, Morton-partitioned over 4 ranks.
        let total: usize = out.iter().map(|&(i, s)| i + s).sum();
        assert_eq!(total, 32 + 32 * 8);
        assert_eq!(out, vec![(24, 48), (11, 61), (9, 63), (29, 43)]);
    }

    #[test]
    fn boundary_classification() {
        spmd::run(1, |c| {
            let t = DistOctree::new_uniform(c, 1);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let boundary = (0..m.n_owned).filter(|&d| m.dof_on_boundary(d)).count();
            // 3^3 = 27 nodes, only the center is interior.
            assert_eq!(boundary, 26);
            let center = (0..m.n_owned).find(|&d| !m.dof_on_boundary(d)).unwrap();
            assert_eq!(m.dof_boundary_faces(center), 0);
            assert_eq!(m.dof_coords(center), [0.5, 0.5, 0.5]);
        });
    }
}
