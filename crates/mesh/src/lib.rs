//! # mesh — `ExtractMesh`, hanging-node constraints, ghosts, field transfer
//!
//! This crate builds the distributed trilinear finite element mesh from a
//! balanced distributed octree (the paper's `ExtractMesh`), including:
//!
//! * unique global numbering of the independent degrees of freedom
//!   (hanging nodes carry no unknowns, exactly as in Section IV-B);
//! * algebraic hanging-node constraints resolved at the element level,
//!   with recursive (chained) constraints handled through a bounded
//!   number of collective resolution rounds;
//! * the ghost-dof exchange pattern (one layer of remote elements);
//! * `InterpolateFields` — transfer of nodal fields onto a mesh obtained
//!   by at most one level of coarsening/refinement, communication-free
//!   given ghost values, as in the paper.
//!
//! The mesh is Cartesian: a single octree mapped to a box `[0,Lx] ×
//! [0,Ly] × [0,Lz]` (the paper's mantle simulations use 8×4×1). Forest
//! meshes are consumed by the discontinuous-Galerkin `mangll` crate,
//! which needs no continuous numbering.

pub mod extract;
pub mod interp;
pub mod vtk;

pub use extract::{CornerRef, ExchangePattern, Mesh, NodeResolution};
pub use interp::interpolate_node_field;
pub use vtk::write_vtk;
