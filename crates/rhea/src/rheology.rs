//! Mantle viscosity laws, including the Section VI yielding rheology.
//!
//! The paper's Section VI law on the 8×4×1 non-dimensional domain
//! (z ∈ [0,1], z = 1 at the surface):
//!
//! ```text
//!        ⎧ min{ 10 exp(−6.9 T),  σ_y / (2 ė) }   z > 0.9   (lithosphere)
//!  η  =  ⎨ 0.8 exp(−6.9 T)                        0.77 < z ≤ 0.9 (aesthenosphere)
//!        ⎩ 50 exp(−6.9 T)                         z ≤ 0.77  (lower mantle)
//! ```
//!
//! where `σ_y` is the yield stress and `ė` the second invariant of the
//! deviatoric strain rate. Shallow material yields under stress; deeper
//! material sees only temperature dependence. The factor `exp(−6.9 T)`
//! spans `10^3` over `T ∈ [0,1]`; with the layer prefactors the law
//! covers the paper's four orders of magnitude in viscosity.

/// A viscosity law evaluated per element.
pub trait ViscosityLaw {
    /// Viscosity from temperature `t`, non-dimensional depth coordinate
    /// `z` (0 bottom, 1 surface), and strain-rate invariant `edot`.
    fn eta(&self, t: f64, z: f64, edot: f64) -> f64;

    /// Lower clamp to keep the Stokes operator definite.
    fn eta_min(&self) -> f64 {
        1e-4
    }

    /// Upper clamp.
    fn eta_max(&self) -> f64 {
        1e4
    }

    /// Clamped evaluation.
    fn eta_clamped(&self, t: f64, z: f64, edot: f64) -> f64 {
        self.eta(t, z, edot).clamp(self.eta_min(), self.eta_max())
    }
}

/// The paper's three-layer temperature-dependent law with plastic
/// yielding in the lithosphere.
#[derive(Debug, Clone, Copy)]
pub struct YieldingLaw {
    /// Yield stress σ_y.
    pub yield_stress: f64,
    /// Arrhenius-like exponent (6.9 ⇒ 10³ variation over ΔT = 1).
    pub exponent: f64,
}

impl Default for YieldingLaw {
    fn default() -> Self {
        YieldingLaw {
            yield_stress: 1.0,
            exponent: 6.9,
        }
    }
}

impl ViscosityLaw for YieldingLaw {
    fn eta(&self, t: f64, z: f64, edot: f64) -> f64 {
        let arr = (-self.exponent * t).exp();
        if z > 0.9 {
            let ductile = 10.0 * arr;
            if edot > 0.0 {
                ductile.min(self.yield_stress / (2.0 * edot))
            } else {
                ductile
            }
        } else if z > 0.77 {
            0.8 * arr
        } else {
            50.0 * arr
        }
    }
}

/// Purely temperature-dependent law (no yielding) — the regime of the
/// Fig. 1 plume simulations.
#[derive(Debug, Clone, Copy)]
pub struct ArrheniusLaw {
    pub prefactor: f64,
    pub exponent: f64,
}

impl Default for ArrheniusLaw {
    fn default() -> Self {
        ArrheniusLaw {
            prefactor: 1.0,
            exponent: 6.9,
        }
    }
}

impl ViscosityLaw for ArrheniusLaw {
    fn eta(&self, t: f64, _z: f64, _edot: f64) -> f64 {
        self.prefactor * (-self.exponent * t).exp()
    }
}

/// Constant viscosity (isoviscous benchmarks, e.g. the CitcomCU
/// verification regime).
#[derive(Debug, Clone, Copy)]
pub struct ConstantLaw(pub f64);

impl ViscosityLaw for ConstantLaw {
    fn eta(&self, _t: f64, _z: f64, _edot: f64) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_layer_structure() {
        let law = YieldingLaw::default();
        // Cold material, no strain: lithosphere 10×, aesthenosphere 0.8×,
        // lower mantle 50×.
        assert!((law.eta(0.0, 0.95, 0.0) - 10.0).abs() < 1e-12);
        assert!((law.eta(0.0, 0.85, 0.0) - 0.8).abs() < 1e-12);
        assert!((law.eta(0.0, 0.5, 0.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_softening_spans_three_decades() {
        let law = YieldingLaw::default();
        let cold = law.eta(0.0, 0.5, 0.0);
        let hot = law.eta(1.0, 0.5, 0.0);
        let ratio = cold / hot;
        assert!((ratio - (6.9f64).exp()).abs() / ratio < 1e-12);
        assert!(
            ratio > 900.0 && ratio < 1100.0,
            "≈10³ variation, got {ratio}"
        );
    }

    #[test]
    fn yielding_caps_lithosphere_viscosity() {
        let law = YieldingLaw {
            yield_stress: 0.1,
            exponent: 6.9,
        };
        // High strain rate: σ_y/(2ė) dominates.
        let eta = law.eta(0.0, 0.95, 10.0);
        assert!((eta - 0.1 / 20.0).abs() < 1e-12);
        // Yielding only applies in the lithosphere.
        let deep = law.eta(0.0, 0.5, 10.0);
        assert!((deep - 50.0).abs() < 1e-12);
    }

    #[test]
    fn full_range_covers_four_decades() {
        // Paper: "the viscosities range over four orders of magnitude".
        let law = YieldingLaw {
            yield_stress: 0.02,
            exponent: 6.9,
        };
        let hi = law.eta(0.0, 0.5, 0.0); // 50, cold lower mantle
        let lo = law.eta(1.0, 0.95, 5.0); // yielded hot lithosphere
        assert!(hi / lo >= 1e4, "range {}", hi / lo);
    }

    #[test]
    fn clamping_bounds_apply() {
        let law = YieldingLaw {
            yield_stress: 1e-9,
            exponent: 6.9,
        };
        let eta = law.eta_clamped(0.0, 0.95, 100.0);
        assert_eq!(eta, law.eta_min());
    }
}
