//! The full mantle convection simulation loop (paper eqs. (1)–(3),
//! Sections III and VI): split time stepping — an explicit SUPG
//! advection–diffusion update of temperature, followed by a
//! variable-viscosity (Picard-linearized) Stokes solve for the flow —
//! with dynamic AMR every `adapt_every` steps.

use crate::adapt::{adapt_mesh, gradient_indicator, AdaptParams, AdaptReport};
use crate::rheology::ViscosityLaw;
use crate::timers::PhaseTimers;
use crate::transport::{TransportParams, TransportSolver};
use mesh::extract::{extract_mesh, Mesh};
use obs::Recorder;
use octree::parallel::DistOctree;
use scomm::Comm;
use stokes::{StokesOptions, StokesSolver};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConvectionParams {
    /// Rayleigh number (buoyancy strength `Ra·T·e_z`).
    pub rayleigh: f64,
    /// Non-dimensional domain (the paper's Section VI runs use 8×4×1).
    pub domain: [f64; 3],
    /// Adapt the mesh every this many time steps (paper: 16 for the full
    /// convection code, 32 for transport-only studies).
    pub adapt_every: usize,
    pub adapt: AdaptParams,
    pub transport: TransportParams,
    pub stokes: StokesOptions,
    /// Picard iterations per flow solve (frozen-viscosity re-evaluation).
    pub picard_steps: usize,
}

impl Default for ConvectionParams {
    fn default() -> Self {
        ConvectionParams {
            rayleigh: 1e5,
            domain: [1.0, 1.0, 1.0],
            adapt_every: 16,
            adapt: AdaptParams::default(),
            transport: TransportParams {
                kappa: 1.0,
                source: 0.0,
                cfl: 0.5,
            },
            stokes: StokesOptions::default(),
            picard_steps: 2,
        }
    }
}

/// Per-step diagnostics.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    pub step: usize,
    pub time: f64,
    pub dt: f64,
    pub n_elements: u64,
    pub minres_iterations: usize,
    pub adapt: Option<AdaptReport>,
    pub t_min: f64,
    pub t_max: f64,
    /// Root-mean-square velocity (the standard convection diagnostic).
    pub v_rms: f64,
}

/// The simulation state: octree, mesh, temperature, and flow.
pub struct ConvectionSim<'c> {
    pub comm: &'c Comm,
    pub params: ConvectionParams,
    pub tree: DistOctree<'c>,
    pub mesh: Mesh,
    /// Temperature on owned dofs.
    pub temperature: Vec<f64>,
    /// Last flow solution (velocity|pressure, owned layout); invalidated
    /// by adaptation.
    pub flow: Option<Vec<f64>>,
    /// Per-element viscosity of the last flow solve.
    pub viscosity: Vec<f64>,
    /// Per-rank telemetry recorder; shared with the communicator (so comm
    /// ops emit spans) and with the solvers below. The classic phase-timer
    /// view is available through [`ConvectionSim::timers`].
    pub rec: Recorder,
    pub step_count: usize,
    pub time: f64,
}

impl<'c> ConvectionSim<'c> {
    /// Initialize on a uniform level-`level` mesh with the conductive
    /// profile plus a perturbation: `T = (1−z') + amp·cos(kπ x/Lx)·…`.
    pub fn new(comm: &'c Comm, level: u8, params: ConvectionParams) -> Self {
        // Share one recorder per rank: reuse the communicator's if a traced
        // launcher already attached one, otherwise create it and attach it
        // so comm ops and the solvers report through it too.
        let rec = comm.recorder().unwrap_or_else(|| {
            let r = Recorder::new(comm.rank());
            comm.set_recorder(r.clone());
            r
        });
        let tree = rec.with_cat("NewTree", "amr", || DistOctree::new_uniform(comm, level));
        let mesh = rec.with_cat("ExtractMesh", "amr", || extract_mesh(&tree, params.domain));
        let lz = params.domain[2];
        let lx = params.domain[0];
        let ly = params.domain[1];
        let temperature: Vec<f64> = (0..mesh.n_owned)
            .map(|d| {
                let p = mesh.dof_coords(d);
                let zp = p[2] / lz;
                let pert = 0.05
                    * (std::f64::consts::PI * p[0] / lx).cos()
                    * (std::f64::consts::PI * p[1] / ly).cos()
                    * (std::f64::consts::PI * zp).sin();
                ((1.0 - zp) + pert).clamp(0.0, 1.0)
            })
            .collect();
        let n_elem = mesh.elements.len();
        ConvectionSim {
            comm,
            params,
            tree,
            mesh,
            temperature,
            flow: None,
            viscosity: vec![1.0; n_elem],
            rec,
            step_count: 0,
            time: 0.0,
        }
    }

    /// The paper's thirteen-phase timer view, derived from the recorder's
    /// span summary (see [`PhaseTimers::from_summary`]). Kept for the
    /// existing figure harnesses and diagnostics built on `PhaseTimers`.
    pub fn timers(&self) -> PhaseTimers {
        PhaseTimers::from_summary(&self.rec.summary())
    }

    /// Velocity boundary mask: free-slip on all walls (zero normal
    /// component only), the standard regional mantle convection choice.
    fn velocity_bc(&self) -> Vec<bool> {
        let n = self.mesh.n_owned;
        let mut bc = vec![false; 3 * n];
        for d in 0..n {
            let faces = self.mesh.dof_boundary_faces(d);
            if faces & 0b000011 != 0 {
                bc[3 * d] = true; // x faces constrain u_x
            }
            if faces & 0b001100 != 0 {
                bc[3 * d + 1] = true; // y faces constrain u_y
            }
            if faces & 0b110000 != 0 {
                bc[3 * d + 2] = true; // z faces constrain u_z
            }
        }
        bc
    }

    /// Per-element viscosity from the current temperature, depth and
    /// strain-rate invariant.
    fn eval_viscosity(&self, law: &impl ViscosityLaw, edot: Option<&[f64]>) -> Vec<f64> {
        let map = fem::op::DofMap::new(&self.mesh, self.comm, 1);
        let tl = map.to_local(&self.temperature);
        let mut te = [0.0; 8];
        let lz = self.params.domain[2];
        (0..self.mesh.elements.len())
            .map(|e| {
                map.gather_element(e, &tl, &mut te);
                let tc: f64 = te.iter().sum::<f64>() / 8.0;
                let z = self.mesh.elements[e].center_unit()[2] * lz / lz; // non-dim z'
                let ed = edot.map(|v| v[e]).unwrap_or(0.0);
                law.eta_clamped(tc, z, ed)
            })
            .collect()
    }

    /// Solve the (nonlinear) Stokes flow for the current temperature.
    /// Returns total MINRES iterations. Collective.
    pub fn solve_flow(&mut self, law: &impl ViscosityLaw) -> usize {
        let bc = self.velocity_bc();
        let ra = self.params.rayleigh;
        let mut total_iters = 0;
        let mut x = self
            .flow
            .clone()
            .unwrap_or_else(|| vec![0.0; 4 * self.mesh.n_owned]);
        let mut edot: Option<Vec<f64>> = None;

        // Buoyancy: f = Ra · T(x) · e_z, sampled nodally inside build_rhs.
        // Temperature lookup at dof coordinates via owned values.
        let tvals = self.temperature.clone();
        for _picard in 0..self.params.picard_steps.max(1) {
            self.viscosity = self.eval_viscosity(law, edot.as_deref());
            let mut solver = StokesSolver::new(
                &self.mesh,
                self.comm,
                self.viscosity.clone(),
                bc.clone(),
                self.params.stokes,
            );
            let (rhs, x0) = solver.build_rhs(
                |_p| [0.0, 0.0, 0.0], // replaced below by nodal buoyancy
                |_| [0.0; 3],
            );
            // Nodal buoyancy: build_rhs applies the consistent mass to a
            // sampled function; we need M·(Ra·T) with the *discrete* T, so
            // redo the load directly.
            let mut rhs = rhs;
            {
                let vmap = fem::op::DofMap::new(&self.mesh, self.comm, 3);
                let n = self.mesh.n_owned;
                let mut fv = vec![0.0; 3 * n];
                for d in 0..n {
                    fv[3 * d + 2] = ra * tvals[d];
                }
                let fl = vmap.to_local(&fv);
                let mut rl = vec![0.0; vmap.n_local()];
                let mut fe = [0.0; 24];
                let mut re = [0.0; 24];
                for e in 0..self.mesh.elements.len() {
                    let mm = fem::element::mass_matrix(self.mesh.element_size(e));
                    vmap.gather_element(e, &fl, &mut fe);
                    for i in 0..8 {
                        for ccomp in 0..3 {
                            re[3 * i + ccomp] = (0..8).map(|j| mm[i][j] * fe[3 * j + ccomp]).sum();
                        }
                    }
                    vmap.scatter_element(e, &re, &mut rl);
                }
                vmap.reverse_accumulate(&mut rl);
                for i in 0..3 * n {
                    if !bc[i] {
                        rhs[i] = rl[i];
                    }
                }
            }
            if self.flow.is_none() {
                x = x0;
            }
            // The solver reports AMGSetup/MINRES/AMGSolve spans and the
            // residual series itself, through the communicator's recorder.
            let info = solver.solve(&rhs, &mut x);
            total_iters += info.iterations;
            edot = Some(solver.strain_rate_invariant(&x));
        }
        self.flow = Some(x);
        total_iters
    }

    /// Surface Nusselt number: mean conductive heat flux `−∂T/∂z` through
    /// the top boundary, normalized by the conductive reference `1/Lz` —
    /// the standard convection vigor diagnostic (Nu = 1 for pure
    /// conduction, > 1 once convection transports heat). Evaluated from
    /// the one-sided gradient of the top layer of elements. Collective.
    pub fn nusselt_number(&self) -> f64 {
        let map = fem::op::DofMap::new(&self.mesh, self.comm, 1);
        let tl = map.to_local(&self.temperature);
        let lz = self.params.domain[2];
        let mut flux_area = 0.0;
        let mut area = 0.0;
        let mut te = [0.0; 8];
        for e in 0..self.mesh.elements.len() {
            let o = &self.mesh.elements[e];
            // Top-layer elements touch z = ROOT_LEN.
            if o.z + o.len() != octree::ROOT_LEN {
                continue;
            }
            let h = self.mesh.element_size(e);
            map.gather_element(e, &tl, &mut te);
            // One-sided dT/dz on the top face: average over the 4 top
            // corners minus the 4 bottom corners, divided by hz.
            let top: f64 = (4..8).map(|c| te[c]).sum::<f64>() / 4.0;
            let bot: f64 = (0..4).map(|c| te[c]).sum::<f64>() / 4.0;
            let dtdz = (top - bot) / h[2];
            let face_area = h[0] * h[1];
            flux_area += -dtdz * face_area;
            area += face_area;
        }
        let sums = self.comm.allreduce_sum(&[flux_area, area]);
        let mean_flux = sums[0] / sums[1].max(1e-300);
        // Conductive reference flux for ΔT = 1 across depth Lz.
        mean_flux / (1.0 / lz)
    }

    /// One full time step: (adapt every k steps) → flow solve →
    /// transport step. Collective.
    pub fn step(&mut self, law: &impl ViscosityLaw) -> StepReport {
        let mut report = StepReport {
            step: self.step_count,
            ..Default::default()
        };

        // Adaptation.
        if self.params.adapt_every > 0
            && self.step_count > 0
            && self.step_count.is_multiple_of(self.params.adapt_every)
        {
            let ind = gradient_indicator(&self.mesh, self.comm, &self.temperature);
            let fields = [self.temperature.clone()];
            let rec = self.rec.clone();
            let (new_mesh, mut new_fields, rep) = adapt_mesh(
                &mut self.tree,
                &self.mesh,
                &fields,
                &ind,
                &self.params.adapt,
                &rec,
            );
            self.mesh = new_mesh;
            self.temperature = new_fields.remove(0);
            self.flow = None; // mesh changed: warm start invalid
            self.viscosity = vec![1.0; self.mesh.elements.len()];
            report.adapt = Some(rep);
        }

        // Flow solve.
        report.minres_iterations = self.solve_flow(law);

        // Transport step.
        let transport_span = self.rec.span_cat("TimeIntegration", "solve");
        let mut ts = TransportSolver::new(&self.mesh, self.comm, self.params.transport);
        ts.set_velocity_from_nodal(&self.flow.as_ref().unwrap()[..3 * self.mesh.n_owned]);
        // T = 1 at the bottom (z = 0), T = 0 at the surface (z = Lz).
        ts.set_dirichlet(0b010000, |_| 1.0);
        ts.set_dirichlet(0b100000, |_| 0.0);
        ts.apply_bc(&mut self.temperature);
        let dt = ts.stable_dt();
        ts.step(&mut self.temperature, dt);
        drop(transport_span);

        // Diagnostics.
        let (tmin, tmax) = ts.min_max(&self.temperature);
        report.t_min = tmin;
        report.t_max = tmax;
        let flow = self.flow.as_ref().unwrap();
        let n = self.mesh.n_owned;
        let vmap = fem::op::DofMap::new(&self.mesh, self.comm, 3);
        let v2 = vmap.dot(&flow[..3 * n], &flow[..3 * n]);
        let nglob = self.comm.allreduce_sum(&[n as f64])[0];
        report.v_rms = (v2 / (3.0 * nglob)).sqrt();
        report.dt = dt;
        self.rec.add_count("steps", 1);
        self.rec.push_series("step.v_rms", report.v_rms);
        self.rec.push_series("step.dt", dt);
        self.time += dt;
        self.step_count += 1;
        report.time = self.time;
        report.n_elements = self.tree.global_count();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rheology::{ArrheniusLaw, ConstantLaw};
    use scomm::spmd;

    #[test]
    fn convection_cell_develops() {
        spmd::run(1, |c| {
            let params = ConvectionParams {
                rayleigh: 1e4,
                adapt_every: 0, // fixed mesh for this test
                stokes: StokesOptions {
                    tol: 1e-6,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut sim = ConvectionSim::new(c, 2, params);
            let law = ConstantLaw(1.0);
            let mut last = StepReport::default();
            for _ in 0..3 {
                last = sim.step(&law);
            }
            assert!(last.v_rms > 0.0, "buoyancy must drive flow");
            assert!(last.t_min > -0.05 && last.t_max < 1.05, "{last:?}");
            assert!(last.minres_iterations > 0);
        });
    }

    #[test]
    fn nusselt_number_is_conductive_at_rest() {
        spmd::run(1, |c| {
            let params = ConvectionParams {
                adapt_every: 0,
                ..Default::default()
            };
            let mut sim = ConvectionSim::new(c, 2, params);
            // Pure conductive profile: T = 1 − z ⇒ Nu = 1 exactly.
            for d in 0..sim.mesh.n_owned {
                sim.temperature[d] = 1.0 - sim.mesh.dof_coords(d)[2];
            }
            let nu = sim.nusselt_number();
            assert!((nu - 1.0).abs() < 1e-12, "Nu = {nu}");
            // A steeper boundary-layer profile transports more heat.
            for d in 0..sim.mesh.n_owned {
                let z = sim.mesh.dof_coords(d)[2];
                sim.temperature[d] = 1.0 - z.powf(4.0);
            }
            let nu_convective = sim.nusselt_number();
            assert!(nu_convective > 2.0, "Nu = {nu_convective}");
        });
    }

    #[test]
    fn adaptive_convection_keeps_element_target() {
        spmd::run(2, |c| {
            let params = ConvectionParams {
                rayleigh: 1e5,
                adapt_every: 2,
                adapt: AdaptParams {
                    target_elements: 600,
                    max_level: 4,
                    min_level: 1,
                    ..Default::default()
                },
                stokes: StokesOptions {
                    tol: 1e-5,
                    max_iter: 300,
                    ..Default::default()
                },
                picard_steps: 1,
                ..Default::default()
            };
            let mut sim = ConvectionSim::new(c, 2, params);
            let law = ArrheniusLaw::default();
            let mut adapted = false;
            for _ in 0..5 {
                let rep = sim.step(&law);
                if let Some(a) = &rep.adapt {
                    adapted = true;
                    assert!(a.elements_after > 0);
                }
                assert!(rep.t_max < 1.1 && rep.t_min > -0.1, "{rep:?}");
            }
            assert!(adapted, "adaptation must have run");
            assert!(sim.tree.validate());
            // Element count near the target.
            let n = sim.tree.global_count() as f64;
            assert!(
                (n - 600.0).abs() / 600.0 < 0.5,
                "element count {n} vs target 600"
            );
            // The compat timer view recovers both AMR and solver phases
            // from the recorder's span summary.
            let timers = sim.timers();
            assert!(timers.amr_total() > 0.0);
            assert!(timers.solve_total() > 0.0);
            // And the raw telemetry has the solver detail.
            let summary = sim.rec.summary();
            assert!(summary.counter("minres.iterations") > 0);
            assert!(summary.counter("amg.vcycles") > 0);
            assert_eq!(summary.counter("steps"), 5);
            let profile = sim.rec.profile();
            assert!(!profile.series["minres.residual"].is_empty());
        });
    }
}
