//! The dynamic adaptation pipeline of the paper's Fig. 4:
//!
//! ```text
//! MarkElements → CoarsenTree/RefineTree → BalanceTree → ExtractMesh
//!   → InterpolateFields → PartitionTree → TransferFields → ExtractMesh
//! ```
//!
//! Nodal fields ride across the repartition as element-attached corner
//! data (8 values per element per field), moved by the same
//! `TransferFields` plan as the elements themselves — exactly the
//! paper's arrangement, where field data follows the Morton order of the
//! elements.

use mesh::extract::{extract_mesh, node_coords, Mesh, NodeResolution};
use mesh::interp::interpolate_node_field_into;
use octree::mark::MarkParams;
use octree::parallel::{transfer_fields_into, DistOctree, PartitionPlan};
use octree::{balance::BalanceKind, ops::level_histogram};
use scomm::Comm;

/// Adaptation parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdaptParams {
    /// Global element-count target held by `MarkElements`.
    pub target_elements: u64,
    /// Relative tolerance around the target.
    pub tolerance: f64,
    pub max_level: u8,
    pub min_level: u8,
    /// Coarsening threshold as a fraction of the refinement threshold.
    pub coarsen_ratio: f64,
}

impl Default for AdaptParams {
    fn default() -> Self {
        AdaptParams {
            target_elements: 0,
            tolerance: 0.1,
            max_level: octree::MAX_LEVEL,
            min_level: 0,
            coarsen_ratio: 0.05,
        }
    }
}

/// Grow-only scratch for the adaptation pipeline, mirroring the MINRES
/// workspace discipline: every reusable intermediate buffer of the Fig. 4
/// stages lives here, so a warm adapt cycle grows no tracked buffer —
/// the `amr.alloc_bytes` telemetry counter proves it per cycle, exactly
/// as `minres.alloc_bytes` does per solve.
#[derive(Default)]
pub struct AdaptWorkspace {
    /// Repartition plan (send ranges reused across cycles).
    plan: PartitionPlan,
    /// Ghost-expanded old field.
    fl: Vec<f64>,
    /// Per-field interpolant on the intermediate (pre-partition) mesh.
    mid_fields: Vec<Vec<f64>>,
    /// Per-field element-corner packing (8 values per element).
    corner_data: Vec<Vec<f64>>,
    /// Per-field corner data after the transfer.
    moved: Vec<Vec<f64>>,
    /// Transfer count scratch.
    counts: Vec<usize>,
    recv_counts: Vec<usize>,
    /// Dof-coverage flags for the unpack.
    filled: Vec<bool>,
}

impl AdaptWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap capacity currently held by the workspace, in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        let mut b = cap(&self.plan.send_ranges) + cap(&self.fl) + cap(&self.filled);
        b += cap(&self.counts) + cap(&self.recv_counts);
        b += cap(&self.mid_fields) + cap(&self.corner_data) + cap(&self.moved);
        for v in self
            .mid_fields
            .iter()
            .chain(&self.corner_data)
            .chain(&self.moved)
        {
            b += cap(v);
        }
        b
    }
}

/// What one adaptation step did (feeds the paper's Fig. 5).
#[derive(Debug, Clone, Default)]
pub struct AdaptReport {
    pub refined: u64,
    pub coarsened_families: u64,
    pub balance_added: u64,
    pub unchanged: u64,
    pub elements_after: u64,
    /// Elements per octree level after adaptation (Fig. 5 right).
    pub level_histogram: Vec<u64>,
}

/// Per-element gradient error indicator `η_e = h ‖∇T‖` at the element
/// center — the refinement criterion driving `MarkElements`. (The paper
/// also supports adjoint-based indicators; the gradient indicator is the
/// standard feature-tracking choice for the transport-driven runs.)
pub fn gradient_indicator(mesh: &Mesh, comm: &Comm, t_owned: &[f64]) -> Vec<f64> {
    let map = fem::op::DofMap::new(mesh, comm, 1);
    let tl = map.to_local(t_owned);
    let mut te = [0.0; 8];
    let mut out = Vec::with_capacity(mesh.elements.len());
    for e in 0..mesh.elements.len() {
        let h = mesh.element_size(e);
        map.gather_element(e, &tl, &mut te);
        let mut grad = [0.0f64; 3];
        for c in 0..8 {
            let g = fem::element::shape_grad(c, 0.5, 0.5, 0.5);
            grad[0] += te[c] * g[0] / h[0];
            grad[1] += te[c] * g[1] / h[1];
            grad[2] += te[c] * g[2] / h[2];
        }
        let gn = (grad[0] * grad[0] + grad[1] * grad[1] + grad[2] * grad[2]).sqrt();
        let hmax = h[0].max(h[1]).max(h[2]);
        out.push(hmax * gn);
    }
    out
}

/// Run the full Fig. 4 pipeline: adapt the octree toward the target
/// element count using `indicators`, rebalance, transfer the given nodal
/// `fields`, repartition, and extract the new mesh. Returns the new mesh,
/// the transferred fields, and the adaptation report. Collective.
///
/// Every pipeline stage is recorded as an `amr`-category span named after
/// the paper's phase (`MarkElements`, `BalanceTree`, …) under one `AMR`
/// umbrella span; [`crate::timers::PhaseTimers::from_summary`] recovers
/// the classic per-phase seconds from the recorder's summary.
pub fn adapt_mesh(
    tree: &mut DistOctree,
    old_mesh: &Mesh,
    fields: &[Vec<f64>],
    indicators: &[f64],
    params: &AdaptParams,
    rec: &obs::Recorder,
) -> (Mesh, Vec<Vec<f64>>, AdaptReport) {
    let mut ws = AdaptWorkspace::new();
    adapt_mesh_ws(tree, old_mesh, fields, indicators, params, rec, &mut ws)
}

/// [`adapt_mesh`] with a caller-held workspace: warm cycles reuse every
/// intermediate buffer, and the recorder gains the per-cycle counters
/// `amr.alloc_bytes` (tracked-capacity growth of tree + workspace, 0 at
/// steady state), `amr.p2p_msgs` (point-to-point messages in the cycle)
/// and `amr.ripple_rounds` (balance communication rounds).
pub fn adapt_mesh_ws(
    tree: &mut DistOctree,
    old_mesh: &Mesh,
    fields: &[Vec<f64>],
    indicators: &[f64],
    params: &AdaptParams,
    rec: &obs::Recorder,
    ws: &mut AdaptWorkspace,
) -> (Mesh, Vec<Vec<f64>>, AdaptReport) {
    let _amr = rec.span_cat("AMR", "amr");
    let comm = tree.comm();
    let domain = old_mesh.domain;
    let n_before = tree.global_count();
    let stats0 = comm.stats();
    let cap0 = tree.alloc_bytes() + ws.capacity_bytes();

    // MarkElements + Coarsen/Refine.
    let mark_params = MarkParams {
        target_elements: params.target_elements,
        tolerance: params.tolerance,
        max_level: params.max_level,
        min_level: params.min_level,
        coarsen_ratio: params.coarsen_ratio,
        ..Default::default()
    };
    let t_mark = rec.now_ns();
    let (refined, coarsened) = tree.adapt_to_target(indicators, &mark_params);
    let total_ns = rec.now_ns().saturating_sub(t_mark);
    // Attribute proportionally: marking is collective-heavy; refine and
    // coarsen are the local splice passes. The three synthetic spans tile
    // the measured interval sequentially on the trace timeline.
    let mark_ns = (0.6 * total_ns as f64) as u64;
    let refine_ns = (0.2 * total_ns as f64) as u64;
    let coarsen_ns = total_ns - mark_ns - refine_ns;
    rec.add_span_external("MarkElements", "amr", t_mark, mark_ns);
    rec.add_span_external("RefineTree", "amr", t_mark + mark_ns, refine_ns);
    rec.add_span_external(
        "CoarsenTree",
        "amr",
        t_mark + mark_ns + refine_ns,
        coarsen_ns,
    );

    let n_adapted = tree.global_count();

    // BalanceTree.
    let balance_added = rec.with_cat("BalanceTree", "amr", || tree.balance(BalanceKind::Full));

    // Stage guard: the tree invariants (order, partition, 2:1) must hold
    // before anything downstream consumes the adapted tree.
    #[cfg(debug_assertions)]
    if scomm::checks_enabled() {
        check::guard_tree(tree, BalanceKind::Full, Some(rec));
    }

    // Intermediate ExtractMesh (pre-partition) for interpolation.
    let mid_mesh = rec.with_cat("ExtractMesh", "amr", || extract_mesh(tree, domain));

    let nf = fields.len();
    let AdaptWorkspace {
        plan,
        fl,
        mid_fields,
        corner_data,
        moved,
        counts,
        recv_counts,
        filled,
    } = ws;
    if mid_fields.len() < nf {
        mid_fields.resize_with(nf, Vec::new);
        corner_data.resize_with(nf, Vec::new);
        moved.resize_with(nf, Vec::new);
    }

    // InterpolateFields onto the intermediate mesh, then pack as
    // element-corner data (8 values per element) for the transfer.
    {
        let _s = rec.span_cat("InterpolateFields", "amr");
        for (i, f) in fields.iter().enumerate() {
            // Expand old field with ghosts for constrained evaluation.
            fl.clear();
            fl.resize(old_mesh.n_local(), 0.0);
            fl[..old_mesh.n_owned].copy_from_slice(f);
            old_mesh.exchange.exchange(comm, fl, old_mesh.n_owned);
            interpolate_node_field_into(old_mesh, fl, &mid_mesh, &mut mid_fields[i]);
            mid_mesh
                .exchange
                .exchange(comm, &mut mid_fields[i], mid_mesh.n_owned);
            let data = &mut corner_data[i];
            data.clear();
            for e in 0..mid_mesh.elements.len() {
                data.extend_from_slice(&mid_mesh.corner_values(e, &mid_fields[i]));
            }
        }
    }

    // PartitionTree.
    rec.with_cat("PartitionTree", "amr", || tree.partition_with(plan));

    // TransferFields: move the corner data with the elements.
    {
        let _s = rec.span_cat("TransferFields", "amr");
        for i in 0..nf {
            transfer_fields_into(
                comm,
                plan,
                &corner_data[i],
                8,
                counts,
                recv_counts,
                &mut moved[i],
            );
        }
    }

    // Final ExtractMesh on the new partition.
    let new_mesh = rec.with_cat("ExtractMesh", "amr", || extract_mesh(tree, domain));

    // Stage guard: repartitioned tree + extracted mesh (ghost symmetry,
    // hanging-node constraints, dof numbering) before fields land on it.
    #[cfg(debug_assertions)]
    if scomm::checks_enabled() {
        check::guard_tree(tree, BalanceKind::Full, Some(rec));
        check::guard_mesh(tree, &new_mesh, Some(rec));
    }

    // Unpack: every owned dof appears as the corner of some local
    // element; take its value from the first match.
    let new_fields: Vec<Vec<f64>> = {
        let _s = rec.span_cat("TransferFields", "amr");
        moved[..nf]
            .iter()
            .map(|data| {
                let mut f = vec![0.0; new_mesh.n_owned];
                filled.clear();
                filled.resize(new_mesh.n_owned, false);
                for e in 0..new_mesh.elements.len() {
                    let o = &new_mesh.elements[e];
                    let l = o.len();
                    for (c, &nref) in new_mesh.elem_nodes[e].iter().enumerate() {
                        if let NodeResolution::Dof(d) = new_mesh.node_table[nref as usize] {
                            if d < new_mesh.n_owned && !filled[d] {
                                // Corner position check is implicit: the
                                // node ref *is* this corner.
                                let _ = (l, node_coords(new_mesh.node_keys[nref as usize]));
                                f[d] = data[8 * e + c];
                                filled[d] = true;
                            }
                        }
                    }
                }
                debug_assert!(filled.iter().all(|&x| x), "every owned dof covered");
                f
            })
            .collect()
    };

    let elements_after = tree.global_count();
    let report = AdaptReport {
        refined: comm.allreduce_sum(&[refined as u64])[0],
        coarsened_families: comm.allreduce_sum(&[coarsened as u64])[0],
        balance_added,
        unchanged: n_before
            .saturating_sub(comm.allreduce_sum(&[refined as u64])[0])
            .saturating_sub(8 * comm.allreduce_sum(&[coarsened as u64])[0]),
        elements_after,
        level_histogram: {
            let local = level_histogram(&tree.local);
            comm.allreduce_sum(&local)
        },
    };
    rec.instant(
        "adapt",
        obs::Value::object([
            ("refined", obs::Value::from(report.refined)),
            (
                "coarsened_families",
                obs::Value::from(report.coarsened_families),
            ),
            ("balance_added", obs::Value::from(report.balance_added)),
            ("elements_after", obs::Value::from(report.elements_after)),
        ]),
    );

    // Cycle telemetry, mirroring the `minres.*` counter contract: tracked
    // buffer growth (0 once warm), point-to-point traffic, and the number
    // of 2:1-balance communication rounds.
    let stats1 = comm.stats();
    let cap1 = tree.alloc_bytes() + ws.capacity_bytes();
    rec.add_count("amr.alloc_bytes", cap1.saturating_sub(cap0));
    rec.add_count("amr.p2p_msgs", stats1.p2p_messages - stats0.p2p_messages);
    rec.add_count("amr.ripple_rounds", tree.last_balance_rounds());

    let _ = n_adapted;
    (new_mesh, new_fields, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scomm::spmd;

    #[test]
    fn adapt_preserves_linear_field() {
        spmd::run(3, |c| {
            let mut tree = DistOctree::new_uniform(c, 3);
            let mesh = extract_mesh(&tree, [2.0, 1.0, 1.0]);
            let f = |p: [f64; 3]| 1.5 * p[0] - 0.5 * p[1] + p[2];
            let t: Vec<f64> = (0..mesh.n_owned).map(|d| f(mesh.dof_coords(d))).collect();
            // Indicator peaked near a corner drives real refinement and
            // coarsening while MarkElements holds the total.
            let ind: Vec<f64> = mesh
                .elements
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    (-(ctr[0] * ctr[0] + ctr[1] * ctr[1]) * 30.0).exp()
                })
                .collect();
            let params = AdaptParams {
                target_elements: 700,
                ..Default::default()
            };
            let rec = obs::Recorder::new(c.rank());
            let (new_mesh, new_fields, report) =
                adapt_mesh(&mut tree, &mesh, &[t], &ind, &params, &rec);
            assert!(tree.validate());
            assert!(report.refined > 0, "{report:?}");
            assert!(report.elements_after > 0);
            // Linear fields survive interpolation + transfer exactly.
            for d in 0..new_mesh.n_owned {
                let expect = f(new_mesh.dof_coords(d));
                assert!(
                    (new_fields[0][d] - expect).abs() < 1e-10,
                    "dof {d}: {} vs {expect}",
                    new_fields[0][d]
                );
            }
            // The recorder captured every pipeline phase, and the compat
            // view recovers paper-style totals from it.
            let summary = rec.summary();
            for phase in [
                "MarkElements",
                "BalanceTree",
                "PartitionTree",
                "TransferFields",
            ] {
                assert!(summary.phases.contains_key(phase), "{phase} missing");
            }
            assert_eq!(
                summary.phases["ExtractMesh"].count, 2,
                "pre- and post-partition"
            );
            let timers = crate::timers::PhaseTimers::from_summary(&summary);
            assert!(timers.amr_total() > 0.0);
        });
    }

    /// The zero-allocation proof for the adapt hot path: after warm-up,
    /// every cycle must report `amr.alloc_bytes == 0`, and the other two
    /// `amr.*` counters must be present and sane.
    #[test]
    fn warm_adapt_cycle_records_zero_alloc() {
        spmd::run(4, |c| {
            let mut tree = DistOctree::new_uniform(c, 2);
            let mut mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            let f = |p: [f64; 3]| 0.5 * p[0] + p[1] - p[2];
            let mut fields = vec![(0..mesh.n_owned)
                .map(|d| f(mesh.dof_coords(d)))
                .collect::<Vec<f64>>()];
            let params = AdaptParams {
                target_elements: 300,
                ..Default::default()
            };
            let mut ws = AdaptWorkspace::new();
            for cycle in 0..7 {
                // Geometry-driven indicator: the cycle map is deterministic
                // and reaches a periodic orbit during warm-up.
                let ind: Vec<f64> = mesh
                    .elements
                    .iter()
                    .map(|o| {
                        let ctr = o.center_unit();
                        (-(ctr[0] * ctr[0] + ctr[1] * ctr[1]) * 30.0).exp()
                    })
                    .collect();
                let rec = obs::Recorder::new(c.rank());
                let (nm, nf, _) =
                    adapt_mesh_ws(&mut tree, &mesh, &fields, &ind, &params, &rec, &mut ws);
                mesh = nm;
                fields = nf;
                let counters = &rec.summary().counters;
                assert!(counters["amr.p2p_msgs"] > 0, "no traffic recorded");
                assert!(counters["amr.ripple_rounds"] >= 1);
                if cycle >= 3 {
                    assert_eq!(
                        counters["amr.alloc_bytes"],
                        0,
                        "warm cycle {cycle} allocated on rank {}",
                        c.rank()
                    );
                }
            }
            // The field is linear, so it must still be exact after 7 cycles.
            for d in 0..mesh.n_owned {
                let expect = f(mesh.dof_coords(d));
                assert!((fields[0][d] - expect).abs() < 1e-10);
            }
        });
    }

    #[test]
    fn histogram_matches_global_count() {
        spmd::run(2, |c| {
            let mut tree = DistOctree::new_uniform(c, 2);
            let mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            let t = vec![0.0; mesh.n_owned];
            let ind: Vec<f64> = mesh.elements.iter().map(|o| o.center_unit()[0]).collect();
            let params = AdaptParams {
                target_elements: 150,
                ..Default::default()
            };
            let rec = obs::Recorder::new(c.rank());
            let (_, _, report) = adapt_mesh(&mut tree, &mesh, &[t], &ind, &params, &rec);
            let total: u64 = report.level_histogram.iter().sum();
            assert_eq!(total, report.elements_after);
        });
    }

    #[test]
    fn gradient_indicator_tracks_fronts() {
        spmd::run(1, |c| {
            let tree = DistOctree::new_uniform(c, 3);
            let mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            // Sharp front at x = 0.5.
            let t: Vec<f64> = (0..mesh.n_owned)
                .map(|d| {
                    let x = mesh.dof_coords(d)[0];
                    ((x - 0.5) * 40.0).tanh()
                })
                .collect();
            let ind = gradient_indicator(&mesh, c, &t);
            // The max indicator must sit in elements near the front.
            let (mut best_e, mut best) = (0, 0.0);
            for (e, &v) in ind.iter().enumerate() {
                if v > best {
                    best = v;
                    best_e = e;
                }
            }
            let ctr = mesh.elements[best_e].center_unit();
            assert!((ctr[0] - 0.5).abs() < 0.15, "front missed: x = {}", ctr[0]);
            // Far-field indicators are tiny.
            for (e, &v) in ind.iter().enumerate() {
                let x = mesh.elements[e].center_unit()[0];
                if (x - 0.5).abs() > 0.4 {
                    assert!(v < 0.05 * best, "element at x={x} has indicator {v}");
                }
            }
        });
    }
}
