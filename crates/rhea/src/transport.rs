//! The energy equation (paper eq. (3)): SUPG-stabilized
//! advection–diffusion of temperature with an explicit
//! predictor–corrector time integrator (paper references [8], [9]).
//!
//! Semi-discrete SUPG form, per element with streamline parameter τ:
//!
//! ```text
//! (M_L + S_m) Ṫ = −(A + K + S_a) T + b(γ)
//! ```
//!
//! with `A` the Galerkin advection, `K` the diffusion, `S_m/S_a` the SUPG
//! mass/streamline-diffusion couplings and `b` the (SUPG-weighted) heat
//! source. The rate is evaluated with a two-pass predictor–corrector on
//! the SUPG mass (lumped-mass solve, then one consistency correction) and
//! advanced with Heun's method under a CFL-limited step.

use fem::element::{advection_matrix, lumped_mass, mass_matrix, stiffness_matrix, supg_matrices};
use fem::op::DofMap;
use mesh::extract::Mesh;
use scomm::Comm;

/// Transport parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransportParams {
    /// Thermal diffusivity κ (non-dimensional; 1/√Ra-scaled problems use
    /// κ = 1 with Ra in the buoyancy term).
    pub kappa: f64,
    /// Internal heat generation γ.
    pub source: f64,
    /// CFL number for the explicit step.
    pub cfl: f64,
}

impl Default for TransportParams {
    fn default() -> Self {
        TransportParams {
            kappa: 1e-6,
            source: 0.0,
            cfl: 0.5,
        }
    }
}

/// SUPG transport solver bound to a mesh and a per-element velocity.
pub struct TransportSolver<'a> {
    pub mesh: &'a Mesh,
    pub comm: &'a Comm,
    pub params: TransportParams,
    map: DofMap<'a>,
    /// Per-element advection velocity (constant per element).
    pub velocity: Vec<[f64; 3]>,
    /// Dirichlet mask and values over owned dofs.
    pub bc_mask: Vec<bool>,
    pub bc_values: Vec<f64>,
    /// Assembled global lumped mass over local dofs (constraint-folded).
    lumped: Vec<f64>,
}

impl<'a> TransportSolver<'a> {
    /// Create a solver with zero velocity and no Dirichlet constraints.
    pub fn new(mesh: &'a Mesh, comm: &'a Comm, params: TransportParams) -> Self {
        let map = DofMap::new(mesh, comm, 1);
        let mut solver = TransportSolver {
            mesh,
            comm,
            params,
            map,
            velocity: vec![[0.0; 3]; mesh.elements.len()],
            bc_mask: vec![false; mesh.n_owned],
            bc_values: vec![0.0; mesh.n_owned],
            lumped: Vec::new(),
        };
        solver.assemble_lumped_mass();
        solver
    }

    fn assemble_lumped_mass(&mut self) {
        let mut ml = vec![0.0; self.map.n_local()];
        for e in 0..self.mesh.elements.len() {
            let lm = lumped_mass(self.mesh.element_size(e));
            self.map.scatter_element(e, &lm, &mut ml);
        }
        self.map.reverse_accumulate(&mut ml);
        // Owned entries are now complete; ghosts zeroed by accumulate.
        self.lumped = ml;
    }

    /// Set the advection velocity from a nodal (owned, 3-component)
    /// velocity vector: element velocity = average of corner velocities.
    pub fn set_velocity_from_nodal(&mut self, u_owned: &[f64]) {
        let vmap = DofMap::new(self.mesh, self.comm, 3);
        let ul = vmap.to_local(u_owned);
        let mut ue = [0.0; 24];
        for e in 0..self.mesh.elements.len() {
            vmap.gather_element(e, &ul, &mut ue);
            let mut a = [0.0; 3];
            for c in 0..8 {
                for d in 0..3 {
                    a[d] += ue[3 * c + d] / 8.0;
                }
            }
            self.velocity[e] = a;
        }
    }

    /// Set the velocity analytically at element centers.
    pub fn set_velocity_fn(&mut self, f: impl Fn([f64; 3]) -> [f64; 3]) {
        for e in 0..self.mesh.elements.len() {
            let c = self.mesh.elements[e].center_unit();
            let p = [
                c[0] * self.mesh.domain[0],
                c[1] * self.mesh.domain[1],
                c[2] * self.mesh.domain[2],
            ];
            self.velocity[e] = f(p);
        }
    }

    /// Impose Dirichlet data where `faces_mask` matches a dof's boundary
    /// faces (bit `f` = face `f` as in `Mesh::dof_boundary_faces`), with
    /// values from `g`.
    pub fn set_dirichlet(&mut self, faces_mask: u8, g: impl Fn([f64; 3]) -> f64) {
        for d in 0..self.mesh.n_owned {
            if self.mesh.dof_boundary_faces(d) & faces_mask != 0 {
                self.bc_mask[d] = true;
                self.bc_values[d] = g(self.mesh.dof_coords(d));
            }
        }
    }

    /// Apply the Dirichlet values directly to a temperature vector.
    pub fn apply_bc(&self, t: &mut [f64]) {
        for d in 0..self.mesh.n_owned {
            if self.bc_mask[d] {
                t[d] = self.bc_values[d];
            }
        }
    }

    /// Globally CFL-limited time step for the current velocity field
    /// (advective and diffusive limits). Collective.
    pub fn stable_dt(&self) -> f64 {
        let mut local = f64::INFINITY;
        for e in 0..self.mesh.elements.len() {
            let h = self.mesh.element_size(e);
            let a = self.velocity[e];
            for d in 0..3 {
                if a[d].abs() > 1e-300 {
                    local = local.min(h[d] / a[d].abs());
                }
                if self.params.kappa > 0.0 {
                    local = local.min(h[d] * h[d] / (6.0 * self.params.kappa));
                }
            }
        }
        let global = self.comm.allreduce_min(&[local])[0];
        self.params.cfl * global
    }

    /// Evaluate the SUPG right-hand side `r(T) = −(A+K+S_a)T + b` over
    /// local dofs (accumulated to owners), optionally subtracting the
    /// SUPG mass coupling of a previous rate (`S_m v`).
    fn weak_rate(&self, t_local: &[f64], v_prev_local: Option<&[f64]>) -> Vec<f64> {
        let mut r = vec![0.0; self.map.n_local()];
        let mut te = [0.0; 8];
        let mut ve = [0.0; 8];
        let mut re = [0.0; 8];
        let kappa = self.params.kappa;
        for e in 0..self.mesh.elements.len() {
            let h = self.mesh.element_size(e);
            let a = self.velocity[e];
            let adv = advection_matrix(h, a);
            let dif = stiffness_matrix(h, kappa);
            let (sm, sa) = supg_matrices(h, a, kappa);
            self.map.gather_element(e, t_local, &mut te);
            if let Some(vp) = v_prev_local {
                self.map.gather_element(e, vp, &mut ve);
            }
            let mm = mass_matrix(h);
            for i in 0..8 {
                let mut acc = 0.0;
                for j in 0..8 {
                    acc -= (adv[i][j] + dif[i][j] + sa[i][j]) * te[j];
                    if v_prev_local.is_some() {
                        acc -= sm[i][j] * ve[j];
                    }
                }
                // Source: γ ∫ (N_i + τ a·∇N_i).
                if self.params.source != 0.0 {
                    let mi: f64 = mm[i].iter().sum();
                    // Row sum of S_m equals τ ∫ (a·∇N_i) (Σ_j N_j = 1).
                    let si: f64 = sm[i].iter().sum();
                    acc += self.params.source * (mi + si);
                }
                re[i] = acc;
            }
            self.map.scatter_element(e, &re, &mut r);
        }
        let mut racc = r;
        self.map.reverse_accumulate(&mut racc);
        racc
    }

    /// Temperature rate `Ṫ` on owned dofs, via lumped-mass solve with one
    /// SUPG-mass corrector pass (the "predictor–corrector" of the paper's
    /// reference [9]).
    pub fn rate(&self, t_owned: &[f64]) -> Vec<f64> {
        let tl = self.map.to_local(t_owned);
        // Predictor.
        let r0 = self.weak_rate(&tl, None);
        let mut v0 = vec![0.0; self.mesh.n_owned];
        for d in 0..self.mesh.n_owned {
            v0[d] = r0[d] / self.lumped[d];
        }
        for (d, &m) in self.bc_mask.iter().enumerate() {
            if m {
                v0[d] = 0.0;
            }
        }
        // Corrector: v₁ = M_L⁻¹ (r(T) − S_m v₀).
        let v0l = self.map.to_local(&v0);
        let r1 = self.weak_rate(&tl, Some(&v0l));
        let mut v1 = vec![0.0; self.mesh.n_owned];
        for d in 0..self.mesh.n_owned {
            v1[d] = r1[d] / self.lumped[d];
        }
        for (d, &m) in self.bc_mask.iter().enumerate() {
            if m {
                v1[d] = 0.0;
            }
        }
        v1
    }

    /// Advance `t` by `dt` with Heun's method (RK2). Collective.
    pub fn step(&self, t: &mut [f64], dt: f64) {
        let k1 = self.rate(t);
        let mut t1 = t.to_vec();
        for d in 0..t.len() {
            t1[d] += dt * k1[d];
        }
        self.apply_bc(&mut t1);
        let k2 = self.rate(&t1);
        for d in 0..t.len() {
            t[d] += 0.5 * dt * (k1[d] + k2[d]);
        }
        self.apply_bc(t);
    }

    /// Global extrema of an owned field (diagnostics / oscillation
    /// checks). Collective.
    pub fn min_max(&self, t: &[f64]) -> (f64, f64) {
        let lmin = t.iter().cloned().fold(f64::INFINITY, f64::min);
        let lmax = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (
            self.comm.allreduce_min(&[lmin])[0],
            self.comm.allreduce_max(&[lmax])[0],
        )
    }

    /// Global L² norm weighted by the lumped mass (≈ ∫T² ).
    pub fn mass_weighted_norm(&self, t: &[f64]) -> f64 {
        let local: f64 = (0..self.mesh.n_owned)
            .map(|d| self.lumped[d] * t[d] * t[d])
            .sum();
        self.comm.allreduce_sum(&[local])[0].sqrt()
    }

    /// Integral ∫ T dΩ (tracks conservation under pure advection).
    pub fn total_mass(&self, t: &[f64]) -> f64 {
        let local: f64 = (0..self.mesh.n_owned).map(|d| self.lumped[d] * t[d]).sum();
        self.comm.allreduce_sum(&[local])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::extract::extract_mesh;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    #[test]
    fn pure_diffusion_decays_at_analytic_rate() {
        spmd::run(1, |c| {
            let t = DistOctree::new_uniform(c, 3);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let params = TransportParams {
                kappa: 1.0,
                source: 0.0,
                cfl: 0.25,
            };
            let mut ts = TransportSolver::new(&m, c, params);
            ts.set_dirichlet(0b111111, |_| 0.0);
            let pi = std::f64::consts::PI;
            let mode = |p: [f64; 3]| (pi * p[0]).sin() * (pi * p[1]).sin() * (pi * p[2]).sin();
            let mut temp: Vec<f64> = (0..m.n_owned).map(|d| mode(m.dof_coords(d))).collect();
            ts.apply_bc(&mut temp);
            let n0 = ts.mass_weighted_norm(&temp);
            let dt = ts.stable_dt();
            let nsteps = 20;
            for _ in 0..nsteps {
                ts.step(&mut temp, dt);
            }
            let n1 = ts.mass_weighted_norm(&temp);
            let decay = (n0 / n1).ln() / (nsteps as f64 * dt);
            let exact = 3.0 * pi * pi;
            assert!(
                (decay - exact).abs() / exact < 0.1,
                "decay rate {decay} vs {exact}"
            );
        });
    }

    #[test]
    fn pure_advection_translates_front() {
        spmd::run(2, |c| {
            let t = DistOctree::new_uniform(c, 4);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            // Nearly hyperbolic: tiny κ so SUPG carries stabilization.
            let params = TransportParams {
                kappa: 1e-9,
                source: 0.0,
                cfl: 0.4,
            };
            let mut ts = TransportSolver::new(&m, c, params);
            ts.set_velocity_fn(|_| [1.0, 0.0, 0.0]);
            ts.set_dirichlet(0b000001, |_| 0.0); // inflow face x=0
            let gauss = |p: [f64; 3], x0: f64| {
                let r2 = (p[0] - x0).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2);
                (-r2 / 0.01).exp()
            };
            let mut temp: Vec<f64> = (0..m.n_owned)
                .map(|d| gauss(m.dof_coords(d), 0.25))
                .collect();
            let dt = ts.stable_dt();
            let t_final = 0.3;
            let nsteps = (t_final / dt).ceil() as usize;
            let dt = t_final / nsteps as f64;
            for _ in 0..nsteps {
                ts.step(&mut temp, dt);
            }
            // The peak must now sit near x = 0.55.
            let mut best = (0.0f64, [0.0; 3]);
            for d in 0..m.n_owned {
                if temp[d] > best.0 {
                    best = (temp[d], m.dof_coords(d));
                }
            }
            // Gather global argmax.
            let vals = c.allgatherv(&[best.0, best.1[0]]);
            let (mut gv, mut gx) = (0.0, 0.0);
            for pair in vals.chunks(2) {
                if pair[0] > gv {
                    gv = pair[0];
                    gx = pair[1];
                }
            }
            assert!((gx - 0.55).abs() < 0.1, "peak at x = {gx}");
            // SUPG keeps the solution essentially monotone.
            let (mn, mx) = ts.min_max(&temp);
            assert!(mn > -0.1, "undershoot {mn}");
            assert!(mx < 1.1, "overshoot {mx}");
            assert!(gv > 0.4, "peak amplitude retained: {gv}");
        });
    }

    #[test]
    fn source_term_heats_uniformly() {
        spmd::run(1, |c| {
            let t = DistOctree::new_uniform(c, 2);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let params = TransportParams {
                kappa: 0.0,
                source: 2.0,
                cfl: 0.5,
            };
            let ts = TransportSolver::new(&m, c, params);
            let mut temp = vec![0.0; m.n_owned];
            // With κ = 0 and u = 0, Ṫ = γ exactly.
            let dt = 0.01;
            ts.step(&mut temp, dt);
            for d in 0..m.n_owned {
                assert!((temp[d] - 2.0 * dt).abs() < 1e-12, "dof {d}: {}", temp[d]);
            }
        });
    }

    #[test]
    fn parallel_matches_serial_transport() {
        let run = |nranks: usize| -> Vec<(u64, f64)> {
            spmd::run(nranks, |c| {
                let t = DistOctree::new_uniform(c, 3);
                let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let params = TransportParams {
                    kappa: 1e-4,
                    source: 0.0,
                    cfl: 0.3,
                };
                let mut ts = TransportSolver::new(&m, c, params);
                ts.set_velocity_fn(|p| [0.5 - p[1], p[0] - 0.5, 0.0]); // rotation
                let mut temp: Vec<f64> = (0..m.n_owned)
                    .map(|d| {
                        let p = m.dof_coords(d);
                        (-((p[0] - 0.7).powi(2) + (p[1] - 0.5).powi(2)) / 0.02).exp()
                    })
                    .collect();
                for _ in 0..5 {
                    let dt = 0.01;
                    ts.step(&mut temp, dt);
                }
                // Return (gid, value) pairs for comparison.
                (0..m.n_owned)
                    .map(|d| (m.global_offset + d as u64, temp[d]))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let mut serial = run(1);
        let mut par = run(3);
        serial.sort_by_key(|p| p.0);
        par.sort_by_key(|p| p.0);
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            // gids may be numbered differently across rank counts; compare
            // multisets of values instead if ids mismatch.
            let _ = s.0 == p.0;
        }
        let mut sv: Vec<f64> = serial.iter().map(|p| p.1).collect();
        let mut pv: Vec<f64> = par.iter().map(|p| p.1).collect();
        sv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in sv.iter().zip(&pv) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
