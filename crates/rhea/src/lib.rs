//! # rhea — adaptive mantle convection (the paper's application code)
//!
//! RHEA couples the Boussinesq mantle equations (paper eqs. (1)–(3)):
//! an explicitly-integrated SUPG-stabilized advection–diffusion equation
//! for temperature, a variable-viscosity Stokes solve for the flow, and
//! the full dynamic-AMR pipeline of Fig. 4 — coarsen/refine → 2:1
//! balance → extract → interpolate fields → partition → transfer fields —
//! with per-phase timing instrumentation that regenerates the paper's
//! Figs. 5, 7, 8 and 10.
//!
//! Modules:
//!
//! * [`timers`] — named phase timers matching the paper's breakdowns;
//! * [`rheology`] — the Section VI three-layer temperature-dependent
//!   viscosity with plastic yielding;
//! * [`transport`] — predictor–corrector SUPG transport (eq. (3));
//! * [`adapt`] — the Fig. 4 adaptation pipeline including nodal field
//!   transfer across repartitioning;
//! * [`convection`] — the full convection simulation loop.

pub mod adapt;
pub mod convection;
pub mod rheology;
pub mod timers;
pub mod transport;

pub use adapt::{adapt_mesh, adapt_mesh_ws, AdaptParams, AdaptReport, AdaptWorkspace};
pub use convection::{ConvectionParams, ConvectionSim, StepReport};
pub use rheology::{ViscosityLaw, YieldingLaw};
pub use timers::{Phase, PhaseTimers};
pub use transport::{TransportParams, TransportSolver};
