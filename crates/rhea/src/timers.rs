//! Named phase timers matching the paper's runtime breakdowns
//! (Figs. 7, 8, 10).

use std::time::Instant;

/// The phases the paper reports.
///
/// Discriminants are the positions in [`Phase::ALL`] (the paper's
/// Fig. 7/8 legend order); [`Phase::index`] relies on that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    NewTree,
    CoarsenTree,
    RefineTree,
    BalanceTree,
    PartitionTree,
    ExtractMesh,
    InterpolateFields,
    TransferFields,
    MarkElements,
    TimeIntegration,
    Minres,
    AmgSetup,
    AmgSolve,
}

impl Phase {
    /// All phases, in the paper's Fig. 7/8 legend order.
    pub const ALL: [Phase; 13] = [
        Phase::NewTree,
        Phase::CoarsenTree,
        Phase::RefineTree,
        Phase::BalanceTree,
        Phase::PartitionTree,
        Phase::ExtractMesh,
        Phase::InterpolateFields,
        Phase::TransferFields,
        Phase::MarkElements,
        Phase::TimeIntegration,
        Phase::Minres,
        Phase::AmgSetup,
        Phase::AmgSolve,
    ];

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::NewTree => "NewTree",
            Phase::CoarsenTree => "CoarsenTree",
            Phase::RefineTree => "RefineTree",
            Phase::BalanceTree => "BalanceTree",
            Phase::PartitionTree => "PartitionTree",
            Phase::ExtractMesh => "ExtractMesh",
            Phase::InterpolateFields => "InterpolateFields",
            Phase::TransferFields => "TransferFields",
            Phase::MarkElements => "MarkElements",
            Phase::TimeIntegration => "TimeIntegration",
            Phase::Minres => "MINRES",
            Phase::AmgSetup => "AMGSetup",
            Phase::AmgSolve => "AMGSolve",
        }
    }

    /// Is this one of the AMR phases (vs. numerical PDE phases)?
    pub fn is_amr(&self) -> bool {
        !matches!(
            self,
            Phase::TimeIntegration | Phase::Minres | Phase::AmgSetup | Phase::AmgSolve
        )
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// Accumulated wall-clock per phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimers {
    seconds: [f64; 13],
}

impl PhaseTimers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compatibility view of an [`obs::Summary`]: the paper's thirteen
    /// phases read from span inclusive times, so code (and figures)
    /// written against `PhaseTimers` keeps working on top of the tracing
    /// subsystem.
    ///
    /// One phase is derived rather than read directly: the `MINRES` span
    /// wraps the `AMGSolve` (V-cycle) spans it triggers, while the paper's
    /// breakdown reports MINRES *excluding* V-cycle time — so
    /// `Phase::Minres = incl(MINRES) − incl(AMGSolve)`.
    pub fn from_summary(s: &obs::Summary) -> Self {
        let mut t = PhaseTimers::new();
        for p in Phase::ALL {
            let secs = match p {
                Phase::Minres => (s.incl_seconds(Phase::Minres.label())
                    - s.incl_seconds(Phase::AmgSolve.label()))
                .max(0.0),
                _ => s.incl_seconds(p.label()),
            };
            t.add(p, secs);
        }
        t
    }

    /// Time a closure under a phase.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.seconds[phase.index()] += t0.elapsed().as_secs_f64();
        r
    }

    /// Add externally measured seconds.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        self.seconds[phase.index()] += seconds;
    }

    /// Accumulated seconds of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        self.seconds[phase.index()]
    }

    /// Total across all phases.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Total of the AMR phases only (the paper's "AMR time").
    pub fn amr_total(&self) -> f64 {
        Phase::ALL
            .iter()
            .filter(|p| p.is_amr())
            .map(|p| self.get(*p))
            .sum()
    }

    /// Total of the PDE phases (the paper's "solve time").
    pub fn solve_total(&self) -> f64 {
        self.total() - self.amr_total()
    }

    /// Merge another timer set.
    pub fn merge(&mut self, other: &PhaseTimers) {
        for i in 0..self.seconds.len() {
            self.seconds[i] += other.seconds[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate() {
        let mut t = PhaseTimers::new();
        let x = t.time(Phase::BalanceTree, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(x, 42);
        assert!(t.get(Phase::BalanceTree) >= 0.004);
        t.add(Phase::Minres, 1.5);
        assert_eq!(t.get(Phase::Minres), 1.5);
        assert!(t.total() > 1.5);
    }

    #[test]
    fn amr_vs_solve_split() {
        let mut t = PhaseTimers::new();
        t.add(Phase::BalanceTree, 1.0);
        t.add(Phase::ExtractMesh, 2.0);
        t.add(Phase::Minres, 10.0);
        t.add(Phase::TimeIntegration, 5.0);
        assert_eq!(t.amr_total(), 3.0);
        assert_eq!(t.solve_total(), 15.0);
        let mut u = PhaseTimers::new();
        u.add(Phase::BalanceTree, 0.5);
        t.merge(&u);
        assert_eq!(t.get(Phase::BalanceTree), 1.5);
    }

    #[test]
    fn labels_cover_all_phases() {
        for p in Phase::ALL {
            assert!(!p.label().is_empty());
        }
        let amr_count = Phase::ALL.iter().filter(|p| p.is_amr()).count();
        assert_eq!(amr_count, 9);
    }

    #[test]
    fn index_matches_all_order_for_every_phase() {
        // `index()` is the enum discriminant; this pins ALL to legend
        // order so a reordering of either is caught immediately.
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?}");
        }
        // ALL is a permutation of the variants (no duplicates, full
        // coverage of the seconds array).
        let mut seen = [false; Phase::ALL.len()];
        for p in Phase::ALL {
            assert!(!seen[p.index()], "{p:?} appears twice");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_summary_maps_phases_and_derives_minres() {
        let mut s = obs::Summary::default();
        let mut add = |label: &str, cat: &str, incl_ns: u64| {
            s.phases.insert(
                label.to_string(),
                obs::PhaseStats {
                    cat: cat.to_string(),
                    count: 1,
                    incl_ns,
                    excl_ns: incl_ns,
                },
            );
        };
        add("BalanceTree", "amr", 2_000_000_000);
        add("TimeIntegration", "solve", 1_000_000_000);
        add("MINRES", "solve", 5_000_000_000);
        add("AMGSolve", "solve", 3_000_000_000);
        add("AMGSetup", "solve", 500_000_000);
        add("comm:allreduce", "comm", 250_000_000); // not a phase: ignored
        let t = PhaseTimers::from_summary(&s);
        assert_eq!(t.get(Phase::BalanceTree), 2.0);
        assert_eq!(t.get(Phase::TimeIntegration), 1.0);
        // MINRES excludes the nested V-cycle time.
        assert_eq!(t.get(Phase::Minres), 2.0);
        assert_eq!(t.get(Phase::AmgSolve), 3.0);
        assert_eq!(t.get(Phase::AmgSetup), 0.5);
        assert_eq!(t.get(Phase::NewTree), 0.0);
        assert_eq!(t.amr_total(), 2.0);
        assert_eq!(t.solve_total(), 6.5);
    }
}
