//! Property-based tests for the octree invariants.

use octree::balance::{balance_local, is_balanced};
use octree::ops::{coarsen, find_containing, linearize, new_tree, refine};
use octree::{is_complete, is_valid_linear, morton, Octant, MAX_LEVEL, ROOT_LEN};
use proptest::prelude::*;

/// Strategy: an arbitrary valid octant at level ≤ `max_level`.
fn arb_octant(max_level: u8) -> impl Strategy<Value = Octant> {
    (0..=max_level, any::<u64>()).prop_map(|(level, seed)| {
        let n = 1u64 << (3 * level as u64);
        Octant::from_uniform_index(level, seed % n)
    })
}

/// Strategy: a complete linear octree built by a random refinement walk.
fn arb_tree(rounds: usize) -> impl Strategy<Value = Vec<Octant>> {
    proptest::collection::vec(any::<u64>(), rounds).prop_map(|seeds| {
        let mut t = new_tree(1);
        for seed in seeds {
            let mut h = seed;
            refine(&mut t, |o| {
                // Pseudo-random but deterministic per-leaf decision,
                // bounded depth so trees stay small.
                h = h.wrapping_mul(6364136223846793005).wrapping_add(o.key());
                o.level < 5 && h % 11 == 0
            });
        }
        t
    })
}

proptest! {
    #[test]
    fn morton_key_roundtrips(x in 0u32..ROOT_LEN, y in 0u32..ROOT_LEN, z in 0u32..ROOT_LEN) {
        let k = morton::morton_key(x, y, z);
        prop_assert_eq!(morton::morton_decode(k), (x, y, z));
    }

    #[test]
    fn parent_child_roundtrip(o in arb_octant(MAX_LEVEL - 1), i in 0u8..8) {
        let c = o.child(i);
        prop_assert_eq!(c.parent(), o);
        prop_assert_eq!(c.child_id(), i);
        prop_assert!(o.is_ancestor_of(&c));
    }

    #[test]
    fn order_matches_descendant_ranges(a in arb_octant(8), b in arb_octant(8)) {
        // For non-overlapping octants, Morton order == order of their
        // descendant ranges.
        if !a.contains(&b) && !b.contains(&a) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(lo.last_descendant() < hi.first_descendant());
        }
    }

    #[test]
    fn random_trees_stay_valid(t in arb_tree(3)) {
        prop_assert!(is_valid_linear(&t));
        prop_assert!(is_complete(&t));
    }

    #[test]
    fn balance_idempotent_and_complete(mut t in arb_tree(4)) {
        balance_local(&mut t);
        prop_assert!(is_balanced(&t));
        prop_assert!(is_complete(&t));
        let n = t.len();
        prop_assert_eq!(balance_local(&mut t), 0, "balance must be idempotent");
        prop_assert_eq!(t.len(), n);
    }

    #[test]
    fn balance_differential_all_kinds(t in arb_tree(4), which in 0usize..3) {
        // The minimal balanced refinement is unique, so the recursive
        // seed-propagation fast path, the buffered ripple sweep, and the
        // one-violator-at-a-time naive oracle must agree *bitwise* for
        // every neighbor-set kind.
        use octree::balance::{
            balance_local_kind, balance_local_naive_kind, balance_local_ripple_kind,
            is_balanced_kind, BalanceKind,
        };
        let kind = [BalanceKind::Face, BalanceKind::FaceEdge, BalanceKind::Full][which];
        let mut fast = t.clone();
        let mut ripple = t.clone();
        let mut naive = t;
        let n_fast = balance_local_kind(&mut fast, kind);
        let n_ripple = balance_local_ripple_kind(&mut ripple, kind);
        let n_naive = balance_local_naive_kind(&mut naive, kind);
        prop_assert_eq!(&fast, &ripple, "fast vs ripple ({:?})", kind);
        prop_assert_eq!(&fast, &naive, "fast vs naive ({:?})", kind);
        prop_assert_eq!(n_fast, n_ripple);
        prop_assert_eq!(n_fast, n_naive);
        prop_assert!(is_balanced_kind(&fast, kind));
        prop_assert!(is_complete(&fast));
        prop_assert!(is_valid_linear(&fast));
    }

    #[test]
    fn coarsen_then_is_complete(mut t in arb_tree(3), seed in any::<u64>()) {
        let mut h = seed;
        coarsen(&mut t, |o| {
            h = h.wrapping_mul(2862933555777941757).wrapping_add(o.key());
            h % 3 != 0
        });
        prop_assert!(is_valid_linear(&t));
        prop_assert!(is_complete(&t));
    }

    #[test]
    fn find_containing_agrees_with_scan(t in arb_tree(3), probe in arb_octant(MAX_LEVEL)) {
        let fast = find_containing(&t, &probe);
        let slow = t.iter().position(|o| o.contains(&probe));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn linearize_removes_all_overlaps(mut v in proptest::collection::vec(arb_octant(5), 1..40)) {
        v.sort();
        linearize(&mut v);
        prop_assert!(is_valid_linear(&v));
    }

    #[test]
    fn neighbor_of_neighbor_is_identity(
        o in arb_octant(MAX_LEVEL),
        dx in -1i32..=1, dy in -1i32..=1, dz in -1i32..=1,
    ) {
        // Same-size neighbors are symmetric: stepping back returns the
        // original octant. (The all-zero direction is the identity and
        // not a neighbor direction; skip it.)
        if (dx, dy, dz) != (0, 0, 0) {
            if let Some(n) = o.neighbor(dx, dy, dz) {
                prop_assert_eq!(n.level, o.level);
                prop_assert_eq!(n.neighbor(-dx, -dy, -dz), Some(o));
            }
        }
    }

    #[test]
    fn distributed_balance_is_idempotent(seed in any::<u64>()) {
        // BalanceTree at 2 ranks: a second pass must be a global no-op
        // and the result must satisfy the distributed invariants.
        let added = scomm::spmd::run(2, |c| {
            let mut t = octree::parallel::DistOctree::new_uniform(c, 1);
            let mut h = seed;
            for _ in 0..3 {
                t.refine(|o| {
                    h = h.wrapping_mul(6364136223846793005).wrapping_add(o.key());
                    o.level < 5 && h % 7 == 0
                });
            }
            t.balance(octree::balance::BalanceKind::Full);
            t.partition();
            let second = t.balance(octree::balance::BalanceKind::Full);
            (t.validate(), second)
        });
        for (valid, second) in added {
            prop_assert!(valid, "distributed invariants must hold after balance");
            prop_assert_eq!(second, 0, "second BalanceTree pass must add nothing");
        }
    }
}
