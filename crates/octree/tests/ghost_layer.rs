//! Ghost-layer regression tests.
//!
//! The ghost builder's per-leaf destination dedup used to be a
//! fixed-size 32-slot array; a single coarse leaf whose neighbor
//! regions span more ranks than that overran it. These tests pin the
//! exact 4-rank ghost counts of a deterministic adapted fixture
//! (rank-asymmetric mirror lists) and exercise a >32-rank adjacency.

use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use octree::{Octant, ROOT_LEN};
use scomm::spmd;

#[test]
fn ghost_counts_pinned_at_4_ranks() {
    let counts = spmd::run(4, |c| {
        let mut t = DistOctree::new_uniform(c, 2);
        t.refine(|o| {
            let ctr = o.center_unit();
            ctr[0] + ctr[1] < 0.8
        });
        t.balance(BalanceKind::Full);
        t.partition();
        let g = t.ghost_layer();
        // Every ghost must be attributed to a foreign rank and be
        // consistent with the ownership metadata.
        for &(owner, o) in &g {
            assert_ne!(owner, c.rank());
            assert_eq!(t.owner_of(&o), owner, "recorded owner must be real");
        }
        g.len() as u64
    });
    // Pinned per-rank ghost counts for this fixture. The lists are
    // rank-asymmetric by construction (the refined blob is off-center);
    // any change to the ghost predicate or the partition shows up here.
    assert_eq!(counts, vec![50, 61, 51, 57], "4-rank ghost counts moved");
}

#[test]
fn ghost_layer_handles_more_than_32_adjacent_ranks() {
    // One coarse level-1 leaf next to a level-4-refined sibling whose
    // 512 leaves are spread over ~38 ranks: the coarse leaf's neighbor
    // regions then span far more than 32 destination ranks.
    const P: usize = 40;
    let half = ROOT_LEN / 2;
    let root_children: Vec<Octant> = Octant::new(0, 0, 0, 0).children().to_vec();
    let coarse = root_children[0]; // (0,0,0) level 1
    let refined_parent = root_children[1]; // (half,0,0) level 1
                                           // Build the complete global leaf list in Morton order.
    let mut fine = vec![refined_parent];
    for _ in 0..3 {
        fine = fine.iter().flat_map(|o| o.children()).collect();
    }
    let mut global = vec![coarse];
    global.extend(&fine);
    global.extend(root_children[2..].iter().copied());
    let total = global.len(); // 1 + 512 + 6

    let ghost0 = spmd::run(P, move |c| {
        // Rank 0 owns only the coarse leaf; the fine leaves spread
        // across the remaining ranks.
        let me = c.rank();
        let (lo, hi) = if me == 0 {
            (0, 1)
        } else {
            let rest = total - 1;
            (1 + rest * (me - 1) / (P - 1), 1 + rest * me / (P - 1))
        };
        let t = DistOctree::from_local(c, global[lo..hi].to_vec());
        assert!(t.validate());
        let g = t.ghost_layer();
        if me == 0 {
            // The coarse leaf faces the refined sibling: at least the
            // 64 face-adjacent fine leaves are ghosts here.
            assert!(g.len() >= 64, "rank 0 sees {} ghosts", g.len());
        } else {
            // Mirror side: any rank owning a fine leaf on the shared
            // face must hold the coarse leaf as a ghost.
            let touches_face = t.local.iter().any(|o| o.x == half && o.level > 1);
            if touches_face {
                assert!(
                    g.iter().any(|&(owner, o)| owner == 0 && o == coarse),
                    "rank {me} touches the face but lacks the coarse ghost"
                );
            }
        }
        g.len() as u64
    });
    assert!(ghost0.iter().sum::<u64>() > 0);
}
