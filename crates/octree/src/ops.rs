//! Serial (per-rank local) octree operations: `NewTree`, `RefineTree`,
//! `CoarsenTree`, linearization, and leaf search.
//!
//! All functions preserve the linear-octree invariant (Morton-sorted,
//! non-overlapping); refinement replaces a leaf by its eight children *in
//! place* in the sorted order, which is valid because the children occupy
//! exactly the parent's Morton range.

use crate::morton::{Octant, MAX_LEVEL};

/// Build a uniform octree refined to `level` (the paper's `NewTree` grows
/// a coarse tree; here the serial version enumerates the `8^level` leaves
/// directly in Morton order).
pub fn new_tree(level: u8) -> Vec<Octant> {
    assert!(level <= MAX_LEVEL);
    let n = 1u64 << (3 * level as u64);
    (0..n)
        .map(|i| Octant::from_uniform_index(level, i))
        .collect()
}

/// Refine every leaf for which `should_refine` returns true, replacing it
/// by its eight children. Leaves already at `MAX_LEVEL` are never refined.
/// Returns the number of leaves refined.
pub fn refine<F: FnMut(&Octant) -> bool>(leaves: &mut Vec<Octant>, should_refine: F) -> usize {
    let mut scratch = Vec::with_capacity(leaves.len());
    refine_with(leaves, &mut scratch, should_refine)
}

/// [`refine`] writing through a caller-provided scratch buffer, which is
/// swapped with `leaves` on return. Reusing one scratch across calls keeps
/// the {leaves, scratch} pair grow-only: warm calls never allocate.
pub fn refine_with<F: FnMut(&Octant) -> bool>(
    leaves: &mut Vec<Octant>,
    scratch: &mut Vec<Octant>,
    mut should_refine: F,
) -> usize {
    scratch.clear();
    let mut count = 0;
    for &o in leaves.iter() {
        // Evaluate the predicate exactly once per leaf, in order, so that
        // index-driven closures stay aligned even for depth-capped leaves.
        if should_refine(&o) && o.level < MAX_LEVEL {
            scratch.extend_from_slice(&o.children());
            count += 1;
        } else {
            scratch.push(o);
        }
    }
    std::mem::swap(leaves, scratch);
    count
}

/// Coarsen complete sibling families in which *all eight* leaves are marked
/// by `should_coarsen`, replacing them by their parent. Only same-level
/// leaf families are eligible (matching the paper's `CoarsenTree`, which
/// removes all children of a common parent). Returns the number of
/// families coarsened. `should_coarsen` is evaluated exactly once per leaf,
/// in order.
pub fn coarsen<F: FnMut(&Octant) -> bool>(leaves: &mut Vec<Octant>, should_coarsen: F) -> usize {
    let marks: Vec<bool> = leaves.iter().map(should_coarsen).collect();
    coarsen_marked(leaves, &marks)
}

/// [`coarsen`] with precomputed per-leaf marks (one per leaf, in order).
pub fn coarsen_marked(leaves: &mut Vec<Octant>, marks: &[bool]) -> usize {
    let mut scratch = Vec::with_capacity(leaves.len());
    coarsen_marked_with(leaves, &mut scratch, marks)
}

/// [`coarsen_marked`] writing through a caller-provided scratch buffer,
/// swapped with `leaves` on return (see [`refine_with`]).
pub fn coarsen_marked_with(
    leaves: &mut Vec<Octant>,
    scratch: &mut Vec<Octant>,
    marks: &[bool],
) -> usize {
    assert_eq!(leaves.len(), marks.len());
    scratch.clear();
    let mut count = 0;
    let mut i = 0;
    while i < leaves.len() {
        let o = leaves[i];
        // A coarsenable family starts at a child 0 and occupies eight
        // consecutive positions in Morton order.
        if o.level > 0 && o.child_id() == 0 && i + 8 <= leaves.len() {
            let parent = o.parent();
            let family_ok = (0..8).all(|k| leaves[i + k] == parent.child(k as u8) && marks[i + k]);
            if family_ok {
                scratch.push(parent);
                count += 1;
                i += 8;
                continue;
            }
        }
        scratch.push(o);
        i += 1;
    }
    std::mem::swap(leaves, scratch);
    count
}

/// [`refine`] with precomputed per-leaf marks.
pub fn refine_marked(leaves: &mut Vec<Octant>, marks: &[bool]) -> usize {
    assert_eq!(leaves.len(), marks.len());
    let mut i = 0;
    refine(leaves, |_| {
        let m = marks[i];
        i += 1;
        m
    })
}

/// Remove overlaps from a sorted octant list, keeping the *finest* octants
/// (drop any octant that is a strict ancestor of the one following it).
/// Input must be sorted; duplicates are removed too.
pub fn linearize(octants: &mut Vec<Octant>) {
    octants.dedup();
    let mut out: Vec<Octant> = Vec::with_capacity(octants.len());
    for &o in octants.iter() {
        while let Some(&last) = out.last() {
            if last.is_ancestor_of(&o) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(o);
    }
    *octants = out;
}

/// Binary-search the sorted leaf array for the leaf that contains `target`
/// (i.e. equals it or is its ancestor). Returns its index, or `None` if the
/// containing region is not present locally.
pub fn find_containing(leaves: &[Octant], target: &Octant) -> Option<usize> {
    // partition_point gives the first leaf > target; the candidate is the
    // one before it (ancestors sort before descendants).
    let idx = leaves.partition_point(|o| o <= target);
    if idx == 0 {
        return None;
    }
    let cand = idx - 1;
    if leaves[cand].contains(target) {
        Some(cand)
    } else {
        None
    }
}

/// Histogram of leaf counts per level (used by the Fig. 5 right panel).
pub fn level_histogram(leaves: &[Octant]) -> Vec<u64> {
    let mut hist = vec![0u64; MAX_LEVEL as usize + 1];
    for o in leaves {
        hist[o.level as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_complete, is_valid_linear};

    #[test]
    fn new_tree_sizes() {
        assert_eq!(new_tree(0).len(), 1);
        assert_eq!(new_tree(1).len(), 8);
        assert_eq!(new_tree(3).len(), 512);
        assert!(is_complete(&new_tree(3)));
    }

    #[test]
    fn refine_all_equals_next_level() {
        let mut t = new_tree(1);
        let n = refine(&mut t, |_| true);
        assert_eq!(n, 8);
        assert_eq!(t, new_tree(2));
    }

    #[test]
    fn refine_preserves_completeness_and_order() {
        let mut t = new_tree(2);
        refine(&mut t, |o| {
            (o.x ^ o.y ^ o.z) & 1 == 0 || o.center_unit()[0] < 0.5
        });
        assert!(is_valid_linear(&t));
        assert!(is_complete(&t));
    }

    #[test]
    fn coarsen_undoes_refine() {
        let mut t = new_tree(2);
        let orig = t.clone();
        refine(&mut t, |o| o.x == 0 && o.y == 0 && o.z == 0);
        assert_ne!(t, orig);
        let n = coarsen(&mut t, |o| o.level == 3);
        assert_eq!(n, 1);
        assert_eq!(t, orig);
    }

    #[test]
    fn coarsen_requires_full_family() {
        let mut t = new_tree(1);
        // Mark only 7 of 8 leaves: nothing may coarsen.
        let n = coarsen(&mut t, |o| o.child_id() != 7);
        assert_eq!(n, 0);
        assert_eq!(t.len(), 8);
        // Mark all: collapses to root.
        let n = coarsen(&mut t, |_| true);
        assert_eq!(n, 1);
        assert_eq!(t, vec![Octant::root()]);
    }

    #[test]
    fn coarsen_skips_mixed_level_families() {
        let mut t = new_tree(1);
        refine(&mut t, |o| o.child_id() == 0); // child 0 becomes 8 finer leaves
        let before = t.len();
        // Marking everything must not merge the mixed-level "family" at the
        // root, but the level-2 family inside child 0 does merge.
        let n = coarsen(&mut t, |_| true);
        assert_eq!(n, 1);
        assert_eq!(t.len(), before - 7);
        assert!(is_complete(&t));
    }

    #[test]
    fn linearize_keeps_finest() {
        let root = Octant::root();
        let c0 = root.child(0);
        let mut v = vec![root, c0, c0.child(3), root.child(2)];
        v.sort();
        linearize(&mut v);
        assert_eq!(v, vec![c0.child(3), root.child(2)]);
        assert!(is_valid_linear(&v));
    }

    #[test]
    fn find_containing_hits_and_misses() {
        let mut t = new_tree(1);
        refine(&mut t, |o| o.child_id() == 0);
        let probe = Octant::root().child(0).child(5).first_descendant();
        let idx = find_containing(&t, &probe).unwrap();
        assert!(t[idx].contains(&probe));
        assert_eq!(t[idx].level, 2);
        // Remove the region and the probe must miss.
        let t2: Vec<Octant> = t.iter().copied().filter(|o| !o.contains(&probe)).collect();
        assert!(find_containing(&t2, &probe).is_none());
    }

    #[test]
    fn level_histogram_counts() {
        let mut t = new_tree(1);
        refine(&mut t, |o| o.child_id() == 0);
        let h = level_histogram(&t);
        assert_eq!(h[1], 7);
        assert_eq!(h[2], 8);
        assert_eq!(h.iter().sum::<u64>(), t.len() as u64);
    }
}
