//! # octree — linear Morton-ordered parallel octrees (the ALPS core)
//!
//! This crate implements the octree layer of the paper's ALPS library
//! (Section IV): a *linear* octree that stores only the leaves, totally
//! ordered by the Morton (z-order) space-filling curve, distributed across
//! simulated MPI ranks by contiguous curve segments.
//!
//! The AMR functions of the paper's Fig. 4 map to:
//!
//! | paper          | here |
//! |----------------|------|
//! | `NewTree`      | [`ops::new_tree`] / [`parallel::DistOctree::new_uniform`] |
//! | `RefineTree`   | [`ops::refine`] / [`parallel::DistOctree::refine`] |
//! | `CoarsenTree`  | [`ops::coarsen`] / [`parallel::DistOctree::coarsen`] |
//! | `BalanceTree`  | [`balance::balance_local`] / [`parallel::DistOctree::balance`] |
//! | `PartitionTree`| [`parallel::DistOctree::partition`] |
//! | `MarkElements` | [`mark::mark_elements`] |
//!
//! A leaf octant is an axis-aligned cube identified by its anchor corner in
//! integer coordinates on a `2^MAX_LEVEL`-wide lattice plus a refinement
//! level ([`Octant`]). The one-to-one correspondence between leaves and
//! hexahedral finite elements is established by the `mesh` crate.
//!
//! ## Example
//!
//! ```
//! use octree::ops;
//!
//! // Uniform level-2 tree: 64 leaves covering the unit cube.
//! let mut leaves = ops::new_tree(2);
//! assert_eq!(leaves.len(), 64);
//!
//! // Refine every leaf touching the origin, then re-establish 2:1 balance.
//! ops::refine(&mut leaves, |o| o.x == 0 && o.y == 0 && o.z == 0);
//! octree::balance::balance_local(&mut leaves);
//! assert!(octree::balance::is_balanced(&leaves));
//! ```

pub mod balance;
pub mod mark;
pub mod morton;
pub mod ops;
pub mod parallel;

pub use morton::{Octant, MAX_LEVEL, ROOT_LEN};

/// Check the linear-octree invariants: strictly Morton-sorted and
/// non-overlapping (no leaf is an ancestor of another).
pub fn is_valid_linear(leaves: &[Octant]) -> bool {
    leaves
        .windows(2)
        .all(|w| w[0] < w[1] && !w[0].is_ancestor_of(&w[1]))
}

/// Check that `leaves` form a complete linear octree covering the root
/// cube: validity plus total volume equal to the root volume.
pub fn is_complete(leaves: &[Octant]) -> bool {
    if !is_valid_linear(leaves) {
        return false;
    }
    // Volumes measured in units of the finest lattice cell; the root cube
    // has (2^MAX_LEVEL)^3 of them. u128 avoids overflow.
    let total: u128 = leaves
        .iter()
        .map(|o| {
            let s = o.len() as u128;
            s * s * s
        })
        .sum();
    total == (ROOT_LEN as u128).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::Octant;

    #[test]
    fn root_is_complete() {
        assert!(is_complete(&[Octant::root()]));
    }

    #[test]
    fn missing_leaf_is_incomplete() {
        let mut leaves = ops::new_tree(1);
        leaves.remove(3);
        assert!(is_valid_linear(&leaves));
        assert!(!is_complete(&leaves));
    }

    #[test]
    fn overlap_is_invalid() {
        let root = Octant::root();
        let child = root.child(0);
        assert!(!is_valid_linear(&[root, child]));
    }
}
