//! `MarkElements`: decide which elements to coarsen or refine from a
//! per-element error indicator, holding the global element count near a
//! target.
//!
//! As in the paper, a global sort of all indicators is avoided: global
//! coarsening and refinement thresholds are adjusted iteratively through
//! collective communication (here: bisection on the refinement threshold
//! with an allreduce per iterate) until the number of elements expected
//! after adaptation lies within a prescribed tolerance around the target.

use crate::morton::{Octant, MAX_LEVEL};
use scomm::Comm;

/// Per-element adaptation decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    Coarsen,
    None,
    Refine,
}

/// Parameters of the threshold search.
#[derive(Debug, Clone, Copy)]
pub struct MarkParams {
    /// Desired global element count after adaptation.
    pub target_elements: u64,
    /// Acceptable relative deviation from the target (e.g. `0.1`).
    pub tolerance: f64,
    /// Elements at this level are never refined.
    pub max_level: u8,
    /// Elements at this level are never coarsened.
    pub min_level: u8,
    /// Coarsening threshold as a fraction of the refinement threshold.
    pub coarsen_ratio: f64,
    /// Maximum bisection iterations (each costs one allreduce).
    pub max_iterations: usize,
}

impl Default for MarkParams {
    fn default() -> Self {
        MarkParams {
            target_elements: 0,
            tolerance: 0.1,
            max_level: MAX_LEVEL,
            min_level: 0,
            coarsen_ratio: 0.05,
            max_iterations: 40,
        }
    }
}

/// Count, for a threshold pair, how many local elements would be marked
/// for refinement and how many complete local sibling families would be
/// marked for coarsening.
fn count_marks(
    leaves: &[Octant],
    indicators: &[f64],
    theta_refine: f64,
    theta_coarsen: f64,
    params: &MarkParams,
) -> (u64, u64) {
    let mut n_ref = 0u64;
    for (o, &eta) in leaves.iter().zip(indicators) {
        if eta > theta_refine && o.level < params.max_level {
            n_ref += 1;
        }
    }
    // Families: eight consecutive same-parent leaves, all below the
    // coarsening threshold and above the level floor.
    let mut n_families = 0u64;
    let mut i = 0;
    while i < leaves.len() {
        let o = leaves[i];
        if o.level > params.min_level && o.child_id() == 0 && i + 8 <= leaves.len() {
            let parent = o.parent();
            let ok = (0..8).all(|k| {
                leaves[i + k] == parent.child(k as u8) && indicators[i + k] < theta_coarsen
            });
            if ok {
                n_families += 1;
                i += 8;
                continue;
            }
        }
        i += 1;
    }
    (n_ref, n_families)
}

/// Compute per-element marks such that the expected global element count
/// after refine (+7 each) and family coarsening (−7 each) lies within
/// `params.tolerance` of `params.target_elements`.
///
/// `leaves` and `indicators` are this rank's portion; every rank must call
/// this collectively.
pub fn mark_elements(
    comm: &Comm,
    leaves: &[Octant],
    indicators: &[f64],
    params: &MarkParams,
) -> Vec<Mark> {
    let mut marks = Vec::new();
    mark_elements_into(comm, leaves, indicators, params, &mut marks);
    marks
}

/// [`mark_elements`] writing into a caller-provided buffer (cleared first,
/// capacity reused): warm calls do not allocate.
pub fn mark_elements_into(
    comm: &Comm,
    leaves: &[Octant],
    indicators: &[f64],
    params: &MarkParams,
    marks: &mut Vec<Mark>,
) {
    assert_eq!(leaves.len(), indicators.len());
    let n_global = comm.allreduce_sum(&[leaves.len() as u64])[0];
    let local_max = indicators.iter().cloned().fold(0.0f64, f64::max);
    let eta_max = comm.allreduce_max(&[local_max])[0].max(f64::MIN_POSITIVE);

    // Bisection on the refinement threshold. High threshold ⇒ few refined,
    // many coarsened ⇒ small predicted count; the predicted count is
    // monotone decreasing in theta, so bisection applies.
    let target = params.target_elements.max(1) as f64;
    let mut lo = 0.0f64; // refines everything
    let mut hi = eta_max * (1.0 + 1e-12); // refines nothing
    let mut theta = eta_max * 0.5;
    let mut best = (f64::INFINITY, theta);
    for _ in 0..params.max_iterations {
        let (lref, lfam) = count_marks(
            leaves,
            indicators,
            theta,
            theta * params.coarsen_ratio,
            params,
        );
        let sums = comm.allreduce_sum(&[lref, lfam]);
        let predicted = n_global as f64 + 7.0 * sums[0] as f64 - 7.0 * sums[1] as f64;
        let rel = (predicted - target).abs() / target;
        if rel < best.0 {
            best = (rel, theta);
        }
        if rel <= params.tolerance {
            break;
        }
        if predicted > target {
            lo = theta; // too many elements: raise the threshold
        } else {
            hi = theta;
        }
        theta = 0.5 * (lo + hi);
    }
    let theta = best.1;
    let theta_c = theta * params.coarsen_ratio;

    // Emit the marks for the chosen thresholds, family-consistent.
    marks.clear();
    marks.resize(leaves.len(), Mark::None);
    for (i, (o, &eta)) in leaves.iter().zip(indicators).enumerate() {
        if eta > theta && o.level < params.max_level {
            marks[i] = Mark::Refine;
        }
    }
    let mut i = 0;
    while i < leaves.len() {
        let o = leaves[i];
        if o.level > params.min_level && o.child_id() == 0 && i + 8 <= leaves.len() {
            let parent = o.parent();
            let ok = (0..8)
                .all(|k| leaves[i + k] == parent.child(k as u8) && indicators[i + k] < theta_c);
            if ok {
                for k in 0..8 {
                    marks[i + k] = Mark::Coarsen;
                }
                i += 8;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::new_tree;
    use scomm::spmd;

    fn apply(leaves: &[Octant], marks: &[Mark]) -> Vec<Octant> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < leaves.len() {
            match marks[i] {
                Mark::Refine => out.extend_from_slice(&leaves[i].children()),
                Mark::Coarsen => {
                    out.push(leaves[i].parent());
                    i += 8;
                    continue;
                }
                Mark::None => out.push(leaves[i]),
            }
            i += 1;
        }
        out
    }

    #[test]
    fn holds_count_near_target_serial() {
        let comm = spmd::self_comm();
        let leaves = new_tree(3); // 512
                                  // Smooth indicator peaked at a corner.
        let ind: Vec<f64> = leaves
            .iter()
            .map(|o| {
                let c = o.center_unit();
                (-(c[0] * c[0] + c[1] * c[1] + c[2] * c[2]) * 8.0).exp()
            })
            .collect();
        let params = MarkParams {
            target_elements: 1000,
            tolerance: 0.1,
            ..Default::default()
        };
        let marks = mark_elements(&comm, &leaves, &ind, &params);
        let after = apply(&leaves, &marks);
        let n = after.len() as f64;
        assert!((n - 1000.0).abs() / 1000.0 < 0.25, "got {n} elements");
    }

    #[test]
    fn respects_level_caps() {
        let comm = spmd::self_comm();
        let leaves = new_tree(2);
        let ind = vec![1.0; leaves.len()];
        let params = MarkParams {
            target_elements: 10_000, // wants to refine everything
            max_level: 2,            // but nothing may exceed level 2
            ..Default::default()
        };
        let marks = mark_elements(&comm, &leaves, &ind, &params);
        assert!(marks.iter().all(|m| *m == Mark::None));
    }

    #[test]
    fn coarsen_marks_are_family_complete() {
        let comm = spmd::self_comm();
        let leaves = new_tree(2);
        let ind = vec![0.0; leaves.len()];
        let params = MarkParams {
            target_elements: 8,
            min_level: 1,
            ..Default::default()
        };
        let marks = mark_elements(&comm, &leaves, &ind, &params);
        // Coarsen marks must come in aligned groups of 8.
        let mut i = 0;
        while i < marks.len() {
            if marks[i] == Mark::Coarsen {
                assert_eq!(leaves[i].child_id(), 0);
                for k in 0..8 {
                    assert_eq!(marks[i + k], Mark::Coarsen);
                }
                i += 8;
            } else {
                i += 1;
            }
        }
        let after = apply(&leaves, &marks);
        assert!(after.iter().all(|o| o.level >= 1), "min_level respected");
    }

    #[test]
    fn collective_marking_across_ranks() {
        let out = spmd::run(4, |c| {
            // Each rank owns a quarter of a level-3 tree.
            let all = new_tree(3);
            let n = all.len() / c.size();
            let mine = all[c.rank() * n..(c.rank() + 1) * n].to_vec();
            let ind: Vec<f64> = mine.iter().map(|o| o.center_unit()[0]).collect();
            let params = MarkParams {
                target_elements: 800,
                ..Default::default()
            };
            let marks = mark_elements(c, &mine, &ind, &params);
            let after = apply(&mine, &marks);
            after.len() as u64
        });
        let total: u64 = out.iter().sum();
        assert!(
            (total as f64 - 800.0).abs() / 800.0 < 0.25,
            "total after adaptation = {total}"
        );
    }
}
