//! Octants and the Morton (z-order) space-filling curve.
//!
//! An octant lives on an integer lattice of side `2^MAX_LEVEL`. Its anchor
//! is the corner with the smallest coordinates; its edge length is
//! `2^(MAX_LEVEL - level)` lattice units. The pre-order traversal of the
//! octree equals the lexicographic order of `(morton_key(anchor), level)`,
//! the red curve of the paper's Fig. 3.

/// Maximum refinement depth. `3 * MAX_LEVEL = 57` interleaved bits fit a
/// `u64` Morton key with room to spare. The paper's deepest run uses 14
/// levels (Section VI).
pub const MAX_LEVEL: u8 = 19;

/// Side length of the root cube in lattice units.
pub const ROOT_LEN: u32 = 1 << MAX_LEVEL;

/// A leaf or interior octant of a single octree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Octant {
    /// Anchor coordinates in lattice units; each in `[0, ROOT_LEN)` and a
    /// multiple of `len()`.
    pub x: u32,
    pub y: u32,
    pub z: u32,
    /// Refinement level: 0 = root, `MAX_LEVEL` = finest.
    pub level: u8,
}

// Octants are exchanged between simulated ranks as raw bytes.
// SAFETY: repr(C), all fields are Pod primitives; padding bytes (3 after
// `level`) are tolerated on read.
unsafe impl scomm::Pod for Octant {}

/// Spread the low 21 bits of `v` so that each bit lands every third
/// position (classic 3D Morton bit-interleaving helper). Branchless and
/// `const`: keys of static octants evaluate at compile time.
#[inline]
pub const fn spread3(v: u32) -> u64 {
    let mut x = v as u64 & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread3`]: compact every third bit into the low bits.
#[inline]
pub const fn compact3(v: u64) -> u32 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Interleave `(x, y, z)` into a Morton key. `x` occupies the least
/// significant position of each bit triple, matching the paper's `(z,y,x)`
/// triple traversal.
#[inline]
pub const fn morton_key(x: u32, y: u32, z: u32) -> u64 {
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Invert [`morton_key`].
#[inline]
pub const fn morton_decode(key: u64) -> (u32, u32, u32) {
    (compact3(key), compact3(key >> 1), compact3(key >> 2))
}

impl Octant {
    /// The root octant covering the whole domain.
    #[inline]
    pub const fn root() -> Octant {
        Octant {
            x: 0,
            y: 0,
            z: 0,
            level: 0,
        }
    }

    /// Construct an octant, checking lattice alignment in debug builds.
    #[inline]
    pub fn new(x: u32, y: u32, z: u32, level: u8) -> Octant {
        debug_assert!(level <= MAX_LEVEL);
        let len = 1u32 << (MAX_LEVEL - level);
        debug_assert!(x.is_multiple_of(len) && y.is_multiple_of(len) && z.is_multiple_of(len));
        debug_assert!(x < ROOT_LEN && y < ROOT_LEN && z < ROOT_LEN);
        Octant { x, y, z, level }
    }

    /// Edge length in lattice units.
    #[inline]
    pub fn len(&self) -> u32 {
        1 << (MAX_LEVEL - self.level)
    }

    /// Morton key of the anchor.
    #[inline]
    pub fn key(&self) -> u64 {
        morton_key(self.x, self.y, self.z)
    }

    /// Which child of its parent this octant is (0–7, Morton order).
    #[inline]
    pub fn child_id(&self) -> u8 {
        debug_assert!(self.level > 0);
        let len = self.len();
        (((self.x / len) & 1) | (((self.y / len) & 1) << 1) | (((self.z / len) & 1) << 2)) as u8
    }

    /// Parent octant. Panics at the root in debug builds.
    #[inline]
    pub fn parent(&self) -> Octant {
        debug_assert!(self.level > 0, "root has no parent");
        let plen = 1u32 << (MAX_LEVEL - self.level + 1);
        Octant {
            x: self.x & !(plen - 1),
            y: self.y & !(plen - 1),
            z: self.z & !(plen - 1),
            level: self.level - 1,
        }
    }

    /// The `i`-th child (0–7 in Morton order: x fastest, then y, then z).
    #[inline]
    pub fn child(&self, i: u8) -> Octant {
        debug_assert!(self.level < MAX_LEVEL, "cannot refine beyond MAX_LEVEL");
        debug_assert!(i < 8);
        let clen = self.len() >> 1;
        Octant {
            x: self.x + ((i as u32) & 1) * clen,
            y: self.y + (((i as u32) >> 1) & 1) * clen,
            z: self.z + (((i as u32) >> 2) & 1) * clen,
            level: self.level + 1,
        }
    }

    /// All eight children in Morton order.
    #[inline]
    pub fn children(&self) -> [Octant; 8] {
        std::array::from_fn(|i| self.child(i as u8))
    }

    /// Ancestor at `level <= self.level` (self if equal).
    #[inline]
    pub fn ancestor_at(&self, level: u8) -> Octant {
        debug_assert!(level <= self.level);
        let alen = 1u32 << (MAX_LEVEL - level);
        Octant {
            x: self.x & !(alen - 1),
            y: self.y & !(alen - 1),
            z: self.z & !(alen - 1),
            level,
        }
    }

    /// Strict ancestry test.
    #[inline]
    pub fn is_ancestor_of(&self, other: &Octant) -> bool {
        self.level < other.level && other.ancestor_at(self.level) == *self
    }

    /// `self == other` or `self` is an ancestor of `other`.
    #[inline]
    pub fn contains(&self, other: &Octant) -> bool {
        self.level <= other.level && other.ancestor_at(self.level) == *self
    }

    /// First (Morton-smallest) descendant at `MAX_LEVEL`: shares the anchor.
    #[inline]
    pub fn first_descendant(&self) -> Octant {
        Octant {
            x: self.x,
            y: self.y,
            z: self.z,
            level: MAX_LEVEL,
        }
    }

    /// Last (Morton-largest) descendant at `MAX_LEVEL`.
    #[inline]
    pub fn last_descendant(&self) -> Octant {
        let off = self.len() - 1;
        Octant {
            x: self.x + off,
            y: self.y + off,
            z: self.z + off,
            level: MAX_LEVEL,
        }
    }

    /// Same-size neighbor displaced by `(dx, dy, dz)` octant widths.
    /// Returns `None` if it would leave the root cube (single-tree case;
    /// the forest layer handles inter-tree transforms).
    #[inline]
    pub fn neighbor(&self, dx: i32, dy: i32, dz: i32) -> Option<Octant> {
        let len = self.len() as i64;
        let nx = self.x as i64 + dx as i64 * len;
        let ny = self.y as i64 + dy as i64 * len;
        let nz = self.z as i64 + dz as i64 * len;
        let lim = ROOT_LEN as i64;
        if nx < 0 || ny < 0 || nz < 0 || nx >= lim || ny >= lim || nz >= lim {
            return None;
        }
        Some(Octant {
            x: nx as u32,
            y: ny as u32,
            z: nz as u32,
            level: self.level,
        })
    }

    /// Iterate the 26 `(dx,dy,dz)` displacement triples of the full
    /// face/edge/corner neighborhood.
    pub fn neighbor_directions() -> impl Iterator<Item = (i32, i32, i32)> {
        (-1..=1).flat_map(move |dz| {
            (-1..=1).flat_map(move |dy| {
                (-1..=1).filter_map(move |dx| {
                    if dx == 0 && dy == 0 && dz == 0 {
                        None
                    } else {
                        Some((dx, dy, dz))
                    }
                })
            })
        })
    }

    /// Geometric anchor in the unit cube `[0,1)^3`.
    #[inline]
    pub fn anchor_unit(&self) -> [f64; 3] {
        let s = 1.0 / ROOT_LEN as f64;
        [self.x as f64 * s, self.y as f64 * s, self.z as f64 * s]
    }

    /// Geometric edge length in the unit cube.
    #[inline]
    pub fn len_unit(&self) -> f64 {
        self.len() as f64 / ROOT_LEN as f64
    }

    /// Geometric center in the unit cube.
    #[inline]
    pub fn center_unit(&self) -> [f64; 3] {
        let a = self.anchor_unit();
        let h = 0.5 * self.len_unit();
        [a[0] + h, a[1] + h, a[2] + h]
    }

    /// Global Morton index among the `8^level` octants of a uniform
    /// refinement at this octant's level.
    #[inline]
    pub fn uniform_index(&self) -> u64 {
        let shift = MAX_LEVEL - self.level;
        morton_key(self.x >> shift, self.y >> shift, self.z >> shift)
    }

    /// Inverse of [`uniform_index`]: the `idx`-th octant (Morton order) of
    /// the uniform refinement at `level`.
    #[inline]
    pub fn from_uniform_index(level: u8, idx: u64) -> Octant {
        let (x, y, z) = morton_decode(idx);
        let shift = MAX_LEVEL - level;
        Octant {
            x: x << shift,
            y: y << shift,
            z: z << shift,
            level,
        }
    }
}

impl PartialOrd for Octant {
    #[inline]
    fn partial_cmp(&self, other: &Octant) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Octant {
    /// Morton order with the ancestor-first tie-break: this is exactly the
    /// pre-order traversal of the octree restricted to any leaf set.
    #[inline]
    fn cmp(&self, other: &Octant) -> std::cmp::Ordering {
        self.key()
            .cmp(&other.key())
            .then(self.level.cmp(&other.level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_key_is_const_evaluable() {
        const K: u64 = morton_key(5, 3, 1);
        const D: (u32, u32, u32) = morton_decode(K);
        // 5 = 101b, 3 = 011b, 1 = 001b interleaved (z y x) per bit:
        // bit0 triple (1,1,1)=7, bit1 (0,1,0)=2, bit2 (0,0,1)=1 → 0b001_010_111.
        assert_eq!(K, 0b001_010_111);
        assert_eq!(D, (5, 3, 1));
    }

    #[test]
    fn morton_roundtrip() {
        for &(x, y, z) in &[
            (0, 0, 0),
            (1, 2, 3),
            (1023, 511, 255),
            (ROOT_LEN - 1, 0, ROOT_LEN - 1),
        ] {
            let k = morton_key(x, y, z);
            assert_eq!(morton_decode(k), (x, y, z));
        }
    }

    #[test]
    fn morton_order_of_children_is_child_id_order() {
        let o = Octant::new(0, 0, 0, 3);
        let kids = o.children();
        for i in 0..7 {
            assert!(kids[i] < kids[i + 1]);
        }
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(k.child_id() as usize, i);
            assert_eq!(k.parent(), o);
        }
    }

    #[test]
    fn ancestor_ordering_precedes_descendants() {
        let o = Octant::new(0, 0, 0, 2);
        for k in o.children() {
            assert!(o < k, "ancestor must sort before descendants");
            assert!(o.is_ancestor_of(&k));
            assert!(o.contains(&k));
            assert!(!k.is_ancestor_of(&o));
        }
        assert!(o.contains(&o));
        assert!(!o.is_ancestor_of(&o));
    }

    #[test]
    fn descendant_range() {
        let o = Octant::new(ROOT_LEN / 2, 0, 0, 1);
        let f = o.first_descendant();
        let l = o.last_descendant();
        assert_eq!(f.key(), o.key());
        assert!(o.contains(&f) && o.contains(&l));
        assert!(f <= l);
        // A leaf just before / after the range is not contained.
        let before = Octant::new(o.x - 1, ROOT_LEN - 1, ROOT_LEN - 1, MAX_LEVEL);
        assert!(!o.contains(&before));
    }

    #[test]
    fn neighbors_and_domain_boundary() {
        let o = Octant::new(0, 0, 0, 1);
        assert!(o.neighbor(-1, 0, 0).is_none());
        let n = o.neighbor(1, 0, 0).unwrap();
        assert_eq!(n.x, o.len());
        assert_eq!(n.level, o.level);
        let far = Octant::new(ROOT_LEN / 2, ROOT_LEN / 2, ROOT_LEN / 2, 1);
        assert!(far.neighbor(1, 0, 0).is_none(), "past +x face");
        assert_eq!(Octant::neighbor_directions().count(), 26);
    }

    #[test]
    fn uniform_index_roundtrip() {
        for level in [0u8, 1, 3, 5] {
            let n = 1u64 << (3 * level);
            for idx in (0..n).step_by((n as usize / 64).max(1)) {
                let o = Octant::from_uniform_index(level, idx);
                assert_eq!(o.uniform_index(), idx);
                assert_eq!(o.level, level);
            }
        }
    }

    #[test]
    fn uniform_index_is_morton_sorted() {
        let level = 2u8;
        let octs: Vec<Octant> = (0..64)
            .map(|i| Octant::from_uniform_index(level, i))
            .collect();
        for w in octs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn geometry_maps_to_unit_cube() {
        let o = Octant::new(ROOT_LEN / 4, ROOT_LEN / 2, 0, 2);
        assert_eq!(o.anchor_unit(), [0.25, 0.5, 0.0]);
        assert_eq!(o.len_unit(), 0.25);
        assert_eq!(o.center_unit(), [0.375, 0.625, 0.125]);
    }

    #[test]
    fn ancestor_at_levels() {
        let leaf = Octant::new(ROOT_LEN - 1, ROOT_LEN - 1, ROOT_LEN - 1, MAX_LEVEL);
        let a0 = leaf.ancestor_at(0);
        assert_eq!(a0, Octant::root());
        let a1 = leaf.ancestor_at(1);
        assert_eq!(
            (a1.x, a1.y, a1.z),
            (ROOT_LEN / 2, ROOT_LEN / 2, ROOT_LEN / 2)
        );
    }
}
