//! 2:1 balance (`BalanceTree`): enforce that neighboring leaves differ by
//! at most one refinement level.
//!
//! The paper balances across faces and edges ("edge lengths of face- and
//! edge-neighboring elements may differ by at most a factor of two"); we
//! support face, edge, and full corner balance via [`BalanceKind`] and use
//! the full 26-neighbor balance by default, which implies the weaker two
//! and keeps hanging-node constraints local to faces and edges.
//!
//! Balance only ever *refines* (adds leaves); this is the "ripple" part of
//! the paper's prioritized ripple propagation: refining a leaf can trigger
//! refinement of its coarser neighbors in the next sweep, and the number of
//! sweeps is bounded by the number of levels in the tree.

use crate::morton::Octant;
use crate::ops::find_containing;

/// Which neighbor set participates in the 2:1 condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceKind {
    /// 6 face neighbors.
    Face,
    /// 6 face + 12 edge neighbors (the paper's condition).
    FaceEdge,
    /// Full 26-neighborhood (faces, edges, corners).
    Full,
}

impl BalanceKind {
    /// The displacement triples of this neighbor set.
    pub fn directions(self) -> Vec<(i32, i32, i32)> {
        Octant::neighbor_directions()
            .filter(move |&(dx, dy, dz)| {
                let order = dx.abs() + dy.abs() + dz.abs();
                match self {
                    BalanceKind::Face => order == 1,
                    BalanceKind::FaceEdge => order <= 2,
                    BalanceKind::Full => true,
                }
            })
            .collect()
    }
}

/// One balance sweep: mark every leaf that violates the 2:1 condition
/// against some finer leaf, i.e. every leaf `c` such that a leaf `o` with
/// `o.level > c.level + 1` has `c` covering one of `o`'s same-size
/// neighbor positions. Returns the indices of leaves that must be refined.
fn violating_leaves(leaves: &[Octant], dirs: &[(i32, i32, i32)]) -> Vec<usize> {
    let mut mark = vec![false; leaves.len()];
    for o in leaves {
        for &(dx, dy, dz) in dirs {
            let Some(n) = o.neighbor(dx, dy, dz) else {
                continue;
            };
            if let Some(idx) = find_containing(leaves, &n) {
                if leaves[idx].level + 1 < o.level {
                    mark[idx] = true;
                }
            }
        }
    }
    mark.iter()
        .enumerate()
        .filter_map(|(i, &m)| if m { Some(i) } else { None })
        .collect()
}

/// Balance a complete local octree in place with the given neighbor set.
/// Returns the number of leaves added.
pub fn balance_local_kind(leaves: &mut Vec<Octant>, kind: BalanceKind) -> usize {
    let dirs = kind.directions();
    let before = leaves.len();
    loop {
        let viol = violating_leaves(leaves, &dirs);
        if viol.is_empty() {
            break;
        }
        // Refine the violators; splice children in place to keep order.
        let mut out = Vec::with_capacity(leaves.len() + 7 * viol.len());
        let mut v = 0;
        for (i, &o) in leaves.iter().enumerate() {
            if v < viol.len() && viol[v] == i {
                out.extend_from_slice(&o.children());
                v += 1;
            } else {
                out.push(o);
            }
        }
        *leaves = out;
    }
    leaves.len() - before
}

/// Balance with the default full 26-neighbor condition.
pub fn balance_local(leaves: &mut Vec<Octant>) -> usize {
    balance_local_kind(leaves, BalanceKind::Full)
}

/// Check the 2:1 condition for the given neighbor set.
pub fn is_balanced_kind(leaves: &[Octant], kind: BalanceKind) -> bool {
    let dirs = kind.directions();
    for o in leaves {
        for &(dx, dy, dz) in &dirs {
            let Some(n) = o.neighbor(dx, dy, dz) else {
                continue;
            };
            if let Some(idx) = find_containing(leaves, &n) {
                if leaves[idx].level + 1 < o.level {
                    return false;
                }
            }
        }
    }
    true
}

/// Check the full 26-neighbor 2:1 condition.
pub fn is_balanced(leaves: &[Octant]) -> bool {
    is_balanced_kind(leaves, BalanceKind::Full)
}

/// Naive reference balance used by the `ablation_balance` bench: refine
/// one violator at a time and restart the scan. Same result, much more
/// work — it motivates the paper's buffered, level-by-level approach.
pub fn balance_local_naive(leaves: &mut Vec<Octant>) -> usize {
    let dirs = BalanceKind::Full.directions();
    let before = leaves.len();
    'outer: loop {
        let viol = violating_leaves(leaves, &dirs);
        match viol.first() {
            None => break 'outer,
            Some(&i) => {
                let o = leaves[i];
                leaves.splice(i..=i, o.children());
            }
        }
    }
    leaves.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{new_tree, refine};
    use crate::{is_complete, is_valid_linear};

    /// Refine toward the domain center several levels deep. Unlike a
    /// domain-corner spike (which grades itself), the leaves hugging the
    /// center planes end up adjacent to level-1 leaves across those
    /// planes, violating 2:1 for depth ≥ 3.
    fn center_spike(depth: u8) -> Vec<Octant> {
        use crate::morton::{MAX_LEVEL, ROOT_LEN};
        let target = Octant::new(
            ROOT_LEN / 2 - 1,
            ROOT_LEN / 2 - 1,
            ROOT_LEN / 2 - 1,
            MAX_LEVEL,
        );
        let mut t = new_tree(1);
        for _ in 1..depth {
            refine(&mut t, |o| o.contains(&target));
        }
        t
    }

    #[test]
    fn uniform_tree_is_balanced() {
        assert!(is_balanced(&new_tree(3)));
        let mut t = new_tree(3);
        assert_eq!(balance_local(&mut t), 0);
    }

    #[test]
    fn spike_is_unbalanced_then_balanced() {
        let mut t = center_spike(5);
        assert!(!is_balanced(&t));
        let added = balance_local(&mut t);
        assert!(added > 0);
        assert!(is_balanced(&t));
        assert!(is_complete(&t));
        assert!(is_valid_linear(&t));
    }

    #[test]
    fn balance_only_refines() {
        let orig = center_spike(6);
        let mut t = orig.clone();
        balance_local(&mut t);
        // Every new leaf must be contained in exactly one original leaf.
        for leaf in &t {
            let n = orig.iter().filter(|o| o.contains(leaf)).count();
            assert_eq!(n, 1, "leaf {leaf:?} not covered exactly once");
        }
        assert!(t.len() >= orig.len());
    }

    #[test]
    fn face_balance_weaker_than_full() {
        let mut a = center_spike(6);
        let mut b = a.clone();
        balance_local_kind(&mut a, BalanceKind::Face);
        balance_local_kind(&mut b, BalanceKind::Full);
        assert!(is_balanced_kind(&a, BalanceKind::Face));
        assert!(is_balanced_kind(&b, BalanceKind::Full));
        // Full balance implies face balance.
        assert!(is_balanced_kind(&b, BalanceKind::Face));
        assert!(b.len() >= a.len());
    }

    #[test]
    fn naive_matches_buffered() {
        let mut a = center_spike(5);
        let mut b = a.clone();
        balance_local(&mut a);
        balance_local_naive(&mut b);
        assert_eq!(
            a, b,
            "both balance algorithms must produce the minimal balanced refinement"
        );
    }

    #[test]
    fn direction_counts() {
        assert_eq!(BalanceKind::Face.directions().len(), 6);
        assert_eq!(BalanceKind::FaceEdge.directions().len(), 18);
        assert_eq!(BalanceKind::Full.directions().len(), 26);
    }
}
