//! 2:1 balance (`BalanceTree`): enforce that neighboring leaves differ by
//! at most one refinement level.
//!
//! The paper balances across faces and edges ("edge lengths of face- and
//! edge-neighboring elements may differ by at most a factor of two"); we
//! support face, edge, and full corner balance via [`BalanceKind`] and use
//! the full 26-neighbor balance by default, which implies the weaker two
//! and keeps hanging-node constraints local to faces and edges.
//!
//! Balance only ever *refines* (adds leaves), and the minimal balanced
//! refinement of a complete linear octree is unique. Three algorithms
//! compute it here:
//!
//! * [`balance_local_kind`] — the fast path: recursive sorted-merge
//!   *seed-set propagation*. Every input leaf seeds a demand "this region
//!   holds leaves at level ≥ k"; demands propagate coarser one level at a
//!   time through the closure rule `w ∈ D at level k ⟹
//!   parent(w).neighbor(d) ∈ D at level k−1` for every direction `d` of
//!   the balance kind. The output is rebuilt in one pass by recursively
//!   splitting each input leaf wherever a strictly finer demand lands
//!   inside it (binary-searched ranges over the sorted demand array). No
//!   per-octant neighbor probes against the leaf array, no fixpoint
//!   sweeps over the whole tree.
//! * [`balance_local_ripple_kind`] — the PR 3 buffered ripple sweep
//!   (refine all violators per round, repeat until clean), retained as
//!   the benchmark baseline.
//! * [`balance_local_naive_kind`] — one violator at a time with a full
//!   rescan: the differential oracle. Slowest, simplest, and shares the
//!   same [`BalanceKind`] direction selection as the other two so all
//!   three are comparable for every kind.
//!
//! Uniqueness of the minimal balanced refinement means the three must
//! agree *bitwise*; `check::fuzz_amr` and the proptests in this crate
//! enforce exactly that.

use crate::morton::{Octant, MAX_LEVEL};
use crate::ops::find_containing;

/// Which neighbor set participates in the 2:1 condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceKind {
    /// 6 face neighbors.
    Face,
    /// 6 face + 12 edge neighbors (the paper's condition).
    FaceEdge,
    /// Full 26-neighborhood (faces, edges, corners).
    Full,
}

/// All 26 displacement triples in `neighbor_directions()` order
/// (z outermost, x innermost), computed at compile time.
const ALL_DIRS: [(i32, i32, i32); 26] = build_all_dirs();

const fn build_all_dirs() -> [(i32, i32, i32); 26] {
    let mut out = [(0, 0, 0); 26];
    let mut n = 0;
    let mut dz = -1;
    while dz <= 1 {
        let mut dy = -1;
        while dy <= 1 {
            let mut dx = -1;
            while dx <= 1 {
                if !(dx == 0 && dy == 0 && dz == 0) {
                    out[n] = (dx, dy, dz);
                    n += 1;
                }
                dx += 1;
            }
            dy += 1;
        }
        dz += 1;
    }
    out
}

const fn filter_dirs<const N: usize>(max_order: i32) -> [(i32, i32, i32); N] {
    let mut out = [(0, 0, 0); N];
    let mut n = 0;
    let mut i = 0;
    while i < 26 {
        let (dx, dy, dz) = ALL_DIRS[i];
        if dx.abs() + dy.abs() + dz.abs() <= max_order {
            out[n] = ALL_DIRS[i];
            n += 1;
        }
        i += 1;
    }
    out
}

const FACE_DIRS: [(i32, i32, i32); 6] = filter_dirs::<6>(1);
const FACE_EDGE_DIRS: [(i32, i32, i32); 18] = filter_dirs::<18>(2);

impl BalanceKind {
    /// The displacement triples of this neighbor set, as a static slice
    /// (allocation-free; the order matches `neighbor_directions()`).
    pub fn direction_slice(self) -> &'static [(i32, i32, i32)] {
        match self {
            BalanceKind::Face => &FACE_DIRS,
            BalanceKind::FaceEdge => &FACE_EDGE_DIRS,
            BalanceKind::Full => &ALL_DIRS,
        }
    }

    /// The displacement triples of this neighbor set.
    pub fn directions(self) -> Vec<(i32, i32, i32)> {
        self.direction_slice().to_vec()
    }
}

/// One balance sweep: mark every leaf that violates the 2:1 condition
/// against some finer leaf, i.e. every leaf `c` such that a leaf `o` with
/// `o.level > c.level + 1` has `c` covering one of `o`'s same-size
/// neighbor positions. Returns the indices of leaves that must be refined.
fn violating_leaves(leaves: &[Octant], dirs: &[(i32, i32, i32)]) -> Vec<usize> {
    let mut mark = vec![false; leaves.len()];
    for o in leaves {
        for &(dx, dy, dz) in dirs {
            let Some(n) = o.neighbor(dx, dy, dz) else {
                continue;
            };
            if let Some(idx) = find_containing(leaves, &n) {
                if leaves[idx].level + 1 < o.level {
                    mark[idx] = true;
                }
            }
        }
    }
    mark.iter()
        .enumerate()
        .filter_map(|(i, &m)| if m { Some(i) } else { None })
        .collect()
}

/// Grow-only scratch buffers for [`balance_local_kind_ws`]. Reusing one
/// workspace across adapt cycles makes warm balance calls allocation-free
/// once the buffers have reached their steady-state capacity.
#[derive(Default)]
pub struct BalanceWorkspace {
    /// Per-level demand buckets (index = level).
    buckets: Vec<Vec<Octant>>,
    /// Merged, sorted demand set.
    demands: Vec<Octant>,
    /// Output leaf buffer; swapped with the caller's vector on return.
    out: Vec<Octant>,
}

impl BalanceWorkspace {
    pub fn new() -> BalanceWorkspace {
        BalanceWorkspace::default()
    }

    /// Total heap capacity currently held, in bytes. The `amr.alloc_bytes`
    /// counter reports growth of this value across a warm adapt cycle.
    pub fn capacity_bytes(&self) -> u64 {
        let oct = std::mem::size_of::<Octant>() as u64;
        let mut b = (self.demands.capacity() + self.out.capacity()) as u64 * oct;
        b += (self.buckets.capacity() * std::mem::size_of::<Vec<Octant>>()) as u64;
        for v in &self.buckets {
            b += v.capacity() as u64 * oct;
        }
        b
    }
}

/// Recursively rebuild the subtree of `v`: split wherever a demand in
/// `demands` (all strict descendants of `v`, sorted) forces finer leaves.
fn emit_completed(v: Octant, demands: &[Octant], out: &mut Vec<Octant>) {
    if demands.is_empty() {
        out.push(v);
        return;
    }
    debug_assert!(v.level < MAX_LEVEL, "demand below MAX_LEVEL leaf");
    let mut rest = demands;
    for i in 0..8u8 {
        let c = v.child(i);
        // Demands belonging to child `c` occupy a contiguous key range
        // [c.key(), c.last_descendant().key()]; children are visited in
        // Morton order, so a moving split point suffices.
        let last_key = c.last_descendant().key();
        let hi = rest.partition_point(|s| s.key() <= last_key);
        let (mine, tail) = rest.split_at(hi);
        rest = tail;
        // Entries at or above c's level share c's anchor and cannot force
        // a split of c; they sort first within the range.
        let mut lo = 0;
        while lo < mine.len() && mine[lo].level <= c.level {
            lo += 1;
        }
        emit_completed(c, &mine[lo..], out);
    }
}

/// Fast balance of a complete local octree in place: seed-set propagation
/// plus recursive completion (see module docs). Scratch comes from `ws`;
/// warm calls with a retained workspace do not allocate. Returns the
/// number of leaves added.
pub fn balance_local_kind_ws(
    leaves: &mut Vec<Octant>,
    kind: BalanceKind,
    ws: &mut BalanceWorkspace,
) -> usize {
    let before = leaves.len();
    if before <= 1 {
        return 0; // a root-only (or empty) tree is trivially balanced
    }
    let dirs = kind.direction_slice();

    while ws.buckets.len() <= MAX_LEVEL as usize {
        ws.buckets.push(Vec::new());
    }
    for b in &mut ws.buckets {
        b.clear();
    }
    ws.demands.clear();

    // Seed: every input leaf demands its own level over its own region.
    let mut max_level = 0u8;
    for o in leaves.iter() {
        if o.level >= 2 {
            ws.buckets[o.level as usize].push(*o);
        }
        max_level = max_level.max(o.level);
    }

    // Propagate finest → coarsest. A demand `w` at level k forces every
    // kind-neighbor of parent(w) to hold leaves at level ≥ k−1: octree
    // completeness refines the whole parent region to ≥ k, and every
    // neighbor of a level-k leaf inside it resolves to one of those
    // parent-neighbors (the parent rule also covers leaves created
    // *collaterally* by completion, which a same-level neighbor rule
    // misses).
    let mut k = max_level as usize;
    while k >= 2 {
        let (lower, upper) = ws.buckets.split_at_mut(k);
        let cur = &mut upper[0];
        let down = &mut lower[k - 1];
        cur.sort_unstable();
        cur.dedup();
        // Siblings propagate identically; sorted order keeps them
        // adjacent, so deduplicate by parent on the fly.
        let mut last_parent: Option<Octant> = None;
        for w in cur.iter() {
            let p = w.parent();
            if last_parent == Some(p) {
                continue;
            }
            last_parent = Some(p);
            for &(dx, dy, dz) in dirs {
                if let Some(nb) = p.neighbor(dx, dy, dz) {
                    down.push(nb);
                }
            }
        }
        k -= 1;
    }

    // Merge the per-level buckets into one demand array sorted in octree
    // pre-order (key, then level) for range queries.
    for b in &ws.buckets {
        ws.demands.extend_from_slice(b);
    }
    ws.demands.sort_unstable();
    ws.demands.dedup();

    // Rebuild: each input leaf is split exactly where a strictly finer
    // demand lands inside it. Demands strictly inside leaf L are exactly
    // those sorting after L with keys ≤ L's last-descendant key.
    ws.out.clear();
    for i in 0..leaves.len() {
        let leaf = leaves[i];
        let lo = ws.demands.partition_point(|s| *s <= leaf);
        let last_key = leaf.last_descendant().key();
        let hi = ws.demands.partition_point(|s| s.key() <= last_key);
        emit_completed(leaf, &ws.demands[lo..hi], &mut ws.out);
    }
    std::mem::swap(leaves, &mut ws.out);
    leaves.len() - before
}

/// Balance a complete local octree in place with the given neighbor set.
/// Returns the number of leaves added. Convenience wrapper over
/// [`balance_local_kind_ws`] with a throwaway workspace.
pub fn balance_local_kind(leaves: &mut Vec<Octant>, kind: BalanceKind) -> usize {
    let mut ws = BalanceWorkspace::new();
    balance_local_kind_ws(leaves, kind, &mut ws)
}

/// Buffered ripple balance (the PR 3 algorithm, retained as the benchmark
/// baseline): refine every violator per sweep, repeat until clean. Same
/// unique result as [`balance_local_kind`], much more work per round.
pub fn balance_local_ripple_kind(leaves: &mut Vec<Octant>, kind: BalanceKind) -> usize {
    let dirs = kind.direction_slice();
    let before = leaves.len();
    loop {
        let viol = violating_leaves(leaves, dirs);
        if viol.is_empty() {
            break;
        }
        // Refine the violators; splice children in place to keep order.
        let mut out = Vec::with_capacity(leaves.len() + 7 * viol.len());
        let mut v = 0;
        for (i, &o) in leaves.iter().enumerate() {
            if v < viol.len() && viol[v] == i {
                out.extend_from_slice(&o.children());
                v += 1;
            } else {
                out.push(o);
            }
        }
        *leaves = out;
    }
    leaves.len() - before
}

/// Balance with the default full 26-neighbor condition.
pub fn balance_local(leaves: &mut Vec<Octant>) -> usize {
    balance_local_kind(leaves, BalanceKind::Full)
}

/// Check the 2:1 condition for the given neighbor set.
pub fn is_balanced_kind(leaves: &[Octant], kind: BalanceKind) -> bool {
    let dirs = kind.direction_slice();
    for o in leaves {
        for &(dx, dy, dz) in dirs {
            let Some(n) = o.neighbor(dx, dy, dz) else {
                continue;
            };
            if let Some(idx) = find_containing(leaves, &n) {
                if leaves[idx].level + 1 < o.level {
                    return false;
                }
            }
        }
    }
    true
}

/// Check the full 26-neighbor 2:1 condition.
pub fn is_balanced(leaves: &[Octant]) -> bool {
    is_balanced_kind(leaves, BalanceKind::Full)
}

/// Naive reference balance — the differential oracle: refine one violator
/// at a time and restart the scan. Shares the [`BalanceKind`] direction
/// selection with the fast and ripple paths so all three are comparable
/// for every kind. Same (unique) result, much more work.
pub fn balance_local_naive_kind(leaves: &mut Vec<Octant>, kind: BalanceKind) -> usize {
    let dirs = kind.direction_slice();
    let before = leaves.len();
    'outer: loop {
        let viol = violating_leaves(leaves, dirs);
        match viol.first() {
            None => break 'outer,
            Some(&i) => {
                let o = leaves[i];
                leaves.splice(i..=i, o.children());
            }
        }
    }
    leaves.len() - before
}

/// Naive reference balance with the full 26-neighbor condition.
pub fn balance_local_naive(leaves: &mut Vec<Octant>) -> usize {
    balance_local_naive_kind(leaves, BalanceKind::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{new_tree, refine};
    use crate::{is_complete, is_valid_linear};

    /// Refine toward the domain center several levels deep. Unlike a
    /// domain-corner spike (which grades itself), the leaves hugging the
    /// center planes end up adjacent to level-1 leaves across those
    /// planes, violating 2:1 for depth ≥ 3.
    fn center_spike(depth: u8) -> Vec<Octant> {
        use crate::morton::{MAX_LEVEL, ROOT_LEN};
        let target = Octant::new(
            ROOT_LEN / 2 - 1,
            ROOT_LEN / 2 - 1,
            ROOT_LEN / 2 - 1,
            MAX_LEVEL,
        );
        let mut t = new_tree(1);
        for _ in 1..depth {
            refine(&mut t, |o| o.contains(&target));
        }
        t
    }

    #[test]
    fn uniform_tree_is_balanced() {
        assert!(is_balanced(&new_tree(3)));
        let mut t = new_tree(3);
        assert_eq!(balance_local(&mut t), 0);
    }

    #[test]
    fn spike_is_unbalanced_then_balanced() {
        let mut t = center_spike(5);
        assert!(!is_balanced(&t));
        let added = balance_local(&mut t);
        assert!(added > 0);
        assert!(is_balanced(&t));
        assert!(is_complete(&t));
        assert!(is_valid_linear(&t));
    }

    #[test]
    fn balance_only_refines() {
        let orig = center_spike(6);
        let mut t = orig.clone();
        balance_local(&mut t);
        // Every new leaf must be contained in exactly one original leaf.
        for leaf in &t {
            let n = orig.iter().filter(|o| o.contains(leaf)).count();
            assert_eq!(n, 1, "leaf {leaf:?} not covered exactly once");
        }
        assert!(t.len() >= orig.len());
    }

    #[test]
    fn face_balance_weaker_than_full() {
        let mut a = center_spike(6);
        let mut b = a.clone();
        balance_local_kind(&mut a, BalanceKind::Face);
        balance_local_kind(&mut b, BalanceKind::Full);
        assert!(is_balanced_kind(&a, BalanceKind::Face));
        assert!(is_balanced_kind(&b, BalanceKind::Full));
        // Full balance implies face balance.
        assert!(is_balanced_kind(&b, BalanceKind::Face));
        assert!(b.len() >= a.len());
    }

    #[test]
    fn naive_matches_buffered() {
        let mut a = center_spike(5);
        let mut b = a.clone();
        balance_local(&mut a);
        balance_local_naive(&mut b);
        assert_eq!(
            a, b,
            "both balance algorithms must produce the minimal balanced refinement"
        );
    }

    #[test]
    fn fast_matches_ripple_and_naive_all_kinds() {
        for depth in [3u8, 5, 6] {
            for kind in [BalanceKind::Face, BalanceKind::FaceEdge, BalanceKind::Full] {
                let mut fast = center_spike(depth);
                let mut ripple = fast.clone();
                let mut naive = fast.clone();
                let n_fast = balance_local_kind(&mut fast, kind);
                let n_ripple = balance_local_ripple_kind(&mut ripple, kind);
                let n_naive = balance_local_naive_kind(&mut naive, kind);
                assert_eq!(fast, ripple, "fast vs ripple, depth {depth}, {kind:?}");
                assert_eq!(fast, naive, "fast vs naive, depth {depth}, {kind:?}");
                assert_eq!(n_fast, n_ripple);
                assert_eq!(n_fast, n_naive);
                assert!(is_balanced_kind(&fast, kind));
                assert!(is_complete(&fast));
                assert!(is_valid_linear(&fast));
            }
        }
    }

    #[test]
    fn fast_balance_warm_calls_do_not_grow_workspace() {
        // The output buffer is swapped with the caller's vector, so the
        // zero-allocation contract is on the closed system {leaf vector,
        // workspace}: its total capacity stops growing once warm.
        let sys_cap = |t: &Vec<Octant>, ws: &BalanceWorkspace| {
            ws.capacity_bytes() + (t.capacity() * std::mem::size_of::<Octant>()) as u64
        };
        let mut ws = BalanceWorkspace::new();
        let mut t = center_spike(6);
        balance_local_kind_ws(&mut t, BalanceKind::Full, &mut ws);
        balance_local_kind_ws(&mut t, BalanceKind::Full, &mut ws);
        let cap = sys_cap(&t, &ws);
        balance_local_kind_ws(&mut t, BalanceKind::Full, &mut ws);
        balance_local_kind_ws(&mut t, BalanceKind::Full, &mut ws);
        assert_eq!(sys_cap(&t, &ws), cap, "warm balance must not allocate");
    }

    #[test]
    fn direction_counts() {
        assert_eq!(BalanceKind::Face.directions().len(), 6);
        assert_eq!(BalanceKind::FaceEdge.directions().len(), 18);
        assert_eq!(BalanceKind::Full.directions().len(), 26);
        // Static slices match the iterator-derived sets order-for-order.
        let all: Vec<_> = Octant::neighbor_directions().collect();
        assert_eq!(BalanceKind::Full.direction_slice(), &all[..]);
    }
}
