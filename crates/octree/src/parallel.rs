//! The distributed octree: Morton-curve partitioning, parallel 2:1
//! balance, repartitioning, field transfer, and the ghost layer.
//!
//! Each rank stores only the contiguous Morton segment of leaves it owns
//! (paper, Section IV-A). The only global metadata is one marker per rank
//! (the Morton key of the first owned leaf), established with an
//! `allgather` of one long integer per core — exactly the paper's scheme.

use crate::balance::BalanceKind;
use crate::mark::{mark_elements, Mark, MarkParams};
use crate::morton::Octant;
use crate::ops::{self, find_containing};
use scomm::{pod, Comm};

/// Tags for point-to-point traffic (none currently needed; all exchanges
/// are alltoallv-based).
#[allow(dead_code)]
const TAG_BALANCE: u64 = 0x0c7ee;

/// A distributed linear octree: this rank's view.
pub struct DistOctree<'c> {
    comm: &'c Comm,
    /// Locally owned leaves, Morton-sorted.
    pub local: Vec<Octant>,
    /// Morton key of each rank's first owned leaf (`u64::MAX` for a rank
    /// with no elements and none following); length = world size.
    markers: Vec<u64>,
    /// Per-rank element counts.
    counts: Vec<u64>,
}

/// Description of the element movement performed by a repartition; apply
/// the same plan to element-attached data with [`transfer_fields`]
/// (the paper's `TransferFields`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// For each destination rank, the half-open local index range of
    /// elements sent there (empty ranges allowed).
    pub send_ranges: Vec<(usize, usize)>,
    /// Number of elements owned after the repartition.
    pub new_len: usize,
}

impl<'c> DistOctree<'c> {
    /// `NewTree`: build a uniform tree at `level`, leaves divided evenly
    /// between ranks in Morton order.
    pub fn new_uniform(comm: &'c Comm, level: u8) -> Self {
        let n = 1u64 << (3 * level as u64);
        let p = comm.size() as u64;
        let r = comm.rank() as u64;
        let lo = (n * r) / p;
        let hi = (n * (r + 1)) / p;
        let local: Vec<Octant> = (lo..hi)
            .map(|i| Octant::from_uniform_index(level, i))
            .collect();
        let mut tree = DistOctree {
            comm,
            local,
            markers: Vec::new(),
            counts: Vec::new(),
        };
        tree.update_markers();
        tree
    }

    /// Wrap already-distributed leaves (must be globally Morton-sorted and
    /// non-overlapping across ranks).
    pub fn from_local(comm: &'c Comm, local: Vec<Octant>) -> Self {
        let mut tree = DistOctree {
            comm,
            local,
            markers: Vec::new(),
            counts: Vec::new(),
        };
        tree.update_markers();
        tree
    }

    /// Re-establish the per-rank markers after any structural change.
    /// One allgather of `(first_key, count)` per rank.
    fn update_markers(&mut self) {
        let first = self.local.first().map(|o| o.key()).unwrap_or(u64::MAX);
        let gathered = self.comm.allgatherv(&[(first, self.local.len() as u64)]);
        let p = self.comm.size();
        self.markers = vec![u64::MAX; p];
        self.counts = vec![0; p];
        for (r, &(key, count)) in gathered.iter().enumerate() {
            self.counts[r] = count;
            self.markers[r] = key;
        }
        // Give empty ranks the marker of the next non-empty rank so that
        // ownership search never selects them.
        let mut next = u64::MAX;
        for r in (0..p).rev() {
            if self.counts[r] == 0 {
                self.markers[r] = next;
            } else {
                next = self.markers[r];
            }
        }
    }

    /// Global number of elements.
    pub fn global_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Global index of this rank's first element.
    pub fn global_offset(&self) -> u64 {
        self.counts[..self.comm.rank()].iter().sum()
    }

    /// The communicator this tree lives on.
    pub fn comm(&self) -> &'c Comm {
        self.comm
    }

    /// Per-rank element counts (metadata from the last marker exchange).
    pub fn rank_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The rank owning `octant` (by its first descendant). Assumes the
    /// global tree covers the octant's region.
    pub fn owner_of(&self, octant: &Octant) -> usize {
        let key = octant.key(); // first descendant shares the anchor key
        let idx = self.markers.partition_point(|&m| m <= key);
        idx.saturating_sub(1)
    }

    /// The inclusive rank range whose segments intersect the region of
    /// `octant` (it may span several ranks).
    pub fn owner_range(&self, octant: &Octant) -> (usize, usize) {
        let lo = self.owner_of(&octant.first_descendant());
        let hi = self.owner_of(&octant.last_descendant());
        (lo, hi)
    }

    /// `RefineTree`: purely local, no communication (markers refreshed).
    pub fn refine<F: FnMut(&Octant) -> bool>(&mut self, should_refine: F) -> usize {
        let n = ops::refine(&mut self.local, should_refine);
        self.update_markers();
        n
    }

    /// `CoarsenTree`: local families only — as in the paper, families
    /// spanning rank boundaries are not coarsened (at most `P−1` such
    /// families exist).
    pub fn coarsen<F: FnMut(&Octant) -> bool>(&mut self, should_coarsen: F) -> usize {
        let n = ops::coarsen(&mut self.local, should_coarsen);
        self.update_markers();
        n
    }

    /// `MarkElements` + apply: adapt toward a global element-count target
    /// driven by per-element indicators. Returns
    /// `(refined, coarsened_families)`.
    pub fn adapt_to_target(&mut self, indicators: &[f64], params: &MarkParams) -> (usize, usize) {
        let marks = mark_elements(self.comm, &self.local, indicators, params);
        let ref_set: Vec<bool> = marks.iter().map(|m| *m == Mark::Refine).collect();
        let coar_set: Vec<bool> = marks.iter().map(|m| *m == Mark::Coarsen).collect();
        // Coarsen first (marks are family-aligned by construction), then
        // refine survivors.
        let coarsened = ops::coarsen_marked(&mut self.local, &coar_set);
        // Rebuild the refine flags against the post-coarsening leaf list:
        // coarsened families disappear, other leaves keep their flag.
        let mut new_flags = Vec::with_capacity(self.local.len());
        let mut j = 0usize;
        while new_flags.len() < self.local.len() {
            if coar_set[j] {
                new_flags.push(false); // freshly coarsened parent
                j += 8;
            } else {
                new_flags.push(ref_set[j]);
                j += 1;
            }
        }
        let refined = ops::refine_marked(&mut self.local, &new_flags);
        self.update_markers();
        (refined, coarsened)
    }

    /// Parallel `BalanceTree`: prioritized ripple propagation. Each round
    /// balances locally, then ships boundary size-requests to neighboring
    /// ranks; rounds repeat until a global fixpoint (the round count is
    /// bounded by the number of levels, as in the paper). Returns the
    /// number of leaves added globally.
    pub fn balance(&mut self, kind: BalanceKind) -> u64 {
        let before = self.global_count();
        let dirs = kind.directions();
        let p = self.comm.size();
        loop {
            // Local pass first (no communication).
            crate::balance::balance_local_kind(&mut self.local, kind);
            self.update_markers();

            // Collect remote size requests: for each boundary leaf and
            // direction, the same-size neighbor position and my level.
            let mut outgoing: Vec<Vec<(Octant, u64)>> = vec![Vec::new(); p];
            for o in &self.local {
                for &(dx, dy, dz) in &dirs {
                    let Some(n) = o.neighbor(dx, dy, dz) else {
                        continue;
                    };
                    let (rlo, rhi) = self.owner_range(&n);
                    for r in rlo..=rhi {
                        if r != self.comm.rank() {
                            outgoing[r].push((n, o.level as u64));
                        }
                    }
                }
            }
            let incoming = self.comm.alltoallv(&outgoing);

            // A request (n, lvl) means: some remote leaf at level `lvl`
            // touches region `n`; any local leaf containing `n` must have
            // level ≥ lvl−1.
            let mut to_refine = vec![false; self.local.len()];
            let mut changed = 0u64;
            for reqs in &incoming {
                for &(n, lvl) in reqs {
                    if let Some(i) = find_containing(&self.local, &n) {
                        if (self.local[i].level as u64) + 1 < lvl && !to_refine[i] {
                            to_refine[i] = true;
                            changed += 1;
                        }
                    }
                }
            }
            let global_changed = self.comm.allreduce_sum(&[changed])[0];
            if global_changed == 0 {
                break;
            }
            if changed > 0 {
                let mut i = 0usize;
                ops::refine(&mut self.local, |_| {
                    let m = to_refine[i];
                    i += 1;
                    m
                });
            }
            self.update_markers();
        }
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(self.validate(), "octree invariants violated after balance");
        }
        self.global_count() - before
    }

    /// `PartitionTree`: redistribute leaves so that every rank owns an
    /// equal share (±1) of the Morton curve. Returns the plan, which must
    /// be replayed on element data with [`transfer_fields`].
    pub fn partition(&mut self) -> PartitionPlan {
        let p = self.comm.size() as u64;
        let n = self.global_count();
        let my_off = self.global_offset();
        let my_len = self.local.len() as u64;

        // Target global ranges: rank r owns [r*n/p, (r+1)*n/p).
        let target_lo = |r: u64| (n * r) / p;
        let mut send_ranges = vec![(0usize, 0usize); p as usize];
        let mut outgoing: Vec<Vec<Octant>> = vec![Vec::new(); p as usize];
        for r in 0..p {
            let lo = target_lo(r).max(my_off);
            let hi = target_lo(r + 1).min(my_off + my_len);
            if lo < hi {
                let s = (lo - my_off) as usize;
                let e = (hi - my_off) as usize;
                send_ranges[r as usize] = (s, e);
                outgoing[r as usize] = self.local[s..e].to_vec();
            } else {
                // Keep ranges well-formed (empty) at a valid position.
                let s = (lo.min(my_off + my_len).max(my_off) - my_off) as usize;
                send_ranges[r as usize] = (s, s);
            }
        }
        let incoming = self.comm.alltoallv(&outgoing);
        let mut new_local = Vec::with_capacity((n / p + 1) as usize);
        for part in incoming {
            new_local.extend(part); // rank order = Morton order
        }
        self.local = new_local;
        self.update_markers();
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(
                self.validate(),
                "octree invariants violated after partition"
            );
        }
        PartitionPlan {
            send_ranges,
            new_len: self.local.len(),
        }
    }

    /// Build the ghost layer: the remote leaves face/edge/corner-adjacent
    /// to this rank's leaves, with their owner ranks, Morton-sorted.
    /// One alltoallv, mirroring the paper's `ExtractMesh` ghost gather.
    pub fn ghost_layer(&self) -> Vec<(usize, Octant)> {
        let p = self.comm.size();
        let me = self.comm.rank();
        // Send each boundary leaf to every rank owning an adjacent region.
        let mut outgoing: Vec<Vec<Octant>> = vec![Vec::new(); p];
        // Per-leaf dedup of destination ranks. A leaf's 26 neighbor
        // regions can span arbitrarily many ranks when the curve is
        // finely partitioned, so this must not be a fixed-size buffer.
        let mut sent_to: Vec<usize> = Vec::new();
        for o in &self.local {
            sent_to.clear();
            for (dx, dy, dz) in Octant::neighbor_directions() {
                let Some(n) = o.neighbor(dx, dy, dz) else {
                    continue;
                };
                let (rlo, rhi) = self.owner_range(&n);
                for r in rlo..=rhi.min(p - 1) {
                    if r != me && !sent_to.contains(&r) {
                        sent_to.push(r);
                        outgoing[r].push(*o);
                    }
                }
            }
        }
        let incoming = self.comm.alltoallv(&outgoing);
        let mut ghosts: Vec<(usize, Octant)> = Vec::new();
        for (src, octs) in incoming.iter().enumerate() {
            for &o in octs {
                // Keep only ghosts actually adjacent to my leaves (the
                // sender over-approximated with owner ranges).
                let adjacent = Octant::neighbor_directions().any(|(dx, dy, dz)| {
                    o.neighbor(dx, dy, dz)
                        .map(|n| {
                            // Does region n intersect my ownership range?
                            let (rlo, rhi) = self.owner_range(&n);
                            rlo <= me && me <= rhi
                        })
                        .unwrap_or(false)
                });
                if adjacent {
                    ghosts.push((src, o));
                }
            }
        }
        ghosts.sort_by_key(|a| a.1);
        ghosts.dedup();
        ghosts
    }

    /// Validate the distributed linear-octree invariants (collective):
    /// local validity, global sortedness across rank boundaries, global
    /// completeness.
    pub fn validate(&self) -> bool {
        let locally_valid = crate::is_valid_linear(&self.local);
        let first = self.local.first().map(|o| o.key()).unwrap_or(u64::MAX);
        let last = self
            .local
            .last()
            .map(|o| o.last_descendant().key())
            .unwrap_or(0);
        let firsts = self.comm.allgatherv(&[first]);
        let lasts = self.comm.allgatherv(&[last]);
        let mut globally_sorted = true;
        let mut prev_last = 0u64;
        for r in 0..self.comm.size() {
            if firsts[r] == u64::MAX {
                continue;
            }
            if firsts[r] < prev_last {
                globally_sorted = false;
            }
            prev_last = lasts[r].max(prev_last);
        }
        let vol: u128 = self
            .local
            .iter()
            .map(|o| {
                let s = o.len() as u128;
                s * s * s
            })
            .sum();
        let vols = self.comm.allgatherv(&[(vol >> 64) as u64, vol as u64]);
        let mut total: u128 = 0;
        for c in vols.chunks(2) {
            total += ((c[0] as u128) << 64) | c[1] as u128;
        }
        let complete = total == (crate::ROOT_LEN as u128).pow(3);
        let ok = locally_valid && globally_sorted && complete;
        self.comm.allreduce_min(&[ok as u64])[0] == 1
    }
}

/// `TransferFields`: replay a [`PartitionPlan`] on element-attached data
/// with `ncomp` values per element. Returns this rank's data after the
/// repartition, in the new element order.
pub fn transfer_fields<T: pod::Pod>(
    comm: &Comm,
    plan: &PartitionPlan,
    data: &[T],
    ncomp: usize,
) -> Vec<T> {
    let p = comm.size();
    assert_eq!(plan.send_ranges.len(), p);
    let mut outgoing: Vec<Vec<T>> = vec![Vec::new(); p];
    for (r, &(s, e)) in plan.send_ranges.iter().enumerate() {
        outgoing[r] = data[s * ncomp..e * ncomp].to_vec();
    }
    let incoming = comm.alltoallv(&outgoing);
    let mut out = Vec::with_capacity(plan.new_len * ncomp);
    for part in incoming {
        out.extend(part);
    }
    assert_eq!(out.len(), plan.new_len * ncomp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{is_balanced, BalanceKind};
    use scomm::spmd;

    #[test]
    fn uniform_tree_distributes_evenly() {
        let counts = spmd::run(4, |c| {
            let t = DistOctree::new_uniform(c, 2);
            assert!(t.validate());
            assert_eq!(t.global_count(), 64);
            t.local.len()
        });
        assert_eq!(counts, vec![16, 16, 16, 16]);
    }

    #[test]
    fn owner_of_covers_all_ranks() {
        spmd::run(4, |c| {
            let t = DistOctree::new_uniform(c, 2);
            // Every leaf of the global tree must be owned by the rank that
            // holds it locally.
            for (i, o) in crate::ops::new_tree(2).iter().enumerate() {
                let owner = t.owner_of(o);
                assert_eq!(owner, i / 16, "leaf {i}");
            }
        });
    }

    #[test]
    fn partition_rebalances_after_local_refine() {
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            // Only rank 0 refines: load becomes skewed 8:1.
            if c.rank() == 0 {
                t.refine(|_| true);
            } else {
                t.refine(|_| false);
            }
            assert!(t.validate());
            let n = t.global_count();
            let plan = t.partition();
            assert!(t.validate());
            assert_eq!(t.global_count(), n);
            assert_eq!(plan.new_len, t.local.len());
            // Even split ±1.
            let share = n / c.size() as u64;
            assert!((t.local.len() as u64) >= share && (t.local.len() as u64) <= share + 1);
        });
    }

    #[test]
    fn transfer_fields_follows_elements() {
        spmd::run(3, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            if c.rank() == 1 {
                t.refine(|o| o.child_id() < 4);
            } else {
                t.refine(|_| false);
            }
            // Attach each element's Morton key as its "field" value.
            let data: Vec<u64> = t.local.iter().map(|o| o.key()).collect();
            let plan = t.partition();
            let moved = transfer_fields(c, &plan, &data, 1);
            let expect: Vec<u64> = t.local.iter().map(|o| o.key()).collect();
            assert_eq!(moved, expect, "fields must follow their elements");
        });
    }

    #[test]
    fn parallel_balance_matches_serial() {
        // Refine a center spike split across ranks; parallel balance must
        // produce the same global tree as serial balance of the union.
        let locals = spmd::run(4, |c| {
            use crate::morton::{MAX_LEVEL, ROOT_LEN};
            let target = Octant::new(
                ROOT_LEN / 2 - 1,
                ROOT_LEN / 2 - 1,
                ROOT_LEN / 2 - 1,
                MAX_LEVEL,
            );
            let mut t = DistOctree::new_uniform(c, 1);
            for _ in 0..4 {
                t.refine(|o| o.contains(&target));
                t.partition();
            }
            t.balance(BalanceKind::Full);
            assert!(t.validate());
            t.local.clone()
        });
        let mut parallel_union: Vec<Octant> = locals.into_iter().flatten().collect();
        parallel_union.sort();

        let target = Octant::new(
            crate::ROOT_LEN / 2 - 1,
            crate::ROOT_LEN / 2 - 1,
            crate::ROOT_LEN / 2 - 1,
            crate::MAX_LEVEL,
        );
        let mut serial = crate::ops::new_tree(1);
        for _ in 0..4 {
            crate::ops::refine(&mut serial, |o| o.contains(&target));
        }
        crate::balance::balance_local(&mut serial);
        assert!(is_balanced(&parallel_union));
        assert_eq!(parallel_union, serial);
    }

    #[test]
    fn ghost_layer_is_symmetric_and_adjacent() {
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] < 0.5);
            t.balance(BalanceKind::Full);
            t.partition();
            let ghosts = t.ghost_layer();
            // Each ghost must be adjacent to at least one local leaf and
            // owned by the rank recorded.
            for (owner, g) in &ghosts {
                assert_ne!(*owner, c.rank());
                assert_eq!(t.owner_of(g), *owner);
                let touches = t.local.iter().any(|o| {
                    Octant::neighbor_directions().any(|(dx, dy, dz)| {
                        // Adjacency test via integer intervals expanded by
                        // one lattice unit.
                        let _ = (dx, dy, dz);
                        let (ox0, oy0, oz0) = (o.x as i64, o.y as i64, o.z as i64);
                        let ol = o.len() as i64;
                        let (gx0, gy0, gz0) = (g.x as i64, g.y as i64, g.z as i64);
                        let gl = g.len() as i64;
                        let overlap =
                            |a0: i64, al: i64, b0: i64, bl: i64| a0 <= b0 + bl && b0 <= a0 + al;
                        overlap(ox0, ol, gx0, gl)
                            && overlap(oy0, ol, gy0, gl)
                            && overlap(oz0, ol, gz0, gl)
                    })
                });
                assert!(touches, "ghost {g:?} not adjacent to any local leaf");
            }
        });
    }

    #[test]
    fn adapt_to_target_tracks_count() {
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 3);
            let ind: Vec<f64> = t
                .local
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    (-((ctr[0] - 0.5).powi(2) + (ctr[1] - 0.5).powi(2)) * 20.0).exp()
                })
                .collect();
            let params = MarkParams {
                target_elements: 900,
                ..Default::default()
            };
            t.adapt_to_target(&ind, &params);
            assert!(t.validate());
            let n = t.global_count() as f64;
            assert!((n - 900.0).abs() / 900.0 < 0.3, "global count {n}");
        });
    }

    #[test]
    fn empty_rank_handling() {
        // More ranks than elements: level-0 tree on 3 ranks.
        spmd::run(3, |c| {
            let t = DistOctree::new_uniform(c, 0);
            assert_eq!(t.global_count(), 1);
            assert!(t.validate());
            let owner = t.owner_of(&Octant::root());
            // Exactly one rank owns the root; all agree on which.
            let owners = c.allgatherv(&[owner as u64]);
            assert!(owners.iter().all(|&o| o == owners[0]));
            assert_eq!(c.allreduce_sum(&[t.local.len() as u64])[0], 1);
        });
    }
}
