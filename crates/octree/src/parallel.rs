//! The distributed octree: Morton-curve partitioning, parallel 2:1
//! balance, repartitioning, field transfer, and the ghost layer.
//!
//! Each rank stores only the contiguous Morton segment of leaves it owns
//! (paper, Section IV-A). The only global metadata is one marker per rank
//! (the Morton key of the first owned leaf), established with an
//! `allgather` of one long integer per core — exactly the paper's scheme.

use crate::balance::{BalanceKind, BalanceWorkspace};
use crate::mark::{mark_elements_into, Mark, MarkParams};
use crate::morton::Octant;
use crate::ops::{self, find_containing};
use scomm::{pod, Comm};

/// Tags for point-to-point traffic (none currently needed; all exchanges
/// are alltoallv-based).
#[allow(dead_code)]
const TAG_BALANCE: u64 = 0x0c7ee;

/// Grow-only scratch for the distributed adaptation hot path. One instance
/// lives inside each [`DistOctree`]; once every buffer has reached its
/// steady-state capacity a warm mark→refine→coarsen→balance→partition
/// cycle performs no heap allocation in this crate. [`DistOctree::alloc_bytes`]
/// reports the tracked capacity so callers can prove it (the
/// `amr.alloc_bytes` obs counter).
#[derive(Default)]
struct TreeWorkspace {
    /// Seed-propagation balance scratch.
    bal: BalanceWorkspace,
    /// Swap partner for refine/coarsen rebuilds.
    scratch: Vec<Octant>,
    /// Per-destination staging of balance size-requests.
    req_bufs: Vec<Vec<(Octant, u64)>>,
    /// Flat send/receive buffers for the balance exchange.
    send_flat: Vec<(Octant, u64)>,
    send_counts: Vec<usize>,
    recv_flat: Vec<(Octant, u64)>,
    recv_counts: Vec<usize>,
    /// Per-leaf refine flags driven by remote requests.
    to_refine: Vec<bool>,
    /// Partition exchange buffers (the send side is `local` itself).
    part_counts: Vec<usize>,
    part_recv: Vec<Octant>,
    part_recv_counts: Vec<usize>,
    /// `adapt_to_target` buffers.
    marks: Vec<Mark>,
    coarsen_flags: Vec<bool>,
    refine_flags: Vec<bool>,
}

impl TreeWorkspace {
    fn capacity_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        let mut b = self.bal.capacity_bytes();
        b += cap(&self.scratch) + cap(&self.send_flat) + cap(&self.recv_flat);
        b += cap(&self.send_counts) + cap(&self.recv_counts);
        b += cap(&self.to_refine) + cap(&self.part_counts) + cap(&self.part_recv);
        b += cap(&self.part_recv_counts) + cap(&self.marks);
        b += cap(&self.coarsen_flags) + cap(&self.refine_flags);
        b += cap(&self.req_bufs);
        for v in &self.req_bufs {
            b += cap(v);
        }
        b
    }
}

/// A distributed linear octree: this rank's view.
pub struct DistOctree<'c> {
    comm: &'c Comm,
    /// Locally owned leaves, Morton-sorted.
    pub local: Vec<Octant>,
    /// Morton key of each rank's first owned leaf (`u64::MAX` for a rank
    /// with no elements and none following); length = world size.
    markers: Vec<u64>,
    /// Per-rank element counts.
    counts: Vec<u64>,
    /// Reused `(first_key, count)` gather buffer for marker refresh.
    gather: Vec<(u64, u64)>,
    /// Grow-only adaptation scratch.
    ws: TreeWorkspace,
    /// Ripple rounds used by the most recent [`DistOctree::balance`] call.
    balance_rounds: u64,
}

/// Description of the element movement performed by a repartition; apply
/// the same plan to element-attached data with [`transfer_fields`]
/// (the paper's `TransferFields`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionPlan {
    /// For each destination rank, the half-open local index range of
    /// elements sent there (empty ranges allowed).
    pub send_ranges: Vec<(usize, usize)>,
    /// Number of elements owned after the repartition.
    pub new_len: usize,
}

impl<'c> DistOctree<'c> {
    /// `NewTree`: build a uniform tree at `level`, leaves divided evenly
    /// between ranks in Morton order.
    pub fn new_uniform(comm: &'c Comm, level: u8) -> Self {
        let n = 1u64 << (3 * level as u64);
        let p = comm.size() as u64;
        let r = comm.rank() as u64;
        let lo = (n * r) / p;
        let hi = (n * (r + 1)) / p;
        let local: Vec<Octant> = (lo..hi)
            .map(|i| Octant::from_uniform_index(level, i))
            .collect();
        let mut tree = DistOctree {
            comm,
            local,
            markers: Vec::new(),
            counts: Vec::new(),
            gather: Vec::new(),
            ws: TreeWorkspace::default(),
            balance_rounds: 0,
        };
        tree.update_markers();
        tree
    }

    /// Wrap already-distributed leaves (must be globally Morton-sorted and
    /// non-overlapping across ranks).
    pub fn from_local(comm: &'c Comm, local: Vec<Octant>) -> Self {
        let mut tree = DistOctree {
            comm,
            local,
            markers: Vec::new(),
            counts: Vec::new(),
            gather: Vec::new(),
            ws: TreeWorkspace::default(),
            balance_rounds: 0,
        };
        tree.update_markers();
        tree
    }

    /// Re-establish the per-rank markers after any structural change.
    /// One allgather of `(first_key, count)` per rank; all buffers reused.
    fn update_markers(&mut self) {
        let comm = self.comm;
        let first = self.local.first().map(|o| o.key()).unwrap_or(u64::MAX);
        comm.allgatherv_into(&[(first, self.local.len() as u64)], &mut self.gather);
        let p = comm.size();
        self.markers.clear();
        self.markers.resize(p, u64::MAX);
        self.counts.clear();
        self.counts.resize(p, 0);
        for (r, &(key, count)) in self.gather.iter().enumerate() {
            self.counts[r] = count;
            self.markers[r] = key;
        }
        // Give empty ranks the marker of the next non-empty rank so that
        // ownership search never selects them.
        let mut next = u64::MAX;
        for r in (0..p).rev() {
            if self.counts[r] == 0 {
                self.markers[r] = next;
            } else {
                next = self.markers[r];
            }
        }
    }

    /// Global number of elements.
    pub fn global_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Global index of this rank's first element.
    pub fn global_offset(&self) -> u64 {
        self.counts[..self.comm.rank()].iter().sum()
    }

    /// The communicator this tree lives on.
    pub fn comm(&self) -> &'c Comm {
        self.comm
    }

    /// Per-rank element counts (metadata from the last marker exchange).
    pub fn rank_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The rank owning `octant` (by its first descendant). Assumes the
    /// global tree covers the octant's region.
    pub fn owner_of(&self, octant: &Octant) -> usize {
        let key = octant.key(); // first descendant shares the anchor key
        let idx = self.markers.partition_point(|&m| m <= key);
        idx.saturating_sub(1)
    }

    /// The inclusive rank range whose segments intersect the region of
    /// `octant` (it may span several ranks).
    pub fn owner_range(&self, octant: &Octant) -> (usize, usize) {
        let lo = self.owner_of(&octant.first_descendant());
        let hi = self.owner_of(&octant.last_descendant());
        (lo, hi)
    }

    /// `RefineTree`: purely local, no communication (markers refreshed).
    pub fn refine<F: FnMut(&Octant) -> bool>(&mut self, should_refine: F) -> usize {
        let n = ops::refine_with(&mut self.local, &mut self.ws.scratch, should_refine);
        self.update_markers();
        n
    }

    /// `CoarsenTree`: local families only — as in the paper, families
    /// spanning rank boundaries are not coarsened (at most `P−1` such
    /// families exist).
    pub fn coarsen<F: FnMut(&Octant) -> bool>(&mut self, should_coarsen: F) -> usize {
        let ws = &mut self.ws;
        ws.coarsen_flags.clear();
        ws.coarsen_flags
            .extend(self.local.iter().map(should_coarsen));
        let n = ops::coarsen_marked_with(&mut self.local, &mut ws.scratch, &ws.coarsen_flags);
        self.update_markers();
        n
    }

    /// `MarkElements` + apply: adapt toward a global element-count target
    /// driven by per-element indicators. Returns
    /// `(refined, coarsened_families)`. Warm calls reuse the tree's
    /// workspace and do not allocate.
    pub fn adapt_to_target(&mut self, indicators: &[f64], params: &MarkParams) -> (usize, usize) {
        let comm = self.comm;
        let mut ws = std::mem::take(&mut self.ws);
        mark_elements_into(comm, &self.local, indicators, params, &mut ws.marks);
        ws.coarsen_flags.clear();
        ws.coarsen_flags
            .extend(ws.marks.iter().map(|m| *m == Mark::Coarsen));
        // Coarsen first (marks are family-aligned by construction), then
        // refine survivors.
        let coarsened =
            ops::coarsen_marked_with(&mut self.local, &mut ws.scratch, &ws.coarsen_flags);
        // Rebuild the refine flags against the post-coarsening leaf list:
        // coarsened families disappear, other leaves keep their flag.
        ws.refine_flags.clear();
        let mut j = 0usize;
        while ws.refine_flags.len() < self.local.len() {
            if ws.coarsen_flags[j] {
                ws.refine_flags.push(false); // freshly coarsened parent
                j += 8;
            } else {
                ws.refine_flags.push(ws.marks[j] == Mark::Refine);
                j += 1;
            }
        }
        let refined = {
            let TreeWorkspace {
                scratch,
                refine_flags,
                ..
            } = &mut ws;
            let mut i = 0usize;
            ops::refine_with(&mut self.local, scratch, |_| {
                let m = refine_flags[i];
                i += 1;
                m
            })
        };
        self.ws = ws;
        self.update_markers();
        (refined, coarsened)
    }

    /// Parallel `BalanceTree`: prioritized ripple propagation. Each round
    /// balances locally, then ships boundary size-requests to neighboring
    /// ranks; rounds repeat until a global fixpoint (the round count is
    /// bounded by the number of levels, as in the paper). Returns the
    /// number of leaves added globally.
    pub fn balance(&mut self, kind: BalanceKind) -> u64 {
        let before = self.global_count();
        let dirs = kind.direction_slice();
        let p = self.comm.size();
        let me = self.comm.rank();
        let mut rounds = 0u64;
        let mut ws = std::mem::take(&mut self.ws);
        if ws.req_bufs.len() < p {
            ws.req_bufs.resize_with(p, Vec::new);
        }
        loop {
            rounds += 1;
            // Local pass first (no communication): recursive seed-set
            // propagation through the retained workspace.
            crate::balance::balance_local_kind_ws(&mut self.local, kind, &mut ws.bal);
            self.update_markers();

            // Collect remote size requests: for each boundary leaf and
            // direction, the same-size neighbor position and my level.
            for buf in &mut ws.req_bufs {
                buf.clear();
            }
            for o in &self.local {
                for &(dx, dy, dz) in dirs {
                    let Some(n) = o.neighbor(dx, dy, dz) else {
                        continue;
                    };
                    let (rlo, rhi) = self.owner_range(&n);
                    for r in rlo..=rhi {
                        if r != me {
                            ws.req_bufs[r].push((n, o.level as u64));
                        }
                    }
                }
            }
            ws.send_flat.clear();
            ws.send_counts.clear();
            for buf in &ws.req_bufs[..p] {
                ws.send_counts.push(buf.len());
                ws.send_flat.extend_from_slice(buf);
            }
            self.comm.alltoallv_flat(
                &ws.send_flat,
                &ws.send_counts,
                &mut ws.recv_flat,
                &mut ws.recv_counts,
            );

            // A request (n, lvl) means: some remote leaf at level `lvl`
            // touches region `n`; any local leaf containing `n` must have
            // level ≥ lvl−1.
            ws.to_refine.clear();
            ws.to_refine.resize(self.local.len(), false);
            let mut changed = 0u64;
            for &(n, lvl) in &ws.recv_flat {
                if let Some(i) = find_containing(&self.local, &n) {
                    if (self.local[i].level as u64) + 1 < lvl && !ws.to_refine[i] {
                        ws.to_refine[i] = true;
                        changed += 1;
                    }
                }
            }
            let global_changed = self.comm.allreduce_sum(&[changed])[0];
            if global_changed == 0 {
                break;
            }
            if changed > 0 {
                let TreeWorkspace {
                    scratch, to_refine, ..
                } = &mut ws;
                let mut i = 0usize;
                ops::refine_with(&mut self.local, scratch, |_| {
                    let m = to_refine[i];
                    i += 1;
                    m
                });
            }
            self.update_markers();
        }
        self.ws = ws;
        self.balance_rounds = rounds;
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(self.validate(), "octree invariants violated after balance");
        }
        self.global_count() - before
    }

    /// Ripple rounds (local-balance + exchange iterations) used by the
    /// most recent [`DistOctree::balance`] call — the `amr.ripple_rounds`
    /// obs counter.
    pub fn last_balance_rounds(&self) -> u64 {
        self.balance_rounds
    }

    /// Heap capacity currently held by this tree's tracked buffers (leaf
    /// array, marker metadata, and the adaptation workspace), in bytes.
    /// The growth of this value across a warm adapt cycle is the
    /// `amr.alloc_bytes` contribution of the tree layer; at steady state
    /// it must be zero.
    pub fn alloc_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        self.ws.capacity_bytes()
            + cap(&self.local)
            + cap(&self.markers)
            + cap(&self.counts)
            + cap(&self.gather)
    }

    /// The PR 3 parallel balance, retained verbatim as the benchmark
    /// baseline and a second differential oracle: buffered ripple sweeps
    /// locally, nested (allocating) alltoallv for the boundary requests.
    /// Produces the same unique minimal balanced refinement as
    /// [`DistOctree::balance`].
    pub fn balance_ripple(&mut self, kind: BalanceKind) -> u64 {
        let before = self.global_count();
        let dirs = kind.directions();
        let p = self.comm.size();
        loop {
            crate::balance::balance_local_ripple_kind(&mut self.local, kind);
            self.update_markers();
            let mut outgoing: Vec<Vec<(Octant, u64)>> = vec![Vec::new(); p];
            for o in &self.local {
                for &(dx, dy, dz) in &dirs {
                    let Some(n) = o.neighbor(dx, dy, dz) else {
                        continue;
                    };
                    let (rlo, rhi) = self.owner_range(&n);
                    for r in rlo..=rhi {
                        if r != self.comm.rank() {
                            outgoing[r].push((n, o.level as u64));
                        }
                    }
                }
            }
            let incoming = self.comm.alltoallv(&outgoing);
            let mut to_refine = vec![false; self.local.len()];
            let mut changed = 0u64;
            for reqs in &incoming {
                for &(n, lvl) in reqs {
                    if let Some(i) = find_containing(&self.local, &n) {
                        if (self.local[i].level as u64) + 1 < lvl && !to_refine[i] {
                            to_refine[i] = true;
                            changed += 1;
                        }
                    }
                }
            }
            let global_changed = self.comm.allreduce_sum(&[changed])[0];
            if global_changed == 0 {
                break;
            }
            if changed > 0 {
                let mut i = 0usize;
                ops::refine(&mut self.local, |_| {
                    let m = to_refine[i];
                    i += 1;
                    m
                });
            }
            self.update_markers();
        }
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(self.validate(), "octree invariants violated after balance");
        }
        self.global_count() - before
    }

    /// `PartitionTree`: redistribute leaves so that every rank owns an
    /// equal share (±1) of the Morton curve. Returns the plan, which must
    /// be replayed on element data with [`transfer_fields`].
    pub fn partition(&mut self) -> PartitionPlan {
        let mut plan = PartitionPlan {
            send_ranges: Vec::new(),
            new_len: 0,
        };
        self.partition_with(&mut plan);
        plan
    }

    /// [`DistOctree::partition`] writing the plan into a caller-provided
    /// value (ranges cleared first, capacity reused). The send ranges tile
    /// the local array contiguously in rank order, so the leaf array
    /// itself serves as the flat exchange buffer — the repartition moves
    /// each octant exactly once with no packing copy, and warm calls do
    /// not allocate.
    pub fn partition_with(&mut self, plan: &mut PartitionPlan) {
        let p = self.comm.size() as u64;
        let n = self.global_count();
        let my_off = self.global_offset();
        let my_len = self.local.len() as u64;

        // Target global ranges: rank r owns [r*n/p, (r+1)*n/p).
        let target_lo = |r: u64| (n * r) / p;
        let mut ws = std::mem::take(&mut self.ws);
        plan.send_ranges.clear();
        ws.part_counts.clear();
        for r in 0..p {
            let lo = target_lo(r).max(my_off);
            let hi = target_lo(r + 1).min(my_off + my_len);
            if lo < hi {
                let s = (lo - my_off) as usize;
                let e = (hi - my_off) as usize;
                plan.send_ranges.push((s, e));
                ws.part_counts.push(e - s);
            } else {
                // Keep ranges well-formed (empty) at a valid position.
                let s = (lo.min(my_off + my_len).max(my_off) - my_off) as usize;
                plan.send_ranges.push((s, s));
                ws.part_counts.push(0);
            }
        }
        self.comm.alltoallv_flat(
            &self.local,
            &ws.part_counts,
            &mut ws.part_recv,
            &mut ws.part_recv_counts,
        );
        // Rank order = Morton order: the flat receive buffer is the new
        // local segment.
        std::mem::swap(&mut self.local, &mut ws.part_recv);
        self.ws = ws;
        self.update_markers();
        #[cfg(debug_assertions)]
        if scomm::checks_enabled() {
            assert!(
                self.validate(),
                "octree invariants violated after partition"
            );
        }
        plan.new_len = self.local.len();
    }

    /// Build the ghost layer: the remote leaves face/edge/corner-adjacent
    /// to this rank's leaves, with their owner ranks, Morton-sorted.
    /// One alltoallv, mirroring the paper's `ExtractMesh` ghost gather.
    pub fn ghost_layer(&self) -> Vec<(usize, Octant)> {
        let p = self.comm.size();
        let me = self.comm.rank();
        // Send each boundary leaf to every rank owning an adjacent region.
        let mut outgoing: Vec<Vec<Octant>> = vec![Vec::new(); p];
        // Per-leaf dedup of destination ranks. A leaf's 26 neighbor
        // regions can span arbitrarily many ranks when the curve is
        // finely partitioned, so this must not be a fixed-size buffer.
        let mut sent_to: Vec<usize> = Vec::new();
        for o in &self.local {
            sent_to.clear();
            for (dx, dy, dz) in Octant::neighbor_directions() {
                let Some(n) = o.neighbor(dx, dy, dz) else {
                    continue;
                };
                let (rlo, rhi) = self.owner_range(&n);
                for r in rlo..=rhi.min(p - 1) {
                    if r != me && !sent_to.contains(&r) {
                        sent_to.push(r);
                        outgoing[r].push(*o);
                    }
                }
            }
        }
        let incoming = self.comm.alltoallv(&outgoing);
        let mut ghosts: Vec<(usize, Octant)> = Vec::new();
        for (src, octs) in incoming.iter().enumerate() {
            for &o in octs {
                // Keep only ghosts actually adjacent to my leaves (the
                // sender over-approximated with owner ranges).
                let adjacent = Octant::neighbor_directions().any(|(dx, dy, dz)| {
                    o.neighbor(dx, dy, dz)
                        .map(|n| {
                            // Does region n intersect my ownership range?
                            let (rlo, rhi) = self.owner_range(&n);
                            rlo <= me && me <= rhi
                        })
                        .unwrap_or(false)
                });
                if adjacent {
                    ghosts.push((src, o));
                }
            }
        }
        ghosts.sort_by_key(|a| a.1);
        ghosts.dedup();
        ghosts
    }

    /// Validate the distributed linear-octree invariants (collective):
    /// local validity, global sortedness across rank boundaries, global
    /// completeness.
    pub fn validate(&self) -> bool {
        let locally_valid = crate::is_valid_linear(&self.local);
        let first = self.local.first().map(|o| o.key()).unwrap_or(u64::MAX);
        let last = self
            .local
            .last()
            .map(|o| o.last_descendant().key())
            .unwrap_or(0);
        let firsts = self.comm.allgatherv(&[first]);
        let lasts = self.comm.allgatherv(&[last]);
        let mut globally_sorted = true;
        let mut prev_last = 0u64;
        for r in 0..self.comm.size() {
            if firsts[r] == u64::MAX {
                continue;
            }
            if firsts[r] < prev_last {
                globally_sorted = false;
            }
            prev_last = lasts[r].max(prev_last);
        }
        let vol: u128 = self
            .local
            .iter()
            .map(|o| {
                let s = o.len() as u128;
                s * s * s
            })
            .sum();
        let vols = self.comm.allgatherv(&[(vol >> 64) as u64, vol as u64]);
        let mut total: u128 = 0;
        for c in vols.chunks(2) {
            total += ((c[0] as u128) << 64) | c[1] as u128;
        }
        let complete = total == (crate::ROOT_LEN as u128).pow(3);
        let ok = locally_valid && globally_sorted && complete;
        self.comm.allreduce_min(&[ok as u64])[0] == 1
    }
}

/// `TransferFields`: replay a [`PartitionPlan`] on element-attached data
/// with `ncomp` values per element. Returns this rank's data after the
/// repartition, in the new element order.
pub fn transfer_fields<T: pod::Pod>(
    comm: &Comm,
    plan: &PartitionPlan,
    data: &[T],
    ncomp: usize,
) -> Vec<T> {
    let mut out = Vec::new();
    let mut counts = Vec::new();
    let mut recv_counts = Vec::new();
    transfer_fields_into(
        comm,
        plan,
        data,
        ncomp,
        &mut counts,
        &mut recv_counts,
        &mut out,
    );
    out
}

/// [`transfer_fields`] over caller-managed buffers: `out` receives the
/// repartitioned data (cleared first, capacity reused). Because a
/// [`PartitionPlan`]'s send ranges tile the element order contiguously in
/// rank order, `data` itself is the flat send buffer — no packing copy,
/// and warm calls do not allocate.
pub fn transfer_fields_into<T: pod::Pod>(
    comm: &Comm,
    plan: &PartitionPlan,
    data: &[T],
    ncomp: usize,
    counts_scratch: &mut Vec<usize>,
    recv_counts_scratch: &mut Vec<usize>,
    out: &mut Vec<T>,
) {
    let p = comm.size();
    assert_eq!(plan.send_ranges.len(), p);
    counts_scratch.clear();
    for &(s, e) in &plan.send_ranges {
        counts_scratch.push((e - s) * ncomp);
    }
    assert_eq!(
        counts_scratch.iter().sum::<usize>(),
        data.len(),
        "plan does not cover the element data"
    );
    comm.alltoallv_flat(data, counts_scratch, out, recv_counts_scratch);
    assert_eq!(out.len(), plan.new_len * ncomp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{is_balanced, BalanceKind};
    use scomm::spmd;

    #[test]
    fn uniform_tree_distributes_evenly() {
        let counts = spmd::run(4, |c| {
            let t = DistOctree::new_uniform(c, 2);
            assert!(t.validate());
            assert_eq!(t.global_count(), 64);
            t.local.len()
        });
        assert_eq!(counts, vec![16, 16, 16, 16]);
    }

    #[test]
    fn owner_of_covers_all_ranks() {
        spmd::run(4, |c| {
            let t = DistOctree::new_uniform(c, 2);
            // Every leaf of the global tree must be owned by the rank that
            // holds it locally.
            for (i, o) in crate::ops::new_tree(2).iter().enumerate() {
                let owner = t.owner_of(o);
                assert_eq!(owner, i / 16, "leaf {i}");
            }
        });
    }

    #[test]
    fn partition_rebalances_after_local_refine() {
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            // Only rank 0 refines: load becomes skewed 8:1.
            if c.rank() == 0 {
                t.refine(|_| true);
            } else {
                t.refine(|_| false);
            }
            assert!(t.validate());
            let n = t.global_count();
            let plan = t.partition();
            assert!(t.validate());
            assert_eq!(t.global_count(), n);
            assert_eq!(plan.new_len, t.local.len());
            // Even split ±1.
            let share = n / c.size() as u64;
            assert!((t.local.len() as u64) >= share && (t.local.len() as u64) <= share + 1);
        });
    }

    #[test]
    fn transfer_fields_follows_elements() {
        spmd::run(3, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            if c.rank() == 1 {
                t.refine(|o| o.child_id() < 4);
            } else {
                t.refine(|_| false);
            }
            // Attach each element's Morton key as its "field" value.
            let data: Vec<u64> = t.local.iter().map(|o| o.key()).collect();
            let plan = t.partition();
            let moved = transfer_fields(c, &plan, &data, 1);
            let expect: Vec<u64> = t.local.iter().map(|o| o.key()).collect();
            assert_eq!(moved, expect, "fields must follow their elements");
        });
    }

    #[test]
    fn parallel_balance_matches_serial() {
        // Refine a center spike split across ranks; parallel balance must
        // produce the same global tree as serial balance of the union.
        let locals = spmd::run(4, |c| {
            use crate::morton::{MAX_LEVEL, ROOT_LEN};
            let target = Octant::new(
                ROOT_LEN / 2 - 1,
                ROOT_LEN / 2 - 1,
                ROOT_LEN / 2 - 1,
                MAX_LEVEL,
            );
            let mut t = DistOctree::new_uniform(c, 1);
            for _ in 0..4 {
                t.refine(|o| o.contains(&target));
                t.partition();
            }
            t.balance(BalanceKind::Full);
            assert!(t.validate());
            t.local.clone()
        });
        let mut parallel_union: Vec<Octant> = locals.into_iter().flatten().collect();
        parallel_union.sort();

        let target = Octant::new(
            crate::ROOT_LEN / 2 - 1,
            crate::ROOT_LEN / 2 - 1,
            crate::ROOT_LEN / 2 - 1,
            crate::MAX_LEVEL,
        );
        let mut serial = crate::ops::new_tree(1);
        for _ in 0..4 {
            crate::ops::refine(&mut serial, |o| o.contains(&target));
        }
        crate::balance::balance_local(&mut serial);
        assert!(is_balanced(&parallel_union));
        assert_eq!(parallel_union, serial);
    }

    #[test]
    fn ghost_layer_is_symmetric_and_adjacent() {
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] < 0.5);
            t.balance(BalanceKind::Full);
            t.partition();
            let ghosts = t.ghost_layer();
            // Each ghost must be adjacent to at least one local leaf and
            // owned by the rank recorded.
            for (owner, g) in &ghosts {
                assert_ne!(*owner, c.rank());
                assert_eq!(t.owner_of(g), *owner);
                let touches = t.local.iter().any(|o| {
                    Octant::neighbor_directions().any(|(dx, dy, dz)| {
                        // Adjacency test via integer intervals expanded by
                        // one lattice unit.
                        let _ = (dx, dy, dz);
                        let (ox0, oy0, oz0) = (o.x as i64, o.y as i64, o.z as i64);
                        let ol = o.len() as i64;
                        let (gx0, gy0, gz0) = (g.x as i64, g.y as i64, g.z as i64);
                        let gl = g.len() as i64;
                        let overlap =
                            |a0: i64, al: i64, b0: i64, bl: i64| a0 <= b0 + bl && b0 <= a0 + al;
                        overlap(ox0, ol, gx0, gl)
                            && overlap(oy0, ol, gy0, gl)
                            && overlap(oz0, ol, gz0, gl)
                    })
                });
                assert!(touches, "ghost {g:?} not adjacent to any local leaf");
            }
        });
    }

    #[test]
    fn adapt_to_target_tracks_count() {
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 3);
            let ind: Vec<f64> = t
                .local
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    (-((ctr[0] - 0.5).powi(2) + (ctr[1] - 0.5).powi(2)) * 20.0).exp()
                })
                .collect();
            let params = MarkParams {
                target_elements: 900,
                ..Default::default()
            };
            t.adapt_to_target(&ind, &params);
            assert!(t.validate());
            let n = t.global_count() as f64;
            assert!((n - 900.0).abs() / 900.0 < 0.3, "global count {n}");
        });
    }

    #[test]
    fn fast_balance_matches_ripple_baseline_distributed() {
        // The retained PR 3 ripple path and the seed-propagation fast path
        // must produce bitwise-identical global leaf sets.
        fn build(c: &Comm) -> DistOctree<'_> {
            let mut t = DistOctree::new_uniform(c, 1);
            let mut h = 0x9e3779b97f4a7c15u64;
            for _ in 0..3 {
                t.refine(|o| {
                    h = h.wrapping_mul(6364136223846793005).wrapping_add(o.key());
                    o.level < 5 && h.is_multiple_of(5)
                });
                t.partition();
            }
            t
        }
        for p in [1usize, 2, 4] {
            let locals = spmd::run(p, |c| {
                let mut fast = build(c);
                fast.balance(BalanceKind::Full);
                assert!(fast.last_balance_rounds() >= 1);
                let mut ripple = build(c);
                ripple.balance_ripple(BalanceKind::Full);
                (fast.local.clone(), ripple.local)
            });
            let (f, r): (Vec<_>, Vec<_>) = locals.into_iter().unzip();
            let fast_union: Vec<Octant> = f.into_iter().flatten().collect();
            let ripple_union: Vec<Octant> = r.into_iter().flatten().collect();
            assert_eq!(fast_union, ripple_union, "P={p}");
            assert!(is_balanced(&fast_union));
        }
    }

    #[test]
    fn warm_adapt_cycle_does_not_allocate() {
        // Repeat an identical mark→refine→coarsen→balance→partition cycle;
        // once warm, the tree's tracked capacity must stop growing.
        spmd::run(4, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            let mut plan = PartitionPlan {
                send_ranges: Vec::new(),
                new_len: 0,
            };
            // Deterministic geometric predicates: the cycle map reaches a
            // periodic orbit after a couple of applications, after which
            // all buffer sizes are steady.
            let cycle = |t: &mut DistOctree, plan: &mut PartitionPlan| {
                t.refine(|o| {
                    let c = o.center_unit();
                    let d2 = (c[0] - 0.5).powi(2) + (c[1] - 0.5).powi(2) + (c[2] - 0.5).powi(2);
                    o.level < 4 && d2 < 0.09
                });
                t.coarsen(|o| o.level > 2 && o.center_unit()[0] > 0.5);
                t.balance(BalanceKind::Full);
                t.partition_with(plan);
            };
            for _ in 0..3 {
                cycle(&mut t, &mut plan);
            }
            let cap = t.alloc_bytes();
            for _ in 0..4 {
                cycle(&mut t, &mut plan);
            }
            assert_eq!(t.alloc_bytes(), cap, "warm adapt cycle allocated");
        });
    }

    #[test]
    fn transfer_fields_into_matches_nested() {
        spmd::run(3, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            if c.rank() == 1 {
                t.refine(|o| o.child_id() < 4);
            } else {
                t.refine(|_| false);
            }
            let data: Vec<f64> = t
                .local
                .iter()
                .flat_map(|o| [o.key() as f64, o.level as f64])
                .collect();
            let plan = t.partition();
            let reference = transfer_fields(c, &plan, &data, 2);
            let (mut out, mut counts, mut rc) = (Vec::new(), Vec::new(), Vec::new());
            transfer_fields_into(c, &plan, &data, 2, &mut counts, &mut rc, &mut out);
            assert_eq!(out, reference);
            // Warm call reuses the output buffer.
            let ptr = out.as_ptr();
            transfer_fields_into(c, &plan, &data, 2, &mut counts, &mut rc, &mut out);
            assert_eq!(out.as_ptr(), ptr);
        });
    }

    #[test]
    fn empty_rank_handling() {
        // More ranks than elements: level-0 tree on 3 ranks.
        spmd::run(3, |c| {
            let t = DistOctree::new_uniform(c, 0);
            assert_eq!(t.global_count(), 1);
            assert!(t.validate());
            let owner = t.owner_of(&Octant::root());
            // Exactly one rank owns the root; all agree on which.
            let owners = c.allgatherv(&[owner as u64]);
            assert!(owners.iter().all(|&o| o == owners[0]));
            assert_eq!(c.allreduce_sum(&[t.local.len() as u64])[0], 1);
        });
    }
}
