//! # vrank — cooperative virtual-rank scheduler
//!
//! The simulated SPMD machine (`scomm`) historically ran one OS thread per
//! rank with every thread *runnable*, which caps experiments at a few dozen
//! ranks: beyond that the host spends its time context-switching between
//! spinning barrier entrants instead of making progress. The paper's
//! headline results live at 16k–62,464 cores, so the scaling harnesses
//! could only extrapolate collective costs from the α–β machine model.
//!
//! This crate removes that ceiling with an M:N *cooperative* scheduler:
//! `nranks` virtual ranks are multiplexed over a pool of `workers` worker
//! slots. A rank only runs while it holds a slot; whenever it would block
//! in the communication layer — waiting for a message, entering a
//! collective rendezvous — it *parks*: it releases its slot, a runnable
//! rank from the seeded run queue takes it, and the parked rank is woken
//! only when the event it blocked on (mail delivery, barrier release)
//! makes it runnable again. At most `workers` ranks are ever runnable, so
//! P = 4096 behaves like a pool of ≤ `workers` active threads plus a run
//! queue, not like 4096 contending threads.
//!
//! Each virtual rank still owns an OS thread as its *execution context*
//! (arbitrary user stacks cannot be suspended portably without one), but a
//! parked rank costs only its stack: it sits in a condvar wait and is
//! invisible to the OS scheduler until dispatched. The scheduler is the
//! only party that wakes a rank, and it does so by *granting a slot* — the
//! invariant is `running ≤ workers` at every instant.
//!
//! ## Determinism
//!
//! Dispatch order is decided by a seeded priority: every time a rank
//! becomes runnable it is enqueued with key `mix(seed, rank, enqueue#)`
//! and the queue pops the smallest key. With `workers == 1` the entire
//! interleaving is a pure function of `(seed, P)`; with more workers the
//! dispatch *decisions* are still seeded but true interleaving depends on
//! the host. Program-observable results never depend on either: `scomm`
//! collectives fold in rank order and point-to-point matching is
//! per-`(source, tag)` FIFO, which is what the thread-vs-virtual bitwise
//! differential suite (`check/tests/vrank_diff.rs`) pins down.
//!
//! ## Failure behaviour
//!
//! A panicking rank poisons the scheduler: every parked rank is woken and
//! panics with [`PEER_PANIC_MSG`] instead of waiting forever on a dead
//! peer. If every live rank is parked and no wake-up can ever arrive (all
//! workers idle, run queue empty — e.g. a receive without a matching send,
//! or a rank exiting while peers sit in a barrier), the scheduler detects
//! the deadlock at dispatch time and poisons itself with
//! [`DEADLOCK_MSG`] — turning a silent hang into a diagnosable panic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Panic message raised in every parked rank after a peer rank panicked.
pub const PEER_PANIC_MSG: &str = "vrank: a peer rank panicked; aborting the parked rank";

/// Panic message raised in every parked rank when the scheduler proves no
/// further progress is possible.
pub const DEADLOCK_MSG: &str =
    "vrank: deadlock — every live rank is parked and no wake-up can arrive \
     (unmatched receive, or a rank exited while peers wait in a collective)";

/// splitmix64 finalizer; the dispatch tie-breaking hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// Thread not yet attached to the scheduler.
    Unregistered,
    /// Holds a worker slot (running, or granted and about to wake).
    Running,
    /// Runnable, enqueued, waiting for a slot.
    Ready,
    /// Parked until new mail arrives in its mailbox.
    BlockedMail,
    /// Parked in a collective rendezvous until the last rank arrives.
    BlockedBarrier,
    /// Returned from its program.
    Done,
}

/// Scheduler activity counters (see [`Scheduler::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Times a rank was granted a worker slot.
    pub dispatches: u64,
    /// Times a rank parked (released its slot and waited).
    pub parks: u64,
    /// High-water mark of the run-queue depth.
    pub max_ready: usize,
    /// Collective rendezvous completed (barrier releases).
    pub barrier_releases: u64,
}

struct Inner {
    state: Vec<RankState>,
    /// `granted[r]`: rank `r` may run (it holds a worker slot). Set only
    /// by dispatch, cleared only by the rank itself when it parks.
    granted: Vec<bool>,
    /// Bumped by [`Scheduler::notify_mail`]; lets a receiver detect mail
    /// that arrived between its last mailbox drain and its park.
    mail_epoch: Vec<u64>,
    /// Run queue: `(seeded priority, rank)`, popped smallest-first.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    slots_free: usize,
    registered: usize,
    running: usize,
    finished: usize,
    barrier_arrived: usize,
    /// Per-rank enqueue counters: the seeded dispatch key of rank `r`'s
    /// `k`-th enqueue is `mix(seed, r, k)`. Keyed per rank (not globally)
    /// so startup keys don't depend on OS thread attach order.
    enqueue_seq: Vec<u64>,
    poisoned: Option<&'static str>,
    stats: SchedStats,
}

/// The cooperative scheduler shared by all virtual ranks of one world.
pub struct Scheduler {
    nranks: usize,
    workers: usize,
    seed: u64,
    inner: Mutex<Inner>,
    /// One parking condvar per rank (paired with `inner`): wake-ups are
    /// targeted, never a broadcast over thousands of parked ranks.
    parked: Vec<Condvar>,
}

impl Scheduler {
    /// A scheduler for `nranks` virtual ranks over `workers` worker slots.
    /// `seed` drives dispatch tie-breaking (see the module docs).
    pub fn new(nranks: usize, workers: usize, seed: u64) -> Scheduler {
        assert!(nranks >= 1, "a scheduler needs at least one rank");
        assert!(workers >= 1, "a scheduler needs at least one worker slot");
        Scheduler {
            nranks,
            workers,
            seed,
            inner: Mutex::new(Inner {
                state: vec![RankState::Unregistered; nranks],
                granted: vec![false; nranks],
                mail_epoch: vec![0; nranks],
                ready: BinaryHeap::new(),
                slots_free: workers,
                registered: 0,
                running: 0,
                finished: 0,
                barrier_arrived: 0,
                enqueue_seq: vec![0; nranks],
                poisoned: None,
                stats: SchedStats::default(),
            }),
            parked: (0..nranks).map(|_| Condvar::new()).collect(),
        }
    }

    /// Number of virtual ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The dispatch tie-breaking seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> SchedStats {
        self.lock().stats
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A rank panicking elsewhere must not wedge the scheduler: the
        // poison protocol below supersedes std's mutex poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enqueue_locked(&self, inner: &mut Inner, rank: usize) {
        debug_assert!(!inner.granted[rank]);
        inner.state[rank] = RankState::Ready;
        let key = mix(self.seed ^ ((rank as u64) << 32) ^ inner.enqueue_seq[rank]);
        inner.enqueue_seq[rank] += 1;
        inner.ready.push(Reverse((key, rank)));
        inner.stats.max_ready = inner.stats.max_ready.max(inner.ready.len());
    }

    /// Grant free slots to the best-priority ready ranks, then check for
    /// global deadlock: once every thread is attached, if nothing is
    /// running and nothing is ready while live ranks remain, no send or
    /// barrier completion can ever happen again.
    fn dispatch_locked(&self, inner: &mut Inner) {
        // No slot is granted until every rank has attached: the first
        // dispatch then pops from a full, deterministic ready queue, so
        // the schedule cannot depend on OS thread start-up order.
        if inner.registered < self.nranks {
            return;
        }
        while inner.slots_free > 0 {
            let Some(Reverse((_, r))) = inner.ready.pop() else {
                break;
            };
            inner.slots_free -= 1;
            inner.granted[r] = true;
            inner.state[r] = RankState::Running;
            inner.running += 1;
            inner.stats.dispatches += 1;
            self.parked[r].notify_one();
        }
        if inner.poisoned.is_none()
            && inner.registered == self.nranks
            && inner.finished < self.nranks
            && inner.running == 0
            && inner.ready.is_empty()
        {
            inner.poisoned = Some(DEADLOCK_MSG);
            for cv in &self.parked {
                cv.notify_all();
            }
        }
    }

    /// Park until granted a slot (or the scheduler is poisoned). The
    /// caller must not hold a slot and must already be enqueued or have
    /// recorded the blocked state a future wake-up will find.
    fn wait_granted_locked<'a>(
        &'a self,
        mut inner: MutexGuard<'a, Inner>,
        rank: usize,
    ) -> MutexGuard<'a, Inner> {
        inner.stats.parks += 1;
        while !inner.granted[rank] && inner.poisoned.is_none() {
            inner = self.parked[rank]
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
        if !inner.granted[rank] {
            let msg = inner.poisoned.unwrap_or(PEER_PANIC_MSG);
            drop(inner);
            panic!("{msg}");
        }
        inner
    }

    /// Release the calling rank's slot and park until re-granted (or the
    /// scheduler is poisoned). The caller must already have recorded its
    /// blocked state and enqueued any wake-up bookkeeping.
    fn park_locked<'a>(
        &'a self,
        mut inner: MutexGuard<'a, Inner>,
        rank: usize,
    ) -> MutexGuard<'a, Inner> {
        inner.granted[rank] = false;
        inner.running -= 1;
        inner.slots_free += 1;
        self.dispatch_locked(&mut inner);
        self.wait_granted_locked(inner, rank)
    }

    fn check_poison(&self, inner: &Inner) {
        if let Some(msg) = inner.poisoned {
            panic!("{msg}");
        }
    }

    /// Attach the calling thread as `rank` and wait for its first slot.
    /// Every rank must call this exactly once before any other entry.
    pub fn rank_start(&self, rank: usize) {
        let mut inner = self.lock();
        self.check_poison(&inner);
        assert_eq!(
            inner.state[rank],
            RankState::Unregistered,
            "rank {rank} attached to the scheduler twice"
        );
        inner.registered += 1;
        self.enqueue_locked(&mut inner, rank);
        self.dispatch_locked(&mut inner);
        let _inner = self.wait_granted_locked(inner, rank);
    }

    /// Detach the calling rank after its program returned: its slot is
    /// released for good and the next ready rank is dispatched.
    pub fn rank_finish(&self, rank: usize) {
        let mut inner = self.lock();
        debug_assert!(inner.granted[rank]);
        inner.state[rank] = RankState::Done;
        inner.granted[rank] = false;
        inner.running -= 1;
        inner.finished += 1;
        inner.slots_free += 1;
        self.dispatch_locked(&mut inner);
    }

    /// Poison the scheduler after a rank panicked: wake every parked rank
    /// so it can abort instead of waiting on a dead peer.
    pub fn poison(&self) {
        let mut inner = self.lock();
        if inner.poisoned.is_none() {
            inner.poisoned = Some(PEER_PANIC_MSG);
        }
        for cv in &self.parked {
            cv.notify_all();
        }
    }

    /// The rank's current mail epoch. Read this *before* draining the
    /// mailbox; pass it to [`Scheduler::park_mail`] so a message that
    /// lands between the drain and the park is never slept through.
    pub fn mail_epoch(&self, rank: usize) -> u64 {
        self.lock().mail_epoch[rank]
    }

    /// Record that new mail was enqueued for `dst` and wake it if it is
    /// parked waiting for mail. Called by the sender *after* the message
    /// is in the destination mailbox.
    pub fn notify_mail(&self, dst: usize) {
        let mut inner = self.lock();
        inner.mail_epoch[dst] += 1;
        if inner.state[dst] == RankState::BlockedMail {
            self.enqueue_locked(&mut inner, dst);
            self.dispatch_locked(&mut inner);
        }
    }

    /// Park until mail arrives. Returns immediately if the mail epoch
    /// already moved past `seen_epoch` (a message landed after the caller
    /// drained its mailbox); otherwise releases the slot and parks until
    /// [`Scheduler::notify_mail`] makes the rank runnable again.
    pub fn park_mail(&self, rank: usize, seen_epoch: u64) {
        let mut inner = self.lock();
        self.check_poison(&inner);
        if inner.mail_epoch[rank] != seen_epoch {
            return;
        }
        inner.state[rank] = RankState::BlockedMail;
        let _inner = self.park_locked(inner, rank);
    }

    /// Scheduler-aware collective rendezvous: the virtual-mode
    /// replacement for `std::sync::Barrier`. All `nranks` ranks must
    /// enter; the first `nranks - 1` park (releasing their slots), the
    /// last arrival re-enqueues every waiter and keeps running.
    pub fn barrier(&self, rank: usize) {
        let mut inner = self.lock();
        self.check_poison(&inner);
        inner.barrier_arrived += 1;
        if inner.barrier_arrived == self.nranks {
            inner.barrier_arrived = 0;
            inner.stats.barrier_releases += 1;
            for r in 0..self.nranks {
                if inner.state[r] == RankState::BlockedBarrier {
                    self.enqueue_locked(&mut inner, r);
                }
            }
            self.dispatch_locked(&mut inner);
        } else {
            inner.state[rank] = RankState::BlockedBarrier;
            let _inner = self.park_locked(inner, rank);
        }
    }

    /// Cooperative yield: if other ranks are waiting for a slot, requeue
    /// the caller behind them (seeded priority) and dispatch; otherwise
    /// return immediately. Poll loops (`Comm::test`) route through this
    /// so a single-worker pool still makes progress.
    pub fn yield_now(&self, rank: usize) {
        let mut inner = self.lock();
        self.check_poison(&inner);
        if inner.ready.is_empty() {
            return;
        }
        inner.granted[rank] = false;
        inner.running -= 1;
        inner.slots_free += 1;
        self.enqueue_locked(&mut inner, rank);
        self.dispatch_locked(&mut inner);
        let _inner = self.wait_granted_locked(inner, rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Drive `n` ranks over `workers` slots with a body that records the
    /// order in which ranks first run.
    fn first_run_order(n: usize, workers: usize, seed: u64) -> Vec<usize> {
        let sched = Arc::new(Scheduler::new(n, workers, seed));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for rank in 0..n {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    sched.rank_start(rank);
                    order.lock().unwrap().push(rank);
                    sched.rank_finish(rank);
                });
            }
        });
        let v = order.lock().unwrap().clone();
        v
    }

    #[test]
    fn single_worker_runs_all_ranks() {
        let mut sorted = first_run_order(16, 1, 7);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn never_more_runnable_than_workers() {
        let n = 64;
        let workers = 4;
        let sched = Arc::new(Scheduler::new(n, workers, 1));
        let live = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for rank in 0..n {
                let sched = Arc::clone(&sched);
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    sched.rank_start(rank);
                    for _ in 0..8 {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        live.fetch_sub(1, Ordering::SeqCst);
                        sched.yield_now(rank);
                    }
                    sched.rank_finish(rank);
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= workers as u64,
            "more ranks ran concurrently than worker slots exist"
        );
        let st = sched.stats();
        assert!(st.dispatches >= n as u64);
        assert!(st.max_ready <= n);
    }

    #[test]
    fn barrier_releases_every_rank() {
        let n = 32;
        let sched = Arc::new(Scheduler::new(n, 3, 9));
        let hits = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for rank in 0..n {
                let sched = Arc::clone(&sched);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    sched.rank_start(rank);
                    for _ in 0..5 {
                        sched.barrier(rank);
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                    sched.rank_finish(rank);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5 * n as u64);
        assert_eq!(sched.stats().barrier_releases, 5);
    }

    #[test]
    fn mail_epoch_prevents_lost_wakeups() {
        // Receiver reads the epoch, then the sender bumps it, then the
        // receiver parks with the stale epoch: park must return at once.
        let sched = Scheduler::new(2, 2, 0);
        std::thread::scope(|s| {
            s.spawn(|| {
                sched.rank_start(0);
                let seen = sched.mail_epoch(0);
                // Sender delivers mail "concurrently".
                sched.notify_mail(0);
                sched.park_mail(0, seen); // must not block
                sched.rank_finish(0);
            });
            s.spawn(|| {
                sched.rank_start(1);
                sched.rank_finish(1);
            });
        });
    }

    #[test]
    fn seeded_dispatch_is_deterministic_with_one_worker() {
        let a = first_run_order(24, 1, 0xABCD);
        let b = first_run_order(24, 1, 0xABCD);
        assert_eq!(a, b, "same seed must reproduce the same dispatch order");
        let c = first_run_order(24, 1, 0x1234);
        assert_ne!(a, c, "the seed must actually drive tie-breaking");
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        // Rank 0 parks for mail that never comes while rank 1 exits.
        let sched = Arc::new(Scheduler::new(2, 1, 0));
        let caught = std::thread::scope(|s| {
            let h = {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    sched.rank_start(0);
                    let seen = sched.mail_epoch(0);
                    sched.park_mail(0, seen);
                    sched.rank_finish(0);
                })
            };
            {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    sched.rank_start(1);
                    sched.rank_finish(1);
                });
            }
            h.join()
        });
        let err = caught.expect_err("the parked rank must panic, not hang");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    }

    #[test]
    fn poison_wakes_parked_ranks() {
        let sched = Arc::new(Scheduler::new(2, 2, 0));
        let caught = std::thread::scope(|s| {
            let h = {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    sched.rank_start(0);
                    sched.barrier(0); // parks: rank 1 never arrives
                    sched.rank_finish(0);
                })
            };
            {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    sched.rank_start(1);
                    sched.poison(); // simulated peer panic
                    sched.rank_finish(1);
                });
            }
            h.join()
        });
        let err = caught.expect_err("poison must abort the parked rank");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("peer rank panicked"),
            "unexpected panic: {msg}"
        );
    }
}
