//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the API surface the
//! workspace's `benches/` use — `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — as
//! a plain wall-clock timer with median-of-samples reporting. No
//! statistical analysis, plots, or baselines; output is one line per
//! benchmark on stdout.

use std::time::{Duration, Instant};

/// Opaque value barrier (stable-Rust approximation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stand-in runs
/// one routine call per setup call regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations.
    pub(crate) recorded: Vec<Duration>,
}

impl Bencher {
    /// Time `f` repeatedly; the routine's return value is black-boxed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.recorded.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.recorded.push(t0.elapsed());
        }
    }
}

fn human_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(group: Option<&str>, name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut b);
    let mut times = b.recorded;
    times.sort();
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if times.is_empty() {
        println!("bench {label:<44} (no samples)");
        return;
    }
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "bench {label:<44} median {:>12}   [{} .. {}]  ({} samples)",
        human_duration(median),
        human_duration(min),
        human_duration(max),
        times.len()
    );
}

/// The benchmark context handed to every target function.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        run_one(None, name.as_ref(), self.default_samples, &mut f);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            _parent: self,
        }
    }
}

/// A named group; carries its own sample-size override.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        run_one(Some(&self.name), name.as_ref(), self.samples, &mut f);
    }

    pub fn finish(self) {}
}

/// Declare a benchmark group: `criterion_group!(name, target, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark entry point: `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(human_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(human_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(human_duration(Duration::from_secs(2)), "2.000 s");
    }
}
