//! # stokes — the parallel variable-viscosity Stokes solver (paper §III)
//!
//! Discretization: equal-order trilinear velocity–pressure with
//! Dohrmann–Bochev polynomial pressure projection (inf-sup circumvention),
//! producing the stabilized symmetric saddle-point system
//!
//! ```text
//! [ A   Bᵀ ] [u]   [f]
//! [ B  −C  ] [p] = [g]
//! ```
//!
//! solved by preconditioned MINRES with the approximate block
//! factorization preconditioner
//!
//! ```text
//! P = diag( Ã , S̃ ),
//! ```
//!
//! where `Ã` is the variable-viscosity discrete vector Laplacian
//! approximated by **one AMG V-cycle per component** (the BoomerAMG
//! substitution of DESIGN.md, composed block-Jacobi over ranks), and `S̃`
//! is the inverse-viscosity-weighted lumped pressure mass matrix, which is
//! spectrally equivalent to the Schur complement (paper reference [11]).
//!
//! The nonlinearity of strain-rate-dependent viscosity is handled by the
//! Picard fixed-point iteration in [`picard`].

pub mod picard;
pub mod solver;

pub use picard::{picard_solve, PicardOptions, PicardResult};
pub use solver::{StokesOptions, StokesSolver, StokesStats};
