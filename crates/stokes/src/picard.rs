//! Picard fixed-point iteration for strain-rate-dependent viscosity
//! (paper Section III: "The nonlinearity imposed by strain-rate-dependent
//! viscosity is addressed with a Picard-type fixed point iteration").
//!
//! Each Picard step freezes the viscosity field η(T, ė) at the current
//! iterate, solves the linearized Stokes system with MINRES, recomputes
//! the strain-rate invariant, and re-evaluates the rheology. The AMG
//! setup is re-run whenever the viscosity changes (as the paper reuses
//! the preconditioner only while the mesh and coefficients stand still).

use crate::solver::{StokesOptions, StokesSolver};
use mesh::extract::Mesh;
use scomm::Comm;

/// Options for the nonlinear loop.
#[derive(Debug, Clone, Copy)]
pub struct PicardOptions {
    pub max_picard: usize,
    /// Relative viscosity-change convergence threshold.
    pub rheology_tol: f64,
    pub stokes: StokesOptions,
}

impl Default for PicardOptions {
    fn default() -> Self {
        PicardOptions {
            max_picard: 30,
            rheology_tol: 1e-3,
            stokes: StokesOptions::default(),
        }
    }
}

/// Result of a nonlinear solve.
#[derive(Debug, Clone)]
pub struct PicardResult {
    /// Combined (velocity | pressure) solution in owned layout.
    pub x: Vec<f64>,
    /// Final per-element viscosity.
    pub viscosity: Vec<f64>,
    pub picard_iterations: usize,
    pub total_minres_iterations: usize,
    pub converged: bool,
}

/// Solve the nonlinear Stokes problem `−∇·[η(ė)(∇u+∇uᵀ)] + ∇p = f`,
/// `∇·u = 0`, where `rheology(element, strain_rate_invariant)` evaluates
/// the viscosity law. Collective.
#[allow(clippy::too_many_arguments)]
pub fn picard_solve<R, F, G>(
    mesh: &Mesh,
    comm: &Comm,
    vel_bc: Vec<bool>,
    rheology: R,
    body_force: F,
    bc_values: G,
    options: PicardOptions,
) -> PicardResult
where
    R: Fn(usize, f64) -> f64,
    F: Fn([f64; 3]) -> [f64; 3],
    G: Fn([f64; 3]) -> [f64; 3],
{
    // Initial viscosity at zero strain rate. One solver instance lives
    // across the whole nonlinear loop, so its workspace (ghost-exchange
    // staging, operator scratch) is allocated once; each Picard step only
    // re-runs the preconditioner setup on the updated viscosity.
    let viscosity: Vec<f64> = (0..mesh.elements.len()).map(|e| rheology(e, 0.0)).collect();
    let mut solver = StokesSolver::new(mesh, comm, viscosity, vel_bc, options.stokes);
    let mut x = vec![0.0; 4 * mesh.n_owned];
    let mut total_minres = 0;
    let mut converged = false;
    let mut iters = 0;
    for it in 0..options.max_picard {
        iters = it + 1;
        let (rhs, x0) = solver.build_rhs(&body_force, &bc_values);
        if it == 0 {
            x = x0;
        } else {
            // Keep the previous iterate as warm start; refresh BC rows.
            for (i, &m) in solver.vel_bc.iter().enumerate() {
                if m {
                    x[i] = x0[i];
                }
            }
        }
        let info = solver.solve(&rhs, &mut x);
        total_minres += info.iterations;
        // Re-evaluate the rheology.
        let edot = solver.strain_rate_invariant(&x);
        let mut max_rel = 0.0f64;
        for (e, &ed) in edot.iter().enumerate() {
            let eta_new = rheology(e, ed);
            let eta_old = solver.viscosity[e];
            max_rel = max_rel.max((eta_new - eta_old).abs() / eta_old.abs().max(1e-300));
            solver.viscosity[e] = eta_new;
        }
        let global_rel = comm.allreduce_max(&[max_rel])[0];
        if global_rel < options.rheology_tol {
            converged = true;
            break;
        }
        // Viscosity changed: rebuild the AMG hierarchy and Schur diagonal.
        solver.setup();
    }
    PicardResult {
        x,
        viscosity: std::mem::take(&mut solver.viscosity),
        picard_iterations: iters,
        total_minres_iterations: total_minres,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::extract::extract_mesh;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    #[test]
    fn linear_rheology_converges_in_one_or_two_steps() {
        spmd::run(1, |c| {
            let t = DistOctree::new_uniform(c, 2);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let res = picard_solve(
                &m,
                c,
                bc,
                |_, _| 1.0, // Newtonian
                |p| [0.0, 0.0, (p[0] * 5.0).sin()],
                |_| [0.0; 3],
                PicardOptions::default(),
            );
            assert!(res.converged);
            assert!(res.picard_iterations <= 2, "{}", res.picard_iterations);
        });
    }

    #[test]
    fn yielding_rheology_reduces_viscosity_under_stress() {
        spmd::run(2, |c| {
            let t = DistOctree::new_uniform(c, 2);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let sigma_y = 0.05; // low yield stress: forcing will exceed it
            let res = picard_solve(
                &m,
                c,
                bc,
                move |_, edot| {
                    let eta0 = 1.0f64;
                    if edot > 0.0 {
                        eta0.min(sigma_y / (2.0 * edot)).max(1e-4)
                    } else {
                        eta0
                    }
                },
                |p| [0.0, 0.0, 10.0 * (std::f64::consts::PI * p[0]).sin()],
                |_| [0.0; 3],
                PicardOptions {
                    max_picard: 40,
                    ..Default::default()
                },
            );
            assert!(res.converged, "picard did not converge");
            let min_eta = res.viscosity.iter().cloned().fold(f64::INFINITY, f64::min);
            let g = c.allreduce_min(&[min_eta])[0];
            assert!(
                g < 1.0,
                "yielding must lower viscosity somewhere: min η = {g}"
            );
            assert!(res.picard_iterations > 1, "nonlinearity must engage");
        });
    }
}
