//! The stabilized Stokes operator, its block preconditioner, and the
//! MINRES driver.

use fem::element::{
    divergence_matrix, lumped_mass, pressure_stabilization, stiffness_matrix, viscous_matrix,
};
use fem::op::DofMap;
use la::krylov::{minres_fused, minres_observed, DotBatch, LinearOp, SolveInfo};
use la::{Amg, AmgOptions};
use mesh::extract::{ExchangeBuffers, Mesh};
use obs::Recorder;
use scomm::Comm;
use std::cell::RefCell;

/// Solver options.
#[derive(Debug, Clone, Copy)]
pub struct StokesOptions {
    pub tol: f64,
    pub max_iter: usize,
    pub amg: AmgOptions,
    /// Use the single-reduction fused MINRES ([`minres_fused`]) instead of
    /// the classic two-reduction iteration. On by default; the classic
    /// path is kept for differential testing.
    pub fused_reductions: bool,
    /// Split-phase ghost exchange in operator applications: post the
    /// velocity and pressure exchanges, sweep interior elements while the
    /// messages are in flight, complete, then sweep surface elements. On
    /// by default; the blocking path is kept as the differential oracle
    /// and benchmark baseline. Results are bitwise identical either way.
    pub overlap_exchange: bool,
}

impl Default for StokesOptions {
    fn default() -> Self {
        StokesOptions {
            tol: 1e-8,
            max_iter: 500,
            amg: AmgOptions::default(),
            fused_reductions: true,
            overlap_exchange: true,
        }
    }
}

/// Reusable scratch for the operator and preconditioner applications.
/// Grow-only: after the first application every buffer has reached its
/// final capacity and subsequent applies perform zero heap allocations
/// (the `minres.alloc_bytes` telemetry counter proves it per solve).
#[derive(Debug)]
struct SolverWorkspace {
    /// BC-zeroed owned velocity copy.
    u: Vec<f64>,
    /// Owned+ghost velocity / pressure vectors.
    ul: Vec<f64>,
    pl: Vec<f64>,
    /// Owned+ghost result accumulators.
    yu: Vec<f64>,
    yp: Vec<f64>,
    /// Preconditioner per-component scratch.
    rc: Vec<f64>,
    zc: Vec<f64>,
    /// Packed ghost-exchange staging for the velocity / scalar maps.
    /// Distinct streams so both exchanges may be in flight concurrently
    /// on the split-phase path without their messages crossing.
    vexch: ExchangeBuffers,
    sexch: ExchangeBuffers,
}

impl Default for SolverWorkspace {
    fn default() -> Self {
        SolverWorkspace {
            u: Vec::new(),
            ul: Vec::new(),
            pl: Vec::new(),
            yu: Vec::new(),
            yp: Vec::new(),
            rc: Vec::new(),
            zc: Vec::new(),
            vexch: ExchangeBuffers::with_stream(1),
            sexch: ExchangeBuffers::with_stream(2),
        }
    }
}

impl SolverWorkspace {
    fn capacity_bytes(&self) -> u64 {
        ((self.u.capacity()
            + self.ul.capacity()
            + self.pl.capacity()
            + self.yu.capacity()
            + self.yp.capacity()
            + self.rc.capacity()
            + self.zc.capacity())
            * std::mem::size_of::<f64>()) as u64
            + self.vexch.capacity_bytes()
            + self.sexch.capacity_bytes()
    }
}

/// Globally consistent inner products on combined (velocity | pressure)
/// owned vectors: per-pair local partials, one `allreduce_sum` for the
/// whole batch. Each batched scalar is bitwise identical to a separate
/// [`StokesSolver::dot`] call (the simulated allreduce combines ranks
/// elementwise in rank order).
struct CombinedDots<'c>(&'c Comm);

impl DotBatch for CombinedDots<'_> {
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        self.0.allreduce_sum(&[local])[0]
    }

    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        const MAX: usize = 16;
        assert!(pairs.len() <= MAX, "dot batch larger than {MAX}");
        let mut locals = [0.0f64; MAX];
        for (l, (a, b)) in locals.iter_mut().zip(pairs) {
            *l = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        }
        let global = self.0.allreduce_sum(&locals[..pairs.len()]);
        out.copy_from_slice(&global);
    }
}

/// Measured phase timings and iteration counts (feeds Figs. 2 and 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct StokesStats {
    pub minres_iterations: usize,
    pub amg_setup_seconds: f64,
    pub amg_vcycle_seconds: f64,
    pub minres_seconds: f64,
    pub amg_levels: usize,
}

/// A variable-viscosity Stokes solver bound to a mesh.
///
/// Unknown layout: `[u₀x u₀y u₀z u₁x … | p₀ p₁ …]` — velocity block of
/// length `3·n_owned` followed by the pressure block of length `n_owned`.
pub struct StokesSolver<'a> {
    pub mesh: &'a Mesh,
    pub comm: &'a Comm,
    /// Per-element viscosity.
    pub viscosity: Vec<f64>,
    /// Velocity Dirichlet mask, length `3·n_owned` (componentwise; both
    /// no-slip walls and free-slip normal components are expressible).
    pub vel_bc: Vec<bool>,
    vmap: DofMap<'a>,
    smap: DofMap<'a>,
    /// AMG hierarchies on the rank-local η-weighted scalar Poisson
    /// block, one per velocity component (their Dirichlet masks differ
    /// under free-slip conditions).
    amg: Vec<Amg>,
    /// Inverse of the η⁻¹-weighted lumped pressure mass diagonal.
    schur_diag_inv: Vec<f64>,
    ws: RefCell<SolverWorkspace>,
    pub stats: StokesStats,
    options: StokesOptions,
}

impl<'a> StokesSolver<'a> {
    /// Create the solver and run the preconditioner setup phase (AMG
    /// setup + Schur diagonal). Collective.
    pub fn new(
        mesh: &'a Mesh,
        comm: &'a Comm,
        viscosity: Vec<f64>,
        vel_bc: Vec<bool>,
        options: StokesOptions,
    ) -> Self {
        assert_eq!(viscosity.len(), mesh.elements.len());
        assert_eq!(vel_bc.len(), 3 * mesh.n_owned);
        let vmap = DofMap::new(mesh, comm, 3);
        let smap = DofMap::new(mesh, comm, 1);
        let mut solver = StokesSolver {
            mesh,
            comm,
            viscosity,
            vel_bc,
            vmap,
            smap,
            amg: Vec::new(),
            schur_diag_inv: Vec::new(),
            ws: RefCell::new(SolverWorkspace::default()),
            stats: StokesStats::default(),
            options,
        };
        solver.setup();
        solver
    }

    /// The recorder attached to this solver's communicator, if any: the
    /// solver reports its telemetry (`AMGSetup`/`MINRES`/`AMGSolve` spans,
    /// residual series) through the same per-rank recorder the
    /// communication layer uses, so callers don't have to thread one in.
    fn recorder(&self) -> Option<Recorder> {
        self.comm.recorder()
    }

    /// (Re-)run the preconditioner setup: assemble the η-weighted scalar
    /// Poisson owned block, build AMG, and the Schur diagonal.
    pub fn setup(&mut self) {
        let _span = self.recorder().map(|r| r.span_cat("AMGSetup", "solve"));
        let t0 = std::time::Instant::now();
        // One scalar η-weighted Poisson hierarchy per velocity component:
        // under free-slip conditions the components carry different
        // Dirichlet masks, and using a shared all-boundary mask degrades
        // MINRES badly (tangential boundary rows would be preconditioned
        // as identities). Components with identical masks share one
        // hierarchy.
        let visc = &self.viscosity;
        let mref = self.mesh;
        let src = move |e: usize, out: &mut [f64]| {
            let k = stiffness_matrix(mref.element_size(e), visc[e]);
            for i in 0..8 {
                for j in 0..8 {
                    out[i * 8 + j] = k[i][j];
                }
            }
        };
        let masks: Vec<Vec<bool>> = (0..3)
            .map(|comp| {
                (0..self.mesh.n_owned)
                    .map(|d| self.vel_bc[3 * d + comp])
                    .collect()
            })
            .collect();
        self.amg.clear();
        let mut built: Vec<(usize, usize)> = Vec::new(); // (mask idx, amg idx)
        for comp in 0..3 {
            if let Some(&(_, idx)) = built.iter().find(|&&(m, _)| masks[m] == masks[comp]) {
                let shared = self.amg[idx].clone();
                self.amg.push(shared);
                continue;
            }
            let a_block = fem::assembly::assemble_owned_block(&self.smap, &src, Some(&masks[comp]));
            let amg = Amg::new(a_block, self.options.amg);
            self.stats.amg_levels = amg.num_levels();
            built.push((comp, self.amg.len()));
            self.amg.push(amg);
        }

        // Schur approximation: lumped pressure mass weighted by 1/η.
        let mut sdiag = vec![0.0; self.smap.n_local()];
        for e in 0..self.mesh.elements.len() {
            let lm = lumped_mass(self.mesh.element_size(e));
            let scaled: [f64; 8] = std::array::from_fn(|i| lm[i] / self.viscosity[e]);
            self.smap.scatter_element(e, &scaled, &mut sdiag);
        }
        self.smap.reverse_accumulate(&mut sdiag);
        self.schur_diag_inv = sdiag[..self.mesh.n_owned]
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect();
        self.stats.amg_setup_seconds += t0.elapsed().as_secs_f64();
    }

    /// Total owned unknowns (velocity + pressure).
    pub fn n_owned(&self) -> usize {
        4 * self.mesh.n_owned
    }

    /// Globally consistent inner product on the combined vector.
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        self.comm.allreduce_sum(&[local])[0]
    }

    /// Apply the stabilized Stokes operator to a combined vector.
    /// Allocation-free at steady state (reusable [`SolverWorkspace`]).
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut ws = self.ws.borrow_mut();
        self.apply_with(x, y, &mut ws, true);
    }

    /// Shared body of [`StokesSolver::apply`] (BC-eliminated) and the
    /// unconstrained application used for the Dirichlet lift.
    fn apply_with(&self, x: &[f64], y: &mut [f64], ws: &mut SolverWorkspace, constrained: bool) {
        let nu = 3 * self.mesh.n_owned;
        let np = self.mesh.n_owned;
        debug_assert_eq!(x.len(), nu + np);
        // Split and zero velocity BC entries (symmetric elimination).
        ws.u.clear();
        ws.u.extend_from_slice(&x[..nu]);
        if constrained {
            for (i, &m) in self.vel_bc.iter().enumerate() {
                if m {
                    ws.u[i] = 0.0;
                }
            }
        }
        ws.yu.clear();
        ws.yu.resize(self.vmap.n_local(), 0.0);
        ws.yp.clear();
        ws.yp.resize(self.smap.n_local(), 0.0);
        // Both paths sweep interior-then-surface elements in the same
        // order, so results are bitwise identical; only the exchange
        // completion point differs.
        if self.options.overlap_exchange {
            self.vmap.fill_local(&ws.u, &mut ws.ul);
            self.smap.fill_local(&x[nu..], &mut ws.pl);
            self.vmap.exchange_begin(&ws.ul, &mut ws.vexch);
            self.smap.exchange_begin(&ws.pl, &mut ws.sexch);
            self.sweep(&self.mesh.interior_elems, ws);
            self.vmap.exchange_end(&mut ws.ul, &mut ws.vexch);
            self.smap.exchange_end(&mut ws.pl, &mut ws.sexch);
            self.sweep(&self.mesh.surface_elems, ws);
            self.vmap
                .reverse_accumulate_begin(&mut ws.yu, &mut ws.vexch);
            self.smap
                .reverse_accumulate_begin(&mut ws.yp, &mut ws.sexch);
            self.vmap.reverse_accumulate_end(&mut ws.yu, &mut ws.vexch);
            self.smap.reverse_accumulate_end(&mut ws.yp, &mut ws.sexch);
        } else {
            self.vmap.to_local_into(&ws.u, &mut ws.ul, &mut ws.vexch);
            self.smap.to_local_into(&x[nu..], &mut ws.pl, &mut ws.sexch);
            self.sweep(&self.mesh.interior_elems, ws);
            self.sweep(&self.mesh.surface_elems, ws);
            self.vmap.reverse_accumulate_with(&mut ws.yu, &mut ws.vexch);
            self.smap.reverse_accumulate_with(&mut ws.yp, &mut ws.sexch);
        }
        y[..nu].copy_from_slice(&ws.yu[..nu]);
        y[nu..].copy_from_slice(&ws.yp[..np]);
        if constrained {
            // Identity on velocity BC rows.
            for (i, &m) in self.vel_bc.iter().enumerate() {
                if m {
                    y[i] = x[i];
                }
            }
        }
    }

    /// Sweep the given elements of the stabilized Stokes stencil:
    /// gather velocity/pressure element vectors from `ws.ul`/`ws.pl`,
    /// apply the block stencil, scatter into `ws.yu`/`ws.yp`. Interior
    /// elements touch only non-shared owned dofs, so this is safe to run
    /// while ghost exchanges on `ws.ul`/`ws.pl` are still in flight.
    fn sweep(&self, elems: &[u32], ws: &mut SolverWorkspace) {
        let mut ue = [0.0; 24];
        let mut pe = [0.0; 8];
        let mut ru = [0.0; 24];
        let mut rp = [0.0; 8];
        for &e in elems {
            let e = e as usize;
            let h = self.mesh.element_size(e);
            let eta = self.viscosity[e];
            let a = viscous_matrix(h, eta);
            let b = divergence_matrix(h);
            let c = pressure_stabilization(h, eta);
            self.vmap.gather_element(e, &ws.ul, &mut ue);
            self.smap.gather_element(e, &ws.pl, &mut pe);
            // ru = A u + Bᵀ p ; rp = B u − C p.
            for i in 0..24 {
                let mut acc = 0.0;
                for j in 0..24 {
                    acc += a[i][j] * ue[j];
                }
                for q in 0..8 {
                    acc += b[q][i] * pe[q];
                }
                ru[i] = acc;
            }
            for q in 0..8 {
                let mut acc = 0.0;
                for j in 0..24 {
                    acc += b[q][j] * ue[j];
                }
                for r in 0..8 {
                    acc -= c[q][r] * pe[r];
                }
                rp[q] = acc;
            }
            self.vmap.scatter_element(e, &ru, &mut ws.yu);
            self.smap.scatter_element(e, &rp, &mut ws.yp);
        }
    }

    /// Apply the block preconditioner `P⁻¹ = diag(Ã⁻¹, S̃⁻¹)`: one AMG
    /// V-cycle per velocity component, diagonal solve on pressure.
    /// Allocation-free at steady state.
    pub fn apply_preconditioner(&self, r: &[f64], z: &mut [f64]) {
        let n = self.mesh.n_owned;
        let nu = 3 * n;
        assert_eq!(self.amg.len(), 3, "setup() must run first");
        let mut ws_ref = self.ws.borrow_mut();
        let ws = &mut *ws_ref;
        ws.rc.clear();
        ws.rc.resize(n, 0.0);
        ws.zc.clear();
        ws.zc.resize(n, 0.0);
        for c in 0..3 {
            for i in 0..n {
                ws.rc[i] = r[3 * i + c];
            }
            self.amg[c].vcycle(&ws.rc, &mut ws.zc);
            for i in 0..n {
                z[3 * i + c] = ws.zc[i];
            }
        }
        for i in 0..n {
            z[nu + i] = r[nu + i] * self.schur_diag_inv[i];
        }
    }

    /// Solve the Stokes system with MINRES for the given combined RHS,
    /// starting from `x` (initial guess, velocity BC entries = boundary
    /// values that the RHS was lifted with). Collective.
    pub fn solve(&mut self, rhs: &[f64], x: &mut [f64]) -> SolveInfo {
        struct OpWrap<'s, 'a>(&'s StokesSolver<'a>);
        impl LinearOp for OpWrap<'_, '_> {
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                self.0.apply(x, y);
            }
            fn len(&self) -> usize {
                self.0.n_owned()
            }
        }
        struct PreWrap<'s, 'a>(&'s StokesSolver<'a>, std::cell::Cell<f64>, Option<Recorder>);
        impl LinearOp for PreWrap<'_, '_> {
            fn apply(&self, r: &[f64], z: &mut [f64]) {
                let _span = self.2.as_ref().map(|rec| {
                    rec.add_count("amg.vcycles", 3); // one per velocity component
                    rec.span_cat("AMGSolve", "solve")
                });
                let t0 = std::time::Instant::now();
                self.0.apply_preconditioner(r, z);
                self.1.set(self.1.get() + t0.elapsed().as_secs_f64());
            }
            fn len(&self) -> usize {
                self.0.n_owned()
            }
        }
        let rec = self.recorder();
        let _span = rec.as_ref().map(|r| r.span_cat("MINRES", "solve"));
        let t0 = std::time::Instant::now();
        // Snapshot communication stats and workspace capacity: their
        // deltas across the solve become the per-solve telemetry counters
        // (reductions per iteration, exchange messages, allocation proof).
        let stats0 = self.comm.stats();
        let cap0 = self.ws.borrow().capacity_bytes();
        let (info, vcycle_secs) = {
            let op = OpWrap(self);
            let pre = PreWrap(self, std::cell::Cell::new(0.0), rec.clone());
            let observe = |_iter: usize, res: f64| {
                #[cfg(debug_assertions)]
                if scomm::checks_enabled() {
                    assert!(
                        res.is_finite(),
                        "MINRES residual became non-finite at iteration {_iter} \
                         (corrupt assembly or exchange upstream)"
                    );
                }
                if let Some(r) = rec.as_ref() {
                    r.push_series("minres.residual", res);
                }
            };
            let dots = CombinedDots(self.comm);
            let info = if self.options.fused_reductions {
                minres_fused(
                    &op,
                    Some(&pre),
                    rhs,
                    x,
                    self.options.tol,
                    self.options.max_iter,
                    dots,
                    observe,
                )
            } else {
                minres_observed(
                    &op,
                    Some(&pre),
                    rhs,
                    x,
                    self.options.tol,
                    self.options.max_iter,
                    dots,
                    observe,
                )
            };
            (info, pre.1.get())
        };
        self.stats.minres_seconds += t0.elapsed().as_secs_f64();
        self.stats.amg_vcycle_seconds += vcycle_secs;
        self.stats.minres_iterations += info.iterations;
        if let Some(r) = rec.as_ref() {
            let stats1 = self.comm.stats();
            let cap1 = self.ws.borrow().capacity_bytes();
            r.add_count("minres.iterations", info.iterations as u64);
            r.add_count("minres.allreduces", stats1.allreduces - stats0.allreduces);
            r.add_count(
                "minres.exchange_msgs",
                stats1.p2p_messages - stats0.p2p_messages,
            );
            // Workspace growth during the solve; 0 once buffers reached
            // steady state (the zero-allocation proof for the hot path).
            r.add_count("minres.alloc_bytes", cap1 - cap0);
            if info.iterations > 0 {
                r.push_series(
                    "minres.reductions_per_iter",
                    (stats1.allreduces - stats0.allreduces) as f64 / info.iterations as f64,
                );
            }
        }
        info
    }

    /// Build the combined RHS for a body force sampled at dofs
    /// (`f(point) -> [fx, fy, fz]`), with a velocity Dirichlet lift
    /// `g(point) -> [ux, uy, uz]` applied on constrained components.
    /// Returns `(rhs, x0)` ready for [`StokesSolver::solve`].
    pub fn build_rhs<F, G>(&self, f: F, g: G) -> (Vec<f64>, Vec<f64>)
    where
        F: Fn([f64; 3]) -> [f64; 3],
        G: Fn([f64; 3]) -> [f64; 3],
    {
        let n = self.mesh.n_owned;
        let nu = 3 * n;
        // Consistent body-force load: rhs_u = M (f sampled nodally).
        let mut fv = vec![0.0; nu];
        for d in 0..n {
            let val = f(self.mesh.dof_coords(d));
            for c in 0..3 {
                fv[3 * d + c] = val[c];
            }
        }
        let fl = self.vmap.to_local(&fv);
        let mut rhs_local = vec![0.0; self.vmap.n_local()];
        let mut fe = [0.0; 24];
        let mut re = [0.0; 24];
        for e in 0..self.mesh.elements.len() {
            let mm = fem::element::mass_matrix(self.mesh.element_size(e));
            self.vmap.gather_element(e, &fl, &mut fe);
            for i in 0..8 {
                for c in 0..3 {
                    re[3 * i + c] = (0..8).map(|j| mm[i][j] * fe[3 * j + c]).sum();
                }
            }
            self.vmap.scatter_element(e, &re, &mut rhs_local);
        }
        self.vmap.reverse_accumulate(&mut rhs_local);
        let mut rhs = vec![0.0; self.n_owned()];
        rhs[..nu].copy_from_slice(&rhs_local[..nu]);

        // Dirichlet lift: x0 carries g on constrained entries; subtract
        // A·x0 from the RHS, then overwrite BC rows with the BC values.
        let mut x0 = vec![0.0; self.n_owned()];
        let mut any_bc = false;
        for d in 0..n {
            let val = g(self.mesh.dof_coords(d));
            for c in 0..3 {
                if self.vel_bc[3 * d + c] {
                    x0[3 * d + c] = val[c];
                    any_bc = true;
                }
            }
        }
        if any_bc {
            // rhs -= A_full · x0 where A_full ignores the BC elimination
            // (we need the coupling of boundary values into the interior).
            let mut ax0 = vec![0.0; self.n_owned()];
            self.apply_unconstrained(&x0, &mut ax0);
            for i in 0..self.n_owned() {
                rhs[i] -= ax0[i];
            }
        }
        // BC rows: identity equation u_bc = g.
        for (i, &m) in self.vel_bc.iter().enumerate() {
            if m {
                rhs[i] = x0[i];
            }
        }
        (rhs, x0)
    }

    /// Operator application without BC elimination (used for the lift).
    fn apply_unconstrained(&self, x: &[f64], y: &mut [f64]) {
        let mut ws = self.ws.borrow_mut();
        self.apply_with(x, y, &mut ws, false);
    }

    /// Compute the per-element second invariant of the strain rate
    /// `ė = sqrt(½ ε̇:ε̇)` at the element center from a combined solution
    /// vector. Used by the yielding rheology.
    pub fn strain_rate_invariant(&self, x: &[f64]) -> Vec<f64> {
        let nu = 3 * self.mesh.n_owned;
        let ul = self.vmap.to_local(&x[..nu]);
        let mut out = Vec::with_capacity(self.mesh.elements.len());
        let mut ue = [0.0; 24];
        for e in 0..self.mesh.elements.len() {
            let h = self.mesh.element_size(e);
            self.vmap.gather_element(e, &ul, &mut ue);
            // Velocity gradient at the element center.
            let mut grad = [[0.0f64; 3]; 3]; // grad[a][b] = ∂u_a/∂x_b
            for cnode in 0..8 {
                let g = fem::element::shape_grad(cnode, 0.5, 0.5, 0.5);
                let gphys = [g[0] / h[0], g[1] / h[1], g[2] / h[2]];
                for a in 0..3 {
                    for b in 0..3 {
                        grad[a][b] += ue[3 * cnode + a] * gphys[b];
                    }
                }
            }
            let mut sum = 0.0;
            for a in 0..3 {
                for b in 0..3 {
                    let eab = 0.5 * (grad[a][b] + grad[b][a]);
                    sum += eab * eab;
                }
            }
            out.push((0.5 * sum).sqrt());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::extract::extract_mesh;
    use octree::balance::BalanceKind;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    /// Manufactured Stokes solution with constant viscosity on the unit
    /// cube: divergence-free velocity field that vanishes on the whole
    /// boundary, with pressure p = cos(πx)·cos(πy).
    ///
    /// ψ-based field: u = curl(0, 0, ψ) with ψ = [x(1−x)y(1−y)]² z(1−z)…
    /// too messy analytically — instead use the classic vanishing-on-
    /// boundary field u = (f'(x) g(y) − …). We choose:
    ///   u₁ =  sin(πx)² sin(2πy) sin(2πz)… (divergence not zero)
    /// Simplest rigorous choice: u = curl Φ with
    ///   Φ = (0, 0, φ), φ = sin²(πx) sin²(πy) z(1−z)
    /// ⇒ u = (∂φ/∂y, −∂φ/∂x, 0), automatically divergence-free, and
    /// u = 0 on all faces (φ has vanishing tangential derivatives there).
    fn mms(p: [f64; 3]) -> ([f64; 3], f64) {
        let pi = std::f64::consts::PI;
        let (x, y, z) = (p[0], p[1], p[2]);
        let sx = (pi * x).sin();
        let sy = (pi * y).sin();
        let cx = (pi * x).cos();
        let cy = (pi * y).cos();
        let w = z * (1.0 - z);
        let u = 2.0 * pi * sx * sx * sy * cy * w;
        let v = -2.0 * pi * sx * cx * sy * sy * w;
        let pr = (pi * x).cos() * (pi * y).cos();
        ([u, v, 0.0], pr)
    }

    /// Body force f = −ηΔu + ∇p for η = 1 (computed by finite differences
    /// of the exact fields — exact enough at 1e-6 step for the tolerances
    /// used here).
    fn mms_force(p: [f64; 3]) -> [f64; 3] {
        let h = 1e-5;
        let lap = |comp: usize, q: [f64; 3]| -> f64 {
            let mut acc = 0.0;
            for d in 0..3 {
                let mut qp = q;
                let mut qm = q;
                qp[d] += h;
                qm[d] -= h;
                acc += (mms(qp).0[comp] - 2.0 * mms(q).0[comp] + mms(qm).0[comp]) / (h * h);
            }
            acc
        };
        let gradp = |d: usize, q: [f64; 3]| -> f64 {
            let mut qp = q;
            let mut qm = q;
            qp[d] += h;
            qm[d] -= h;
            (mms(qp).1 - mms(qm).1) / (2.0 * h)
        };
        [
            -lap(0, p) + gradp(0, p),
            -lap(1, p) + gradp(1, p),
            -lap(2, p) + gradp(2, p),
        ]
    }

    fn solve_mms(nranks: usize, level: u8) -> (f64, usize) {
        let out = spmd::run(nranks, move |c| {
            let t = DistOctree::new_uniform(c, level);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let visc = vec![1.0; m.elements.len()];
            let mut solver = StokesSolver::new(&m, c, visc, bc, StokesOptions::default());
            let (rhs, mut x) = solver.build_rhs(mms_force, |p| mms(p).0);
            let info = solver.solve(&rhs, &mut x);
            assert!(info.converged, "{info:?}");
            // Velocity max error at owned dofs.
            let mut err = 0.0f64;
            for d in 0..n {
                let exact = mms(m.dof_coords(d)).0;
                for comp in 0..3 {
                    err = err.max((x[3 * d + comp] - exact[comp]).abs());
                }
            }
            (c.allreduce_max(&[err])[0], info.iterations)
        });
        out[0]
    }

    #[test]
    fn stokes_mms_converges_with_refinement() {
        let (e2, _) = solve_mms(1, 2);
        let (e3, _) = solve_mms(1, 3);
        let rate = (e2 / e3).log2();
        assert!(rate > 1.5, "rate {rate} (e2 = {e2}, e3 = {e3})");
    }

    #[test]
    fn stokes_parallel_matches_serial() {
        let (es, is) = solve_mms(1, 2);
        let (ep, ip) = solve_mms(2, 2);
        assert!((es - ep).abs() < 1e-6, "errors {es} vs {ep}");
        // Block-Jacobi AMG changes with rank count; iterations may move a
        // little but must stay in the same regime.
        assert!(
            (is as i64 - ip as i64).unsigned_abs() as usize <= is / 2 + 10,
            "iterations {is} vs {ip}"
        );
    }

    #[test]
    fn iterations_insensitive_to_viscosity_contrast() {
        // The paper's headline solver property: MINRES + block
        // preconditioner shrugs at orders-of-magnitude viscosity jumps.
        let iters: Vec<usize> = [1.0f64, 1e2, 1e4]
            .iter()
            .map(|&contrast| {
                let out = spmd::run(1, move |c| {
                    let t = DistOctree::new_uniform(c, 2);
                    let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                    let n = m.n_owned;
                    let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
                    let visc: Vec<f64> = m
                        .elements
                        .iter()
                        .map(|o| {
                            if o.center_unit()[2] > 0.5 {
                                contrast
                            } else {
                                1.0
                            }
                        })
                        .collect();
                    let mut solver = StokesSolver::new(&m, c, visc, bc, StokesOptions::default());
                    let (rhs, mut x) =
                        solver.build_rhs(|p| [0.0, 0.0, (p[0] * 7.0).sin()], |_| [0.0; 3]);
                    let info = solver.solve(&rhs, &mut x);
                    assert!(info.converged, "contrast {contrast}: {info:?}");
                    info.iterations
                });
                out[0]
            })
            .collect();
        let max = *iters.iter().max().unwrap();
        assert!(
            max <= 4 * iters[0].max(10),
            "iterations blow up with viscosity contrast: {iters:?}"
        );
    }

    #[test]
    fn overlapped_solve_bitwise_matches_blocking() {
        // Full MINRES solves over the split-phase and blocking exchange
        // paths must agree bit for bit — same mesh, same RHS, only the
        // exchange completion point differs.
        let run = |overlap: bool| -> Vec<Vec<u64>> {
            spmd::run(2, move |c| {
                let mut t = DistOctree::new_uniform(c, 2);
                t.refine(|o| o.center_unit()[2] > 0.6);
                t.balance(BalanceKind::Full);
                t.partition();
                let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let n = m.n_owned;
                let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
                let visc: Vec<f64> = m
                    .elements
                    .iter()
                    .map(|o| if o.center_unit()[2] > 0.5 { 100.0 } else { 1.0 })
                    .collect();
                let opts = StokesOptions {
                    overlap_exchange: overlap,
                    ..StokesOptions::default()
                };
                let mut solver = StokesSolver::new(&m, c, visc, bc, opts);
                let (rhs, mut x) =
                    solver.build_rhs(|p| [0.0, 0.0, (5.0 * p[0]).sin()], |_| [0.0; 3]);
                let info = solver.solve(&rhs, &mut x);
                assert!(info.converged, "{info:?}");
                x.iter().map(|v| v.to_bits()).collect()
            })
        };
        assert_eq!(run(true), run(false), "solve paths diverge");
    }

    #[test]
    fn solution_is_discretely_divergence_free() {
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] < 0.4);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let visc = vec![1.0; m.elements.len()];
            let mut solver = StokesSolver::new(&m, c, visc, bc, StokesOptions::default());
            let (rhs, mut x) = solver.build_rhs(|p| [0.0, 0.0, (3.0 * p[0]).sin()], |_| [0.0; 3]);
            let info = solver.solve(&rhs, &mut x);
            assert!(info.converged);
            // Residual of the continuity row: B u − C p must be small
            // relative to the velocity magnitude.
            let mut y = vec![0.0; solver.n_owned()];
            solver.apply(&x, &mut y);
            let nu = 3 * n;
            let div_res: f64 = solver.dot(&y[nu..], &y[nu..]).sqrt();
            let rhs_norm: f64 = solver.dot(&rhs, &rhs).sqrt().max(1e-30);
            assert!(div_res / rhs_norm < 1e-6, "divergence residual {div_res}");
        });
    }

    #[test]
    fn strain_rate_invariant_of_linear_shear() {
        spmd::run(1, |c| {
            let t = DistOctree::new_uniform(c, 2);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let solver = StokesSolver::new(
                &m,
                c,
                vec![1.0; m.elements.len()],
                vec![false; 3 * n],
                StokesOptions::default(),
            );
            // u = (γ z, 0, 0): ε̇ has e13 = e31 = γ/2 ⇒ ė = γ/2.
            let gamma = 3.0;
            let mut x = vec![0.0; solver.n_owned()];
            for d in 0..n {
                x[3 * d] = gamma * m.dof_coords(d)[2];
            }
            let inv = solver.strain_rate_invariant(&x);
            for v in inv {
                assert!((v - gamma / 2.0).abs() < 1e-12, "ė = {v}");
            }
        });
    }
}
