//! # alps — Adaptive Large-scale Parallel Simulations
//!
//! The façade crate of the reproduction: ALPS is the paper's library for
//! parallel dynamic octree-based finite element AMR (Section IV). It
//! bundles and re-exports the layers a simulation code builds on:
//!
//! * [`scomm`] — the simulated SPMD communication substrate
//!   (DESIGN.md substitution for MPI/Ranger);
//! * [`octree`] — Morton-ordered linear octrees with the paper's AMR
//!   functions: `NewTree`, `RefineTree`, `CoarsenTree`, `BalanceTree`
//!   (2:1, prioritized ripple), `PartitionTree` (space-filling-curve
//!   segments), `MarkElements` (collective threshold iteration);
//! * [`forest`] — the P4EST layer: forests of arbitrarily connected
//!   octrees (unit cube, bricks, the 24-tree cubed sphere), with
//!   inter-tree face transforms derived from shared corner vertices;
//! * [`mesh`] — `ExtractMesh`: trilinear hexahedral meshes with
//!   hanging-node constraints, distributed dof numbering, ghost
//!   exchange, `InterpolateFields` and `TransferFields`.
//!
//! The PDE layers (`fem`, `la`, `stokes`, `rhea`, `mangll`) sit on top;
//! see the workspace README for the map.
//!
//! ## Quickstart
//!
//! ```
//! use alps::prelude::*;
//!
//! // Four simulated ranks cooperatively build an adapted, balanced,
//! // load-partitioned mesh of the unit cube.
//! let dof_counts = scomm::spmd::run(4, |comm| {
//!     let mut tree = DistOctree::new_uniform(comm, 2);
//!     tree.refine(|o| o.center_unit()[2] < 0.25);
//!     tree.balance(BalanceKind::Full);
//!     tree.partition();
//!     let mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
//!     mesh.n_owned
//! });
//! assert!(dof_counts.iter().sum::<usize>() > 125);
//! ```

pub use forest;
pub use mesh;
pub use octree;
pub use scomm;

/// The names a typical ALPS application uses.
pub mod prelude {
    pub use forest::{Connectivity, Forest, ForestLeaf, TreeGeometry};
    pub use mesh::extract::{extract_mesh, Mesh};
    pub use mesh::interp::interpolate_node_field;
    pub use octree::balance::BalanceKind;
    pub use octree::mark::{Mark, MarkParams};
    pub use octree::parallel::{transfer_fields, DistOctree, PartitionPlan};
    pub use octree::{Octant, MAX_LEVEL, ROOT_LEN};
    pub use scomm::{spmd, Comm, MachineModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_pipeline_end_to_end() {
        // The Fig. 4 loop through the façade: mark → adapt → balance →
        // extract → interpolate → partition → transfer → extract.
        scomm::spmd::run(2, |comm| {
            let mut tree = DistOctree::new_uniform(comm, 2);
            let mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            let field: Vec<f64> = (0..mesh.n_owned).map(|d| mesh.dof_coords(d)[0]).collect();
            let ind: Vec<f64> = tree
                .local
                .iter()
                .map(|o| (1.0 - o.center_unit()[0]).max(0.0))
                .collect();
            let params = MarkParams {
                target_elements: 200,
                ..Default::default()
            };
            tree.adapt_to_target(&ind, &params);
            tree.balance(BalanceKind::Full);
            let mid = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            let mut old_local = vec![0.0; mesh.n_local()];
            old_local[..mesh.n_owned].copy_from_slice(&field);
            mesh.exchange.exchange(comm, &mut old_local, mesh.n_owned);
            let moved = interpolate_node_field(&mesh, &old_local, &mid);
            assert_eq!(moved.len(), mid.n_local());
            let plan = tree.partition();
            let elem_payload: Vec<u64> = tree.local.iter().map(|o| o.key()).collect();
            // transfer an element payload to prove the plan shape: note
            // the plan was produced *by* this partition call, so payload
            // must be the pre-partition data — rebuild it accordingly.
            let _ = (plan, elem_payload);
            assert!(tree.validate());
            let fin = extract_mesh(&tree, [1.0, 1.0, 1.0]);
            assert!(fin.n_global >= mid.n_owned as u64 / 2);
        });
    }
}
