//! Distributed matrix-free operator application and dof-map utilities.
//!
//! Krylov vectors hold *owned* dofs only (so inner products never double
//! count); operator application expands to the owned+ghost layout,
//! exchanges ghosts, runs the element kernels with element-level
//! constraint application (`CᵀKC`), and accumulates boundary
//! contributions back to their owners — the standard parallel FEM
//! operator pipeline the paper's MINRES relies on.

use std::cell::{Cell, RefCell};

use la::LinearOp;
use mesh::extract::{ExchangeBuffers, Mesh, NodeResolution};
use scomm::Comm;

/// Clear and re-zero a reusable buffer without shrinking its allocation.
#[inline]
fn reset(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

/// Reusable scratch for the distributed operator pipeline: owned and
/// owned+ghost vectors, element scratch, and ghost-exchange pack/unpack
/// buffers. Grow-only — after the first application every buffer is
/// recycled, so steady-state operator applies perform zero heap
/// allocations (verifiable through [`Workspace::capacity_bytes`]).
#[derive(Default)]
pub struct Workspace {
    /// BC-masked copy of the input (owned layout).
    xw: Vec<f64>,
    /// Owned+ghost expansion of the input.
    xl: Vec<f64>,
    /// Owned+ghost accumulation target.
    yl: Vec<f64>,
    /// Row-major element matrix scratch.
    mat: Vec<f64>,
    /// Element-local input/output vectors.
    ue: Vec<f64>,
    re: Vec<f64>,
    /// Ghost-exchange pack/unpack buffers.
    exch: ExchangeBuffers,
}

impl Workspace {
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Total heap capacity currently held, in bytes. The per-apply delta
    /// of this value is the operator's allocation count: zero once the
    /// buffers have reached steady state.
    pub fn capacity_bytes(&self) -> u64 {
        ((self.xw.capacity()
            + self.xl.capacity()
            + self.yl.capacity()
            + self.mat.capacity()
            + self.ue.capacity()
            + self.re.capacity())
            * std::mem::size_of::<f64>()) as u64
            + self.exch.capacity_bytes()
    }
}

/// Sentinel in [`DofMap::corner_dofs`] for a hanging corner that must be
/// resolved through the node table's constraint terms.
const CONSTRAINED: u32 = u32::MAX;

/// Dof-map helper bundling the mesh and communicator.
pub struct DofMap<'a> {
    pub mesh: &'a Mesh,
    pub comm: &'a Comm,
    /// Components per node (1 = scalar, 3 = velocity).
    pub ncomp: usize,
    /// Flat corner → local-dof table: entry `8e + c` is the local dof of
    /// corner `c` of element `e`, or [`CONSTRAINED`] for hanging corners.
    /// Skips the node-table enum indirection on the (overwhelmingly
    /// common) unconstrained corner in the gather/scatter hot loop.
    corner_dofs: Vec<u32>,
}

impl<'a> DofMap<'a> {
    pub fn new(mesh: &'a Mesh, comm: &'a Comm, ncomp: usize) -> Self {
        let mut corner_dofs = Vec::with_capacity(mesh.elem_nodes.len() * 8);
        for nodes in &mesh.elem_nodes {
            for &nref in nodes {
                corner_dofs.push(match &mesh.node_table[nref as usize] {
                    NodeResolution::Dof(d) => {
                        debug_assert!((*d as u64) < CONSTRAINED as u64);
                        *d as u32
                    }
                    NodeResolution::Constrained(_) => CONSTRAINED,
                });
            }
        }
        DofMap {
            mesh,
            comm,
            ncomp,
            corner_dofs,
        }
    }

    /// Owned vector length.
    pub fn n_owned(&self) -> usize {
        self.mesh.n_owned * self.ncomp
    }

    /// Owned+ghost vector length.
    pub fn n_local(&self) -> usize {
        self.mesh.n_local() * self.ncomp
    }

    /// Globally consistent inner product over owned entries.
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.n_owned());
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        self.comm.allreduce_sum(&[local])[0]
    }

    /// Global L² norm of an owned vector.
    pub fn norm(&self, a: &[f64]) -> f64 {
        self.dot(a, a).sqrt()
    }

    /// Global max-norm of an owned vector.
    pub fn norm_inf(&self, a: &[f64]) -> f64 {
        let local = a.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        self.comm.allreduce_max(&[local])[0]
    }

    /// Expand an owned vector into owned+ghost layout and fill ghosts.
    pub fn to_local(&self, owned: &[f64]) -> Vec<f64> {
        debug_assert_eq!(owned.len(), self.n_owned());
        let mut v = vec![0.0; self.n_local()];
        v[..owned.len()].copy_from_slice(owned);
        self.exchange(&mut v);
        v
    }

    /// Allocation-free [`DofMap::to_local`]: expand into a reusable
    /// owned+ghost vector using the packed interleaved exchange.
    pub fn to_local_into(&self, owned: &[f64], v: &mut Vec<f64>, buf: &mut ExchangeBuffers) {
        debug_assert_eq!(owned.len(), self.n_owned());
        reset(v, self.n_local());
        v[..owned.len()].copy_from_slice(owned);
        self.exchange_with(v, buf);
    }

    /// Allocation-free ghost exchange: one packed interleaved message
    /// per neighbor instead of one strided pass per component. Ghost
    /// values are bitwise identical to [`DofMap::exchange`].
    pub fn exchange_with(&self, v: &mut [f64], buf: &mut ExchangeBuffers) {
        self.mesh
            .exchange
            .exchange_interleaved(self.comm, v, self.mesh.n_owned, self.ncomp, buf);
    }

    /// Allocation-free reverse accumulation; results are bitwise
    /// identical to [`DofMap::reverse_accumulate`].
    pub fn reverse_accumulate_with(&self, v: &mut [f64], buf: &mut ExchangeBuffers) {
        self.mesh.exchange.reverse_accumulate_interleaved(
            self.comm,
            v,
            self.mesh.n_owned,
            self.ncomp,
            buf,
        );
    }

    /// Split-phase [`DofMap::exchange_with`]: post the packed ghost fill
    /// and return while the messages are in flight. Only the owned block
    /// of `v` is read at post time, so interior-element work may proceed
    /// on `v` until [`DofMap::exchange_end`] fills the ghost block. The
    /// completed ghost values are bitwise identical to the blocking path.
    pub fn exchange_begin(&self, v: &[f64], buf: &mut ExchangeBuffers) {
        self.mesh
            .exchange
            .exchange_begin_interleaved(self.comm, v, self.ncomp, buf);
    }

    /// Complete the ghost fill posted by [`DofMap::exchange_begin`].
    pub fn exchange_end(&self, v: &mut [f64], buf: &mut ExchangeBuffers) {
        self.mesh.exchange.exchange_end_interleaved(
            self.comm,
            v,
            self.mesh.n_owned,
            self.ncomp,
            buf,
        );
    }

    /// Split-phase [`DofMap::reverse_accumulate_with`]: post the ghost
    /// contributions back to their owners and zero the ghost block.
    pub fn reverse_accumulate_begin(&self, v: &mut [f64], buf: &mut ExchangeBuffers) {
        self.mesh.exchange.reverse_accumulate_begin_interleaved(
            self.comm,
            v,
            self.mesh.n_owned,
            self.ncomp,
            buf,
        );
    }

    /// Complete the accumulation posted by
    /// [`DofMap::reverse_accumulate_begin`]; owner sums are bitwise
    /// identical to the blocking path.
    pub fn reverse_accumulate_end(&self, v: &mut [f64], buf: &mut ExchangeBuffers) {
        self.mesh.exchange.reverse_accumulate_end_interleaved(
            self.comm,
            v,
            self.mesh.n_owned,
            self.ncomp,
            buf,
        );
    }

    /// Reset `v` to owned+ghost length and copy the owned entries in,
    /// without exchanging — the split-phase prelude to
    /// [`DofMap::exchange_begin`].
    pub fn fill_local(&self, owned: &[f64], v: &mut Vec<f64>) {
        debug_assert_eq!(owned.len(), self.n_owned());
        reset(v, self.n_local());
        v[..owned.len()].copy_from_slice(owned);
    }

    /// Exchange ghost values of an owned+ghost vector with `ncomp`
    /// interleaved components.
    pub fn exchange(&self, v: &mut [f64]) {
        if self.ncomp == 1 {
            self.mesh.exchange.exchange(self.comm, v, self.mesh.n_owned);
            return;
        }
        // Interleaved components: exchange each component strided.
        // (Kept simple — one pass per component.)
        let n_local = self.mesh.n_local();
        let mut scratch = vec![0.0; n_local];
        for c in 0..self.ncomp {
            for i in 0..n_local {
                scratch[i] = v[i * self.ncomp + c];
            }
            self.mesh
                .exchange
                .exchange(self.comm, &mut scratch, self.mesh.n_owned);
            for i in 0..n_local {
                v[i * self.ncomp + c] = scratch[i];
            }
        }
    }

    /// Reverse-accumulate ghost contributions to owners (assembly step).
    pub fn reverse_accumulate(&self, v: &mut [f64]) {
        if self.ncomp == 1 {
            self.mesh
                .exchange
                .reverse_accumulate(self.comm, v, self.mesh.n_owned);
            return;
        }
        let n_local = self.mesh.n_local();
        let mut scratch = vec![0.0; n_local];
        for c in 0..self.ncomp {
            for i in 0..n_local {
                scratch[i] = v[i * self.ncomp + c];
            }
            self.mesh
                .exchange
                .reverse_accumulate(self.comm, &mut scratch, self.mesh.n_owned);
            for i in 0..n_local {
                v[i * self.ncomp + c] = scratch[i];
            }
        }
    }

    /// Gather the element-local vector (length `8·ncomp`) of element `e`
    /// from an owned+ghost vector, applying hanging-node constraints.
    pub fn gather_element(&self, e: usize, v: &[f64], out: &mut [f64]) {
        let nc = self.ncomp;
        debug_assert_eq!(out.len(), 8 * nc);
        let dofs = &self.corner_dofs[e * 8..e * 8 + 8];
        if nc == 1 {
            // Scalar fast path: fixed trip counts, no per-component loop.
            let out: &mut [f64; 8] = out.try_into().unwrap();
            for (c, (&d, o)) in dofs.iter().zip(out.iter_mut()).enumerate() {
                if d != CONSTRAINED {
                    *o = v[d as usize];
                } else {
                    let nref = self.mesh.elem_nodes[e][c];
                    let NodeResolution::Constrained(terms) = &self.mesh.node_table[nref as usize]
                    else {
                        unreachable!("corner_dofs sentinel points at a plain dof");
                    };
                    *o = terms.iter().map(|&(d, w)| w * v[d]).sum();
                }
            }
            return;
        }
        for (c, &d) in dofs.iter().enumerate() {
            if d != CONSTRAINED {
                let d = d as usize;
                for k in 0..nc {
                    out[c * nc + k] = v[d * nc + k];
                }
            } else {
                let nref = self.mesh.elem_nodes[e][c];
                let NodeResolution::Constrained(terms) = &self.mesh.node_table[nref as usize]
                else {
                    unreachable!("corner_dofs sentinel points at a plain dof");
                };
                for k in 0..nc {
                    out[c * nc + k] = terms.iter().map(|&(d, w)| w * v[d * nc + k]).sum();
                }
            }
        }
    }

    /// Scatter element contributions back with the constraint transpose.
    pub fn scatter_element(&self, e: usize, contrib: &[f64], v: &mut [f64]) {
        let nc = self.ncomp;
        debug_assert_eq!(contrib.len(), 8 * nc);
        let dofs = &self.corner_dofs[e * 8..e * 8 + 8];
        if nc == 1 {
            let contrib: &[f64; 8] = contrib.try_into().unwrap();
            for (c, (&d, &r)) in dofs.iter().zip(contrib.iter()).enumerate() {
                if d != CONSTRAINED {
                    v[d as usize] += r;
                } else {
                    let nref = self.mesh.elem_nodes[e][c];
                    let NodeResolution::Constrained(terms) = &self.mesh.node_table[nref as usize]
                    else {
                        unreachable!("corner_dofs sentinel points at a plain dof");
                    };
                    for &(d, w) in terms {
                        v[d] += w * r;
                    }
                }
            }
            return;
        }
        for (c, &d) in dofs.iter().enumerate() {
            if d != CONSTRAINED {
                let d = d as usize;
                for k in 0..nc {
                    v[d * nc + k] += contrib[c * nc + k];
                }
            } else {
                let nref = self.mesh.elem_nodes[e][c];
                let NodeResolution::Constrained(terms) = &self.mesh.node_table[nref as usize]
                else {
                    unreachable!("corner_dofs sentinel points at a plain dof");
                };
                for &(d, w) in terms {
                    for k in 0..nc {
                        v[d * nc + k] += w * contrib[c * nc + k];
                    }
                }
            }
        }
    }
}

/// Batched globally-consistent inner products: per-pair local partial
/// sums followed by **one** `allreduce_sum` of the whole batch. The
/// simulated allreduce combines contributions elementwise in rank order,
/// so each scalar of the batch is bitwise identical to what a separate
/// [`DofMap::dot`] call would have produced — the contract the fused
/// solvers ([`la::krylov::minres_fused`]) rely on.
impl la::DotBatch for &DofMap<'_> {
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        DofMap::dot(self, a, b)
    }

    fn dots(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        const MAX: usize = 16;
        assert!(pairs.len() <= MAX, "dot batch larger than {MAX}");
        debug_assert_eq!(pairs.len(), out.len());
        let mut locals = [0.0f64; MAX];
        for (l, (a, b)) in locals.iter_mut().zip(pairs) {
            debug_assert_eq!(a.len(), self.n_owned());
            *l = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        }
        let global = self.comm.allreduce_sum(&locals[..pairs.len()]);
        out.copy_from_slice(&global);
    }
}

/// A distributed symmetric operator defined by per-element matrices, with
/// optional symmetric Dirichlet elimination. Carries its own reusable
/// [`Workspace`], so repeated applications are allocation-free.
///
/// By default applications run **split-phase** (the SC'08 §4 pattern):
/// the ghost exchange is posted, interior elements — those touching only
/// non-shared owned dofs — are swept while the messages are in flight,
/// the exchange completes, and the surface elements are swept last. Both
/// the overlapped and the blocking path sweep interior-then-surface in
/// the same order, so their results are **bitwise identical**; the
/// blocking path (`set_overlap(false)`) is retained as the differential
/// oracle and benchmark baseline.
pub struct DistOp<'a> {
    map: &'a DofMap<'a>,
    /// Fills the `(8·ncomp)²` row-major element matrix of element `e`.
    elem_matrix: Box<dyn Fn(usize, &mut [f64]) + 'a>,
    /// Owned-dof Dirichlet mask (length `n_owned · ncomp`); constrained
    /// entries behave as identity rows/columns.
    bc_mask: Option<&'a [bool]>,
    ws: RefCell<Workspace>,
    /// Cumulative workspace growth, in bytes (see [`DistOp::alloc_bytes`]).
    grown: Cell<u64>,
    /// Overlap the ghost exchange with interior-element sweeps.
    overlap: Cell<bool>,
}

impl<'a> DistOp<'a> {
    pub fn new(
        map: &'a DofMap<'a>,
        elem_matrix: Box<dyn Fn(usize, &mut [f64]) + 'a>,
        bc_mask: Option<&'a [bool]>,
    ) -> DistOp<'a> {
        DistOp {
            map,
            elem_matrix,
            bc_mask,
            ws: RefCell::new(Workspace::new()),
            grown: Cell::new(0),
            overlap: Cell::new(true),
        }
    }

    /// The dof map this operator acts on.
    pub fn map(&self) -> &DofMap<'a> {
        self.map
    }

    /// Select the split-phase (`true`, default) or blocking (`false`)
    /// exchange path. Results are bitwise identical either way.
    pub fn set_overlap(&self, overlap: bool) {
        self.overlap.set(overlap);
    }

    /// Whether applications overlap the ghost exchange with interior work.
    pub fn overlap(&self) -> bool {
        self.overlap.get()
    }

    /// Cumulative bytes of workspace growth over all applications so
    /// far. The delta across a window of applies is the heap-allocation
    /// volume of that window: zero once buffers reached steady state.
    pub fn alloc_bytes(&self) -> u64 {
        self.grown.get()
    }

    /// Apply `y = A x` on owned vectors.
    pub fn apply_owned(&self, x: &[f64], y: &mut [f64]) {
        let map = self.map;
        let n_owned = map.n_owned();
        debug_assert_eq!(x.len(), n_owned);
        debug_assert_eq!(y.len(), n_owned);
        let nc = map.ncomp;
        let dim = 8 * nc;
        let mut ws_ref = self.ws.borrow_mut();
        let ws = &mut *ws_ref;
        let cap0 = ws.capacity_bytes();

        // Zero BC entries of the input (symmetric elimination), expand.
        ws.xw.clear();
        ws.xw.extend_from_slice(x);
        if let Some(mask) = self.bc_mask {
            for (v, &m) in ws.xw.iter_mut().zip(mask) {
                if m {
                    *v = 0.0;
                }
            }
        }
        reset(&mut ws.xl, map.n_local());
        ws.xl[..n_owned].copy_from_slice(&ws.xw);

        reset(&mut ws.yl, map.n_local());
        reset(&mut ws.mat, dim * dim);
        reset(&mut ws.ue, dim);
        reset(&mut ws.re, dim);
        // Both paths sweep interior elements first, then surface
        // elements, so the floating-point accumulation order — and hence
        // the result — is identical; only the point at which the ghost
        // exchange completes differs.
        if self.overlap.get() {
            map.exchange_begin(&ws.xl, &mut ws.exch);
            self.sweep(&map.mesh.interior_elems, ws);
            map.exchange_end(&mut ws.xl, &mut ws.exch);
            self.sweep(&map.mesh.surface_elems, ws);
            map.reverse_accumulate_begin(&mut ws.yl, &mut ws.exch);
            map.reverse_accumulate_end(&mut ws.yl, &mut ws.exch);
        } else {
            map.exchange_with(&mut ws.xl, &mut ws.exch);
            self.sweep(&map.mesh.interior_elems, ws);
            self.sweep(&map.mesh.surface_elems, ws);
            map.reverse_accumulate_with(&mut ws.yl, &mut ws.exch);
        }
        y.copy_from_slice(&ws.yl[..n_owned]);
        if let Some(mask) = self.bc_mask {
            for (i, &m) in mask.iter().enumerate() {
                if m {
                    y[i] = x[i];
                }
            }
        }
        self.grown
            .set(self.grown.get() + (ws.capacity_bytes() - cap0));
    }

    /// Sweep the given elements: form each element matrix, gather the
    /// element vector from `ws.xl`, multiply, scatter into `ws.yl`.
    /// Interior elements gather only non-shared owned dofs, so this is
    /// safe to run while a ghost exchange on `ws.xl` is still in flight.
    fn sweep(&self, elems: &[u32], ws: &mut Workspace) {
        let map = self.map;
        let dim = 8 * map.ncomp;
        for &e in elems {
            let e = e as usize;
            (self.elem_matrix)(e, &mut ws.mat);
            map.gather_element(e, &ws.xl, &mut ws.ue);
            if dim == 8 {
                // Scalar fast path: fixed-size rows, fully unrolled dots
                // with the same left-to-right accumulation order as the
                // generic loop below.
                let ue: &[f64; 8] = ws.ue[..8].try_into().unwrap();
                for (r, row) in ws.re.iter_mut().zip(ws.mat.chunks_exact(8)) {
                    let row: &[f64; 8] = row.try_into().unwrap();
                    let mut acc = 0.0;
                    for k in 0..8 {
                        acc += row[k] * ue[k];
                    }
                    *r = acc;
                }
            } else {
                for (r, row) in ws.re.iter_mut().zip(ws.mat.chunks_exact(dim)) {
                    let mut acc = 0.0;
                    for (&a, &u) in row.iter().zip(ws.ue.iter()) {
                        acc += a * u;
                    }
                    *r = acc;
                }
            }
            map.scatter_element(e, &ws.re, &mut ws.yl);
        }
    }
}

impl<'a> LinearOp for DistOp<'a> {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.apply_owned(x, y);
    }
    fn len(&self) -> usize {
        self.map.n_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{mass_matrix, stiffness_matrix};
    use la::krylov::cg;
    use mesh::extract::extract_mesh;
    use octree::balance::BalanceKind;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    /// Build an adapted mesh on `nranks` ranks and solve −Δu = f with
    /// homogeneous Dirichlet BCs via matrix-free CG; verify against the
    /// manufactured solution u = sin(πx) sin(πy) sin(πz).
    fn poisson_mms(nranks: usize, level: u8, adapt: bool) -> f64 {
        let errs = spmd::run(nranks, move |c| {
            let mut t = DistOctree::new_uniform(c, level);
            if adapt {
                t.refine(|o| o.center_unit()[0] < 0.5);
                t.balance(BalanceKind::Full);
                t.partition();
            }
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let pi = std::f64::consts::PI;
            let exact = |p: [f64; 3]| (pi * p[0]).sin() * (pi * p[1]).sin() * (pi * p[2]).sin();
            let f = |p: [f64; 3]| 3.0 * pi * pi * exact(p);

            let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
            let mesh_ref = &m;
            let op = DistOp::new(
                &map,
                Box::new(move |e, out: &mut [f64]| {
                    let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                    for i in 0..8 {
                        for j in 0..8 {
                            out[i * 8 + j] = k[i][j];
                        }
                    }
                }),
                Some(&bc),
            );
            // rhs = M f (consistent mass), assembled matrix-free.
            let mut rhs_local = vec![0.0; map.n_local()];
            let mut fe = vec![0.0; 8];
            let mut re = vec![0.0; 8];
            // f sampled at dof positions, expanded with ghosts.
            let mut fv = vec![0.0; m.n_owned];
            for d in 0..m.n_owned {
                fv[d] = f(m.dof_coords(d));
            }
            let fl = map.to_local(&fv);
            for e in 0..m.elements.len() {
                let mm = mass_matrix(m.element_size(e));
                map.gather_element(e, &fl, &mut fe);
                for i in 0..8 {
                    re[i] = (0..8).map(|j| mm[i][j] * fe[j]).sum();
                }
                map.scatter_element(e, &re, &mut rhs_local);
            }
            map.reverse_accumulate(&mut rhs_local);
            let mut rhs = rhs_local[..m.n_owned].to_vec();
            for (d, &isbc) in bc.iter().enumerate() {
                if isbc {
                    rhs[d] = 0.0;
                }
            }

            let mut u = vec![0.0; m.n_owned];
            let info = cg(&op, None::<&la::Csr>, &rhs, &mut u, 1e-10, 2000, &map);
            assert!(info.converged, "{info:?}");

            // Max-norm error at owned dofs.
            let mut err = 0.0f64;
            for d in 0..m.n_owned {
                err = err.max((u[d] - exact(m.dof_coords(d))).abs());
            }
            c.allreduce_max(&[err])[0]
        });
        errs[0]
    }

    #[test]
    fn poisson_converges_second_order_uniform() {
        let e2 = poisson_mms(1, 2, false);
        let e3 = poisson_mms(1, 3, false);
        let rate = (e2 / e3).log2();
        assert!(rate > 1.6, "rate {rate} (e2={e2}, e3={e3})");
    }

    #[test]
    fn poisson_on_adapted_mesh_parallel_matches_serial() {
        let serial = poisson_mms(1, 2, true);
        let par = poisson_mms(3, 2, true);
        assert!(
            (serial - par).abs() < 1e-7,
            "serial {serial} vs parallel {par}"
        );
        // And the adapted solution is still accurate (coarse half of the
        // mesh is level 2, so expect the level-2 error scale).
        assert!(par < 0.08, "error {par}");
    }

    #[test]
    fn steady_state_apply_is_allocation_free() {
        // After the first application warms the workspace, subsequent
        // applies must not grow any buffer.
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] < 0.4);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mesh_ref = &m;
            let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
            let op = DistOp::new(
                &map,
                Box::new(move |e, out: &mut [f64]| {
                    let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                    for i in 0..8 {
                        for j in 0..8 {
                            out[i * 8 + j] = k[i][j];
                        }
                    }
                }),
                Some(&bc),
            );
            let x: Vec<f64> = (0..m.n_owned).map(|d| (d % 7) as f64 - 3.0).collect();
            let mut y = vec![0.0; m.n_owned];
            op.apply_owned(&x, &mut y);
            assert!(op.alloc_bytes() > 0, "first apply must warm the workspace");
            let warm = op.alloc_bytes();
            for _ in 0..5 {
                op.apply_owned(&x, &mut y);
            }
            assert_eq!(
                op.alloc_bytes(),
                warm,
                "steady-state applies must not allocate"
            );
        });
    }

    #[test]
    fn overlapped_apply_bitwise_matches_blocking() {
        // The split-phase path (post exchange, sweep interior, complete,
        // sweep surface) must reproduce the blocking path bit for bit,
        // including on adapted meshes with hanging-node constraints.
        for p in [1usize, 2, 4] {
            spmd::run(p, |c| {
                let mut t = DistOctree::new_uniform(c, 2);
                t.refine(|o| o.center_unit()[2] > 0.6);
                t.balance(BalanceKind::Full);
                t.partition();
                let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
                let map = DofMap::new(&m, c, 1);
                let mesh_ref = &m;
                let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
                let op = DistOp::new(
                    &map,
                    Box::new(move |e, out: &mut [f64]| {
                        let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                        for i in 0..8 {
                            for j in 0..8 {
                                out[i * 8 + j] = k[i][j];
                            }
                        }
                    }),
                    Some(&bc),
                );
                let x: Vec<f64> = (0..m.n_owned)
                    .map(|d| {
                        let g = m.global_offset + d as u64;
                        ((g.wrapping_mul(6364136223846793005) >> 33) % 4001) as f64 / 4001.0 - 0.5
                    })
                    .collect();
                let mut y_over = vec![0.0; m.n_owned];
                let mut y_block = vec![0.0; m.n_owned];
                assert!(op.overlap(), "overlap must be the default");
                op.apply_owned(&x, &mut y_over);
                op.set_overlap(false);
                op.apply_owned(&x, &mut y_block);
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&y_over), bits(&y_block), "paths diverge at P={p}");
                // Warm overlapped applies stay allocation-free.
                op.set_overlap(true);
                op.apply_owned(&x, &mut y_over);
                let warm = op.alloc_bytes();
                for _ in 0..3 {
                    op.apply_owned(&x, &mut y_over);
                }
                assert_eq!(op.alloc_bytes(), warm, "overlapped applies allocate");
            });
        }
    }

    #[test]
    fn operator_is_symmetric_across_hanging_nodes() {
        spmd::run(2, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[2] > 0.5);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mesh_ref = &m;
            let op = DistOp::new(
                &map,
                Box::new(move |e, out: &mut [f64]| {
                    let k = stiffness_matrix(mesh_ref.element_size(e), 1.0);
                    for i in 0..8 {
                        for j in 0..8 {
                            out[i * 8 + j] = k[i][j];
                        }
                    }
                }),
                None,
            );
            // <Au, v> == <u, Av> with deterministic pseudo-random vectors
            // (consistent across ranks via global dof ids).
            let mk = |salt: u64| -> Vec<f64> {
                (0..m.n_owned)
                    .map(|d| {
                        let g = m.global_offset + d as u64;
                        (((g + 1).wrapping_mul(2654435761 + salt)) % 10007) as f64 / 10007.0 - 0.5
                    })
                    .collect()
            };
            let u = mk(0);
            let v = mk(13);
            let mut au = vec![0.0; m.n_owned];
            let mut av = vec![0.0; m.n_owned];
            op.apply_owned(&u, &mut au);
            op.apply_owned(&v, &mut av);
            let lhs = map.dot(&au, &v);
            let rhs = map.dot(&u, &av);
            assert!(
                (lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0),
                "asymmetric: {lhs} vs {rhs}"
            );
        });
    }
}
