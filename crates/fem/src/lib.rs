//! # fem — trilinear hexahedral finite elements on octree meshes
//!
//! The discretization layer of the reproduction (paper Section III):
//! trilinear Lagrange elements for all fields on octree-derived hex
//! meshes, with
//!
//! * element matrices on axis-aligned boxes: mass, variable-coefficient
//!   stiffness, advection with SUPG stabilization (Brooks–Hughes), the
//!   variable-viscosity viscous (strain-rate) block, discrete divergence,
//!   and the Dohrmann–Bochev polynomial-pressure-projection stabilization
//!   used to circumvent the inf-sup condition for equal-order
//!   velocity–pressure pairs;
//! * element-level application of the hanging-node constraints `CᵀKC`;
//! * distributed matrix-free operator application (ghost exchange →
//!   element kernels → reverse accumulation), which is how the paper's
//!   MINRES applies the Stokes operator;
//! * assembly of the rank-local owned-block CSR (all global contributions
//!   to owned rows/columns) feeding the block-Jacobi AMG preconditioner.

pub mod assembly;
pub mod element;
pub mod op;

pub use assembly::{assemble_owned_block, ElementMatrixSource};
pub use element::{
    advection_matrix, divergence_matrix, mass_matrix, pressure_stabilization, stiffness_matrix,
    supg_matrices, supg_tau, viscous_matrix, GAUSS_2,
};
pub use op::{DistOp, DofMap};
