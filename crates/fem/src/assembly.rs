//! Assembly of the rank-local *owned block* of a distributed FEM matrix.
//!
//! The block-Jacobi AMG preconditioner (DESIGN.md substitution #2) needs,
//! on each rank, the exact restriction of the global matrix to its owned
//! dofs: `A_rr = R_r A R_rᵀ`. Every rank assembles all contributions of
//! its own elements — including those landing in rows owned by neighbors
//! — and ships foreign-row triplets `(row gid, col gid, value)` to their
//! owners in a single `alltoallv`. Received triplets whose column is also
//! locally owned are added; couplings to other ranks' dofs are dropped
//! (that is precisely the block-Jacobi approximation).

use crate::op::DofMap;
use la::Csr;

/// Source of element matrices for assembly.
pub type ElementMatrixSource<'a> = dyn Fn(usize, &mut [f64]) + 'a;

/// Wire triplet.
#[derive(Clone, Copy)]
#[repr(C)]
struct WireTriplet {
    row: u64,
    col: u64,
    val: f64,
}
unsafe impl scomm::Pod for WireTriplet {}

/// Assemble the owned-block CSR (`n_owned·ncomp` square) of the operator
/// given by `elem_matrix`, with symmetric Dirichlet elimination for
/// `bc_mask` (identity rows/columns). Collective.
pub fn assemble_owned_block(
    map: &DofMap,
    elem_matrix: &ElementMatrixSource,
    bc_mask: Option<&[bool]>,
) -> Csr {
    let mesh = map.mesh;
    let comm = map.comm;
    let nc = map.ncomp;
    let dim = 8 * nc;
    let n_owned = mesh.n_owned;
    let offset = mesh.global_offset;

    // Expand each element corner into (local dof, weight) terms once.
    let mut mat = vec![0.0; dim * dim];
    let mut local_trips: Vec<(usize, usize, f64)> = Vec::new();
    let mut remote: Vec<Vec<WireTriplet>> = vec![Vec::new(); comm.size()];
    // gid of a local dof index (owned or ghost).
    let gid_of = |d: usize| -> u64 {
        if d < n_owned {
            offset + d as u64
        } else {
            mesh.ghost_gids[d - n_owned]
        }
    };
    // Owner rank of a gid (via gathered offsets).
    let offsets = comm.allgatherv(&[offset]);
    let owner_of_gid = |g: u64| -> usize { offsets.partition_point(|&o| o <= g) - 1 };

    use mesh::extract::NodeResolution;
    for e in 0..mesh.elements.len() {
        elem_matrix(e, &mut mat);
        let nodes = &mesh.elem_nodes[e];
        // Corner expansions.
        let expansions: Vec<Vec<(usize, f64)>> = nodes
            .iter()
            .map(|&nref| match &mesh.node_table[nref as usize] {
                NodeResolution::Dof(d) => vec![(*d, 1.0)],
                NodeResolution::Constrained(terms) => terms.clone(),
            })
            .collect();
        for ci in 0..8 {
            for cj in 0..8 {
                for a in 0..nc {
                    for b in 0..nc {
                        let v = mat[(ci * nc + a) * dim + cj * nc + b];
                        if v == 0.0 {
                            continue;
                        }
                        for &(di, wi) in &expansions[ci] {
                            for &(dj, wj) in &expansions[cj] {
                                let val = wi * wj * v;
                                let ri = di * nc + a;
                                let cj2 = dj * nc + b;
                                if di < n_owned {
                                    if dj < n_owned {
                                        local_trips.push((ri, cj2, val));
                                    }
                                    // column ghost → dropped (block-Jacobi)
                                } else {
                                    // Foreign row: ship to its owner.
                                    let rg = gid_of(di) * nc as u64 + a as u64;
                                    let cg = gid_of(dj) * nc as u64 + b as u64;
                                    remote[owner_of_gid(gid_of(di))].push(WireTriplet {
                                        row: rg,
                                        col: cg,
                                        val,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let incoming = comm.alltoallv(&remote);
    for part in incoming {
        for t in part {
            let rg_node = t.row / nc as u64;
            let a = (t.row % nc as u64) as usize;
            debug_assert!(rg_node >= offset && rg_node < offset + n_owned as u64);
            let di = (rg_node - offset) as usize;
            let cg_node = t.col / nc as u64;
            if cg_node >= offset && cg_node < offset + n_owned as u64 {
                let dj = (cg_node - offset) as usize;
                let b = (t.col % nc as u64) as usize;
                local_trips.push((di * nc + a, dj * nc + b, t.val));
            }
        }
    }

    // Dirichlet elimination: identity rows/cols for masked dofs.
    if let Some(mask) = bc_mask {
        debug_assert_eq!(mask.len(), n_owned * nc);
        local_trips.retain(|&(r, c, _)| !mask[r] && !mask[c]);
        for (i, &m) in mask.iter().enumerate() {
            if m {
                local_trips.push((i, i, 1.0));
            }
        }
    }
    // Ensure a full diagonal exists (AMG smoothers divide by it).
    let mut csr = Csr::from_triplets(n_owned * nc, n_owned * nc, &local_trips);
    let diag = csr.diagonal();
    let mut fixups = Vec::new();
    for (i, &d) in diag.iter().enumerate() {
        if d == 0.0 {
            fixups.push((i, i, 1.0));
        }
    }
    if !fixups.is_empty() {
        local_trips.extend(fixups);
        csr = Csr::from_triplets(n_owned * nc, n_owned * nc, &local_trips);
    }
    csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::stiffness_matrix;
    use crate::op::{DistOp, DofMap};
    use mesh::extract::extract_mesh;
    use octree::balance::BalanceKind;
    use octree::parallel::DistOctree;
    use scomm::spmd;

    /// On one rank, the assembled owned block must agree exactly with the
    /// matrix-free operator.
    #[test]
    fn serial_assembly_matches_matrix_free() {
        spmd::run(1, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[1] < 0.3);
            t.balance(BalanceKind::Full);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mref = &m;
            let src = move |e: usize, out: &mut [f64]| {
                let k = stiffness_matrix(mref.element_size(e), 2.0);
                for i in 0..8 {
                    for j in 0..8 {
                        out[i * 8 + j] = k[i][j];
                    }
                }
            };
            let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
            let a = assemble_owned_block(&map, &src, Some(&bc));
            let op = DistOp::new(&map, Box::new(src), Some(&bc));
            // Compare A·eᵢ on a few basis vectors.
            let n = m.n_owned;
            for d in (0..n).step_by((n / 17).max(1)) {
                let mut x = vec![0.0; n];
                x[d] = 1.0;
                let mut y1 = vec![0.0; n];
                let mut y2 = vec![0.0; n];
                a.matvec(&x, &mut y1);
                op.apply_owned(&x, &mut y2);
                for i in 0..n {
                    assert!(
                        (y1[i] - y2[i]).abs() < 1e-12,
                        "col {d}, row {i}: {} vs {}",
                        y1[i],
                        y2[i]
                    );
                }
            }
        });
    }

    /// In parallel, the assembled blocks must contain all contributions:
    /// the block-diagonal quadratic form Σᵣ xᵣᵀ A_rr xᵣ must equal the
    /// matrix-free quadratic form xᵀ A x whenever x is supported so that
    /// no inter-rank coupling is exercised... instead we verify the
    /// diagonal: diag(A_rr) must equal the true global diagonal.
    #[test]
    fn parallel_block_diagonal_is_exact() {
        spmd::run(3, |c| {
            let mut t = DistOctree::new_uniform(c, 2);
            t.refine(|o| o.center_unit()[0] > 0.6);
            t.balance(BalanceKind::Full);
            t.partition();
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mref = &m;
            let src = move |e: usize, out: &mut [f64]| {
                let k = stiffness_matrix(mref.element_size(e), 1.0);
                for i in 0..8 {
                    for j in 0..8 {
                        out[i * 8 + j] = k[i][j];
                    }
                }
            };
            let a = assemble_owned_block(&map, &src, None);
            let block_diag = a.diagonal();
            // True diagonal via matrix-free: diag_i = eᵢᵀ A eᵢ... cheaper:
            // apply A to the all-ones-per-dof probe is wrong; use the
            // standard trick of assembling the diagonal by element loops:
            let op = DistOp::new(&map, Box::new(src), None);
            // For a handful of owned dofs, compare eᵢᵀ A eᵢ.
            let n = m.n_owned;
            for d in (0..n).step_by((n / 11).max(1)) {
                let mut x = vec![0.0; n];
                x[d] = 1.0;
                let mut y = vec![0.0; n];
                op.apply_owned(&x, &mut y);
                assert!(
                    (y[d] - block_diag[d]).abs() < 1e-12,
                    "dof {d}: matrix-free {} vs assembled {}",
                    y[d],
                    block_diag[d]
                );
            }
        });
    }

    /// Dirichlet rows become identity and the matrix stays square/SPD-ish.
    #[test]
    fn dirichlet_rows_are_identity() {
        spmd::run(1, |c| {
            let t = DistOctree::new_uniform(c, 2);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let map = DofMap::new(&m, c, 1);
            let mref = &m;
            let src = move |e: usize, out: &mut [f64]| {
                let k = stiffness_matrix(mref.element_size(e), 1.0);
                for i in 0..8 {
                    for j in 0..8 {
                        out[i * 8 + j] = k[i][j];
                    }
                }
            };
            let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
            let a = assemble_owned_block(&map, &src, Some(&bc));
            for (d, &isbc) in bc.iter().enumerate() {
                if isbc {
                    let row: Vec<(usize, f64)> = (a.row_ptr[d]..a.row_ptr[d + 1])
                        .map(|i| (a.col_idx[i], a.values[i]))
                        .collect();
                    assert_eq!(row, vec![(d, 1.0)], "row {d}");
                }
            }
        });
    }
}
