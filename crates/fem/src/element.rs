//! Reference-element machinery and element matrices for axis-aligned
//! trilinear hexahedra.
//!
//! Octree elements are boxes with edge lengths `(hx, hy, hz)`, so the
//! Jacobian is diagonal and all element integrals reduce to tensor-product
//! Gauss quadrature on `[0,1]^3` with scaled gradients. Corners follow the
//! octree z-order: corner `c` at `((c&1), (c>>1)&1, (c>>2)&1)`.

/// 2-point Gauss–Legendre abscissae on `[0,1]` (degree-3 exactness).
pub const GAUSS_2: [(f64, f64); 2] = [
    (0.211_324_865_405_187_1, 0.5), // ( (1 - 1/√3)/2 , weight )
    (0.788_675_134_594_812_9, 0.5),
];

/// Trilinear shape function `N_c` at reference point `(x,y,z) ∈ [0,1]^3`.
#[inline]
pub fn shape(c: usize, x: f64, y: f64, z: f64) -> f64 {
    let wx = if c & 1 == 1 { x } else { 1.0 - x };
    let wy = if (c >> 1) & 1 == 1 { y } else { 1.0 - y };
    let wz = if (c >> 2) & 1 == 1 { z } else { 1.0 - z };
    wx * wy * wz
}

/// Reference gradient `∇̂N_c` at `(x,y,z)`.
#[inline]
pub fn shape_grad(c: usize, x: f64, y: f64, z: f64) -> [f64; 3] {
    let (wx, dx) = if c & 1 == 1 {
        (x, 1.0)
    } else {
        (1.0 - x, -1.0)
    };
    let (wy, dy) = if (c >> 1) & 1 == 1 {
        (y, 1.0)
    } else {
        (1.0 - y, -1.0)
    };
    let (wz, dz) = if (c >> 2) & 1 == 1 {
        (z, 1.0)
    } else {
        (1.0 - z, -1.0)
    };
    [dx * wy * wz, wx * dy * wz, wx * wy * dz]
}

/// Iterate the 8 tensor-product Gauss points: yields
/// `(weight · |J|, [x,y,z], [N_0..N_7], [∇N_0..∇N_7])` with *physical*
/// gradients for a box of size `h`.
pub fn quad_points(h: [f64; 3]) -> Vec<(f64, [f64; 3], [f64; 8], [[f64; 3]; 8])> {
    let jac = h[0] * h[1] * h[2];
    let mut out = Vec::with_capacity(8);
    for &(gz, wz) in &GAUSS_2 {
        for &(gy, wy) in &GAUSS_2 {
            for &(gx, wx) in &GAUSS_2 {
                let w = wx * wy * wz * jac;
                let mut n = [0.0; 8];
                let mut g = [[0.0; 3]; 8];
                for c in 0..8 {
                    n[c] = shape(c, gx, gy, gz);
                    let gr = shape_grad(c, gx, gy, gz);
                    g[c] = [gr[0] / h[0], gr[1] / h[1], gr[2] / h[2]];
                }
                out.push((w, [gx, gy, gz], n, g));
            }
        }
    }
    out
}

/// Consistent mass matrix `∫ N_i N_j`.
pub fn mass_matrix(h: [f64; 3]) -> [[f64; 8]; 8] {
    let mut m = [[0.0; 8]; 8];
    for (w, _, n, _) in quad_points(h) {
        for i in 0..8 {
            for j in 0..8 {
                m[i][j] += w * n[i] * n[j];
            }
        }
    }
    m
}

/// Lumped (row-sum) mass vector.
pub fn lumped_mass(h: [f64; 3]) -> [f64; 8] {
    let m = mass_matrix(h);
    std::array::from_fn(|i| m[i].iter().sum())
}

/// Variable-coefficient stiffness `∫ κ ∇N_i · ∇N_j` with per-element
/// constant `κ`.
pub fn stiffness_matrix(h: [f64; 3], kappa: f64) -> [[f64; 8]; 8] {
    let mut k = [[0.0; 8]; 8];
    for (w, _, _, g) in quad_points(h) {
        for i in 0..8 {
            for j in 0..8 {
                k[i][j] += w * kappa * (g[i][0] * g[j][0] + g[i][1] * g[j][1] + g[i][2] * g[j][2]);
            }
        }
    }
    k
}

/// Advection matrix `∫ N_i (a · ∇N_j)` for a constant element velocity.
pub fn advection_matrix(h: [f64; 3], a: [f64; 3]) -> [[f64; 8]; 8] {
    let mut m = [[0.0; 8]; 8];
    for (w, _, n, g) in quad_points(h) {
        for i in 0..8 {
            for j in 0..8 {
                m[i][j] += w * n[i] * (a[0] * g[j][0] + a[1] * g[j][1] + a[2] * g[j][2]);
            }
        }
    }
    m
}

/// The SUPG stabilization parameter τ (Brooks–Hughes): optimal 1D rule
/// `τ = h ξ(Pe) / (2|a|)` with `ξ(Pe) = coth(Pe) − 1/Pe`, evaluated with
/// the element length along the flow.
pub fn supg_tau(h: [f64; 3], a: [f64; 3], kappa: f64) -> f64 {
    let amag = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
    if amag < 1e-300 {
        return 0.0;
    }
    // Directional element length.
    let he = (h[0] * a[0].abs() + h[1] * a[1].abs() + h[2] * a[2].abs()) / amag;
    if kappa <= 0.0 {
        return he / (2.0 * amag);
    }
    let pe = amag * he / (2.0 * kappa);
    let xi = if pe > 20.0 {
        1.0 - 1.0 / pe
    } else if pe < 1e-8 {
        pe / 3.0
    } else {
        1.0 / pe.tanh() - 1.0 / pe
    };
    he * xi / (2.0 * amag)
}

/// SUPG matrices for the transport equation: returns
/// `(S_mass, S_adv)` where `S_mass[i][j] = τ ∫ (a·∇N_i) N_j` (applies to
/// the time-derivative/reaction terms) and `S_adv[i][j] = τ ∫ (a·∇N_i)
/// (a·∇N_j)` (streamline diffusion).
pub fn supg_matrices(h: [f64; 3], a: [f64; 3], kappa: f64) -> ([[f64; 8]; 8], [[f64; 8]; 8]) {
    let tau = supg_tau(h, a, kappa);
    let mut sm = [[0.0; 8]; 8];
    let mut sa = [[0.0; 8]; 8];
    if tau == 0.0 {
        return (sm, sa);
    }
    for (w, _, n, g) in quad_points(h) {
        let adotg: [f64; 8] =
            std::array::from_fn(|i| a[0] * g[i][0] + a[1] * g[i][1] + a[2] * g[i][2]);
        for i in 0..8 {
            for j in 0..8 {
                sm[i][j] += w * tau * adotg[i] * n[j];
                sa[i][j] += w * tau * adotg[i] * adotg[j];
            }
        }
    }
    (sm, sa)
}

/// Viscous (strain-rate) block for the Stokes momentum operator:
/// `K[3i+a][3j+b] = ∫ η ( δ_ab ∇N_i·∇N_j + ∂N_i/∂x_b ∂N_j/∂x_a )`,
/// i.e. the weak form of `−∇·[η(∇u + ∇uᵀ)]`.
pub fn viscous_matrix(h: [f64; 3], eta: f64) -> [[f64; 24]; 24] {
    let mut k = [[0.0; 24]; 24];
    for (w, _, _, g) in quad_points(h) {
        for i in 0..8 {
            for j in 0..8 {
                let gij = g[i][0] * g[j][0] + g[i][1] * g[j][1] + g[i][2] * g[j][2];
                for a in 0..3 {
                    for b in 0..3 {
                        let mut v = g[i][b] * g[j][a];
                        if a == b {
                            v += gij;
                        }
                        k[3 * i + a][3 * j + b] += w * eta * v;
                    }
                }
            }
        }
    }
    k
}

/// Discrete divergence coupling: `B[i][3j+d] = ∫ N_i ∂N_j/∂x_d`
/// (pressure test row `i`, velocity trial column `(j,d)`). The Stokes
/// system uses `−B` in the continuity row and `Bᵀ` (pressure gradient) in
/// the momentum rows.
pub fn divergence_matrix(h: [f64; 3]) -> [[f64; 24]; 8] {
    let mut b = [[0.0; 24]; 8];
    for (w, _, n, g) in quad_points(h) {
        for i in 0..8 {
            for j in 0..8 {
                for d in 0..3 {
                    b[i][3 * j + d] += w * n[i] * g[j][d];
                }
            }
        }
    }
    b
}

/// Dohrmann–Bochev polynomial-pressure-projection stabilization:
/// `C = (1/η) ∫ (N_i − Π N_i)(N_j − Π N_j)` where `Π` is the element-wise
/// `L²` projection onto constants; equals `(M − m mᵀ/V)/η` with the
/// pressure mass matrix `M`, `m_i = ∫ N_i`, and element volume `V`.
pub fn pressure_stabilization(h: [f64; 3], eta: f64) -> [[f64; 8]; 8] {
    let m = mass_matrix(h);
    let vol = h[0] * h[1] * h[2];
    let mvec: [f64; 8] = std::array::from_fn(|i| m[i].iter().sum());
    let mut c = [[0.0; 8]; 8];
    for i in 0..8 {
        for j in 0..8 {
            c[i][j] = (m[i][j] - mvec[i] * mvec[j] / vol) / eta;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: [f64; 3] = [0.5, 0.25, 1.0];

    #[test]
    fn shapes_partition_unity() {
        for &(x, y, z) in &[(0.3, 0.7, 0.1), (0.0, 0.0, 0.0), (1.0, 0.5, 0.25)] {
            let s: f64 = (0..8).map(|c| shape(c, x, y, z)).sum();
            assert!((s - 1.0).abs() < 1e-14);
            let mut g = [0.0; 3];
            for c in 0..8 {
                let gr = shape_grad(c, x, y, z);
                for d in 0..3 {
                    g[d] += gr[d];
                }
            }
            assert!(g.iter().all(|v| v.abs() < 1e-14), "gradients sum to zero");
        }
    }

    #[test]
    fn shape_is_kronecker_at_corners() {
        for c in 0..8 {
            for c2 in 0..8 {
                let x = (c2 & 1) as f64;
                let y = ((c2 >> 1) & 1) as f64;
                let z = ((c2 >> 2) & 1) as f64;
                let v = shape(c, x, y, z);
                assert!((v - if c == c2 { 1.0 } else { 0.0 }).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn mass_matrix_totals_volume() {
        let m = mass_matrix(H);
        let total: f64 = m.iter().flatten().sum();
        assert!((total - H[0] * H[1] * H[2]).abs() < 1e-14);
        // Symmetry + positivity of diagonal.
        for i in 0..8 {
            assert!(m[i][i] > 0.0);
            for j in 0..8 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-15);
            }
        }
        let lm = lumped_mass(H);
        assert!((lm.iter().sum::<f64>() - H[0] * H[1] * H[2]).abs() < 1e-14);
    }

    #[test]
    fn stiffness_annihilates_constants_and_is_spd() {
        let k = stiffness_matrix(H, 3.0);
        for i in 0..8 {
            let row: f64 = k[i].iter().sum();
            assert!(row.abs() < 1e-13, "constant in kernel");
            for j in 0..8 {
                assert!((k[i][j] - k[j][i]).abs() < 1e-13);
            }
        }
        // Energy of a linear function x: u_c = x_c ⇒ uᵀKu = κ ∫ |∇x|² = κ·V/hx²·hx²… = κ·V.
        let u: [f64; 8] = std::array::from_fn(|c| (c & 1) as f64 * H[0]);
        let mut e = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                e += u[i] * k[i][j] * u[j];
            }
        }
        assert!((e - 3.0 * H[0] * H[1] * H[2]).abs() < 1e-13, "e = {e}");
    }

    #[test]
    fn advection_is_skew_on_interior_pairing() {
        // ∫ N_i a·∇N_j + ∫ N_j a·∇N_i = boundary term = a·n surface
        // integrals; for the row sums: A·1 = 0 (gradient of constant).
        let a = advection_matrix(H, [1.0, -2.0, 0.5]);
        for i in 0..8 {
            let row: f64 = a[i].iter().sum();
            assert!(row.abs() < 1e-14);
        }
        // Total ∑_ij A_ij = ∫ a·∇(1)… = 0? No: ∑_i N_i = 1 so ∑_ij = ∫ a·∇1 = 0.
        let total: f64 = a.iter().flatten().sum();
        assert!(total.abs() < 1e-13);
    }

    #[test]
    fn supg_tau_limits() {
        // Advection-dominated: τ → h/(2|a|).
        let t = supg_tau([0.1, 0.1, 0.1], [1.0, 0.0, 0.0], 1e-12);
        assert!((t - 0.05).abs() < 1e-6, "t = {t}");
        // Diffusion-dominated: τ → Pe·h/(6|a|) = h²/(12κ).
        let t2 = supg_tau([0.1, 0.1, 0.1], [1e-3, 0.0, 0.0], 1.0);
        assert!((t2 - 0.01 / 12.0).abs() < 1e-6, "t2 = {t2}");
        // No flow: zero.
        assert_eq!(supg_tau(H, [0.0, 0.0, 0.0], 1.0), 0.0);
    }

    #[test]
    fn supg_streamline_matrix_is_psd() {
        let (_, sa) = supg_matrices(H, [1.0, 0.3, -0.2], 1e-3);
        // xᵀ S x ≥ 0 for a few vectors.
        for seed in 0..5u64 {
            let x: [f64; 8] = std::array::from_fn(|i| {
                (((i as u64 + 1) * (seed + 3) * 2654435761) % 1000) as f64 / 500.0 - 1.0
            });
            let mut q = 0.0;
            for i in 0..8 {
                for j in 0..8 {
                    q += x[i] * sa[i][j] * x[j];
                }
            }
            assert!(q >= -1e-12, "quadratic form {q}");
        }
    }

    #[test]
    fn viscous_matrix_annihilates_rigid_motions() {
        let k = viscous_matrix(H, 2.5);
        // Translations.
        for d in 0..3 {
            let u: [f64; 24] = std::array::from_fn(|i| if i % 3 == d { 1.0 } else { 0.0 });
            for i in 0..24 {
                let r: f64 = (0..24).map(|j| k[i][j] * u[j]).sum();
                assert!(r.abs() < 1e-12, "translation {d} not in kernel");
            }
        }
        // Rotation about z: u = (−y, x, 0).
        let mut u = [0.0; 24];
        for c in 0..8 {
            let x = (c & 1) as f64 * H[0];
            let y = ((c >> 1) & 1) as f64 * H[1];
            u[3 * c] = -y;
            u[3 * c + 1] = x;
        }
        let mut e = 0.0;
        for i in 0..24 {
            for j in 0..24 {
                e += u[i] * k[i][j] * u[j];
            }
        }
        assert!(e.abs() < 1e-12, "rigid rotation energy {e}");
        // Symmetry.
        for i in 0..24 {
            for j in 0..24 {
                assert!((k[i][j] - k[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn divergence_exact_on_linear_velocity() {
        // u = (x, 0, 0) has div u = 1; B u against each pressure shape
        // must give ∫ N_i · 1 = m_i.
        let b = divergence_matrix(H);
        let mut u = [0.0; 24];
        for c in 0..8 {
            u[3 * c] = (c & 1) as f64 * H[0];
        }
        let m = mass_matrix(H);
        for i in 0..8 {
            let bi: f64 = (0..24).map(|j| b[i][j] * u[j]).sum();
            let mi: f64 = m[i].iter().sum();
            assert!((bi - mi).abs() < 1e-13);
        }
    }

    #[test]
    fn pressure_stabilization_kills_constants_only() {
        let c = pressure_stabilization(H, 2.0);
        // C·1 = 0 (constants unpenalized).
        for i in 0..8 {
            let r: f64 = c[i].iter().sum();
            assert!(r.abs() < 1e-13);
        }
        // The checkerboard mode is penalized.
        let cb: [f64; 8] =
            std::array::from_fn(|i| if (i.count_ones() & 1) == 0 { 1.0 } else { -1.0 });
        let mut q = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                q += cb[i] * c[i][j] * cb[j];
            }
        }
        assert!(q > 1e-6, "checkerboard energy {q}");
    }
}
