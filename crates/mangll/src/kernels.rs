//! Element derivative kernels: the Section VII performance experiment.
//!
//! The reference-space gradient of a nodal field on one hexahedral
//! spectral element can be applied two ways (paper, Section VII):
//!
//! * **matrix-based** — three explicit `(p+1)³ × (p+1)³` dense matrices
//!   (or one stacked `3(p+1)³ × (p+1)³` matrix), costing `6(p+1)⁶` flops
//!   per element but executing as one large cache-friendly matrix–matrix
//!   multiply when elements are batched;
//! * **tensor-product** — contracting the 1D differentiation matrix
//!   along each coordinate direction, costing `6(p+1)⁴` flops —
//!   asymptotically work-optimal but built from many small matrices.
//!
//! The paper measures the crossover on Ranger's Barcelona cores between
//! `p = 2` and `p = 4` with GotoBLAS; our dense kernel is a cache-blocked
//! Rust matmul (DESIGN.md substitution #5), so the crossover may shift,
//! but its existence and direction are architecture-independent
//! consequences of the flop counts.

use crate::lgl::Lgl;

/// Exact flop count of the matrix-based derivative per element
/// (3 directions × (p+1)³ rows × (p+1)³ multiply-adds × 2).
pub fn matrix_derivative_flops(p: usize) -> u64 {
    let n = (p + 1) as u64;
    6 * n.pow(6)
}

/// Exact flop count of the tensor-product derivative per element.
pub fn tensor_derivative_flops(p: usize) -> u64 {
    let n = (p + 1) as u64;
    6 * n.pow(4)
}

/// Which kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivativeKernel {
    MatrixBased,
    TensorProduct,
}

/// Precomputed operators for applying the reference gradient on elements
/// of order `p`.
pub struct ElementDerivative {
    pub lgl: Lgl,
    /// Stacked dense derivative matrix `[Dξ; Dη; Dζ]`, row-major
    /// `3n³ × n³` (matrix-based path).
    big: Vec<f64>,
    /// Transpose of the 1D differentiation matrix (`diff_t[m·n + i] =
    /// diff[i·n + m]`): the ξ contraction walks D by columns, and the
    /// transposed layout turns that into unit-stride rows.
    diff_t: Vec<f64>,
    n1: usize,
}

impl ElementDerivative {
    pub fn new(p: usize) -> Self {
        let lgl = Lgl::new(p);
        let n1 = lgl.n();
        let n3 = n1 * n1 * n1;
        let mut big = vec![0.0; 3 * n3 * n3];
        let d = &lgl.diff;
        // Node (i,j,k) ↔ flat index i + n*(j + n*k); ξ varies with i.
        let flat = |i: usize, j: usize, k: usize| i + n1 * (j + n1 * k);
        for k in 0..n1 {
            for j in 0..n1 {
                for i in 0..n1 {
                    let row = flat(i, j, k);
                    for m in 0..n1 {
                        // ∂/∂ξ couples i↔m.
                        big[row * n3 + flat(m, j, k)] += d[i * n1 + m];
                        // ∂/∂η couples j↔m.
                        big[(n3 + row) * n3 + flat(i, m, k)] += d[j * n1 + m];
                        // ∂/∂ζ couples k↔m.
                        big[(2 * n3 + row) * n3 + flat(i, j, m)] += d[k * n1 + m];
                    }
                }
            }
        }
        let mut diff_t = vec![0.0; n1 * n1];
        for i in 0..n1 {
            for m in 0..n1 {
                diff_t[m * n1 + i] = d[i * n1 + m];
            }
        }
        ElementDerivative {
            lgl,
            big,
            diff_t,
            n1,
        }
    }

    /// Nodes per element.
    pub fn n3(&self) -> usize {
        self.n1 * self.n1 * self.n1
    }

    /// Matrix-based path: one `3n³ × n³` by `n³ × nelem` multiply over a
    /// batch of elements. `u` is `n³ × nelem` (element-major columns,
    /// i.e. `u[e*n3 + node]`), `out` is `3n³ × nelem` laid out
    /// `out[e*3n3 + dir*n3 + node]`.
    pub fn apply_matrix_batch(&self, u: &[f64], out: &mut [f64], nelem: usize) {
        let n3 = self.n3();
        debug_assert_eq!(u.len(), n3 * nelem);
        debug_assert_eq!(out.len(), 3 * n3 * nelem);
        // Cache-blocked GEMM: out(e) = big · u(e); block over rows and the
        // inner dimension. The inner product runs over zipped slices so
        // the compiler can drop bounds checks and vectorize.
        const BK: usize = 64;
        for e in 0..nelem {
            let ue = &u[e * n3..(e + 1) * n3];
            let oe = &mut out[e * 3 * n3..(e + 1) * 3 * n3];
            oe.fill(0.0);
            for k0 in (0..n3).step_by(BK) {
                let k1 = (k0 + BK).min(n3);
                let ub = &ue[k0..k1];
                for (r, orow) in oe.iter_mut().enumerate() {
                    let brow = &self.big[r * n3 + k0..r * n3 + k1];
                    let mut acc = 0.0;
                    for (&bv, &uv) in brow.iter().zip(ub) {
                        acc += bv * uv;
                    }
                    *orow += acc;
                }
            }
        }
    }

    /// Tensor-product path: three 1D contractions per element, written as
    /// unit-stride axpy sweeps so each direction vectorizes. Per output
    /// node the contraction still accumulates in ascending `m` order from
    /// a zero start, so results are **bitwise identical** to the scalar
    /// [`Self::apply_tensor_batch_reference`] (pinned by a test):
    ///
    /// * ∂/∂ξ — each contiguous `n`-line of the output accumulates
    ///   `Dᵀ`-rows scaled by one input value (hence [`diff_t`]);
    /// * ∂/∂η — each `n`-row of an `(i, j)` plane accumulates input rows
    ///   of the same `k`-plane scaled by `D[j][m]`;
    /// * ∂/∂ζ — each contiguous `n²`-slab accumulates input slabs scaled
    ///   by `D[k][m]`.
    ///
    /// Layouts as in [`Self::apply_matrix_batch`].
    ///
    /// [`diff_t`]: struct.ElementDerivative.html#structfield.diff_t
    pub fn apply_tensor_batch(&self, u: &[f64], out: &mut [f64], nelem: usize) {
        let n = self.n1;
        let n2 = n * n;
        let n3 = self.n3();
        let d = &self.lgl.diff;
        let dt = &self.diff_t;
        for e in 0..nelem {
            let ue = &u[e * n3..(e + 1) * n3];
            let oe = &mut out[e * 3 * n3..(e + 1) * 3 * n3];
            let (ox, rest) = oe.split_at_mut(n3);
            let (oy, oz) = rest.split_at_mut(n3);
            // ∂/∂ξ: out-line(j,k) = Σ_m u[m] · Dᵀ-row(m).
            for (oline, uline) in ox.chunks_exact_mut(n).zip(ue.chunks_exact(n)) {
                oline.fill(0.0);
                for (&um, dtrow) in uline.iter().zip(dt.chunks_exact(n)) {
                    for (o, &dv) in oline.iter_mut().zip(dtrow) {
                        *o += dv * um;
                    }
                }
            }
            // ∂/∂η: per k-plane, out-row(j) = Σ_m D[j][m] · u-row(m).
            for (oplane, uplane) in oy.chunks_exact_mut(n2).zip(ue.chunks_exact(n2)) {
                oplane.fill(0.0);
                for (orow, drow) in oplane.chunks_exact_mut(n).zip(d.chunks_exact(n)) {
                    for (&dm, urow) in drow.iter().zip(uplane.chunks_exact(n)) {
                        for (o, &uv) in orow.iter_mut().zip(urow) {
                            *o += dm * uv;
                        }
                    }
                }
            }
            // ∂/∂ζ: out-slab(k) = Σ_m D[k][m] · u-slab(m).
            oz.fill(0.0);
            for (oslab, drow) in oz.chunks_exact_mut(n2).zip(d.chunks_exact(n)) {
                for (&dm, uslab) in drow.iter().zip(ue.chunks_exact(n2)) {
                    for (o, &uv) in oslab.iter_mut().zip(uslab) {
                        *o += dm * uv;
                    }
                }
            }
        }
    }

    /// Straightforward scalar tensor-product contraction: the readable
    /// reference implementation the vectorized [`Self::apply_tensor_batch`]
    /// must match bitwise. Kept for tests and benchmark baselines.
    pub fn apply_tensor_batch_reference(&self, u: &[f64], out: &mut [f64], nelem: usize) {
        let n = self.n1;
        let n3 = self.n3();
        let d = &self.lgl.diff;
        for e in 0..nelem {
            let ue = &u[e * n3..(e + 1) * n3];
            let oe = &mut out[e * 3 * n3..(e + 1) * 3 * n3];
            // ∂/∂ξ: for each (j,k) line, D × line.
            for k in 0..n {
                for j in 0..n {
                    let base = n * (j + n * k);
                    for i in 0..n {
                        let mut acc = 0.0;
                        for m in 0..n {
                            acc += d[i * n + m] * ue[base + m];
                        }
                        oe[base + i] = acc;
                    }
                }
            }
            // ∂/∂η.
            for k in 0..n {
                for i in 0..n {
                    for jj in 0..n {
                        let mut acc = 0.0;
                        for m in 0..n {
                            acc += d[jj * n + m] * ue[i + n * (m + n * k)];
                        }
                        oe[n3 + i + n * (jj + n * k)] = acc;
                    }
                }
            }
            // ∂/∂ζ.
            for j in 0..n {
                for i in 0..n {
                    for kk in 0..n {
                        let mut acc = 0.0;
                        for m in 0..n {
                            acc += d[kk * n + m] * ue[i + n * (j + n * m)];
                        }
                        oe[2 * n3 + i + n * (j + n * kk)] = acc;
                    }
                }
            }
        }
    }

    /// Apply with the chosen kernel.
    pub fn apply_batch(&self, kernel: DerivativeKernel, u: &[f64], out: &mut [f64], nelem: usize) {
        match kernel {
            DerivativeKernel::MatrixBased => self.apply_matrix_batch(u, out, nelem),
            DerivativeKernel::TensorProduct => self.apply_tensor_batch(u, out, nelem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts_match_paper_formulas() {
        assert_eq!(matrix_derivative_flops(2), 6 * 3u64.pow(6));
        assert_eq!(tensor_derivative_flops(2), 6 * 3u64.pow(4));
        // The paper's p = 6 example: 20× fewer flops for the tensor path.
        let ratio = matrix_derivative_flops(6) / tensor_derivative_flops(6);
        assert_eq!(ratio, 49, "(p+1)² = 49 for p = 6");
    }

    #[test]
    fn both_kernels_agree() {
        for p in [1usize, 2, 3, 4] {
            let ed = ElementDerivative::new(p);
            let n3 = ed.n3();
            let nelem = 3;
            let u: Vec<f64> = (0..n3 * nelem)
                .map(|i| ((i * 2654435761 + 17) % 1000) as f64 / 499.0 - 1.0)
                .collect();
            let mut a = vec![0.0; 3 * n3 * nelem];
            let mut b = vec![0.0; 3 * n3 * nelem];
            ed.apply_matrix_batch(&u, &mut a, nelem);
            ed.apply_tensor_batch(&u, &mut b, nelem);
            for i in 0..a.len() {
                assert!(
                    (a[i] - b[i]).abs() < 1e-10,
                    "p={p} idx={i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn vectorized_tensor_kernel_is_bitwise_identical_to_reference() {
        for p in [1usize, 2, 3, 4, 6] {
            let ed = ElementDerivative::new(p);
            let n3 = ed.n3();
            let nelem = 5;
            let u: Vec<f64> = (0..n3 * nelem)
                .map(|i| ((i * 1103515245 + 12345) % 1000) as f64 / 333.0 - 1.5)
                .collect();
            let mut a = vec![f64::NAN; 3 * n3 * nelem];
            let mut b = vec![f64::NAN; 3 * n3 * nelem];
            ed.apply_tensor_batch(&u, &mut a, nelem);
            ed.apply_tensor_batch_reference(&u, &mut b, nelem);
            assert_eq!(a, b, "p={p}: vectorized kernel must match bitwise");
        }
    }

    #[test]
    fn derivative_exact_on_trilinear_monomials() {
        let p = 3;
        let ed = ElementDerivative::new(p);
        let n = p + 1;
        let n3 = ed.n3();
        // u = ξ²η − ζ on the LGL grid.
        let mut u = vec![0.0; n3];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (x, y, z) = (ed.lgl.nodes[i], ed.lgl.nodes[j], ed.lgl.nodes[k]);
                    u[i + n * (j + n * k)] = x * x * y - z;
                }
            }
        }
        let mut g = vec![0.0; 3 * n3];
        ed.apply_tensor_batch(&u, &mut g, 1);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (x, y, _z) = (ed.lgl.nodes[i], ed.lgl.nodes[j], ed.lgl.nodes[k]);
                    let idx = i + n * (j + n * k);
                    assert!((g[idx] - 2.0 * x * y).abs() < 1e-11, "dξ");
                    assert!((g[n3 + idx] - x * x).abs() < 1e-11, "dη");
                    assert!((g[2 * n3 + idx] + 1.0).abs() < 1e-11, "dζ");
                }
            }
        }
    }
}
