//! Nodal DG advection on a (forest-of-octree) mesh — the paper's
//! Section VII / Fig. 12 experiment class.
//!
//! Strong-form collocation DG for `∂u/∂t + a·∇u = 0` on box-shaped
//! elements (exact for Cartesian forests; the cubed-sphere demo treats
//! each element as the box spanned by its mapped corners — a documented
//! geometric approximation):
//!
//! * volume terms from the tensor-product derivative kernel;
//! * upwind numerical flux on faces, with nonconforming (2:1) and
//!   cross-tree faces handled by *evaluating the neighbor's polynomial at
//!   this element's face nodes*: every face node is mapped to the
//!   neighbor's reference coordinates (through the inter-tree transform
//!   where needed), which subsumes same-size, coarser, and finer
//!   neighbors in one rule;
//! * a five-stage fourth-order low-storage Runge–Kutta integrator
//!   (Carpenter–Kennedy), as in the paper;
//! * parallel ghost-element data exchange per RK stage.

use forest::{Forest, ForestLeaf};
use octree::{Octant, ROOT_LEN};

use crate::kernels::ElementDerivative;

/// Carpenter–Kennedy LSRK45 coefficients.
const RK_A: [f64; 5] = [
    0.0,
    -567301805773.0 / 1357537059087.0,
    -2404267990393.0 / 2016746695238.0,
    -3550918686646.0 / 2091501179385.0,
    -1275806237668.0 / 842570457699.0,
];
const RK_B: [f64; 5] = [
    1432997174477.0 / 9575080441755.0,
    5161836677717.0 / 13612068292357.0,
    1720146321549.0 / 2090206949498.0,
    3134564353537.0 / 4481467310338.0,
    2277821191437.0 / 14882151754819.0,
];

/// DG discretization parameters.
pub struct DgParams {
    /// Polynomial order `p ≥ 1`.
    pub order: usize,
    /// CFL number for the explicit step.
    pub cfl: f64,
    /// State injected at inflow domain boundaries.
    pub inflow_value: f64,
}

impl Default for DgParams {
    fn default() -> Self {
        DgParams {
            order: 2,
            cfl: 0.3,
            inflow_value: 0.0,
        }
    }
}

/// A nodal DG advection solver bound to a forest snapshot.
pub struct DgAdvection<'f, 'c> {
    pub forest: &'f Forest<'c>,
    pub params: DgParams,
    ed: ElementDerivative,
    /// Per local element: physical box (center, half-extents).
    centers: Vec<[f64; 3]>,
    half: Vec<[f64; 3]>,
    /// Nodal velocity per element (`3·n³` per element: ax ay az per node).
    velocity: Vec<f64>,
    /// Nodal solution (`n³` per element).
    pub u: Vec<f64>,
    /// Ghost elements: sorted leaf list with source rank and data offset.
    ghosts: Vec<(usize, ForestLeaf)>,
    ghost_data: Vec<f64>,
    /// Outgoing exchange pattern: per rank, local element indices.
    send_elems: Vec<Vec<usize>>,
}

impl<'f, 'c> DgAdvection<'f, 'c> {
    /// Set up storage, geometry, and the ghost pattern; initialize `u`
    /// from `init` and the advection velocity from `vel` (both sampled at
    /// the physical node positions).
    pub fn new(
        forest: &'f Forest<'c>,
        params: DgParams,
        init: impl Fn([f64; 3]) -> f64,
        vel: impl Fn([f64; 3]) -> [f64; 3],
    ) -> Self {
        let ed = ElementDerivative::new(params.order);
        let n3 = ed.n3();
        let nelem = forest.local.len();
        let conn = forest.connectivity().clone();

        let mut centers = Vec::with_capacity(nelem);
        let mut half = Vec::with_capacity(nelem);
        for l in &forest.local {
            // Physical box from the mapped element corners.
            let a = l.oct.anchor_unit();
            let s = l.oct.len_unit();
            let p0 = conn.map_point(l.tree, a);
            let p1 = conn.map_point(l.tree, [a[0] + s, a[1] + s, a[2] + s]);
            centers.push([
                0.5 * (p0[0] + p1[0]),
                0.5 * (p0[1] + p1[1]),
                0.5 * (p0[2] + p1[2]),
            ]);
            // Signed half-extents: a cap of the cubed sphere may reverse
            // orientation along an axis (physical coordinate decreasing
            // with the reference coordinate); the sign carries through the
            // chain rule and the face normals. Bricks are always positive.
            let signed = |d: f64| {
                if d.abs() < 1e-300 {
                    1e-300
                } else {
                    0.5 * d
                }
            };
            half.push([
                signed(p1[0] - p0[0]),
                signed(p1[1] - p0[1]),
                signed(p1[2] - p0[2]),
            ]);
        }

        let mut solver = DgAdvection {
            forest,
            params,
            ed,
            centers,
            half,
            velocity: vec![0.0; 3 * n3 * nelem],
            u: vec![0.0; n3 * nelem],
            ghosts: Vec::new(),
            ghost_data: Vec::new(),
            send_elems: Vec::new(),
        };
        // Sample fields at physical node positions.
        for e in 0..nelem {
            for (node, p) in solver.node_positions(e).into_iter().enumerate() {
                solver.u[e * n3 + node] = init(p);
                let a = vel(p);
                for d in 0..3 {
                    solver.velocity[(e * n3 + node) * 3 + d] = a[d];
                }
            }
        }
        solver.build_ghost_pattern();
        solver
    }

    /// Physical positions of the `n³` LGL nodes of element `e`.
    pub fn node_positions(&self, e: usize) -> Vec<[f64; 3]> {
        let n = self.ed.lgl.n();
        let c = self.centers[e];
        let h = self.half[e];
        let mut out = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    out.push([
                        c[0] + h[0] * self.ed.lgl.nodes[i],
                        c[1] + h[1] * self.ed.lgl.nodes[j],
                        c[2] + h[2] * self.ed.lgl.nodes[k],
                    ]);
                }
            }
        }
        out
    }

    /// Mirror of the forest ghost layer: which local elements each remote
    /// rank needs, and the ghost leaf directory.
    fn build_ghost_pattern(&mut self) {
        let f = self.forest;
        let p = f.comm().size();
        let me = f.comm().rank();
        let mut send: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (idx, l) in f.local.iter().enumerate() {
            let mut sent: Vec<usize> = Vec::new();
            for (dx, dy, dz) in Octant::neighbor_directions() {
                let Some(n) = f.neighbor(l, dx, dy, dz) else {
                    continue;
                };
                let (rlo, rhi) = f.owner_range(&n);
                for r in rlo..=rhi.min(p - 1) {
                    if r != me && !sent.contains(&r) {
                        sent.push(r);
                        send[r].push(idx);
                    }
                }
            }
        }
        for s in &mut send {
            s.sort_unstable();
            s.dedup();
        }
        // Announce the leaves so receivers can build their directory.
        let outgoing: Vec<Vec<ForestLeaf>> = send
            .iter()
            .map(|idxs| idxs.iter().map(|&i| f.local[i]).collect())
            .collect();
        let incoming = f.comm().alltoallv(&outgoing);
        let mut ghosts: Vec<(usize, ForestLeaf)> = Vec::new();
        for (src, leaves) in incoming.iter().enumerate() {
            for &l in leaves {
                ghosts.push((src, l));
            }
        }
        ghosts.sort_by_key(|a| a.1);
        self.ghosts = ghosts;
        self.ghost_data = vec![0.0; self.ed.n3() * self.ghosts.len()];
        self.send_elems = send;
    }

    /// Refresh ghost element data from the current solution. Collective.
    fn exchange_ghosts(&mut self) {
        let n3 = self.ed.n3();
        let f = self.forest;
        let outgoing: Vec<Vec<f64>> = self
            .send_elems
            .iter()
            .map(|idxs| {
                let mut buf = Vec::with_capacity(idxs.len() * n3);
                for &i in idxs {
                    buf.extend_from_slice(&self.u[i * n3..(i + 1) * n3]);
                }
                buf
            })
            .collect();
        let incoming = f.comm().alltoallv(&outgoing);
        // Incoming order per source rank matches its (sorted) send list;
        // our directory is globally sorted, so scatter by lookup.
        let mut cursor: Vec<usize> = vec![0; incoming.len()];
        // Build per-source ordered ghost indices.
        let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); incoming.len()];
        for (gi, &(src, _)) in self.ghosts.iter().enumerate() {
            by_src[src].push(gi);
        }
        // Sender sorted by local element index = Morton order = our
        // sorted-by-leaf order within that rank's contiguous segment, so
        // the k-th incoming element from src is by_src[src][k].
        for (src, data) in incoming.iter().enumerate() {
            for chunk in data.chunks(n3) {
                let gi = by_src[src][cursor[src]];
                cursor[src] += 1;
                self.ghost_data[gi * n3..(gi + 1) * n3].copy_from_slice(chunk);
            }
        }
    }

    /// Locate the leaf containing a probe region: local (`Ok(idx)`) or
    /// ghost (`Err(ghost_idx)`). `None` if absent (domain boundary).
    fn find_leaf(&self, target: &ForestLeaf) -> Option<Result<usize, usize>> {
        if let Some(i) = self.forest.find_containing(target) {
            return Some(Ok(i));
        }
        let idx = self.ghosts.partition_point(|g| g.1 <= *target);
        if idx > 0 {
            let cand = idx - 1;
            let g = &self.ghosts[cand].1;
            if g.tree == target.tree && g.oct.contains(&target.oct) {
                return Some(Err(cand));
            }
        }
        None
    }

    /// Evaluate the polynomial of a (local or ghost) element at reference
    /// point `xi ∈ [−1,1]³` by tensor Lagrange interpolation.
    fn eval_at(&self, source: Result<usize, usize>, xi: [f64; 3]) -> f64 {
        let n = self.ed.lgl.n();
        let n3 = self.ed.n3();
        let data = match source {
            Ok(e) => &self.u[e * n3..(e + 1) * n3],
            Err(g) => &self.ghost_data[g * n3..(g + 1) * n3],
        };
        let mut lx = vec![0.0; n];
        let mut ly = vec![0.0; n];
        let mut lz = vec![0.0; n];
        for j in 0..n {
            lx[j] = lagrange_1d(&self.ed.lgl.nodes, j, xi[0]);
            ly[j] = lagrange_1d(&self.ed.lgl.nodes, j, xi[1]);
            lz[j] = lagrange_1d(&self.ed.lgl.nodes, j, xi[2]);
        }
        let mut acc = 0.0;
        for k in 0..n {
            for j in 0..n {
                let lyz = ly[j] * lz[k];
                for i in 0..n {
                    acc += data[i + n * (j + n * k)] * lx[i] * lyz;
                }
            }
        }
        acc
    }

    /// Neighbor trace at one of our face nodes: maps the node's tree
    /// coordinates through the face (and inter-tree transform) and
    /// evaluates the neighbor polynomial. Returns `None` at the domain
    /// boundary.
    fn neighbor_value(
        &self,
        e: usize,
        face: usize,
        node_ref: [f64; 3], // our reference coords of the face node
    ) -> Option<f64> {
        let leaf = self.forest.local[e];
        let o = &leaf.oct;
        let len = o.len() as f64;
        // Doubled tree coordinates of the node.
        let mut p2 = [
            2.0 * o.x as f64 + len * (node_ref[0] + 1.0),
            2.0 * o.y as f64 + len * (node_ref[1] + 1.0),
            2.0 * o.z as f64 + len * (node_ref[2] + 1.0),
        ];
        // Nudge across the face.
        let axis = face / 2;
        let eps = 1e-6 * len;
        p2[axis] += if face % 2 == 1 { eps } else { -eps };
        let lim = 2.0 * ROOT_LEN as f64;
        let mut tree = leaf.tree;
        if p2[axis] < 0.0 || p2[axis] >= lim {
            // Crossing a tree face (or the domain boundary).
            let t = self
                .forest
                .connectivity()
                .neighbor_across(tree, face as u8)?;
            p2 = t.apply_point(p2);
            tree = t.tree;
        }
        // Locate the containing leaf via a MAX_LEVEL probe.
        let clampi = |v: f64| -> u32 { (v / 2.0).floor().clamp(0.0, (ROOT_LEN - 1) as f64) as u32 };
        let probe = ForestLeaf {
            tree,
            oct: Octant::new(
                clampi(p2[0]),
                clampi(p2[1]),
                clampi(p2[2]),
                octree::MAX_LEVEL,
            ),
        };
        let found = self.find_leaf(&probe)?;
        // Reference coords within the found leaf.
        let (nl, no) = match found {
            Ok(i) => {
                let l = &self.forest.local[i];
                (found, l.oct)
            }
            Err(g) => {
                let l = &self.ghosts[g].1;
                (found, l.oct)
            }
        };
        let nlen = no.len() as f64;
        let xi = [
            ((p2[0] - 2.0 * no.x as f64) / nlen - 1.0).clamp(-1.0, 1.0),
            ((p2[1] - 2.0 * no.y as f64) / nlen - 1.0).clamp(-1.0, 1.0),
            ((p2[2] - 2.0 * no.z as f64) / nlen - 1.0).clamp(-1.0, 1.0),
        ];
        Some(self.eval_at(nl, xi))
    }

    /// DG right-hand side `−a·∇u` plus upwind face lifting, written into
    /// `rhs`. Requires ghosts to be current.
    fn rhs(&self, rhs: &mut [f64]) {
        let n = self.ed.lgl.n();
        let n3 = self.ed.n3();
        let nelem = self.forest.local.len();
        // Volume terms: reference gradient then chain rule per node.
        let mut grad = vec![0.0; 3 * n3];
        for e in 0..nelem {
            self.ed
                .apply_tensor_batch(&self.u[e * n3..(e + 1) * n3], &mut grad, 1);
            let h = self.half[e];
            for node in 0..n3 {
                let a = &self.velocity[(e * n3 + node) * 3..(e * n3 + node) * 3 + 3];
                rhs[e * n3 + node] = -(a[0] * grad[node] / h[0]
                    + a[1] * grad[n3 + node] / h[1]
                    + a[2] * grad[2 * n3 + node] / h[2]);
            }
        }
        // Face terms.
        let w_end = self.ed.lgl.weights[0]; // = weights[p]
        for e in 0..nelem {
            let h = self.half[e];
            for face in 0..6 {
                let axis = face / 2;
                let sign = if face % 2 == 1 { 1.0 } else { -1.0 };
                // Iterate the face nodes.
                let (t1, t2) = match axis {
                    0 => (1, 2),
                    1 => (0, 2),
                    _ => (0, 1),
                };
                let end_idx = if face % 2 == 1 { n - 1 } else { 0 };
                for b in 0..n {
                    for a_i in 0..n {
                        let mut idx3 = [0usize; 3];
                        idx3[axis] = end_idx;
                        idx3[t1] = a_i;
                        idx3[t2] = b;
                        let node = idx3[0] + n * (idx3[1] + n * idx3[2]);
                        let xi = [
                            self.ed.lgl.nodes[idx3[0]],
                            self.ed.lgl.nodes[idx3[1]],
                            self.ed.lgl.nodes[idx3[2]],
                        ];
                        let vel = &self.velocity[(e * n3 + node) * 3..(e * n3 + node) * 3 + 3];
                        // Physical outward normal = reference normal times
                        // the orientation sign of this axis.
                        let an = vel[axis] * sign * h[axis].signum(); // a·n
                        let u_in = self.u[e * n3 + node];
                        let u_out = match self.neighbor_value(e, face, xi) {
                            Some(v) => v,
                            None => {
                                // Domain boundary: outflow keeps the
                                // interior state; inflow injects the
                                // configured far-field value.
                                if an >= 0.0 {
                                    u_in
                                } else {
                                    self.params.inflow_value
                                }
                            }
                        };
                        let u_star = if an >= 0.0 { u_in } else { u_out };
                        // Lift: (sJ / (w_end · J)) with box metrics
                        // sJ/J = 1/|h_axis| (reference face/volume weights
                        // already encoded in w_end).
                        let lift = 1.0 / (w_end * h[axis].abs());
                        rhs[e * n3 + node] -= lift * an * (u_star - u_in);
                    }
                }
            }
        }
    }

    /// Globally CFL-limited step size. Collective.
    pub fn stable_dt(&self) -> f64 {
        let n3 = self.ed.n3();
        let p = self.params.order as f64;
        let mut local = f64::INFINITY;
        for e in 0..self.forest.local.len() {
            let h = self.half[e];
            for node in 0..n3 {
                let a = &self.velocity[(e * n3 + node) * 3..(e * n3 + node) * 3 + 3];
                for d in 0..3 {
                    if a[d].abs() > 1e-14 {
                        local = local.min(2.0 * h[d].abs() / (a[d].abs() * (p * p + 1.0)));
                    }
                }
            }
        }
        let g = self.forest.comm().allreduce_min(&[local])[0];
        self.params.cfl * g
    }

    /// Advance one LSRK45 step. Collective (5 ghost exchanges).
    pub fn step(&mut self, dt: f64) {
        let n3 = self.ed.n3();
        let ndof = self.u.len();
        let mut res = vec![0.0; ndof];
        let mut k = vec![0.0; ndof];
        for stage in 0..5 {
            self.exchange_ghosts();
            self.rhs(&mut k);
            for i in 0..ndof {
                res[i] = RK_A[stage] * res[i] + dt * k[i];
                self.u[i] += RK_B[stage] * res[i];
            }
        }
        let _ = n3;
    }

    /// Global ∫u dΩ by LGL quadrature (conservation diagnostic).
    pub fn total_mass(&self) -> f64 {
        let n = self.ed.lgl.n();
        let n3 = self.ed.n3();
        let w = &self.ed.lgl.weights;
        let mut local = 0.0;
        for e in 0..self.forest.local.len() {
            let h = self.half[e];
            let jac = (h[0] * h[1] * h[2]).abs();
            for kk in 0..n {
                for jj in 0..n {
                    for ii in 0..n {
                        local +=
                            jac * w[ii] * w[jj] * w[kk] * self.u[e * n3 + ii + n * (jj + n * kk)];
                    }
                }
            }
        }
        self.forest.comm().allreduce_sum(&[local])[0]
    }

    /// Global max-norm error against a reference function.
    pub fn max_error(&self, exact: impl Fn([f64; 3]) -> f64) -> f64 {
        let n3 = self.ed.n3();
        let mut local = 0.0f64;
        for e in 0..self.forest.local.len() {
            for (node, p) in self.node_positions(e).into_iter().enumerate() {
                local = local.max((self.u[e * n3 + node] - exact(p)).abs());
            }
        }
        self.forest.comm().allreduce_max(&[local])[0]
    }

    /// Per-element mean |u| (useful as an adaptation indicator).
    pub fn element_means(&self) -> Vec<f64> {
        let n3 = self.ed.n3();
        self.u
            .chunks(n3)
            .map(|c| c.iter().map(|v| v.abs()).sum::<f64>() / n3 as f64)
            .collect()
    }
}

impl<'f, 'c> DgAdvection<'f, 'c> {
    /// Transfer the solution onto a *refined* forest (each new element
    /// equal to or contained in an old local element, before
    /// repartitioning): nodal values are the old polynomial evaluated at
    /// the new node positions — exact, since children carry the same
    /// polynomial. Coarsening transfer (an L² projection) is not yet
    /// provided; coarsen between runs by re-initializing instead.
    /// Returns a new solver bound to `new_forest` with the velocity
    /// field re-sampled from `vel`.
    pub fn resample_onto<'g>(
        &self,
        new_forest: &'g Forest<'c>,
        vel: impl Fn([f64; 3]) -> [f64; 3],
    ) -> DgAdvection<'g, 'c> {
        let params = DgParams {
            order: self.params.order,
            cfl: self.params.cfl,
            inflow_value: self.params.inflow_value,
        };
        let mut new = DgAdvection::new(new_forest, params, |_| 0.0, vel);
        let n3 = self.ed.n3();
        for (e, leaf) in new_forest.local.iter().enumerate() {
            // Find the old local element covering this new element.
            let old_e = self.forest.find_containing(leaf).unwrap_or_else(|| {
                panic!(
                    "new element {leaf:?} not covered by the old local forest — \
                         resample before repartitioning"
                )
            });
            let old_leaf = &self.forest.local[old_e];
            // New node positions in the old element's reference coords.
            let nl = self.ed.lgl.n();
            let olen = old_leaf.oct.len() as f64;
            for k in 0..nl {
                for j in 0..nl {
                    for i in 0..nl {
                        let node = i + nl * (j + nl * k);
                        // Tree coordinates of the new node (doubled).
                        let len = leaf.oct.len() as f64;
                        let p2 = [
                            2.0 * leaf.oct.x as f64 + len * (self.ed.lgl.nodes[i] + 1.0),
                            2.0 * leaf.oct.y as f64 + len * (self.ed.lgl.nodes[j] + 1.0),
                            2.0 * leaf.oct.z as f64 + len * (self.ed.lgl.nodes[k] + 1.0),
                        ];
                        let xi = [
                            ((p2[0] - 2.0 * old_leaf.oct.x as f64) / olen - 1.0).clamp(-1.0, 1.0),
                            ((p2[1] - 2.0 * old_leaf.oct.y as f64) / olen - 1.0).clamp(-1.0, 1.0),
                            ((p2[2] - 2.0 * old_leaf.oct.z as f64) / olen - 1.0).clamp(-1.0, 1.0),
                        ];
                        new.u[e * n3 + node] = self.eval_at(Ok(old_e), xi);
                    }
                }
            }
        }
        new
    }
}

fn lagrange_1d(nodes: &[f64], j: usize, x: f64) -> f64 {
    let mut v = 1.0;
    for (k, &xk) in nodes.iter().enumerate() {
        if k != j {
            v *= (x - xk) / (nodes[j] - xk);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::Connectivity;
    use scomm::spmd;
    use std::sync::Arc;

    /// Exact preservation of a constant state (free-stream).
    #[test]
    fn freestream_preserved() {
        let conn = Arc::new(Connectivity::brick(2, 2, 1));
        spmd::run(2, |c| {
            let f = Forest::new_uniform(c, conn.clone(), 1);
            let mut dg = DgAdvection::new(
                &f,
                DgParams {
                    order: 3,
                    cfl: 0.3,
                    inflow_value: 1.0,
                },
                |_| 1.0,
                |_| [0.7, -0.4, 0.2],
            );
            // With a free-stream-consistent inflow value, the constant
            // state is an exact steady solution: volume terms vanish
            // (D·1 = 0), interior and inter-tree fluxes see u⁻ = u⁺, and
            // boundary fluxes inject the same constant.
            let dt = dg.stable_dt();
            for _ in 0..5 {
                dg.step(dt);
            }
            for (i, &v) in dg.u.iter().enumerate() {
                assert!((v - 1.0).abs() < 1e-11, "node {i}: {v}");
            }
        });
    }

    /// High-order convergence for smooth advection on a periodic-free
    /// short horizon (front stays away from boundaries).
    #[test]
    fn convergence_with_order() {
        let errs: Vec<f64> = [1usize, 3]
            .iter()
            .map(|&p| {
                let conn = Arc::new(Connectivity::brick(1, 1, 1));
                let out = spmd::run(1, move |c| {
                    let mut f = Forest::new_uniform(c, conn.clone(), 2);
                    let _ = f.refine(|_| false);
                    let width = 0.005;
                    let init = move |q: [f64; 3]| {
                        let r2 = (q[0] - 0.3).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                        (-r2 / width).exp()
                    };
                    let mut dg = DgAdvection::new(
                        &f,
                        DgParams {
                            order: p,
                            cfl: 0.2,
                            ..Default::default()
                        },
                        init,
                        |_| [1.0, 0.0, 0.0],
                    );
                    let t_final = 0.25;
                    let dt0 = dg.stable_dt();
                    let nsteps = (t_final / dt0).ceil() as usize;
                    let dt = t_final / nsteps as f64;
                    for _ in 0..nsteps {
                        dg.step(dt);
                    }
                    dg.max_error(move |q| {
                        let r2 =
                            (q[0] - 0.55).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                        (-r2 / width).exp()
                    })
                });
                out[0]
            })
            .collect();
        assert!(
            errs[1] < 0.5 * errs[0],
            "higher order must be markedly more accurate: {errs:?}"
        );
    }

    /// Nonconforming (2:1) interfaces transport smoothly: refine half the
    /// domain and advect a front across the interface.
    #[test]
    fn nonconforming_interface_transport() {
        let conn = Arc::new(Connectivity::brick(1, 1, 1));
        spmd::run(2, |c| {
            let mut f = Forest::new_uniform(c, conn.clone(), 2);
            f.refine(|l| l.oct.center_unit()[0] > 0.5);
            f.balance(octree::balance::BalanceKind::Full);
            f.partition();
            let width = 0.02;
            let init = move |q: [f64; 3]| {
                let r2 = (q[0] - 0.35).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                (-r2 / width).exp()
            };
            let mut dg = DgAdvection::new(
                &f,
                DgParams {
                    order: 3,
                    cfl: 0.2,
                    ..Default::default()
                },
                init,
                |_| [1.0, 0.0, 0.0],
            );
            let m0 = dg.total_mass();
            let t_final = 0.3;
            let dt0 = dg.stable_dt();
            let nsteps = (t_final / dt0).ceil() as usize;
            let dt = t_final / nsteps as f64;
            for _ in 0..nsteps {
                dg.step(dt);
            }
            // Front crossed into the refined half; mass approximately
            // conserved (interpolation mortar: small defect tolerated).
            let err = dg.max_error(move |q| {
                let r2 = (q[0] - 0.65).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                (-r2 / width).exp()
            });
            assert!(err < 0.12, "interface transport error {err}");
            let m1 = dg.total_mass();
            assert!(
                (m1 - m0).abs() / m0.abs().max(1e-30) < 0.05,
                "mass drift {m0} → {m1}"
            );
        });
    }

    /// Adaptive DG: refine mid-run under the front and keep advecting —
    /// the Fig. 12 usage pattern (adapt every k steps).
    #[test]
    fn adaptive_resampling_mid_run() {
        let conn = Arc::new(Connectivity::brick(1, 1, 1));
        spmd::run(1, |c| {
            let f0 = Forest::new_uniform(c, conn.clone(), 2);
            let width = 0.02;
            let init = move |q: [f64; 3]| {
                let r2 = (q[0] - 0.35).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                (-r2 / width).exp()
            };
            let vel = |_: [f64; 3]| [1.0f64, 0.0, 0.0];
            let mut dg = DgAdvection::new(
                &f0,
                DgParams {
                    order: 3,
                    cfl: 0.2,
                    ..Default::default()
                },
                init,
                vel,
            );
            // Advance a bit on the coarse mesh.
            let dt = dg.stable_dt();
            for _ in 0..5 {
                dg.step(dt);
            }
            let mass_before = dg.total_mass();
            // Refine the downstream half and transfer the field.
            let mut f1 = Forest::new_uniform(c, conn.clone(), 2);
            f1.refine(|l| l.oct.center_unit()[0] > 0.45);
            f1.balance(octree::balance::BalanceKind::Full);
            let mut dg2 = dg.resample_onto(&f1, vel);
            let mass_after = dg2.total_mass();
            assert!(
                (mass_after - mass_before).abs() / mass_before.abs() < 1e-9,
                "polynomial re-evaluation under refinement is exact: {mass_before} vs {mass_after}"
            );
            // Keep advecting on the refined mesh.
            let dt2 = dg2.stable_dt();
            let nsteps = (0.2 / dt2).ceil() as usize;
            let t_total = 5.0 * dt + nsteps as f64 * (0.2 / nsteps as f64);
            for _ in 0..nsteps {
                dg2.step(0.2 / nsteps as f64);
            }
            let err = dg2.max_error(move |q| {
                let r2 =
                    (q[0] - 0.35 - t_total).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                (-r2 / width).exp()
            });
            assert!(err < 0.15, "adaptive transport error {err}");
        });
    }

    /// Cross-tree faces on a brick: the same front passes through the
    /// shared face of two trees.
    #[test]
    fn cross_tree_transport() {
        let conn = Arc::new(Connectivity::brick(2, 1, 1));
        spmd::run(1, |c| {
            let f = Forest::new_uniform(c, conn.clone(), 2);
            let width = 0.01;
            let init = move |q: [f64; 3]| {
                let r2 = (q[0] - 0.7).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                (-r2 / width).exp()
            };
            let mut dg = DgAdvection::new(
                &f,
                DgParams {
                    order: 3,
                    cfl: 0.2,
                    ..Default::default()
                },
                init,
                |_| [1.0, 0.0, 0.0],
            );
            let t_final = 0.6; // crosses x = 1 (tree 0 → tree 1)
            let dt0 = dg.stable_dt();
            let nsteps = (t_final / dt0).ceil() as usize;
            let dt = t_final / nsteps as f64;
            for _ in 0..nsteps {
                dg.step(dt);
            }
            let err = dg.max_error(move |q| {
                let r2 = (q[0] - 1.3).powi(2) + (q[1] - 0.5).powi(2) + (q[2] - 0.5).powi(2);
                (-r2 / width).exp()
            });
            assert!(err < 0.2, "cross-tree transport error {err}");
        });
    }

    /// Advection on the cubed sphere: a cap-shaped front is carried by
    /// solid-body rotation without blowing up, and returns toward its
    /// start (qualitative — faceted-geometry approximation documented).
    #[test]
    fn cubed_sphere_rotation_is_stable() {
        let conn = Arc::new(Connectivity::cubed_sphere(0.6, 1.0));
        spmd::run(2, |c| {
            let f = Forest::new_uniform(c, conn.clone(), 1);
            let init = |q: [f64; 3]| {
                // Bump centered at (+x axis, mid shell).
                let r = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2]).sqrt();
                let d2 = (q[0] / r - 1.0).powi(2) + (q[1] / r).powi(2) + (q[2] / r).powi(2);
                (-d2 / 0.05).exp()
            };
            let omega = 1.0;
            let mut dg = DgAdvection::new(
                &f,
                DgParams {
                    order: 2,
                    cfl: 0.2,
                    ..Default::default()
                },
                init,
                move |q| {
                    // Solid-body rotation about z.
                    [-omega * q[1], omega * q[0], 0.0]
                },
            );
            let m0 = dg.total_mass();
            let dt = dg.stable_dt();
            for _ in 0..30 {
                dg.step(dt);
            }
            let mx = dg.u.iter().cloned().fold(0.0f64, f64::max);
            let gmx = c.allreduce_max(&[mx])[0];
            assert!(gmx.is_finite() && gmx < 1.5, "solution bounded: {gmx}");
            assert!(gmx > 0.2, "front survives: {gmx}");
            let m1 = dg.total_mass();
            assert!(
                (m1 - m0).abs() / m0.abs().max(1e-30) < 0.2,
                "mass drift {m0} → {m1}"
            );
        });
    }
}
