//! Legendre–Gauss–Lobatto nodes, quadrature weights, differentiation and
//! mortar matrices for one dimension; tensor products build the 3D
//! spectral element (Hesthaven–Warburton, the paper's reference [34]).

/// LGL data for polynomial order `p` (`n = p + 1` nodes on `[-1, 1]`).
#[derive(Debug, Clone)]
pub struct Lgl {
    pub order: usize,
    /// Nodes in ascending order, `x[0] = −1`, `x[p] = 1`.
    pub nodes: Vec<f64>,
    /// Quadrature weights `w_i = 2 / (p(p+1) P_p(x_i)²)`.
    pub weights: Vec<f64>,
    /// Differentiation matrix `D[i][j] = ℓ'_j(x_i)` (row-major `n×n`).
    pub diff: Vec<f64>,
    /// Interpolation matrices from this interval to its two half
    /// intervals `[−1,0]` and `[0,1]` (each `n×n`, row-major): rows are
    /// the fine-side nodes, columns the coarse basis.
    pub interp_lo: Vec<f64>,
    pub interp_hi: Vec<f64>,
    /// L²-projection matrices from each half interval back to the full
    /// interval (adjoints of the interpolations w.r.t. LGL weights,
    /// scaled by the half-interval Jacobian ½).
    pub project_lo: Vec<f64>,
    pub project_hi: Vec<f64>,
}

/// Evaluate the Legendre polynomial `P_n` and its derivative at `x`.
fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let (mut p0, mut p1) = (1.0f64, x);
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // Derivative from the standard identity (guard endpoints).
    let dp = if (x * x - 1.0).abs() < 1e-14 {
        let nf = n as f64;
        x.powi(n as i32 - 1) * nf * (nf + 1.0) / 2.0
    } else {
        -((n as f64) * (x * p0 - p1) / (1.0 - x * x))
    };
    // dP_n/dx = n (P_{n-1} - x P_n) / (1 - x²)
    let dp = if (x * x - 1.0).abs() < 1e-14 {
        dp
    } else {
        (n as f64) * (p0 - x * p1) / (1.0 - x * x)
    };
    (p1, dp)
}

/// LGL nodes: roots of `(1 − x²) P'_p(x)`, found by Newton iteration from
/// Chebyshev–Gauss–Lobatto initial guesses.
fn lgl_nodes(p: usize) -> Vec<f64> {
    let n = p + 1;
    let mut x = vec![0.0; n];
    if p == 1 {
        return vec![-1.0, 1.0];
    }
    x[0] = -1.0;
    x[p] = 1.0;
    for i in 1..p {
        // Chebyshev-Lobatto guess.
        let mut xi = -(std::f64::consts::PI * i as f64 / p as f64).cos();
        // Newton on q(x) = P'_p(x): q' via the Legendre ODE,
        // (1−x²) P''_p = 2x P'_p − p(p+1) P_p.
        for _ in 0..60 {
            let (pp, dpp) = legendre(p, xi);
            let ddpp = (2.0 * xi * dpp - (p as f64) * (p as f64 + 1.0) * pp) / (1.0 - xi * xi);
            let step = dpp / ddpp;
            xi -= step;
            if step.abs() < 1e-15 {
                break;
            }
        }
        x[i] = xi;
    }
    x
}

/// `n`-point Gauss–Legendre nodes and weights on `[-1, 1]`.
fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut x = vec![0.0; n];
    let mut w = vec![0.0; n];
    for i in 0..n {
        // Chebyshev initial guess, Newton on P_n.
        let mut xi = -(std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..60 {
            let (p, dp) = legendre(n, xi);
            let step = p / dp;
            xi -= step;
            if step.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre(n, xi);
        x[i] = xi;
        w[i] = 2.0 / ((1.0 - xi * xi) * dp * dp);
    }
    (x, w)
}

/// Tiny in-place LU (no pivoting needed for SPD mass matrices, but do
/// partial pivoting anyway).
fn dense_lu(a: &[f64], n: usize) -> (Vec<f64>, Vec<usize>) {
    let mut lu = a.to_vec();
    let mut piv: Vec<usize> = (0..n).collect();
    for k in 0..n {
        let mut pm = k;
        for i in k + 1..n {
            if lu[i * n + k].abs() > lu[pm * n + k].abs() {
                pm = i;
            }
        }
        if pm != k {
            for j in 0..n {
                lu.swap(k * n + j, pm * n + j);
            }
            piv.swap(k, pm);
        }
        let pivot = lu[k * n + k];
        for i in k + 1..n {
            let f = lu[i * n + k] / pivot;
            lu[i * n + k] = f;
            for j in k + 1..n {
                lu[i * n + j] -= f * lu[k * n + j];
            }
        }
    }
    (lu, piv)
}

fn lu_solve(lu_piv: &(Vec<f64>, Vec<usize>), n: usize, b: &[f64]) -> Vec<f64> {
    let (lu, piv) = lu_piv;
    let mut x: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
    for i in 1..n {
        for k in 0..i {
            x[i] -= lu[i * n + k] * x[k];
        }
    }
    for i in (0..n).rev() {
        for k in i + 1..n {
            x[i] -= lu[i * n + k] * x[k];
        }
        x[i] /= lu[i * n + i];
    }
    x
}

/// Lagrange basis value `ℓ_j(x)` on the given nodes.
fn lagrange(nodes: &[f64], j: usize, x: f64) -> f64 {
    let mut v = 1.0;
    for (k, &xk) in nodes.iter().enumerate() {
        if k != j {
            v *= (x - xk) / (nodes[j] - xk);
        }
    }
    v
}

impl Lgl {
    /// Build all 1D operators for order `p ≥ 1`.
    pub fn new(p: usize) -> Lgl {
        assert!(p >= 1, "DG needs order ≥ 1");
        let n = p + 1;
        let nodes = lgl_nodes(p);
        let weights: Vec<f64> = nodes
            .iter()
            .map(|&x| {
                let (pp, _) = legendre(p, x);
                2.0 / (p as f64 * (p as f64 + 1.0) * pp * pp)
            })
            .collect();
        // Differentiation matrix via barycentric-style formula.
        let mut diff = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let (pi, _) = legendre(p, nodes[i]);
                    let (pj, _) = legendre(p, nodes[j]);
                    diff[i * n + j] = pi / (pj * (nodes[i] - nodes[j]));
                } else if i == 0 {
                    diff[i * n + j] = -(p as f64) * (p as f64 + 1.0) / 4.0;
                } else if i == p {
                    diff[i * n + j] = (p as f64) * (p as f64 + 1.0) / 4.0;
                } else {
                    diff[i * n + j] = 0.0;
                }
            }
        }
        // Interpolations to half intervals: fine node ξ ∈ [−1,1] maps to
        // coarse coordinate (ξ−1)/2 (lo) or (ξ+1)/2 (hi).
        let mut interp_lo = vec![0.0; n * n];
        let mut interp_hi = vec![0.0; n * n];
        for i in 0..n {
            let xlo = 0.5 * (nodes[i] - 1.0);
            let xhi = 0.5 * (nodes[i] + 1.0);
            for j in 0..n {
                interp_lo[i * n + j] = lagrange(&nodes, j, xlo);
                interp_hi[i * n + j] = lagrange(&nodes, j, xhi);
            }
        }
        // L² projections with *exact* integration: the integrands are
        // degree-2p products, beyond LGL's 2p−1 exactness, so use
        // (p+1)-point Gauss–Legendre (exact to 2p+1). Then
        // `P_lo I_lo + P_hi I_hi = Id` holds exactly and the mortar is
        // conservative on polynomials.
        let (gx, gw) = gauss_legendre(n);
        // Exact full-interval mass matrix of the nodal basis.
        let mut mass = vec![0.0; n * n];
        for q in 0..n {
            for i in 0..n {
                let li = lagrange(&nodes, i, gx[q]);
                for j in 0..n {
                    mass[i * n + j] += gw[q] * li * lagrange(&nodes, j, gx[q]);
                }
            }
        }
        // Mixed mass: rows full-interval basis, columns half-interval
        // basis, integrated over the half (Jacobian ½ folded in).
        let mut mixed_lo = vec![0.0; n * n];
        let mut mixed_hi = vec![0.0; n * n];
        for q in 0..n {
            // Gauss point mapped into [−1,0] and [0,1].
            let xlo = 0.5 * (gx[q] - 1.0);
            let xhi = 0.5 * (gx[q] + 1.0);
            for i in 0..n {
                let li_lo = lagrange(&nodes, i, xlo); // coarse basis at lo point
                let li_hi = lagrange(&nodes, i, xhi);
                for j in 0..n {
                    // Fine basis in its own reference coordinate = gx[q].
                    let fj = lagrange(&nodes, j, gx[q]);
                    mixed_lo[i * n + j] += 0.5 * gw[q] * li_lo * fj;
                    mixed_hi[i * n + j] += 0.5 * gw[q] * li_hi * fj;
                }
            }
        }
        // P = M⁻¹ · mixed (dense solve per column).
        let lu = dense_lu(&mass, n);
        let mut project_lo = vec![0.0; n * n];
        let mut project_hi = vec![0.0; n * n];
        for j in 0..n {
            let col_lo: Vec<f64> = (0..n).map(|i| mixed_lo[i * n + j]).collect();
            let col_hi: Vec<f64> = (0..n).map(|i| mixed_hi[i * n + j]).collect();
            let slo = lu_solve(&lu, n, &col_lo);
            let shi = lu_solve(&lu, n, &col_hi);
            for i in 0..n {
                project_lo[i * n + j] = slo[i];
                project_hi[i * n + j] = shi[i];
            }
        }
        Lgl {
            order: p,
            nodes,
            weights,
            diff,
            interp_lo,
            interp_hi,
            project_lo,
            project_hi,
        }
    }

    /// Number of 1D nodes.
    pub fn n(&self) -> usize {
        self.order + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_and_weights_low_orders() {
        let l1 = Lgl::new(1);
        assert_eq!(l1.nodes, vec![-1.0, 1.0]);
        assert_eq!(l1.weights, vec![1.0, 1.0]);
        let l2 = Lgl::new(2);
        assert!(l2.nodes[1].abs() < 1e-14);
        assert!((l2.weights[0] - 1.0 / 3.0).abs() < 1e-13);
        assert!((l2.weights[1] - 4.0 / 3.0).abs() < 1e-13);
        // p = 3: interior nodes ±1/√5, weights 1/6 and 5/6.
        let l3 = Lgl::new(3);
        assert!((l3.nodes[1] + (0.2f64).sqrt()).abs() < 1e-12);
        assert!((l3.weights[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((l3.weights[1] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn weights_integrate_polynomials_exactly() {
        // LGL with n = p+1 points is exact to degree 2p−1.
        for p in 1..=8 {
            let l = Lgl::new(p);
            for deg in 0..=(2 * p - 1) {
                let q: f64 = l
                    .nodes
                    .iter()
                    .zip(&l.weights)
                    .map(|(&x, &w)| w * x.powi(deg as i32))
                    .sum();
                let exact = if deg % 2 == 0 {
                    2.0 / (deg as f64 + 1.0)
                } else {
                    0.0
                };
                assert!((q - exact).abs() < 1e-11, "p={p} deg={deg}: {q} vs {exact}");
            }
        }
    }

    #[test]
    fn differentiation_exact_on_polynomials() {
        for p in 1..=8 {
            let l = Lgl::new(p);
            let n = l.n();
            // Differentiate x^k for k ≤ p: must be exact at the nodes.
            for k in 0..=p {
                for i in 0..n {
                    let d: f64 = (0..n)
                        .map(|j| l.diff[i * n + j] * l.nodes[j].powi(k as i32))
                        .sum();
                    let exact = if k == 0 {
                        0.0
                    } else {
                        k as f64 * l.nodes[i].powi(k as i32 - 1)
                    };
                    assert!(
                        (d - exact).abs() < 1e-9,
                        "p={p} k={k} i={i}: {d} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_exact_on_polynomials() {
        for p in 1..=6 {
            let l = Lgl::new(p);
            let n = l.n();
            let f = |x: f64| x.powi(p as i32) - 0.3 * x + 1.0;
            let coarse: Vec<f64> = l.nodes.iter().map(|&x| f(x)).collect();
            for i in 0..n {
                let lo: f64 = (0..n).map(|j| l.interp_lo[i * n + j] * coarse[j]).sum();
                let xlo = 0.5 * (l.nodes[i] - 1.0);
                assert!((lo - f(xlo)).abs() < 1e-10, "p={p} i={i}");
                let hi: f64 = (0..n).map(|j| l.interp_hi[i * n + j] * coarse[j]).sum();
                let xhi = 0.5 * (l.nodes[i] + 1.0);
                assert!((hi - f(xhi)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn projection_is_left_inverse_of_interpolation() {
        // Projecting both half-interval interpolants back and summing
        // recovers the original polynomial: P_lo I_lo + P_hi I_hi = Id.
        for p in 1..=6 {
            let l = Lgl::new(p);
            let n = l.n();
            let mut combined = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += l.project_lo[i * n + k] * l.interp_lo[k * n + j];
                        acc += l.project_hi[i * n + k] * l.interp_hi[k * n + j];
                    }
                    combined[i * n + j] = acc;
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (combined[i * n + j] - expect).abs() < 1e-10,
                        "p={p} ({i},{j}): {}",
                        combined[i * n + j]
                    );
                }
            }
        }
    }
}
