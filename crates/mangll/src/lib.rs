//! # mangll — high-order nodal discontinuous Galerkin on forests
//!
//! The reproduction of the paper's MANGLL library (Section VII): an
//! arbitrary-order nodal DG discretization on (forest-of-octree)
//! hexahedral elements with nodes at tensor-product Legendre–Gauss–
//! Lobatto (LGL) points, all integrations by LGL quadrature (diagonal
//! mass matrix), upwind numerical fluxes, nonconforming (2:1) face
//! coupling by interpolation/L²-projection mortars, and a five-stage
//! fourth-order low-storage Runge–Kutta integrator.
//!
//! The Section VII performance experiment — **matrix-based
//! (6(p+1)⁶ flop) vs tensor-product (6(p+1)⁴ flop) element derivative
//! kernels** and their crossover — lives in [`kernels`], with exact
//! analytic flop counts matching the paper's.

pub mod advection;
pub mod kernels;
pub mod lgl;

pub use advection::{DgAdvection, DgParams};
pub use kernels::{
    matrix_derivative_flops, tensor_derivative_flops, DerivativeKernel, ElementDerivative,
};
pub use lgl::Lgl;
