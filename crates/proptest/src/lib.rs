//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `proptest` cannot be fetched. This crate re-implements the
//! small API surface the workspace's property tests use — `Strategy`,
//! `any`, range strategies, tuple strategies, `prop_map`,
//! `collection::vec`, `ProptestConfig`, and the `proptest!` /
//! `prop_assert*!` macros — on top of a deterministic splitmix64 PRNG.
//!
//! Differences from the real crate (deliberate, documented):
//! * no shrinking — a failing case reports its seed instead;
//! * cases are generated from a fixed base seed, so runs are fully
//!   deterministic across machines;
//! * `prop_assert!` panics (the body is a plain closure, not a `Result`).

use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of one type (the stand-in for proptest's
/// `Strategy`, without shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly centered values; property tests here only need
        // "some reals", not the full bit-pattern space.
        (rng.f64() - 0.5) * 2e6
    }
}

/// Strategy producing any value of `T` (stand-in for `proptest::arbitrary::any`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths for [`vec`]: either a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for a `Vec` of values from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Run `body` for `config.cases` deterministic cases. Used by the
/// `proptest!` macro; exposed for direct use.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, test_name: &str, mut body: F) {
    for case in 0..config.cases as u64 {
        // Mix the test name into the seed so sibling tests see different
        // streams.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = TestRng::new(seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
        body(&mut rng);
    }
}

/// The `proptest!` macro: each `#[test]` function runs its body over
/// `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $pat = $crate::Strategy::generate(&{ $strat }, rng);)+
                $body
            });
        }
    )*};
}

/// `prop_assert!` — plain assertion (no shrink machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The glob-import surface the tests use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&w));
            let u = Strategy::generate(&(2u8..=5), &mut rng);
            assert!((2..=5).contains(&u));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let s = (0u64..1000, any::<u64>()).prop_map(|(a, b)| a ^ b);
        let once: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..16).map(|_| s.generate(&mut rng)).collect()
        };
        let twice: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..16).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(once, twice);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..100, v in collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 9);
        }
    }
}
