//! Fig. 5 — Extent of mesh adaptation in an advection-dominated
//! transport run.
//!
//! Paper (4096 cores, ~131K elem/core): per adaptation step, roughly
//! half the elements are coarsened or refined while `MarkElements` holds
//! the total element count about constant; by the 8th adaptation step the
//! octree spans ~10 levels.
//!
//! Here: the same workload at host scale — a sharp thermal front advected
//! by a rotating velocity field, adapting every `ADAPT_EVERY` steps with
//! a fixed global element target — printing both panels of the figure.

use mesh::extract::extract_mesh;
use octree::parallel::DistOctree;
use rhea::adapt::{adapt_mesh, gradient_indicator, AdaptParams};
use rhea::transport::{TransportParams, TransportSolver};
use rhea_bench::{banner, Table};
use scomm::spmd;

const RANKS: usize = 4;
const ADAPT_STEPS: usize = 17; // the paper's Fig. 5 shows 17 adaptation steps
const ADAPT_EVERY: usize = 8; // paper uses 32; scaled with the run length
const TARGET: u64 = 6000;

fn main() {
    banner(
        "Figure 5",
        "Elements coarsened/refined/balanced/unchanged per adaptation step",
    );
    let rows = spmd::run(RANKS, |c| {
        let mut tree = DistOctree::new_uniform(c, 3);
        let mut mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
        let mut temp: Vec<f64> = (0..mesh.n_owned)
            .map(|d| {
                let p = mesh.dof_coords(d);
                // Sharp front: a tanh shell around a moving center.
                let r = ((p[0] - 0.7).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt();
                0.5 * (1.0 - ((r - 0.2) * 40.0).tanh())
            })
            .collect();
        let mut out = Vec::new();
        let rec = obs::Recorder::new(c.rank());
        for adapt_step in 0..ADAPT_STEPS {
            // Advance the front between adaptations.
            let params = TransportParams {
                kappa: 1e-6,
                source: 0.0,
                cfl: 0.4,
            };
            let mut ts = TransportSolver::new(&mesh, c, params);
            ts.set_velocity_fn(|p| [0.5 - p[1], p[0] - 0.5, 0.1 * (p[2] - 0.5)]);
            for _ in 0..ADAPT_EVERY {
                let dt = ts.stable_dt().min(0.01);
                ts.step(&mut temp, dt);
            }
            // Adapt.
            let ind = gradient_indicator(&mesh, c, &temp);
            let fields = [temp.clone()];
            let aparams = AdaptParams {
                target_elements: TARGET,
                max_level: 7,
                min_level: 2,
                ..Default::default()
            };
            let (new_mesh, mut new_fields, rep) =
                adapt_mesh(&mut tree, &mesh, &fields, &ind, &aparams, &rec);
            mesh = new_mesh;
            temp = new_fields.remove(0);
            out.push((adapt_step, rep));
        }
        out
    });

    let mut table = Table::new(&[
        "step",
        "refined",
        "coarsened(fam)",
        "balance-added",
        "unchanged",
        "total after",
    ]);
    for (step, rep) in &rows[0] {
        table.row(&[
            (step + 1).to_string(),
            rep.refined.to_string(),
            rep.coarsened_families.to_string(),
            rep.balance_added.to_string(),
            rep.unchanged.to_string(),
            rep.elements_after.to_string(),
        ]);
    }
    table.print();

    println!();
    println!("Elements per level (Fig. 5 right), selected adaptation steps:");
    let mut ltab = Table::new(&["level", "step 2", "step 4", "step 8", "step 17"]);
    let pick = [1usize, 3, 7, 16];
    let max_level = rows[0]
        .iter()
        .flat_map(|(_, r)| {
            r.level_histogram
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(l, _)| l)
        })
        .max()
        .unwrap_or(0);
    for level in 0..=max_level {
        let mut cells = vec![level.to_string()];
        for &s in &pick {
            let n = rows[0][s]
                .1
                .level_histogram
                .get(level)
                .copied()
                .unwrap_or(0);
            cells.push(n.to_string());
        }
        ltab.row(&cells);
    }
    ltab.print();
    println!();
    let last = &rows[0].last().unwrap().1;
    let churn = last.refined + 8 * last.coarsened_families;
    println!(
        "Shape check (paper): ~half the mesh churns per adaptation step\n\
         (here: {churn} of {} elements touched in the final step) while the\n\
         total stays near the target of {TARGET}.",
        last.elements_after
    );
}
