//! Section VII — matrix-based vs tensor-product DG derivative kernels.
//!
//! Paper (Ranger, GotoBLAS): the matrix kernel costs 6(p+1)⁶ flops vs
//! 6(p+1)⁴ for the tensor kernel; the crossover where the tensor kernel
//! wins falls between p = 2 and p = 4; at p = 6 the matrix version does
//! 20× more flops yet runs only 2× slower (≈9.3 Tflop/s tensor vs
//! 100 Tflop/s matrix sustained on 32K cores).
//!
//! Here: both kernels run on real data on this host; flops are counted
//! analytically with the paper's formulas; rates, the runtime ratio, and
//! the measured crossover order are printed. The dense kernel is a
//! cache-blocked Rust matmul (DESIGN.md substitution #5), so the exact
//! crossover may shift from the paper's GotoBLAS point, but the
//! flops-vs-cache tradeoff it demonstrates is architecture-independent.

use mangll::kernels::{matrix_derivative_flops, tensor_derivative_flops, ElementDerivative};
use rhea_bench::{banner, Table};

fn time_kernel(f: impl Fn()) -> f64 {
    // Warmup + best-of-3 timing.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    banner(
        "Section VII",
        "Element derivative kernels: matrix-based (6(p+1)^6) vs tensor-product (6(p+1)^4)",
    );
    let mut table = Table::new(&[
        "p",
        "matrix flops/elem",
        "tensor flops/elem",
        "flop ratio",
        "matrix s/elem",
        "tensor s/elem",
        "time ratio (mat/ten)",
        "matrix GF/s",
        "tensor GF/s",
    ]);
    let mut crossover: Option<usize> = None;
    let mut prev_faster_matrix = false;
    for p in 1..=8usize {
        let ed = ElementDerivative::new(p);
        let n3 = ed.n3();
        // Batch sized to ~8 MB of input to exercise the cache hierarchy.
        let nelem = (1_000_000 / n3).clamp(8, 4096);
        let u: Vec<f64> = (0..n3 * nelem)
            .map(|i| ((i * 2654435761 + 7) % 1000) as f64 / 999.0)
            .collect();
        let out = std::cell::RefCell::new(vec![0.0; 3 * n3 * nelem]);
        let t_mat = time_kernel(|| {
            ed.apply_matrix_batch(&u, &mut out.borrow_mut(), nelem);
        }) / nelem as f64;
        let t_ten = time_kernel(|| {
            ed.apply_tensor_batch(&u, &mut out.borrow_mut(), nelem);
        }) / nelem as f64;
        let fm = matrix_derivative_flops(p);
        let ft = tensor_derivative_flops(p);
        let faster_matrix = t_mat < t_ten;
        if prev_faster_matrix && !faster_matrix && crossover.is_none() {
            crossover = Some(p);
        }
        prev_faster_matrix = faster_matrix;
        table.row(&[
            p.to_string(),
            fm.to_string(),
            ft.to_string(),
            format!("{}", fm / ft),
            format!("{:.2e}", t_mat),
            format!("{:.2e}", t_ten),
            format!("{:.2}", t_mat / t_ten),
            format!("{:.2}", fm as f64 / t_mat / 1e9),
            format!("{:.2}", ft as f64 / t_ten / 1e9),
        ]);
    }
    table.print();
    println!();
    match crossover {
        Some(p) => println!("measured crossover: tensor kernel wins from p = {p} on this host"),
        None => println!(
            "measured crossover: tensor kernel {} at every order on this host",
            if prev_faster_matrix {
                "never wins"
            } else {
                "wins"
            }
        ),
    }
    println!(
        "paper anchors: crossover between p = 2 and p = 4 on Ranger/GotoBLAS;\n\
         flop ratio (p+1)² — e.g. 49× at p = 6 — with the matrix kernel's higher\n\
         GF/s rate partially compensating (paper: 2× slower at 20× the flops)."
    );
}
