//! Section VI — Mantle convection with plastic yielding at plate
//! boundaries: the paper's headline application run.
//!
//! Paper: 8×4×1 Cartesian domain (≈ 23,200 km × 11,600 km × 2,900 km),
//! three-layer temperature-dependent viscosity with yielding
//! (lithosphere / aesthenosphere / lower mantle), viscosity range over
//! four orders of magnitude; 19.2M elements across 14 octree levels on
//! 2400 cores, finest resolution ≈ 1.5 km in the yielding zones — more
//! than 1000× fewer elements than the uniform level-13 mesh.
//!
//! Here: the same physics at reduced resolution, reporting the same
//! quantities — viscosity range, level span, finest resolution in km,
//! and the element-reduction factor vs. a uniform mesh at the deepest
//! level used.

use rhea::convection::{ConvectionParams, ConvectionSim};
use rhea::rheology::{ViscosityLaw, YieldingLaw};
use rhea_bench::{banner, human, Table};
use scomm::spmd;

/// Dimensional width of the paper's domain (km) along x.
const DOMAIN_X_KM: f64 = 23_200.0;

fn main() {
    banner(
        "Section VI",
        "Mantle convection with yielding: AMR statistics",
    );
    let steps = 10;
    let max_level = 7u8;
    let out = spmd::run(2, move |c| {
        let params = ConvectionParams {
            rayleigh: 1e6,
            domain: [8.0, 4.0, 1.0],
            adapt_every: 2,
            adapt: rhea::adapt::AdaptParams {
                target_elements: 6000,
                max_level,
                min_level: 1,
                ..Default::default()
            },
            transport: rhea::transport::TransportParams {
                kappa: 1.0,
                source: 0.0,
                cfl: 0.4,
            },
            stokes: stokes::StokesOptions {
                tol: 1e-5,
                max_iter: 300,
                ..Default::default()
            },
            picard_steps: 2,
        };
        let mut sim = ConvectionSim::new(c, 2, params);
        let law = YieldingLaw {
            yield_stress: 1.0,
            exponent: 6.9,
        };
        for _ in 0..steps {
            let rep = sim.step(&law);
            assert!(rep.t_min > -0.2 && rep.t_max < 1.2, "temperature bounded");
        }
        // Diagnostics.
        let eta_min = sim.viscosity.iter().cloned().fold(f64::INFINITY, f64::min);
        let eta_max = sim.viscosity.iter().cloned().fold(0.0f64, f64::max);
        let gmin = c.allreduce_min(&[eta_min])[0];
        let gmax = c.allreduce_max(&[eta_max])[0];
        let hist = octree::ops::level_histogram(&sim.tree.local);
        let ghist = c.allreduce_sum(&hist);
        (sim.tree.global_count(), gmin, gmax, ghist)
    });
    let (n_elem, eta_min, eta_max, hist) = out[0].clone();

    let min_level = hist.iter().position(|&n| n > 0).unwrap_or(0);
    let max_used = hist.iter().rposition(|&n| n > 0).unwrap_or(0);
    let finest_km = DOMAIN_X_KM / (1u64 << max_used) as f64;
    let uniform = 8u64.pow(max_used as u32);
    let reduction = uniform as f64 / n_elem as f64;

    let mut table = Table::new(&["quantity", "this run", "paper"]);
    table.row(&["elements".into(), human(n_elem), "19.2M".into()]);
    table.row(&[
        "octree levels".into(),
        format!(
            "{}–{} ({} levels)",
            min_level,
            max_used,
            max_used - min_level + 1
        ),
        "up to 14".into(),
    ]);
    table.row(&[
        "finest resolution".into(),
        format!("{finest_km:.0} km"),
        "≈1.5 km".into(),
    ]);
    table.row(&[
        "viscosity range".into(),
        format!(
            "{:.1e} – {:.1e} ({:.0e}×)",
            eta_min,
            eta_max,
            eta_max / eta_min
        ),
        "4 orders of magnitude".into(),
    ]);
    table.row(&[
        "vs uniform mesh at deepest level".into(),
        format!("{}× fewer elements", reduction.round()),
        ">1000× (level 13)".into(),
    ]);
    table.print();

    println!();
    println!("elements per level:");
    for (l, &n) in hist.iter().enumerate() {
        if n > 0 {
            println!("  level {l:>2}: {n}");
        }
    }
    println!();
    // Verify the yielding law's structure at the run's conditions.
    let law = YieldingLaw {
        yield_stress: 1.0,
        exponent: 6.9,
    };
    println!(
        "rheology sanity: cold lithosphere η = {}, hot yielded lithosphere η = {:.3},\n\
         cold lower mantle η = {}",
        law.eta(0.0, 0.95, 0.0),
        law.eta(1.0, 0.95, 5.0),
        law.eta(0.0, 0.5, 0.0),
    );
    println!(
        "\nshape check: AMR concentrates resolution in the thermal boundary layers\n\
         and yielding zones, spanning {} octree levels and cutting the element count\n\
         {}× against the uniform alternative — the paper's three-orders-of-magnitude\n\
         saving at its (much deeper) target resolution.",
        max_used - min_level + 1,
        reduction.round(),
    );
}
