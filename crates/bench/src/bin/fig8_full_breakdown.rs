//! Fig. 8 — Per-time-step runtime breakdown of the *full* mantle
//! convection code under isogranular (weak) scaling.
//!
//! Paper: ~50K elements/core, 1 → 16,384 cores, mesh adapted every 16
//! steps. The Stokes solve dominates (>95%); AMR, explicit transport and
//! the MINRES element kernels scale nearly ideally, while AMG setup and
//! V-cycle times grow with scale.
//!
//! Here: the full RHEA loop (Stokes + transport + AMR) runs for real at
//! host scale to measure the per-phase local profile; the machine model
//! adds per-phase communication at each paper core count. AMG's modeled
//! growth reflects its extra coarse-level collectives (log²P), the
//! paper's observed trend.

use rhea::timers::Phase;
use rhea_bench::{banner, convection_workload, paper_core_counts, Table};
use scomm::MachineModel;

fn main() {
    banner("Figure 8", "Full mantle convection: per-time-step runtime breakdown");
    let steps = 6;
    let adapt_every = 3; // paper: 16; scaled to the short run
    let (timers, n_elem, minres_iters) = convection_workload(1, 4, steps, adapt_every);
    let machine = MachineModel::ranger();
    println!(
        "measured serial run: {n_elem} elements, {steps} steps, {minres_iters} MINRES iterations\n"
    );

    let host_to_flops =
        |sec: f64| sec * machine.fem_efficiency * machine.peak_flops_per_core;
    let elem_per_core = n_elem as f64;
    let surface_bytes = 8.0 * 6.0 * elem_per_core.powf(2.0 / 3.0) * 8.0;

    // Per-step communication model for the numerical phases: every MINRES
    // iteration needs 1 ghost exchange + 2 allreduces; every V-cycle
    // crosses ~L levels with an allreduce each (block-Jacobi AMG keeps
    // V-cycles local; the setup allgathers grow with log P).
    let iters_per_step = minres_iters as f64 / steps as f64;
    let comm_per_step = |phase: Phase, p: usize| -> f64 {
        if p == 1 {
            return 0.0;
        }
        let a2a = machine.t_alltoallv(surface_bytes, 26);
        let ar = machine.t_allreduce(8.0, p);
        let lg = (p as f64).log2().ceil();
        match phase {
            Phase::Minres => iters_per_step * (a2a + 2.0 * ar),
            Phase::AmgSolve => iters_per_step * 3.0 * lg * ar, // level sweep barriers
            Phase::AmgSetup => (1.0 / adapt_every as f64) * lg * lg * (ar + a2a),
            Phase::TimeIntegration => 4.0 * a2a,
            Phase::BalanceTree => (6.0 * (a2a + ar)) / adapt_every as f64,
            Phase::PartitionTree => (4.0 * a2a + ar) / adapt_every as f64,
            Phase::ExtractMesh => (5.0 * a2a + 4.0 * ar) / adapt_every as f64,
            Phase::MarkElements => 40.0 * ar / adapt_every as f64,
            Phase::TransferFields => 2.0 * a2a / adapt_every as f64,
            _ => 0.0,
        }
    };

    let mut table = Table::new(&[
        "#cores",
        "AMR s/step",
        "TimeInt s/step",
        "MINRES s/step",
        "AMGSetup s/step",
        "AMGSolve s/step",
        "total s/step",
        "Stokes %",
    ]);
    for &p in &paper_core_counts(16384) {
        let per_step = |ph: Phase| -> f64 {
            machine.t_fem_flops(host_to_flops(timers.get(ph))) / steps as f64
                + comm_per_step(ph, p)
        };
        let amr: f64 = Phase::ALL
            .iter()
            .filter(|ph| ph.is_amr())
            .map(|&ph| per_step(ph))
            .sum();
        let ti = per_step(Phase::TimeIntegration);
        let mr = per_step(Phase::Minres);
        let ags = per_step(Phase::AmgSetup);
        let agv = per_step(Phase::AmgSolve);
        let total = amr + ti + mr + ags + agv;
        let stokes_pct = 100.0 * (mr + ags + agv) / total;
        table.row(&[
            p.to_string(),
            format!("{amr:.3}"),
            format!("{ti:.3}"),
            format!("{mr:.3}"),
            format!("{ags:.3}"),
            format!("{agv:.3}"),
            format!("{total:.3}"),
            format!("{stokes_pct:.1}"),
        ]);
    }
    table.print();
    println!();
    println!("measured serial phase profile:");
    for ph in Phase::ALL {
        let s = timers.get(ph);
        if s > 0.0 {
            println!("  {:<18} {:8.3} s total ({:.4} s/step)", ph.label(), s, s / steps as f64);
        }
    }
    println!();
    println!(
        "paper shape anchors: Stokes (MINRES + AMG) > 95% of runtime at every\n\
         scale; AMR and explicit transport negligible and flat; AMG setup and\n\
         V-cycle grow with core count."
    );
}
