//! Fig. 8 — Per-time-step runtime breakdown of the *full* mantle
//! convection code under isogranular (weak) scaling.
//!
//! Paper: ~50K elements/core, 1 → 16,384 cores, mesh adapted every 16
//! steps. The Stokes solve dominates (>95%); AMR, explicit transport and
//! the MINRES element kernels scale nearly ideally, while AMG setup and
//! V-cycle times grow with scale.
//!
//! Here: the full RHEA loop (Stokes + transport + AMR) runs for real at
//! host scale under the `obs` tracing subsystem; the per-phase profile,
//! solver telemetry (MINRES residual history, V-cycle counts) and the
//! Chrome trace / run manifest under `results/obs/` all come from the
//! recorded spans. The machine model adds per-phase communication at
//! each paper core count. AMG's modeled growth reflects its extra
//! coarse-level collectives (log²P), the paper's observed trend.

use obs::{ObsSession, Reduce, Summary, Value};
use rhea::timers::{Phase, PhaseTimers};
use rhea_bench::{banner, convection_workload_traced, paper_core_counts, Table};
use scomm::MachineModel;

fn main() {
    banner(
        "Figure 8",
        "Full mantle convection: per-time-step runtime breakdown",
    );
    let steps = 6;
    let adapt_every = 3; // paper: 16; scaled to the short run
    let (serial_profiles, n_elem, minres_iters) =
        convection_workload_traced(1, 4, steps, adapt_every);
    let serial = &serial_profiles[0].summary;
    let timers = PhaseTimers::from_summary(serial);
    let machine = MachineModel::ranger();
    println!(
        "measured serial run: {n_elem} elements, {steps} steps, {minres_iters} MINRES iterations\n"
    );

    let host_to_flops = |sec: f64| sec * machine.fem_efficiency * machine.peak_flops_per_core;
    let elem_per_core = n_elem as f64;
    let surface_bytes = 8.0 * 6.0 * elem_per_core.powf(2.0 / 3.0) * 8.0;

    // Per-step communication model for the numerical phases: every MINRES
    // iteration needs 1 ghost exchange + 2 allreduces; every V-cycle
    // crosses ~L levels with an allreduce each (block-Jacobi AMG keeps
    // V-cycles local; the setup allgathers grow with log P).
    let iters_per_step = minres_iters as f64 / steps as f64;
    let comm_per_step = |phase: Phase, p: usize| -> f64 {
        if p == 1 {
            return 0.0;
        }
        let a2a = machine.t_alltoallv(surface_bytes, 26);
        let ar = machine.t_allreduce(8.0, p);
        let lg = (p as f64).log2().ceil();
        match phase {
            Phase::Minres => iters_per_step * (a2a + 2.0 * ar),
            Phase::AmgSolve => iters_per_step * 3.0 * lg * ar, // level sweep barriers
            Phase::AmgSetup => (1.0 / adapt_every as f64) * lg * lg * (ar + a2a),
            Phase::TimeIntegration => 4.0 * a2a,
            Phase::BalanceTree => (6.0 * (a2a + ar)) / adapt_every as f64,
            Phase::PartitionTree => (4.0 * a2a + ar) / adapt_every as f64,
            Phase::ExtractMesh => (5.0 * a2a + 4.0 * ar) / adapt_every as f64,
            Phase::MarkElements => 40.0 * ar / adapt_every as f64,
            Phase::TransferFields => 2.0 * a2a / adapt_every as f64,
            _ => 0.0,
        }
    };

    let mut table = Table::new(&[
        "#cores",
        "AMR s/step",
        "TimeInt s/step",
        "MINRES s/step",
        "AMGSetup s/step",
        "AMGSolve s/step",
        "total s/step",
        "Stokes %",
    ]);
    for &p in &paper_core_counts(16384) {
        let per_step = |ph: Phase| -> f64 {
            machine.t_fem_flops(host_to_flops(timers.get(ph))) / steps as f64 + comm_per_step(ph, p)
        };
        let amr: f64 = Phase::ALL
            .iter()
            .filter(|ph| ph.is_amr())
            .map(|&ph| per_step(ph))
            .sum();
        let ti = per_step(Phase::TimeIntegration);
        let mr = per_step(Phase::Minres);
        let ags = per_step(Phase::AmgSetup);
        let agv = per_step(Phase::AmgSolve);
        let total = amr + ti + mr + ags + agv;
        let stokes_pct = 100.0 * (mr + ags + agv) / total;
        table.row(&[
            p.to_string(),
            format!("{amr:.3}"),
            format!("{ti:.3}"),
            format!("{mr:.3}"),
            format!("{ags:.3}"),
            format!("{agv:.3}"),
            format!("{total:.3}"),
            format!("{stokes_pct:.1}"),
        ]);
    }
    table.print();
    println!();
    println!("measured serial span profile:");
    println!(
        "  {:<18} {:>6} {:>10} {:>12}",
        "phase", "count", "incl s", "incl s/step"
    );
    for ph in Phase::ALL {
        if let Some(st) = serial.phases.get(ph.label()) {
            println!(
                "  {:<18} {:>6} {:>10.3} {:>12.4}",
                ph.label(),
                st.count,
                st.incl_seconds(),
                st.incl_seconds() / steps as f64
            );
        }
    }
    println!();
    println!("solver telemetry (from obs counters/series):");
    println!(
        "  minres.iterations  {}",
        serial.counter("minres.iterations")
    );
    println!("  amg.vcycles        {}", serial.counter("amg.vcycles"));
    if let Some(res) = serial_profiles[0].series.get("minres.residual") {
        if let (Some(first), Some(last)) = (res.first(), res.last()) {
            println!(
                "  minres.residual    {} samples, {first:.3e} → {last:.3e}",
                res.len()
            );
        }
    }

    // Four simulated ranks: the same convection loop, traced, with the
    // figure's observability artifacts written under results/obs/.
    let ranks = 4;
    let (profiles, n4, iters4) = convection_workload_traced(ranks, 3, 4, 2);
    let merged = Summary::reduce_all(profiles.iter().map(|p| &p.summary));
    println!();
    println!(
        "{ranks}-rank traced run: {n4} elements, {iters4} MINRES iterations, \
         comm time {:.4} s (merged incl)",
        merged.cat_incl_seconds("comm")
    );
    // The per-step MINRES communication above is modeled as
    // iters · (exchange + 2 allreduce) with log₂(P) α–β collectives.
    // Measure that iteration kernel for real on *virtual* ranks (PR 6) at
    // the paper's mid-range core counts: one world-wide ring hop (the
    // nearest-neighbor exchange proxy) plus two 8-byte allreduces. The
    // simulator's central staging makes the measured cost grow at least
    // linearly in P where the Ranger model bends logarithmically — the
    // comparison bounds how far the modeled MINRES column can be trusted
    // per substrate.
    println!();
    println!("measured MINRES-iteration collectives on virtual ranks (16 workers):");
    let mut mc = Table::new(&[
        "P",
        "ring hop µs",
        "2·allreduce µs",
        "iter comm µs",
        "model µs",
    ]);
    for &p in &[256usize, 1024, 4096] {
        let reps = if p >= 4096 { 3 } else { 8 };
        let t = rhea_bench::measure_collectives(p, 16, reps);
        let measured = t.ring_hop_ns + 2.0 * t.allreduce_ns;
        let model =
            (machine.t_alltoallv(surface_bytes, 26) + 2.0 * machine.t_allreduce(8.0, p)) * 1e9;
        mc.row(&[
            p.to_string(),
            format!("{:.1}", t.ring_hop_ns / 1e3),
            format!("{:.1}", 2.0 * t.allreduce_ns / 1e3),
            format!("{:.1}", measured / 1e3),
            format!("{:.1}", model / 1e3),
        ]);
    }
    mc.print();
    println!("  committed sweep + linear fits: BENCH_pr6.json (pr6_vrank).");

    let extra = Value::object([
        ("figure", Value::from("fig8")),
        ("ranks", Value::from(ranks as u64)),
        ("elements", Value::from(n4)),
        ("minres_iterations", Value::from(iters4 as u64)),
        ("serial_elements", Value::from(n_elem)),
        ("steps", Value::from(steps as u64)),
    ]);
    match ObsSession::new("fig8_full_breakdown").write(&profiles, extra) {
        Ok(w) => {
            println!("obs artifacts:");
            println!("  manifest     {}", w.manifest.display());
            println!(
                "  chrome trace {}  (load in chrome://tracing)",
                w.trace.display()
            );
            println!("  event log    {}", w.events.display());
        }
        Err(e) => eprintln!("warning: could not write obs artifacts: {e}"),
    }
    println!();
    println!(
        "paper shape anchors: Stokes (MINRES + AMG) > 95% of runtime at every\n\
         scale; AMR and explicit transport negligible and flat; AMG setup and\n\
         V-cycle grow with core count."
    );
}
