//! Fig. 6 — Fixed-size (strong) scalability of adaptive
//! advection–diffusion.
//!
//! Paper: near-ideal speedups over wide ranges — 366× at 512 cores for
//! the small (1.99M-element) problem, 52× from 16→1024 cores (medium,
//! 32.7M), 101× from 256→32,768 (large, 531M), 11.5× from 4096→61,440
//! (very large, 2.24B).
//!
//! Here: the real AMR transport loop runs on simulated ranks to *measure*
//! per-rank communication statistics and per-element compute cost; the
//! Ranger machine model then produces the strong-scaling curve
//! `T(P) = W/P + comm(P)` for each paper problem size (DESIGN.md
//! substitution #1). The measured single-rank wall time calibrates the
//! per-element cost; the shape — near-ideal until the surface/volume and
//! log P communication terms bite — is the reproduced result.

use mesh::extract::extract_mesh;
use octree::parallel::DistOctree;
use rhea::adapt::{adapt_mesh, gradient_indicator, AdaptParams};
use rhea::transport::{TransportParams, TransportSolver};
use rhea_bench::{banner, human, paper_core_counts, Table};
use scomm::{spmd, CommStats, MachineModel};

/// Run the AMR transport workload and return
/// (elements, steps, rank-0 stats, wall seconds on 1 rank if serial).
fn run_workload(ranks: usize, level: u8, steps: usize) -> (u64, CommStats, f64) {
    let t0 = std::time::Instant::now();
    let (out, stats) = spmd::run_with_stats(ranks, move |c| {
        let mut tree = DistOctree::new_uniform(c, level);
        let mut mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
        let mut temp: Vec<f64> = (0..mesh.n_owned)
            .map(|d| {
                let p = mesh.dof_coords(d);
                (-((p[0] - 0.3).powi(2) + (p[1] - 0.5).powi(2)) / 0.01).exp()
            })
            .collect();
        let target = tree.global_count();
        let rec = obs::Recorder::new(c.rank());
        for s in 0..steps {
            let params = TransportParams {
                kappa: 1e-6,
                source: 0.0,
                cfl: 0.4,
            };
            let mut ts = TransportSolver::new(&mesh, c, params);
            ts.set_velocity_fn(|p| [0.5 - p[1], p[0] - 0.5, 0.0]);
            let dt = ts.stable_dt().min(0.01);
            ts.step(&mut temp, dt);
            if s % 4 == 3 {
                let ind = gradient_indicator(&mesh, c, &temp);
                let fields = [temp.clone()];
                let aparams = AdaptParams {
                    target_elements: target,
                    max_level: level + 2,
                    min_level: 1,
                    ..Default::default()
                };
                let (nm, mut nf, _) = adapt_mesh(&mut tree, &mesh, &fields, &ind, &aparams, &rec);
                mesh = nm;
                temp = nf.remove(0);
            }
        }
        tree.global_count()
    });
    (out[0], stats[0].clone(), t0.elapsed().as_secs_f64())
}

fn main() {
    banner(
        "Figure 6",
        "Fixed-size scalability: speedups vs. cores for four problem sizes",
    );

    // Calibrate per-element-step cost and per-rank comm profile from real
    // runs (ranks = 4 gives representative per-rank message counts).
    let steps = 8;
    let (n_small, _, t1) = run_workload(1, 3, steps);
    let (_, stats4, _) = run_workload(4, 3, steps);
    let machine = MachineModel::ranger();
    // Measured host cost per element-step (seconds) → model flops.
    let sec_per_elem_step = t1 / (n_small as f64 * steps as f64);
    // Convert to Ranger-model flops via the FEM efficiency assumption.
    let flops_per_elem_step =
        sec_per_elem_step * machine.fem_efficiency * machine.peak_flops_per_core;
    println!(
        "calibration: {:.2} µs/element/step on this host → {:.0} model flops/element/step;\n\
         per-rank comm profile measured on 4 ranks: {} msgs, {} bytes, {} collectives\n",
        sec_per_elem_step * 1e6,
        flops_per_elem_step,
        stats4.p2p_messages,
        stats4.p2p_bytes,
        stats4.collectives()
    );

    // The paper's four problems.
    let problems: &[(&str, f64, usize)] = &[
        ("1.99M elements", 1.99e6, 65536),
        ("32.7M elements", 32.7e6, 65536),
        ("531M elements", 531e6, 65536),
        ("2.24B elements", 2.24e9, 65536),
    ];
    let mut table = Table::new(&["#cores", "1.99M", "32.7M", "531M", "2.24B"]);
    let cores = paper_core_counts(65536);
    // Strong scaling model: T(P) = W/P + comm(P) with per-rank p2p volume
    // shrinking as the (N/P)^(2/3) partition surface.
    let t_of = |n_elem: f64, p: usize| -> f64 {
        let w = n_elem * steps as f64 * flops_per_elem_step;
        let mut s = stats4.clone();
        // Point-to-point traffic in this workload is dominated by the
        // bulk element movement of PartitionTree, which is proportional
        // to the per-rank *volume*; ghost-surface traffic shrinks faster
        // and is folded into the same scaling conservatively.
        let shrink = (n_elem / p as f64) / (n_small as f64 / 4.0);
        s.p2p_bytes = (s.p2p_bytes as f64 * shrink) as u64;
        machine.t_fem_flops(w / p as f64) + machine.t_comm(&s, p)
    };
    for &p in &cores {
        let mut cells = vec![p.to_string()];
        for &(_, n, _) in problems {
            // Paper baselines: small from 1, medium from 16, large from
            // 256, very large from 4096 cores; report speedup vs. 1 core
            // for a single consistent curve.
            let speedup = t_of(n, 1) / t_of(n, p);
            cells.push(format!("{speedup:.1}"));
        }
        table.row(&cells);
    }
    table.print();

    println!();
    println!("paper shape anchors: small 366× @512, medium 52× over 16→1024,");
    println!("large 101× over 256→32768, very large 11.5× over 4096→61440.");
    let anchors = [
        ("small  @512 vs 1", t_of(1.99e6, 1) / t_of(1.99e6, 512)),
        ("medium @1024 vs 16", t_of(32.7e6, 16) / t_of(32.7e6, 1024)),
        (
            "large  @32768 vs 256",
            t_of(531e6, 256) / t_of(531e6, 32768),
        ),
        (
            "vlarge @61440 vs 4096",
            t_of(2.24e9, 4096) / t_of(2.24e9, 61440 / 4096 * 4096),
        ),
    ];
    for (label, s) in anchors {
        println!("modeled {label}: {s:.1}×");
    }
    println!(
        "\nproblem sizes (paper): {}",
        problems
            .iter()
            .map(|p| human(p.1 as u64))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "\nmodel caveat: the α–β network model gives an *upper bound* on speedup — the\n\
         paper's measured anchors sit lower because dynamic load imbalance and fat-tree\n\
         contention are not first-principles-modelable here. The reproduced shape is the\n\
         ordering: smaller problems fall off ideal earlier (see the 1.99M column bend\n\
         first), and the very large problem still scales at the full machine."
    );
}
