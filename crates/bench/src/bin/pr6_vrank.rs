//! Virtual-rank scheduler benchmarks (PR 6).
//!
//! Two experiments, written to `BENCH_pr6.json`:
//!
//! * **A/B at P = 8**: the same mixed communication workload (p2p ring,
//!   allreduce, allgather, alltoallv) on thread-mode `spmd::run` versus
//!   `spmd::run_virtual` on a 4-worker pool. Results must be bitwise
//!   identical; the wall-time ratio is the scheduler's multiplexing
//!   overhead at a P the thread mode can still reach.
//! * **High-P sweep** at P ∈ {256, 1024, 4096} virtual ranks on 16
//!   workers — world sizes far beyond the OS-thread ceiling the previous
//!   harnesses ran at. Each collective (barrier, 8-B allreduce,
//!   allgather, ring hop) is *measured* wall-clock per whole-world round,
//!   compared against the Ranger [`MachineModel`] α–β predictions, and
//!   fitted with a least-squares line t = a + b·P. The simulator stages
//!   collectives through central per-world state, so the measured rounds
//!   grow at least linearly in P (superlinearly for the Θ(P)-payload
//!   allgather/allreduce) — the log₂(P) α–β shape is a property of the
//!   modeled fat-tree, not of the simulation substrate; the committed
//!   fit documents that envelope (see EXPERIMENTS.md).
//!
//! Usage: `pr6_vrank [--smoke] [--out PATH]`. `--smoke` shrinks the
//! sweep to P ∈ {32, 64} on 4 workers for the CI debug pass; the
//! committed JSON comes from a full `--release` run (`scripts/bench.sh`).

use obs::json::Value;
use rhea_bench::{banner, linear_fit, measure_collectives, CollectiveTiming, Table};
use scomm::{spmd, Comm, MachineModel};
use std::time::Instant;

/// Mixed communication workload for the A/B: `rounds` iterations of a
/// p2p ring hop + allreduce + allgather, with an alltoallv every fourth
/// round. Returns a per-rank digest that must be bitwise identical
/// across execution modes.
fn mixed_workload(c: &Comm, rounds: usize) -> Vec<u64> {
    let me = c.rank() as u64;
    let p = c.size();
    let next = (c.rank() + 1) % p;
    let prev = (c.rank() + p - 1) % p;
    let mut digest = Vec::new();
    let mut token = vec![me];
    for round in 0..rounds as u64 {
        let req = c.irecv::<u64>(prev, round);
        c.isend(next, round, &token).wait();
        token = c.wait(req);
        digest.push(token[0]);
        let s = c.allreduce_sum(&[(me + round) as f64])[0];
        digest.push(s.to_bits());
        digest.push(c.allgather_u64(me ^ round)[p - 1]);
        if round % 4 == 0 {
            let counts = vec![1usize; p];
            let send: Vec<u64> = (0..p as u64).map(|d| me * 1000 + d + round).collect();
            let (mut recv, mut rc) = (Vec::new(), Vec::new());
            c.alltoallv_flat(&send, &counts, &mut recv, &mut rc);
            digest.push(recv.iter().sum());
        }
    }
    digest
}

/// Median wall time of `samples` launches of `run`.
fn median_launch_ns(samples: usize, mut run: impl FnMut()) -> f64 {
    let mut t = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        run();
        t.push(t0.elapsed().as_nanos() as f64);
    }
    t.sort_by(|a, b| a.partial_cmp(b).unwrap());
    t[t.len() / 2]
}

/// Thread vs virtual A/B at a P both modes can reach.
fn bench_ab(samples: usize, rounds: usize) -> Value {
    let (p, workers) = (8usize, 4usize);
    let thread_ref = spmd::run(p, move |c| mixed_workload(c, rounds));
    let virt_ref = spmd::run_virtual(p, workers, move |c| mixed_workload(c, rounds));
    assert_eq!(
        virt_ref, thread_ref,
        "virtual mode must be bitwise identical to thread mode"
    );
    let thread_ns = median_launch_ns(samples, || {
        let _ = spmd::run(p, move |c| mixed_workload(c, rounds));
    });
    let virtual_ns = median_launch_ns(samples, || {
        let _ = spmd::run_virtual(p, workers, move |c| mixed_workload(c, rounds));
    });
    let overhead = virtual_ns / thread_ns;
    println!(
        "A/B P={p} ({rounds} rounds): thread {:.2} ms, virtual(W={workers}) {:.2} ms, \
         overhead {overhead:.2}x, results bitwise identical",
        thread_ns / 1e6,
        virtual_ns / 1e6
    );
    Value::object([
        ("ranks", Value::from(p as u64)),
        ("workers", Value::from(workers as u64)),
        ("rounds", Value::from(rounds as u64)),
        ("thread_ns", Value::from(thread_ns)),
        ("virtual_ns", Value::from(virtual_ns)),
        ("overhead", Value::from(overhead)),
        ("bitwise_identical", Value::from(true)),
    ])
}

fn sweep_row(t: &CollectiveTiming, machine: &MachineModel) -> Value {
    let model_barrier = machine.t_barrier(t.p) * 1e9;
    let model_allreduce = machine.t_allreduce(8.0, t.p) * 1e9;
    let model_allgather = machine.t_allgather(8.0, t.p) * 1e9;
    // Effective per-round latency the measurement implies if forced into
    // the dissemination-barrier shape t = log2(P)·α.
    let implied_alpha = t.barrier_ns / (t.p as f64).log2().ceil();
    Value::object([
        ("ranks", Value::from(t.p as u64)),
        ("workers", Value::from(t.workers as u64)),
        ("reps", Value::from(t.reps as u64)),
        ("barrier_ns", Value::from(t.barrier_ns)),
        ("allreduce_ns", Value::from(t.allreduce_ns)),
        ("allgather_ns", Value::from(t.allgather_ns)),
        ("ring_hop_ns", Value::from(t.ring_hop_ns)),
        ("model_barrier_ns", Value::from(model_barrier)),
        ("model_allreduce_ns", Value::from(model_allreduce)),
        ("model_allgather_ns", Value::from(model_allgather)),
        ("implied_alpha_ns", Value::from(implied_alpha)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr6.json".to_string());

    banner(
        "PR 6",
        "Virtual ranks: scheduler overhead A/B + measured collectives at high P",
    );
    let ab = bench_ab(if smoke { 3 } else { 11 }, if smoke { 4 } else { 64 });

    let sweep_cfg: &[(usize, usize)] = if smoke {
        &[(32, 4), (64, 4)]
    } else {
        &[(256, 16), (1024, 16), (4096, 16)]
    };
    let machine = MachineModel::ranger();
    println!();
    let mut table = Table::new(&[
        "P",
        "workers",
        "barrier µs",
        "allreduce µs",
        "allgather µs",
        "ring hop µs",
        "model barrier µs",
        "α̂ µs",
    ]);
    let mut timings = Vec::new();
    for &(p, workers) in sweep_cfg {
        let reps = match (smoke, p) {
            (true, _) => 2,
            (false, p) if p >= 4096 => 5,
            (false, p) if p >= 1024 => 8,
            _ => 16,
        };
        let t = measure_collectives(p, workers, reps);
        table.row(&[
            p.to_string(),
            workers.to_string(),
            format!("{:.1}", t.barrier_ns / 1e3),
            format!("{:.1}", t.allreduce_ns / 1e3),
            format!("{:.1}", t.allgather_ns / 1e3),
            format!("{:.1}", t.ring_hop_ns / 1e3),
            format!("{:.3}", machine.t_barrier(p) * 1e6),
            format!("{:.1}", t.barrier_ns / (p as f64).log2().ceil() / 1e3),
        ]);
        timings.push(t);
    }
    table.print();

    // Least-squares t = a + b·P over the measured rounds: the simulator's
    // central staging makes the P-proportional term dominate (the log₂(P)
    // model term never can), so the committed fit is the honest "measured
    // collective tree" for this substrate.
    let fit_of = |f: fn(&CollectiveTiming) -> f64| -> (f64, f64) {
        let pts: Vec<(f64, f64)> = timings.iter().map(|t| (t.p as f64, f(t))).collect();
        linear_fit(&pts)
    };
    let (bar_a, bar_b) = fit_of(|t| t.barrier_ns);
    let (ar_a, ar_b) = fit_of(|t| t.allreduce_ns);
    let (ag_a, ag_b) = fit_of(|t| t.allgather_ns);
    println!();
    println!("linear fits t(P) = a + b·P over the measured rounds (ns):");
    println!("  barrier    a = {bar_a:.0}, b = {bar_b:.1} ns/rank");
    println!("  allreduce  a = {ar_a:.0}, b = {ar_b:.1} ns/rank");
    println!("  allgather  a = {ag_a:.0}, b = {ag_b:.1} ns/rank");

    let fit = |a: f64, b: f64| {
        Value::object([("a_ns", Value::from(a)), ("b_ns_per_rank", Value::from(b))])
    };
    let doc = Value::object([
        ("schema", Value::from("bench.pr6.v1")),
        ("mode", Value::from(if smoke { "smoke" } else { "full" })),
        ("ab", ab),
        (
            "sweep",
            Value::array(timings.iter().map(|t| sweep_row(t, &machine))),
        ),
        (
            "fit",
            Value::object([
                ("barrier", fit(bar_a, bar_b)),
                ("allreduce", fit(ar_a, ar_b)),
                ("allgather", fit(ag_a, ag_b)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json() + "\n").expect("write BENCH_pr6.json");
    println!("\nwrote {out_path}");

    if !smoke {
        // Gates: a high-P world must cost more per round than a low-P one
        // (the scheduler actually multiplexes 4096 ranks through every
        // round), and the per-rank slope of the fit must be positive.
        for w in timings.windows(2) {
            assert!(
                w[1].barrier_ns > w[0].barrier_ns,
                "barrier rounds must grow with P: {:?}",
                timings.iter().map(|t| t.barrier_ns).collect::<Vec<_>>()
            );
            assert!(
                w[1].allgather_ns > w[0].allgather_ns,
                "allgather rounds must grow with P"
            );
        }
        assert!(bar_b > 0.0 && ag_b > 0.0, "fit slopes must be positive");
    }
}
