//! Zero-allocation matvec pipeline benchmarks (PR 3).
//!
//! Measures the three hot-path optimizations against their reference
//! implementations and writes the results to `BENCH_pr3.json`:
//!
//! * tensor-product derivative kernel: vectorized axpy sweeps vs the
//!   scalar reference (`apply_tensor_batch_reference`), median ns per
//!   element at several orders;
//! * ghost exchange at P = 4, ncomp = 3: packed interleaved single
//!   exchange vs per-component strided, median ns per exchange plus the
//!   point-to-point message count per exchange;
//! * MINRES iteration on a distributed Stokes solve at P = 4: fused
//!   single-allreduce recurrence vs the classic schedule, median ns per
//!   iteration, allreduces per iteration, and the steady-state workspace
//!   allocation (bytes) of a warm repeat solve — the zero-allocation
//!   proof.
//!
//! Usage: `pr3_pipeline [--smoke] [--out PATH]`. `--smoke` shrinks the
//! sample counts so CI can exercise the full code path in seconds; the
//! committed JSON comes from a full `--release` run (`scripts/bench.sh`).

use fem::op::DofMap;
use mangll::kernels::ElementDerivative;
use mesh::extract::{extract_mesh, ExchangeBuffers};
use obs::json::Value;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use scomm::spmd;
use std::time::Instant;
use stokes::{StokesOptions, StokesSolver};

/// Median wall time of `samples` timed calls, in nanoseconds (one
/// untimed warmup call first).
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_tensor_kernels(samples: usize) -> Value {
    let mut rows = Vec::new();
    for p in [2usize, 4, 6] {
        let ed = ElementDerivative::new(p);
        let n3 = ed.n3();
        let nelem = (500_000 / n3).clamp(8, 2048);
        let u: Vec<f64> = (0..n3 * nelem)
            .map(|i| ((i * 2654435761 + 7) % 1000) as f64 / 999.0)
            .collect();
        let mut out = vec![0.0; 3 * n3 * nelem];
        let t_vec = median_ns(samples, || ed.apply_tensor_batch(&u, &mut out, nelem));
        let t_ref = median_ns(samples, || {
            ed.apply_tensor_batch_reference(&u, &mut out, nelem)
        });
        let per_elem = nelem as f64;
        println!(
            "tensor p={p}: vectorized {:.0} ns/elem, reference {:.0} ns/elem, speedup {:.2}x",
            t_vec / per_elem,
            t_ref / per_elem,
            t_ref / t_vec
        );
        rows.push(Value::object([
            ("p", Value::from(p)),
            ("elements", Value::from(nelem)),
            ("vectorized_ns_per_elem", Value::from(t_vec / per_elem)),
            ("reference_ns_per_elem", Value::from(t_ref / per_elem)),
            ("speedup", Value::from(t_ref / t_vec)),
        ]));
    }
    Value::array(rows)
}

fn bench_ghost_exchange(samples: usize) -> Value {
    let out = spmd::run(4, move |c| {
        let mut t = DistOctree::new_uniform(c, 3);
        t.refine(|o| o.center_unit()[0] < 0.4);
        t.balance(BalanceKind::Full);
        t.partition();
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let map = DofMap::new(&m, c, 3);
        let owned: Vec<f64> = (0..map.n_owned())
            .map(|i| ((i * 31 + 11) % 997) as f64 / 997.0)
            .collect();

        // Message counts for a single forward exchange, each flavor.
        let s0 = c.stats();
        let strided_once = map.to_local(&owned);
        let s1 = c.stats();
        let mut packed = Vec::new();
        let mut buf = ExchangeBuffers::new();
        map.to_local_into(&owned, &mut packed, &mut buf);
        let s2 = c.stats();
        assert_eq!(strided_once, packed);
        let strided_msgs = s1.p2p_messages - s0.p2p_messages;
        let packed_msgs = s2.p2p_messages - s1.p2p_messages;

        let t_strided = median_ns(samples, || {
            std::hint::black_box(map.to_local(&owned));
        });
        let t_packed = median_ns(samples, || {
            map.to_local_into(&owned, &mut packed, &mut buf);
        });
        (
            map.n_local() - map.n_owned(),
            strided_msgs,
            packed_msgs,
            t_strided,
            t_packed,
        )
    });
    let (_, strided_msgs, packed_msgs, t_strided, t_packed) = out[0];
    let ghosts = out.iter().map(|r| r.0).max().unwrap_or(0);
    println!(
        "ghost exchange P=4 ncomp=3 (max {ghosts} ghost values/rank): \
         strided {t_strided:.0} ns ({strided_msgs} msgs), \
         packed {t_packed:.0} ns ({packed_msgs} msgs)"
    );
    Value::object([
        ("ranks", Value::from(4u64)),
        ("ncomp", Value::from(3u64)),
        ("strided_ns_per_exchange", Value::from(t_strided)),
        ("packed_ns_per_exchange", Value::from(t_packed)),
        ("speedup", Value::from(t_strided / t_packed)),
        ("strided_p2p_msgs_per_exchange", Value::from(strided_msgs)),
        ("packed_p2p_msgs_per_exchange", Value::from(packed_msgs)),
    ])
}

/// One traced Stokes solve scenario: `solves` back-to-back solves of the
/// same system on 4 ranks. Returns (total iterations, wall seconds of the
/// *last* solve, rank-0 counters for allreduces / exchange msgs /
/// workspace alloc bytes, summed over the solves).
fn stokes_scenario(fused: bool, solves: usize) -> (usize, f64, u64, u64, u64) {
    let (out, profiles) = spmd::run_traced(4, move |c, _rec| {
        let t = DistOctree::new_uniform(c, 2);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let n = m.n_owned;
        let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
        let visc = vec![1.0; m.elements.len()];
        let opts = StokesOptions {
            tol: 1e-8,
            max_iter: 400,
            fused_reductions: fused,
            ..Default::default()
        };
        let mut solver = StokesSolver::new(&m, c, visc, bc, opts);
        let (rhs, x0) = solver.build_rhs(
            |p| [(3.0 * p[1]).sin(), (2.0 * p[2]).cos(), p[0] * p[1]],
            |_| [0.0; 3],
        );
        let mut iters = 0;
        let mut last_secs = 0.0;
        for _ in 0..solves {
            let mut x = x0.clone();
            let t0 = Instant::now();
            let info = solver.solve(&rhs, &mut x);
            last_secs = t0.elapsed().as_secs_f64();
            assert!(info.converged, "{info:?}");
            iters += info.iterations;
        }
        (iters, last_secs)
    });
    let (iters, secs) = out[0];
    let counters = &profiles[0].summary.counters;
    let get = |k: &str| counters.get(k).copied().unwrap_or(0);
    (
        iters,
        secs,
        get("minres.allreduces"),
        get("minres.exchange_msgs"),
        get("minres.alloc_bytes"),
    )
}

fn bench_minres() -> Value {
    // One-solve and two-solve runs per flavor: the alloc-bytes delta
    // between them is the steady-state allocation of a warm solve.
    let (it_f1, _, ar_f1, _, al_f1) = stokes_scenario(true, 1);
    let (it_f2, secs_fused, ar_f2, msgs_f2, al_f2) = stokes_scenario(true, 2);
    let (it_c1, _, ar_c1, _, _) = stokes_scenario(false, 1);
    let (it_c2, secs_classic, ar_c2, _, _) = stokes_scenario(false, 2);
    let fused_iters = (it_f2 - it_f1).max(1);
    let classic_iters = (it_c2 - it_c1).max(1);
    let fused_ar_per_iter = (ar_f2 - ar_f1) as f64 / fused_iters as f64;
    let classic_ar_per_iter = (ar_c2 - ar_c1) as f64 / classic_iters as f64;
    let steady_alloc = al_f2 - al_f1;
    let fused_ns_per_iter = secs_fused * 1e9 / fused_iters as f64;
    let classic_ns_per_iter = secs_classic * 1e9 / classic_iters as f64;
    println!(
        "minres P=4: fused {fused_ns_per_iter:.0} ns/iter at {fused_ar_per_iter:.2} \
         allreduces/iter, classic {classic_ns_per_iter:.0} ns/iter at \
         {classic_ar_per_iter:.2} allreduces/iter, warm-solve alloc {steady_alloc} bytes"
    );
    assert_eq!(
        steady_alloc, 0,
        "warm repeat solve must not grow the workspace"
    );
    Value::object([
        ("ranks", Value::from(4u64)),
        ("fused_ns_per_iter", Value::from(fused_ns_per_iter)),
        ("classic_ns_per_iter", Value::from(classic_ns_per_iter)),
        ("fused_allreduces_per_iter", Value::from(fused_ar_per_iter)),
        (
            "classic_allreduces_per_iter",
            Value::from(classic_ar_per_iter),
        ),
        ("fused_iterations_warm", Value::from(fused_iters)),
        ("classic_iterations_warm", Value::from(classic_iters)),
        (
            "exchange_msgs_per_iter",
            Value::from(msgs_f2 as f64 / it_f2.max(1) as f64),
        ),
        ("warm_solve_alloc_bytes", Value::from(steady_alloc)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let samples = if smoke { 3 } else { 25 };

    rhea_bench::banner(
        "PR 3",
        "Zero-allocation matvec pipeline: kernels, exchange, reductions",
    );
    let tensor = bench_tensor_kernels(samples);
    let exchange = bench_ghost_exchange(samples);
    let minres = bench_minres();

    let best_speedup = tensor
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|r| r.get("speedup").and_then(|v| v.as_f64()))
        .fold(0.0f64, f64::max);
    let doc = Value::object([
        ("schema", Value::from("bench.pr3.v1")),
        ("mode", Value::from(if smoke { "smoke" } else { "full" })),
        ("tensor_kernel", tensor),
        ("ghost_exchange", exchange),
        ("minres", minres),
        ("tensor_best_speedup", Value::from(best_speedup)),
    ]);
    std::fs::write(&out_path, doc.to_json() + "\n").expect("write BENCH_pr3.json");
    println!("\nwrote {out_path} (best tensor speedup {best_speedup:.2}x)");
    if !smoke {
        assert!(
            best_speedup >= 1.5,
            "tensor kernel speedup regressed below 1.5x: {best_speedup:.2}"
        );
    }
}
