//! Fig. 7 — Weak scalability of adaptive advection–diffusion: runtime
//! breakdown by AMR function (top) and parallel efficiency (bottom).
//!
//! Paper: 131K elements/core from 1 to 62,464 cores (7.9B elements).
//! Time integration dominates; the most expensive AMR function is
//! `ExtractMesh` (≤6%); all AMR together stays ≤11%; parallel efficiency
//! stays above 50% over the 62K-fold scale-up.
//!
//! Here: the real AMR transport loop runs under the `obs` tracing
//! subsystem, serially (to measure per-phase local work) and on 4
//! simulated ranks (to record the per-rank communication profile and
//! emit the Chrome trace / run manifest under `results/obs/`); the
//! machine model then produces the per-phase times at every paper core
//! count. All printed breakdowns are derived from obs span data.

use mesh::extract::extract_mesh;
use obs::{ObsSession, RankProfile, Reduce, Summary, Value};
use octree::parallel::DistOctree;
use rhea::adapt::{adapt_mesh, gradient_indicator, AdaptParams};
use rhea::timers::{Phase, PhaseTimers};
use rhea::transport::{TransportParams, TransportSolver};
use rhea_bench::{banner, paper_core_counts, Table};
use scomm::{spmd, CommStats, MachineModel};

/// Run the adaptive transport loop with tracing on and return the
/// per-rank telemetry profiles, the global element count, and each
/// rank's measured communication counters.
fn run_traced(
    ranks: usize,
    level: u8,
    steps: usize,
    adapt_every: usize,
) -> (Vec<RankProfile>, u64, Vec<CommStats>) {
    let (counts, profiles) = spmd::run_traced(ranks, move |c, rec| {
        let mut tree = DistOctree::new_uniform(c, level);
        let mut mesh = extract_mesh(&tree, [1.0, 1.0, 1.0]);
        let mut temp: Vec<f64> = (0..mesh.n_owned)
            .map(|d| {
                let p = mesh.dof_coords(d);
                let r = ((p[0] - 0.6).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt();
                0.5 * (1.0 - ((r - 0.25) * 30.0).tanh())
            })
            .collect();
        let target = tree.global_count();
        for s in 0..steps {
            rec.with_cat("TimeIntegration", "solve", || {
                let params = TransportParams {
                    kappa: 1e-6,
                    source: 0.0,
                    cfl: 0.4,
                };
                let mut ts = TransportSolver::new(&mesh, c, params);
                ts.set_velocity_fn(|p| [0.5 - p[1], p[0] - 0.5, 0.0]);
                let dt = ts.stable_dt().min(0.01);
                ts.step(&mut temp, dt);
            });
            if adapt_every > 0 && s % adapt_every == adapt_every - 1 {
                let ind = gradient_indicator(&mesh, c, &temp);
                let fields = [temp.clone()];
                let aparams = AdaptParams {
                    target_elements: target,
                    max_level: level + 2,
                    min_level: 1,
                    ..Default::default()
                };
                let (nm, mut nf, _) = adapt_mesh(&mut tree, &mesh, &fields, &ind, &aparams, rec);
                mesh = nm;
                temp = nf.remove(0);
            }
        }
        (tree.global_count(), c.stats())
    });
    let n_global = counts[0].0;
    let stats = counts.into_iter().map(|(_, s)| s).collect();
    (profiles, n_global, stats)
}

fn main() {
    banner(
        "Figure 7",
        "Weak scaling: % runtime per AMR function + parallel efficiency",
    );
    // Measure the per-phase serial profile on this host (1 rank = pure
    // local work, no contention).
    let steps = 32; // one adaptation per 32 steps, the paper's cadence
    let (serial_profiles, n_elem, _) = run_traced(1, 4, steps, 32);
    let serial = &serial_profiles[0].summary;
    let timers = PhaseTimers::from_summary(serial);
    let machine = MachineModel::ranger();
    let elem_per_core = n_elem as f64;

    // Convert each phase's measured local seconds into model flops; add
    // modeled per-phase communication at scale. Collective counts per
    // phase from the algorithm structure (per adaptation step):
    //   BalanceTree      ~ levels rounds of alltoallv + allreduce
    //   PartitionTree    ~ 1 alltoallv + marker allgather
    //   ExtractMesh      ~ ghost alltoallv + gid lookups (3) + allgathers
    //   MarkElements     ~ ~40 allreduce iterations
    //   TransferFields   ~ 1 alltoallv (volume = fields)
    //   InterpolateF.    ~ local only
    //   TimeIntegration  ~ 2 ghost exchanges per step (surface volume)
    let phases = Phase::ALL;
    let host_to_flops = |sec: f64| sec * machine.fem_efficiency * machine.peak_flops_per_core;
    let surface_bytes = 8.0 * 6.0 * (elem_per_core).powf(2.0 / 3.0) * 8.0; // 8B/node, 6 faces

    let comm_time = |phase: Phase, p: usize| -> f64 {
        if p == 1 {
            return 0.0;
        }
        let lg = (p as f64).log2().ceil();
        let a2a = machine.t_alltoallv(surface_bytes, 26); // neighbor exchange
        let ar = machine.t_allreduce(8.0, p);
        let ag = machine.t_allgather(8.0, p);
        match phase {
            Phase::BalanceTree => 6.0 * (a2a + ar),
            Phase::PartitionTree => a2a * 4.0 + ag, // bulk element movement
            Phase::ExtractMesh => 5.0 * a2a + 4.0 * ag,
            Phase::MarkElements => 40.0 * ar,
            Phase::TransferFields => a2a * 2.0,
            Phase::InterpolateFields => 0.0,
            Phase::TimeIntegration => steps as f64 * 4.0 * a2a,
            Phase::NewTree => ag,
            Phase::CoarsenTree | Phase::RefineTree => 0.0,
            _ => lg * 0.0,
        }
    };

    let cores = paper_core_counts(62464);
    let mut table = Table::new(&[
        "#cores",
        "TimeInt%",
        "Balance%",
        "Partition%",
        "Extract%",
        "Interp%",
        "Transfer%",
        "Mark%",
        "AMR total%",
        "efficiency",
    ]);
    let mut base_total = 0.0;
    for &p in &cores {
        let adapt_count = (steps / 32) as f64;
        let mut t = Vec::new();
        let mut total = 0.0;
        for &ph in &phases {
            let local = machine.t_fem_flops(host_to_flops(timers.get(ph)));
            let comm = comm_time(ph, p) * adapt_count.max(1.0);
            t.push((ph, local + comm));
            total += local + comm;
        }
        if p == 1 {
            base_total = total;
        }
        let pct = |ph: Phase| -> f64 { 100.0 * t.iter().find(|x| x.0 == ph).unwrap().1 / total };
        let amr_pct: f64 = t
            .iter()
            .filter(|(ph, _)| ph.is_amr())
            .map(|(_, v)| 100.0 * v / total)
            .sum();
        // Weak-scaling efficiency: same elements/core ⇒ ideal keeps total
        // constant.
        let eff = base_total / total;
        table.row(&[
            p.to_string(),
            format!("{:.1}", pct(Phase::TimeIntegration)),
            format!("{:.1}", pct(Phase::BalanceTree)),
            format!("{:.1}", pct(Phase::PartitionTree)),
            format!("{:.1}", pct(Phase::ExtractMesh)),
            format!("{:.1}", pct(Phase::InterpolateFields)),
            format!("{:.1}", pct(Phase::TransferFields)),
            format!("{:.1}", pct(Phase::MarkElements)),
            format!("{:.1}", amr_pct),
            format!("{:.2}", eff),
        ]);
    }
    table.print();
    println!();
    println!(
        "measured serial span profile ({} elements, {} steps, adapt every 32):",
        n_elem, steps
    );
    println!(
        "  {:<18} {:>6} {:>10} {:>10}",
        "phase", "count", "incl s", "excl s"
    );
    for ph in Phase::ALL {
        if let Some(st) = serial.phases.get(ph.label()) {
            println!(
                "  {:<18} {:>6} {:>10.3} {:>10.3}",
                ph.label(),
                st.count,
                st.incl_seconds(),
                st.excl_seconds()
            );
        }
    }

    // Four simulated ranks: record the real communication profile and
    // emit the observability artifacts for this figure.
    let ranks = 4;
    let (profiles, n4, comm_stats) = run_traced(ranks, 3, 8, 4);
    let merged = Summary::reduce_all(profiles.iter().map(|p| &p.summary));
    println!();
    println!("{ranks}-rank communication profile ({n4} elements, merged across ranks):");
    println!("  {:<18} {:>8} {:>10}", "op", "calls", "incl s");
    for (name, st) in merged.phases.iter().filter(|(_, st)| st.cat == "comm") {
        println!("  {:<18} {:>8} {:>10.4}", name, st.count, st.incl_seconds());
    }
    if let Some(h) = merged.hists.get("comm.bytes") {
        println!(
            "  bytes on the wire: {} messages, {} B total",
            h.count, h.sum
        );
    }

    // Ranger-scale extrapolation from the *measured* counters: feed each
    // rank's recorded CommStats through the α–β–γ machine model at every
    // paper core count, take the critical-path rank, and compose with the
    // measured time-integration compute two ways — blocking (comp + comm)
    // versus split-phase overlapped (max(comp, comm)). The gain column is
    // the modeled payoff of overlapping the ghost exchange (PR 5).
    let comp_host = merged
        .phases
        .get("TimeIntegration")
        .map(|st| st.incl_seconds())
        .unwrap_or(0.0)
        / ranks as f64;
    let t_comp = machine.t_fem_flops(host_to_flops(comp_host));
    println!();
    println!(
        "Ranger extrapolation from measured CommStats \
         (per-step phase, {ranks}-rank counters):"
    );
    let mut ab = Table::new(&[
        "#cores",
        "t_comp s",
        "t_comm s",
        "blocking s",
        "overlapped s",
        "overlap gain",
    ]);
    for &p in &cores {
        let t_comm = comm_stats
            .iter()
            .map(|s| machine.t_comm(s, p))
            .fold(0.0, f64::max);
        let blocking = machine.t_phase_blocking(t_comp, t_comm);
        let overlapped = machine.t_phase_overlapped(t_comp, t_comm);
        ab.row(&[
            p.to_string(),
            format!("{t_comp:.3}"),
            format!("{t_comm:.3}"),
            format!("{blocking:.3}"),
            format!("{overlapped:.3}"),
            format!("{:.2}x", blocking / overlapped),
        ]);
    }
    ab.print();

    // Measured collective rounds at the paper's mid-range core counts,
    // run for real on *virtual* ranks (PR 6) — world sizes no thread-mode
    // harness can reach. The α–β model rows above assume log₂(P)
    // dissemination trees on Ranger's fat-tree; the simulator stages
    // collectives through central per-world state, so its measured rounds
    // grow at least linearly in P. Comparing the two columns (and the implied
    // per-round α̂) documents where the model and the substrate diverge —
    // the model stays the Ranger stand-in, the measurement is the real
    // cost envelope of every simulated figure in this file.
    println!();
    println!("measured collective rounds on virtual ranks (16 workers) vs α–β model:");
    let mut mc = Table::new(&[
        "P",
        "barrier µs",
        "model µs",
        "allreduce µs",
        "model µs",
        "allgather µs",
        "model µs",
        "α̂ µs",
    ]);
    let mut fit_pts = Vec::new();
    for &p in &[256usize, 1024, 4096] {
        let reps = if p >= 4096 { 3 } else { 8 };
        let t = rhea_bench::measure_collectives(p, 16, reps);
        mc.row(&[
            p.to_string(),
            format!("{:.1}", t.barrier_ns / 1e3),
            format!("{:.3}", machine.t_barrier(p) * 1e6),
            format!("{:.1}", t.allreduce_ns / 1e3),
            format!("{:.3}", machine.t_allreduce(8.0, p) * 1e6),
            format!("{:.1}", t.allgather_ns / 1e3),
            format!("{:.3}", machine.t_allgather(8.0, p) * 1e6),
            format!("{:.1}", t.barrier_ns / (p as f64).log2().ceil() / 1e3),
        ]);
        fit_pts.push((p as f64, t.barrier_ns));
    }
    mc.print();
    let (fa, fb) = rhea_bench::linear_fit(&fit_pts);
    println!(
        "  measured barrier fit: t(P) = {fa:.0} + {fb:.1}·P ns — scaling ~P, \
         not log2(P)\n  (central staging); see BENCH_pr6.json for the \
         committed sweep."
    );

    let extra = Value::object([
        ("figure", Value::from("fig7")),
        ("ranks", Value::from(ranks as u64)),
        ("elements", Value::from(n4)),
        ("serial_elements", Value::from(n_elem)),
        ("steps", Value::from(steps as u64)),
    ]);
    match ObsSession::new("fig7_weak_breakdown").write(&profiles, extra) {
        Ok(w) => {
            println!();
            println!("obs artifacts:");
            println!("  manifest     {}", w.manifest.display());
            println!(
                "  chrome trace {}  (load in chrome://tracing)",
                w.trace.display()
            );
            println!("  event log    {}", w.events.display());
        }
        Err(e) => eprintln!("warning: could not write obs artifacts: {e}"),
    }
    println!();
    println!(
        "paper shape anchors: AMR total ≤ 11% at 62K cores (ExtractMesh largest at ≤6%),\n\
         parallel efficiency ≥ 0.50 from 1 → 62,464 cores."
    );
}
